//! Declarative workload language: TOML/JSON scenario packs.
//!
//! Every experiment the repo can run used to be a canned Rust function in
//! [`crate::scenarios`].  This module turns "reproduce the paper" into
//! "describe any experiment": a pack is a TOML (or JSON) document naming
//! connection groups, traffic classes, per-connection rates, ramp
//! schedules, churn windows, fault plans, an optional fabric topology, a
//! load sweep, and typed conformance claims.  [`WorkloadSpec::parse`]
//! reads it, [`WorkloadSpec::validate`] rejects malformed documents with
//! typed [`SpecError`]s (never panics), and [`WorkloadSpec::compile`]
//! lowers it onto the existing [`SimConfig`]/[`SweepSpec`] machinery so
//! the whole sweep/cache/conformance stack runs unchanged.
//!
//! The committed packs live under `workloads/`; the `workload_runner`
//! bench binary sweeps them and gates their claims in CI.  TOML support
//! is a self-contained subset (tables, arrays of tables, scalars, inline
//! arrays, comments) because the build environment vendors no external
//! TOML crate; JSON documents are detected by a leading `{` and parsed
//! with the vendored `serde_json`.

use crate::config::{
    BestEffortSpec, ChurnConfig, FabricSpec, FaultSpec, MixGroup, RampScheduleConfig,
    RampStepConfig, RunLength, SimConfig, WorkloadSpec as ConfigWorkload,
};
use crate::conformance::{ensemble_seeds, median, ClaimOutcome};
use crate::scenarios::Fidelity;
use crate::sweep::{SweepPoint, SweepSpec};
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_router::fabric::Topology;
use mmr_sim::fault::FaultPlanConfig;
use mmr_traffic::connection::TrafficClass;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Load-grid matching tolerance: claim anchors and sweep loads are
/// compared with this slack so generated grids (`initial`/`max`/`step`)
/// behave like explicit lists.
const LOAD_EPS: f64 = 1e-6;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed validation/parse error for a workload document.
///
/// The proptest fuzzers assert that malformed documents always surface as
/// one of these — never as a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not syntactically valid TOML/JSON.
    Parse {
        /// 1-based line of the offending input (0 for JSON documents).
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The document parsed but does not fit the schema.
    Schema {
        /// What went wrong.
        msg: String,
    },
    /// A section that must carry entries is empty.
    EmptySection {
        /// Section name.
        section: String,
    },
    /// `[traffic]` must set exactly one of `preset` / `[[traffic.group]]`.
    MissingTraffic,
    /// `preset` names no known canned workload.
    UnknownPreset {
        /// The unknown name.
        preset: String,
    },
    /// A group's `class` is not a known traffic class label.
    UnknownClass {
        /// The unknown label.
        class: String,
    },
    /// An arbiter name is not recognized.
    UnknownArbiter {
        /// The unknown name.
        arbiter: String,
    },
    /// A group rate is zero, negative, or non-finite.
    NegativeRate {
        /// Offending group name.
        group: String,
    },
    /// A group weight is zero, negative, or non-finite.
    NonPositiveWeight {
        /// Offending group name.
        group: String,
    },
    /// A single connection's rate exceeds the link bandwidth.
    RateOverLink {
        /// Offending group name.
        group: String,
    },
    /// The declared class totals oversubscribe the link: peak swept load
    /// (plus churn arrivals and best-effort background) exceeds capacity.
    CapacityExceeded {
        /// Peak offered fraction the document declares.
        declared: f64,
    },
    /// The sweep declares no loads (or both an explicit list and an
    /// `initial`/`max`/`step` generator).
    NoLoads,
    /// A swept load is outside `(0, 1]`.
    LoadOutOfRange {
        /// The offending load.
        load: f64,
    },
    /// `seeds` is zero.
    NoSeeds,
    /// The sweep declares no arbiters.
    NoArbiters,
    /// Ramp steps overlap: `at_cycle` is not strictly increasing.
    OverlappingRampWindows {
        /// Previous breakpoint cycle.
        prev_cycle: u64,
        /// Offending breakpoint cycle.
        at_cycle: u64,
    },
    /// Ramp fractions decrease across steps.
    RampFractionOutOfOrder {
        /// Offending step index.
        step: usize,
    },
    /// A ramp fraction is outside `(0, 1]`.
    RampFractionOutOfRange {
        /// The offending fraction.
        fraction: f64,
    },
    /// The last ramp step must activate the full population (1.0).
    RampMustEndFull {
        /// The final fraction declared.
        last: f64,
    },
    /// A ramp or churn schedule requires explicit `[[traffic.group]]`s.
    ScheduleNeedsGroups,
    /// The churn window is empty or inverted.
    ChurnWindowInverted {
        /// Window start.
        start: u64,
        /// Window end.
        end: u64,
    },
    /// A churn fraction is outside `[0, 1]`.
    ChurnFractionOutOfRange {
        /// The offending fraction.
        fraction: f64,
    },
    /// The run length is zero cycles.
    ZeroRun,
    /// A claim anchors at a load the sweep never visits.
    ClaimLoadNotSwept {
        /// Claim id.
        id: String,
        /// The unanchored load.
        at_load: f64,
    },
    /// A claim is missing a field its kind requires.
    ClaimMissingField {
        /// Claim id.
        id: String,
        /// The missing field.
        field: String,
    },
    /// A claim kind is not recognized.
    UnknownClaimKind {
        /// Claim id.
        id: String,
        /// The unknown kind.
        kind: String,
    },
    /// The fabric topology is not recognized or misses its dimensions.
    BadFabric {
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SpecError::Schema { msg } => write!(f, "schema error: {msg}"),
            SpecError::EmptySection { section } => write!(f, "section `{section}` is empty"),
            SpecError::MissingTraffic => {
                write!(f, "[traffic] needs exactly one of `preset` / `group`")
            }
            SpecError::UnknownPreset { preset } => write!(f, "unknown preset `{preset}`"),
            SpecError::UnknownClass { class } => write!(f, "unknown traffic class `{class}`"),
            SpecError::UnknownArbiter { arbiter } => write!(f, "unknown arbiter `{arbiter}`"),
            SpecError::NegativeRate { group } => {
                write!(f, "group `{group}` has a non-positive rate")
            }
            SpecError::NonPositiveWeight { group } => {
                write!(f, "group `{group}` has a non-positive weight")
            }
            SpecError::RateOverLink { group } => {
                write!(f, "group `{group}` rate exceeds the link bandwidth")
            }
            SpecError::CapacityExceeded { declared } => {
                write!(f, "declared load {declared:.3} exceeds link capacity")
            }
            SpecError::NoLoads => write!(
                f,
                "[sweep] needs exactly one of `loads` / `initial`+`max`+`step`"
            ),
            SpecError::LoadOutOfRange { load } => write!(f, "load {load} outside (0, 1]"),
            SpecError::NoSeeds => write!(f, "`seeds` must be at least 1"),
            SpecError::NoArbiters => write!(f, "`arbiters` must name at least one arbiter"),
            SpecError::OverlappingRampWindows {
                prev_cycle,
                at_cycle,
            } => write!(
                f,
                "ramp steps overlap: cycle {at_cycle} does not follow {prev_cycle}"
            ),
            SpecError::RampFractionOutOfOrder { step } => {
                write!(f, "ramp fraction decreases at step {step}")
            }
            SpecError::RampFractionOutOfRange { fraction } => {
                write!(f, "ramp fraction {fraction} outside (0, 1]")
            }
            SpecError::RampMustEndFull { last } => {
                write!(f, "last ramp step must reach 1.0, got {last}")
            }
            SpecError::ScheduleNeedsGroups => {
                write!(f, "ramp/churn schedules require [[traffic.group]]s")
            }
            SpecError::ChurnWindowInverted { start, end } => {
                write!(f, "churn window [{start}, {end}) is empty or inverted")
            }
            SpecError::ChurnFractionOutOfRange { fraction } => {
                write!(f, "churn fraction {fraction} outside [0, 1]")
            }
            SpecError::ZeroRun => write!(f, "run length must be positive"),
            SpecError::ClaimLoadNotSwept { id, at_load } => {
                write!(f, "claim `{id}` anchors at unswept load {at_load}")
            }
            SpecError::ClaimMissingField { id, field } => {
                write!(f, "claim `{id}` is missing field `{field}`")
            }
            SpecError::UnknownClaimKind { id, kind } => {
                write!(f, "claim `{id}` has unknown kind `{kind}`")
            }
            SpecError::BadFabric { msg } => write!(f, "bad fabric: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// TOML subset: parse + emit
// ---------------------------------------------------------------------------

/// Parse a TOML document (the subset this language uses: bare-key tables,
/// dotted table headers, arrays of tables, strings, booleans, integers,
/// floats, possibly-multiline inline arrays, `#` comments) into the
/// vendored serde [`Value`] data model.
pub fn toml_to_value(text: &str) -> Result<Value, SpecError> {
    let mut root = Value::Object(Vec::new());
    // Path of the table the next `key = value` lands in.
    let mut current: Vec<String> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let line = line.trim();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let path_str = rest.strip_suffix("]]").ok_or_else(|| SpecError::Parse {
                line: lineno,
                msg: "unterminated [[table]] header".into(),
            })?;
            current = parse_header_path(path_str, lineno)?;
            let slot = descend(&mut root, &current[..current.len() - 1], lineno)?;
            let fields = as_object_mut(slot, lineno)?;
            let key = current.last().unwrap().clone();
            match fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, Value::Array(items))) => items.push(Value::Object(Vec::new())),
                Some(_) => {
                    return Err(SpecError::Parse {
                        line: lineno,
                        msg: format!("`{key}` redefined as an array of tables"),
                    })
                }
                None => fields.push((key, Value::Array(vec![Value::Object(Vec::new())]))),
            }
        } else if let Some(rest) = line.strip_prefix('[') {
            let path_str = rest.strip_suffix(']').ok_or_else(|| SpecError::Parse {
                line: lineno,
                msg: "unterminated [table] header".into(),
            })?;
            current = parse_header_path(path_str, lineno)?;
            // Materialize the table so empty tables round-trip.
            descend(&mut root, &current, lineno)?;
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            if !is_bare_key(key) {
                return Err(SpecError::Parse {
                    line: lineno,
                    msg: format!("`{key}` is not a bare key"),
                });
            }
            let mut value_text = line[eq + 1..].trim().to_string();
            // Join continuation lines until brackets balance (multiline
            // inline arrays).
            while bracket_depth(&value_text).ok_or_else(|| SpecError::Parse {
                line: lineno,
                msg: "unterminated string".into(),
            })? > 0
            {
                if i >= lines.len() {
                    return Err(SpecError::Parse {
                        line: lineno,
                        msg: "unterminated array".into(),
                    });
                }
                value_text.push(' ');
                value_text.push_str(strip_comment(lines[i]).trim());
                i += 1;
            }
            let value = parse_scalar(&value_text, lineno)?;
            let slot = descend(&mut root, &current, lineno)?;
            let fields = as_object_mut(slot, lineno)?;
            if fields.iter().any(|(k, _)| k == key) {
                return Err(SpecError::Parse {
                    line: lineno,
                    msg: format!("duplicate key `{key}`"),
                });
            }
            fields.push((key.to_string(), value));
        } else {
            return Err(SpecError::Parse {
                line: lineno,
                msg: format!("expected `key = value` or a table header, got `{line}`"),
            });
        }
    }
    Ok(root)
}

/// Drop a `#` comment, respecting `"` string delimiters.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, ch) in line.char_indices() {
        match ch {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_header_path(path: &str, line: usize) -> Result<Vec<String>, SpecError> {
    let parts: Vec<String> = path
        .trim()
        .split('.')
        .map(|p| p.trim().to_string())
        .collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return Err(SpecError::Parse {
            line,
            msg: format!("`{path}` is not a dotted bare-key path"),
        });
    }
    Ok(parts)
}

/// Net bracket depth of `text` outside strings; `None` when a string is
/// left open.
fn bracket_depth(text: &str) -> Option<i32> {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for ch in text.chars() {
        match ch {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    if in_str {
        None
    } else {
        Some(depth)
    }
}

/// Walk (and create) nested tables along `path`; inside an array of
/// tables, the path step lands on the most recent element.
fn descend<'a>(
    root: &'a mut Value,
    path: &[String],
    line: usize,
) -> Result<&'a mut Value, SpecError> {
    let mut node = root;
    for key in path {
        let fields = as_object_mut(node, line)?;
        let idx = match fields.iter().position(|(k, _)| k == key) {
            Some(i) => i,
            None => {
                fields.push((key.clone(), Value::Object(Vec::new())));
                fields.len() - 1
            }
        };
        node = &mut fields[idx].1;
        if let Value::Array(items) = node {
            node = items.last_mut().ok_or_else(|| SpecError::Parse {
                line,
                msg: format!("`{key}` is an empty array of tables"),
            })?;
        }
    }
    Ok(node)
}

fn as_object_mut(v: &mut Value, line: usize) -> Result<&mut Vec<(String, Value)>, SpecError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(SpecError::Parse {
            line,
            msg: format!("expected a table, found {other:?}"),
        }),
    }
}

/// Parse one TOML scalar or inline array.
fn parse_scalar(text: &str, line: usize) -> Result<Value, SpecError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(SpecError::Parse {
            line,
            msg: "empty value".into(),
        });
    }
    if let Some(rest) = text.strip_prefix('"') {
        let (s, used) = parse_basic_string(rest, line)?;
        if !rest[used..].trim().is_empty() {
            return Err(SpecError::Parse {
                line,
                msg: "trailing characters after string".into(),
            });
        }
        return Ok(Value::Str(s));
    }
    if text.starts_with('[') {
        if !text.ends_with(']') {
            return Err(SpecError::Parse {
                line,
                msg: "unterminated array".into(),
            });
        }
        let inner = &text[1..text.len() - 1];
        let mut items = Vec::new();
        for piece in split_top_level(inner, line)? {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            items.push(parse_scalar(piece, line)?);
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits = text.replace('_', "");
    if let Some(hex) = digits.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16)
            .map(Value::U64)
            .map_err(|_| SpecError::Parse {
                line,
                msg: format!("`{text}` is not a hex integer"),
            });
    }
    let is_float = digits.contains('.') || digits.contains('e') || digits.contains('E');
    if !is_float {
        if let Ok(n) = digits.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        if let Ok(n) = digits.parse::<i64>() {
            return Ok(Value::I64(n));
        }
    }
    if let Ok(x) = digits.parse::<f64>() {
        if x.is_finite() {
            return Ok(Value::F64(x));
        }
    }
    Err(SpecError::Parse {
        line,
        msg: format!("`{text}` is not a TOML value this subset accepts"),
    })
}

/// Parse the contents of a basic string (after the opening quote);
/// returns the unescaped string and the byte length consumed **including**
/// the closing quote.
fn parse_basic_string(rest: &str, line: usize) -> Result<(String, usize), SpecError> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((idx, ch)) = chars.next() {
        match ch {
            '"' => return Ok((out, idx + 1)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => {
                    return Err(SpecError::Parse {
                        line,
                        msg: format!("unsupported escape {other:?}"),
                    })
                }
            },
            c => out.push(c),
        }
    }
    Err(SpecError::Parse {
        line,
        msg: "unterminated string".into(),
    })
}

/// Split an inline-array body at top-level commas.
fn split_top_level(text: &str, line: usize) -> Result<Vec<&str>, SpecError> {
    let mut pieces = Vec::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0;
    for (idx, ch) in text.char_indices() {
        match ch {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                pieces.push(&text[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    if in_str {
        return Err(SpecError::Parse {
            line,
            msg: "unterminated string in array".into(),
        });
    }
    pieces.push(&text[start..]);
    Ok(pieces)
}

/// Render a [`Value`] object as the TOML subset [`toml_to_value`] reads:
/// scalar keys first, then `[path]` sub-tables, then `[[path]]` arrays of
/// tables.  `Null` fields are skipped (absent optionals).
pub fn value_to_toml(v: &Value) -> String {
    let mut out = String::new();
    if let Value::Object(fields) = v {
        emit_table(&mut out, "", fields);
    }
    out
}

fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Array(items) if !items.is_empty()
        && items.iter().all(|e| matches!(e, Value::Object(_))))
}

fn emit_table(out: &mut String, path: &str, fields: &[(String, Value)]) {
    for (k, v) in fields {
        match v {
            Value::Null | Value::Object(_) => {}
            _ if is_table_array(v) => {}
            _ => {
                out.push_str(k);
                out.push_str(" = ");
                emit_inline(out, v);
                out.push('\n');
            }
        }
    }
    for (k, v) in fields {
        if let Value::Object(sub) = v {
            let sub_path = join_path(path, k);
            out.push_str(&format!("\n[{sub_path}]\n"));
            emit_table(out, &sub_path, sub);
        }
    }
    for (k, v) in fields {
        if is_table_array(v) {
            if let Value::Array(items) = v {
                let sub_path = join_path(path, k);
                for item in items {
                    if let Value::Object(sub) = item {
                        out.push_str(&format!("\n[[{sub_path}]]\n"));
                        emit_table(out, &sub_path, sub);
                    }
                }
            }
        }
    }
}

fn join_path(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn emit_inline(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("[]"), // unreachable for skipped keys
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&format_toml_float(*x)),
        Value::Str(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_inline(out, item);
            }
            out.push(']');
        }
        Value::Object(_) => out.push_str("{}"), // inline tables are never emitted
    }
}

/// Shortest round-trip float rendering with a guaranteed float marker so
/// the parser reads it back as `F64`, not an integer.
fn format_toml_float(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Parse a workload document: JSON when the first non-space byte is `{`,
/// the TOML subset otherwise.
pub fn parse_document(text: &str) -> Result<Value, SpecError> {
    if text.trim_start().starts_with('{') {
        serde_json::parse_value(text).map_err(|e| SpecError::Parse {
            line: 0,
            msg: e.to_string(),
        })
    } else {
        toml_to_value(text)
    }
}

// ---------------------------------------------------------------------------
// The typed document
// ---------------------------------------------------------------------------

/// `[meta]` — pack identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaSpec {
    /// Pack name (also the results-file stem; `[a-zA-Z0-9_-]+`).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
}

/// One `[[traffic.group]]` — a CBR connection population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Group name (reporting only).
    pub name: String,
    /// Traffic-class label (`cbr-low`, `cbr-med`, `cbr-high`, `vbr`,
    /// `best-effort`).
    pub class: String,
    /// Per-connection rate in kbit/s.
    pub rate_kbps: f64,
    /// Relative admission pick weight.
    pub weight: f64,
}

/// `[traffic]` — either a canned preset or explicit groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Canned preset name (`paper-cbr`), exclusive with `group`.
    pub preset: Option<String>,
    /// Explicit connection groups, exclusive with `preset`.
    pub group: Option<Vec<GroupSpec>>,
}

/// `[best_effort]` — unreserved background traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BestEffortSec {
    /// Offered best-effort load per input link.
    pub load: f64,
    /// Mean message length in flits.
    pub mean_flits: f64,
}

/// `[run.full]` — full-fidelity overrides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunFull {
    /// Warm-up flit cycles.
    pub warmup: u64,
    /// Measured flit cycles.
    pub cycles: u64,
}

/// `[run]` — run lengths (quick fidelity; `[run.full]` overrides).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSec {
    /// Warm-up flit cycles.
    pub warmup: u64,
    /// Measured flit cycles.
    pub cycles: u64,
    /// Full-fidelity overrides.
    pub full: Option<RunFull>,
}

/// `[sweep.full]` — full-fidelity overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepFull {
    /// Full-fidelity load grid.
    pub loads: Option<Vec<f64>>,
    /// Full-fidelity ensemble size.
    pub seeds: Option<u64>,
}

/// `[sweep]` — the offered-load grid, arbiters, and seed ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSec {
    /// Explicit load grid, exclusive with `initial`/`max`/`step`.
    pub loads: Option<Vec<f64>>,
    /// Generated grid start (inclusive).
    pub initial: Option<f64>,
    /// Generated grid end (inclusive, within rounding).
    pub max: Option<f64>,
    /// Generated grid increment.
    pub step: Option<f64>,
    /// Arbiter names (`coa`, `wfa`, `islip`, `islip:4`, `pim`, `greedy`,
    /// `random`, `mwm`, `mwm-approx`, `frame-fair`, `cq`, ...).
    pub arbiters: Vec<String>,
    /// Ensemble size (deterministic seeds derived from `seed`).
    pub seeds: u64,
    /// Base seed (default: the paper's `0xB1ACA`).
    pub seed: Option<u64>,
    /// Full-fidelity overrides.
    pub full: Option<SweepFull>,
}

/// One `[[ramp.step]]` breakpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampStepSpec {
    /// Breakpoint cycle.
    pub at_cycle: u64,
    /// Cumulative fraction of connections active from here on.
    pub fraction: f64,
}

/// `[ramp]` — staged connection activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RampSec {
    /// Breakpoints, strictly increasing in cycle, ending at 1.0.
    pub step: Vec<RampStepSpec>,
}

/// `[churn]` — mid-run departures and arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSec {
    /// Window start cycle.
    pub start: u64,
    /// Window end cycle (exclusive).
    pub end: u64,
    /// Fraction of base connections departing inside the window.
    pub departures: f64,
    /// Extra connections arriving, as a fraction of the base population.
    pub arrivals: f64,
}

/// `[fault]` — a scaled default fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSec {
    /// Fault window start cycle.
    pub window_start: u64,
    /// Fault window length in cycles.
    pub window_len: u64,
    /// Rate multiplier over the default plan (0 = no faults).
    pub factor: f64,
}

/// `[fabric]` — optional multi-router topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSec {
    /// `line`, `ring`, `mesh`, or `torus`.
    pub topology: String,
    /// Grid width (mesh/torus).
    pub x: Option<u64>,
    /// Grid height (mesh/torus).
    pub y: Option<u64>,
    /// Router count (line).
    pub stages: Option<u64>,
    /// Router count (ring).
    pub nodes: Option<u64>,
    /// Host ports per router.
    pub host_ports: Option<u64>,
    /// Worker threads.
    pub workers: Option<u64>,
    /// Inter-node link latency in flit cycles.
    pub link_latency: Option<u64>,
}

/// One `[[claim]]` — a typed, regression-gated conformance claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimSpec {
    /// Claim identifier (`pack.short-slug`).
    pub id: String,
    /// Human description.
    pub description: String,
    /// Check kind: `delay-below`, `delay-ratio-at-least`,
    /// `delay-within-factor`, `throughput-floor`, `fairness-above`,
    /// `reject-rate-below`, `utilization-above`.
    pub kind: String,
    /// Traffic class the check reads (kinds that need one).
    pub class: Option<String>,
    /// Class expected to see *more* delay (`delay-ratio-at-least`).
    pub slower: Option<String>,
    /// Class expected to see *less* delay (`delay-ratio-at-least`).
    pub faster: Option<String>,
    /// Arbiter under test (default: the sweep's first arbiter).
    pub arbiter: Option<String>,
    /// Comparison arbiter (`delay-within-factor`).
    pub versus: Option<String>,
    /// Load-grid point the claim anchors at.
    pub at_load: f64,
    /// Threshold the ensemble median is gated against.
    pub threshold: f64,
}

/// A parsed workload document — the root of the language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// `[meta]`.
    pub meta: MetaSpec,
    /// `[traffic]`.
    pub traffic: TrafficSpec,
    /// `[best_effort]`.
    pub best_effort: Option<BestEffortSec>,
    /// `[run]`.
    pub run: RunSec,
    /// `[sweep]`.
    pub sweep: SweepSec,
    /// `[ramp]`.
    pub ramp: Option<RampSec>,
    /// `[churn]`.
    pub churn: Option<ChurnSec>,
    /// `[fault]`.
    pub fault: Option<FaultSec>,
    /// `[fabric]`.
    pub fabric: Option<FabricSec>,
    /// `[[claim]]`s.
    pub claim: Option<Vec<ClaimSpec>>,
}

/// Parse a traffic-class label.
pub fn parse_class(label: &str) -> Result<TrafficClass, SpecError> {
    match label {
        "cbr-low" => Ok(TrafficClass::CbrLow),
        "cbr-med" | "cbr-medium" => Ok(TrafficClass::CbrMedium),
        "cbr-high" => Ok(TrafficClass::CbrHigh),
        "vbr" => Ok(TrafficClass::Vbr),
        "best-effort" => Ok(TrafficClass::BestEffort),
        other => Err(SpecError::UnknownClass {
            class: other.to_string(),
        }),
    }
}

/// Parse an arbiter name (optionally `islip:N` / `pim:N` for iteration
/// counts).
pub fn parse_arbiter(name: &str) -> Result<ArbiterKind, SpecError> {
    let (base, param) = match name.split_once(':') {
        Some((b, p)) => (b, Some(p)),
        None => (name, None),
    };
    let iterations = |default: usize| -> Result<usize, SpecError> {
        match param {
            None => Ok(default),
            Some(p) => p.parse().map_err(|_| SpecError::UnknownArbiter {
                arbiter: name.to_string(),
            }),
        }
    };
    let kind = match base {
        "coa" => ArbiterKind::Coa,
        "wfa" => ArbiterKind::Wfa,
        "wfa-fixed" => ArbiterKind::WfaFixed,
        "wfa-first-level" => ArbiterKind::WfaFirstLevel,
        "islip" => ArbiterKind::Islip {
            iterations: iterations(2)?,
        },
        "pim" => ArbiterKind::Pim {
            iterations: iterations(2)?,
        },
        "greedy" => ArbiterKind::GreedyPriority,
        "random" => ArbiterKind::Random,
        "mwm" => ArbiterKind::MwmExact,
        "mwm-approx" => ArbiterKind::MwmApprox,
        "frame-fair" => ArbiterKind::FrameFair {
            frame: mmr_arbiter::frame::DEFAULT_FRAME,
        },
        "cq" => ArbiterKind::CrosspointQueued {
            cap: mmr_arbiter::cq::DEFAULT_CAP,
        },
        _ => {
            return Err(SpecError::UnknownArbiter {
                arbiter: name.to_string(),
            })
        }
    };
    if param.is_some() && !matches!(kind, ArbiterKind::Islip { .. } | ArbiterKind::Pim { .. }) {
        return Err(SpecError::UnknownArbiter {
            arbiter: name.to_string(),
        });
    }
    Ok(kind)
}

impl WorkloadSpec {
    /// Parse a TOML or JSON workload document.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let value = parse_document(text)?;
        Self::from_value(&value).map_err(|e| SpecError::Schema { msg: e.to_string() })
    }

    /// Render this spec as a TOML document [`Self::parse`] reads back
    /// losslessly.
    pub fn to_toml(&self) -> String {
        value_to_toml(&self.to_value())
    }

    /// The load grid for a fidelity (explicit list, full override, or
    /// `initial`/`max`/`step` generation).  Assumes a validated spec.
    pub fn loads(&self, fidelity: Fidelity) -> Vec<f64> {
        if fidelity == Fidelity::Full {
            if let Some(full) = &self.sweep.full {
                if let Some(loads) = &full.loads {
                    return loads.clone();
                }
            }
        }
        if let Some(loads) = &self.sweep.loads {
            return loads.clone();
        }
        let (initial, max, step) = (
            self.sweep.initial.unwrap_or(0.0),
            self.sweep.max.unwrap_or(0.0),
            self.sweep.step.unwrap_or(1.0),
        );
        let n = if step > 0.0 && max >= initial {
            ((max - initial) / step + LOAD_EPS).floor() as usize + 1
        } else {
            0
        };
        (0..n).map(|i| initial + i as f64 * step).collect()
    }

    /// Number of ensemble seeds for a fidelity.
    pub fn seed_count(&self, fidelity: Fidelity) -> usize {
        if fidelity == Fidelity::Full {
            if let Some(full) = &self.sweep.full {
                if let Some(s) = full.seeds {
                    return s as usize;
                }
            }
        }
        self.sweep.seeds as usize
    }

    /// Validate the document, returning the first typed error found.
    pub fn validate(&self) -> Result<(), SpecError> {
        let link_bps = mmr_sim::time::TimeBase::default().link_bits_per_sec;
        if self.meta.name.is_empty() || !is_bare_key(&self.meta.name) {
            return Err(SpecError::Schema {
                msg: format!("meta.name `{}` must be [a-zA-Z0-9_-]+", self.meta.name),
            });
        }
        // Traffic: preset XOR groups.
        match (&self.traffic.preset, &self.traffic.group) {
            (Some(_), Some(_)) | (None, None) => return Err(SpecError::MissingTraffic),
            (Some(preset), None) => {
                if preset != "paper-cbr" {
                    return Err(SpecError::UnknownPreset {
                        preset: preset.clone(),
                    });
                }
            }
            (None, Some(groups)) => {
                if groups.is_empty() {
                    return Err(SpecError::EmptySection {
                        section: "traffic.group".into(),
                    });
                }
                for g in groups {
                    parse_class(&g.class)?;
                    if !g.rate_kbps.is_finite() || g.rate_kbps <= 0.0 {
                        return Err(SpecError::NegativeRate {
                            group: g.name.clone(),
                        });
                    }
                    if !g.weight.is_finite() || g.weight <= 0.0 {
                        return Err(SpecError::NonPositiveWeight {
                            group: g.name.clone(),
                        });
                    }
                    if g.rate_kbps * 1_000.0 > link_bps {
                        return Err(SpecError::RateOverLink {
                            group: g.name.clone(),
                        });
                    }
                }
            }
        }
        if let Some(be) = &self.best_effort {
            if !be.load.is_finite() || !(0.0..1.0).contains(&be.load) {
                return Err(SpecError::Schema {
                    msg: format!("best_effort.load {} outside [0, 1)", be.load),
                });
            }
            if !be.mean_flits.is_finite() || be.mean_flits < 1.0 {
                return Err(SpecError::Schema {
                    msg: format!("best_effort.mean_flits {} below 1", be.mean_flits),
                });
            }
        }
        if self.run.cycles == 0 || self.run.full.map(|f| f.cycles == 0).unwrap_or(false) {
            return Err(SpecError::ZeroRun);
        }
        // Sweep: explicit loads XOR a generator.
        let has_list = self.sweep.loads.is_some();
        let has_gen =
            self.sweep.initial.is_some() || self.sweep.max.is_some() || self.sweep.step.is_some();
        let gen_complete =
            self.sweep.initial.is_some() && self.sweep.max.is_some() && self.sweep.step.is_some();
        if has_list == has_gen || (has_gen && !gen_complete) {
            return Err(SpecError::NoLoads);
        }
        if let (Some(step), true) = (self.sweep.step, has_gen) {
            if !step.is_finite() || step <= 0.0 {
                return Err(SpecError::Schema {
                    msg: format!("sweep.step {step} must be positive"),
                });
            }
        }
        for fidelity in [Fidelity::Quick, Fidelity::Full] {
            let loads = self.loads(fidelity);
            if loads.is_empty() {
                return Err(SpecError::NoLoads);
            }
            for &load in &loads {
                if !load.is_finite() || load <= 0.0 || load > 1.0 {
                    return Err(SpecError::LoadOutOfRange { load });
                }
            }
        }
        if self.sweep.seeds == 0 || self.sweep.full.as_ref().map(|f| f.seeds) == Some(Some(0)) {
            return Err(SpecError::NoSeeds);
        }
        if self.sweep.arbiters.is_empty() {
            return Err(SpecError::NoArbiters);
        }
        for name in &self.sweep.arbiters {
            parse_arbiter(name)?;
        }
        // Capacity: peak swept load, plus churn arrivals, plus best-effort
        // background must fit the link.
        let peak_load = self
            .loads(Fidelity::Quick)
            .iter()
            .chain(self.loads(Fidelity::Full).iter())
            .fold(0.0f64, |a, &b| a.max(b));
        let arrivals = self.churn.map(|c| c.arrivals).unwrap_or(0.0).max(0.0);
        let be = self.best_effort.as_ref().map(|b| b.load).unwrap_or(0.0);
        let declared = peak_load * (1.0 + arrivals) + be;
        if declared > 1.0 + LOAD_EPS {
            return Err(SpecError::CapacityExceeded { declared });
        }
        if (self.ramp.is_some() || self.churn.is_some()) && self.traffic.group.is_none() {
            return Err(SpecError::ScheduleNeedsGroups);
        }
        if let Some(ramp) = &self.ramp {
            if ramp.step.is_empty() {
                return Err(SpecError::EmptySection {
                    section: "ramp.step".into(),
                });
            }
            let mut prev_cycle: Option<u64> = None;
            let mut prev_fraction = 0.0f64;
            for (i, s) in ramp.step.iter().enumerate() {
                if let Some(prev) = prev_cycle {
                    if s.at_cycle <= prev {
                        return Err(SpecError::OverlappingRampWindows {
                            prev_cycle: prev,
                            at_cycle: s.at_cycle,
                        });
                    }
                }
                if !s.fraction.is_finite() || s.fraction <= 0.0 || s.fraction > 1.0 {
                    return Err(SpecError::RampFractionOutOfRange {
                        fraction: s.fraction,
                    });
                }
                if s.fraction < prev_fraction {
                    return Err(SpecError::RampFractionOutOfOrder { step: i });
                }
                prev_cycle = Some(s.at_cycle);
                prev_fraction = s.fraction;
            }
            if (prev_fraction - 1.0).abs() > LOAD_EPS {
                return Err(SpecError::RampMustEndFull {
                    last: prev_fraction,
                });
            }
        }
        if let Some(churn) = &self.churn {
            if churn.end <= churn.start {
                return Err(SpecError::ChurnWindowInverted {
                    start: churn.start,
                    end: churn.end,
                });
            }
            for fraction in [churn.departures, churn.arrivals] {
                if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                    return Err(SpecError::ChurnFractionOutOfRange { fraction });
                }
            }
        }
        if let Some(fault) = &self.fault {
            if !fault.factor.is_finite() || fault.factor < 0.0 {
                return Err(SpecError::Schema {
                    msg: format!("fault.factor {} must be non-negative", fault.factor),
                });
            }
            if fault.window_len == 0 {
                return Err(SpecError::Schema {
                    msg: "fault.window_len must be positive".into(),
                });
            }
        }
        if let Some(fabric) = &self.fabric {
            self.fabric_spec(fabric)?;
            if self.claim.is_some() {
                return Err(SpecError::Schema {
                    msg: "fabric packs do not support [[claim]]s yet".into(),
                });
            }
        }
        if let Some(claims) = &self.claim {
            if claims.is_empty() {
                return Err(SpecError::EmptySection {
                    section: "claim".into(),
                });
            }
            for c in claims {
                self.validate_claim(c)?;
            }
        }
        Ok(())
    }

    fn validate_claim(&self, c: &ClaimSpec) -> Result<(), SpecError> {
        let need = |field: &str, present: bool| -> Result<(), SpecError> {
            if present {
                Ok(())
            } else {
                Err(SpecError::ClaimMissingField {
                    id: c.id.clone(),
                    field: field.to_string(),
                })
            }
        };
        if c.id.is_empty() {
            return Err(SpecError::Schema {
                msg: "claim with empty id".into(),
            });
        }
        match c.kind.as_str() {
            "delay-below" => need("class", c.class.is_some())?,
            "delay-ratio-at-least" => {
                need("slower", c.slower.is_some())?;
                need("faster", c.faster.is_some())?;
            }
            "delay-within-factor" => {
                need("class", c.class.is_some())?;
                need("versus", c.versus.is_some())?;
            }
            "throughput-floor" | "fairness-above" | "reject-rate-below" | "utilization-above" => {}
            other => {
                return Err(SpecError::UnknownClaimKind {
                    id: c.id.clone(),
                    kind: other.to_string(),
                })
            }
        }
        for label in [&c.class, &c.slower, &c.faster].into_iter().flatten() {
            parse_class(label)?;
        }
        for name in [&c.arbiter, &c.versus].into_iter().flatten() {
            parse_arbiter(name)?;
            if !self.sweep.arbiters.contains(name) {
                return Err(SpecError::Schema {
                    msg: format!("claim `{}` reads arbiter `{name}` the sweep omits", c.id),
                });
            }
        }
        if !c.threshold.is_finite() {
            return Err(SpecError::Schema {
                msg: format!("claim `{}` threshold must be finite", c.id),
            });
        }
        for fidelity in [Fidelity::Quick, Fidelity::Full] {
            let loads = self.loads(fidelity);
            if !loads.iter().any(|&l| (l - c.at_load).abs() < LOAD_EPS) {
                return Err(SpecError::ClaimLoadNotSwept {
                    id: c.id.clone(),
                    at_load: c.at_load,
                });
            }
        }
        Ok(())
    }

    fn fabric_spec(&self, sec: &FabricSec) -> Result<FabricSpec, SpecError> {
        let dim = |v: Option<u64>, name: &str| -> Result<usize, SpecError> {
            let v = v.ok_or_else(|| SpecError::BadFabric {
                msg: format!("`{}` topology needs `{name}`", sec.topology),
            })?;
            if v < 1 {
                return Err(SpecError::BadFabric {
                    msg: format!("`{name}` must be at least 1"),
                });
            }
            Ok(v as usize)
        };
        let topology = match sec.topology.as_str() {
            "line" => Topology::Line {
                stages: dim(sec.stages, "stages")?,
            },
            "ring" => Topology::Ring {
                nodes: dim(sec.nodes, "nodes")?,
            },
            "mesh" => Topology::Mesh {
                x: dim(sec.x, "x")?,
                y: dim(sec.y, "y")?,
            },
            "torus" => Topology::Torus {
                x: dim(sec.x, "x")?,
                y: dim(sec.y, "y")?,
            },
            other => {
                return Err(SpecError::BadFabric {
                    msg: format!("unknown topology `{other}`"),
                })
            }
        };
        let mut spec = FabricSpec::new(topology);
        if let Some(hp) = sec.host_ports {
            spec.host_ports = hp.max(1) as usize;
        }
        if let Some(w) = sec.workers {
            spec.workers = w.max(1) as usize;
        }
        if let Some(l) = sec.link_latency {
            spec.link_latency = l.max(1);
        }
        Ok(spec)
    }

    /// Lower the document onto a [`SweepSpec`] plus typed pack claims.
    /// Validates first, so a successful compile implies a valid document.
    pub fn compile(&self, fidelity: Fidelity) -> Result<CompiledPack, SpecError> {
        self.validate()?;
        let workload = match (&self.traffic.preset, &self.traffic.group) {
            (Some(_), _) => ConfigWorkload::cbr(0.5),
            (None, Some(groups)) => ConfigWorkload::Mix {
                target_load: 0.5,
                groups: groups
                    .iter()
                    .map(|g| {
                        Ok(MixGroup {
                            class: parse_class(&g.class)?,
                            rate_bps: g.rate_kbps * 1_000.0,
                            weight: g.weight,
                        })
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?,
                ramp: self.ramp.as_ref().map(|r| RampScheduleConfig {
                    steps: r
                        .step
                        .iter()
                        .map(|s| RampStepConfig {
                            at_cycle: s.at_cycle,
                            fraction: s.fraction,
                        })
                        .collect(),
                }),
                churn: self.churn.map(|c| ChurnConfig {
                    start: c.start,
                    end: c.end,
                    departures: c.departures,
                    arrivals: c.arrivals,
                }),
            },
            (None, None) => unreachable!("validate() enforces traffic"),
        };
        let mut base = SimConfig {
            workload,
            ..SimConfig::default()
        };
        if let Some(be) = &self.best_effort {
            base.best_effort = Some(BestEffortSpec {
                per_link_load: be.load,
                mean_flits: be.mean_flits,
            });
        }
        let (warmup, cycles) = match (fidelity, self.run.full) {
            (Fidelity::Full, Some(full)) => (full.warmup, full.cycles),
            _ => (self.run.warmup, self.run.cycles),
        };
        base.warmup_cycles = warmup;
        base.run = RunLength::Cycles(cycles);
        if let Some(seed) = self.sweep.seed {
            base.seed = seed;
        }
        if let Some(fault) = &self.fault {
            base.fault = Some(FaultSpec {
                plan: FaultPlanConfig {
                    window_start: fault.window_start,
                    window_len: fault.window_len,
                    ..FaultPlanConfig::default()
                }
                .scaled(fault.factor),
                profile: Default::default(),
            });
        }
        if let Some(fabric) = &self.fabric {
            base.fabric = Some(self.fabric_spec(fabric)?);
        }
        let arbiters = self
            .sweep
            .arbiters
            .iter()
            .map(|n| parse_arbiter(n))
            .collect::<Result<Vec<_>, _>>()?;
        let seeds = ensemble_seeds(base.seed, self.seed_count(fidelity));
        let loads = self.loads(fidelity);
        let claims = self
            .claim
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .map(|c| self.compile_claim(c, &arbiters))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledPack {
            name: self.meta.name.clone(),
            description: self.meta.description.clone(),
            fabric: self.fabric.is_some(),
            sweep: SweepSpec {
                base,
                loads,
                arbiters,
                seeds,
            },
            claims,
        })
    }

    fn compile_claim(
        &self,
        c: &ClaimSpec,
        arbiters: &[ArbiterKind],
    ) -> Result<PackClaim, SpecError> {
        let arbiter = match &c.arbiter {
            Some(name) => parse_arbiter(name)?,
            None => arbiters[0],
        };
        let class = |label: &Option<String>| -> Result<TrafficClass, SpecError> {
            parse_class(label.as_deref().unwrap_or(""))
        };
        let check = match c.kind.as_str() {
            "delay-below" => PackCheck::DelayBelow {
                class: class(&c.class)?,
                arbiter,
                at_load: c.at_load,
                max_us: c.threshold,
            },
            "delay-ratio-at-least" => PackCheck::DelayRatioAtLeast {
                slower: class(&c.slower)?,
                faster: class(&c.faster)?,
                arbiter,
                at_load: c.at_load,
                min_ratio: c.threshold,
            },
            "delay-within-factor" => PackCheck::DelayWithinFactor {
                class: class(&c.class)?,
                arbiter,
                versus: parse_arbiter(c.versus.as_deref().unwrap_or(""))?,
                at_load: c.at_load,
                max_factor: c.threshold,
            },
            "throughput-floor" => PackCheck::ThroughputFloor {
                arbiter,
                at_load: c.at_load,
                min_ratio: c.threshold,
            },
            "fairness-above" => PackCheck::FairnessAbove {
                arbiter,
                at_load: c.at_load,
                min_jain: c.threshold,
            },
            "reject-rate-below" => PackCheck::RejectRateBelow {
                arbiter,
                at_load: c.at_load,
                max_rate: c.threshold,
            },
            "utilization-above" => PackCheck::UtilizationAbove {
                arbiter,
                at_load: c.at_load,
                min_utilization: c.threshold,
            },
            other => {
                return Err(SpecError::UnknownClaimKind {
                    id: c.id.clone(),
                    kind: other.to_string(),
                })
            }
        };
        Ok(PackClaim {
            id: c.id.clone(),
            description: c.description.clone(),
            check,
        })
    }
}

// ---------------------------------------------------------------------------
// Compiled packs and claim evaluation
// ---------------------------------------------------------------------------

/// A typed pack check, mirroring the conformance engine's `Check` kinds
/// but anchored at one sweep grid point.
#[derive(Debug, Clone, PartialEq)]
pub enum PackCheck {
    /// Class delay stays below a bound (µs).
    DelayBelow {
        /// Class whose delay is read.
        class: TrafficClass,
        /// Arbiter under test.
        arbiter: ArbiterKind,
        /// Grid load the claim anchors at.
        at_load: f64,
        /// Maximum allowed median delay (µs).
        max_us: f64,
    },
    /// One class's delay is at least `min_ratio` times another's.
    DelayRatioAtLeast {
        /// Class expected to see more delay.
        slower: TrafficClass,
        /// Class expected to see less delay.
        faster: TrafficClass,
        /// Arbiter under test.
        arbiter: ArbiterKind,
        /// Grid load.
        at_load: f64,
        /// Minimum delay ratio.
        min_ratio: f64,
    },
    /// A class's delay under one arbiter stays within a factor of the
    /// same class's delay under another.
    DelayWithinFactor {
        /// Class whose delay is read.
        class: TrafficClass,
        /// Arbiter under test (numerator).
        arbiter: ArbiterKind,
        /// Comparison arbiter (denominator).
        versus: ArbiterKind,
        /// Grid load.
        at_load: f64,
        /// Maximum allowed ratio.
        max_factor: f64,
    },
    /// Delivered/generated throughput stays above a floor.
    ThroughputFloor {
        /// Arbiter under test.
        arbiter: ArbiterKind,
        /// Grid load.
        at_load: f64,
        /// Minimum throughput ratio.
        min_ratio: f64,
    },
    /// Jain's fairness index over per-connection delivered/reserved
    /// ratios stays above a floor.
    FairnessAbove {
        /// Arbiter under test.
        arbiter: ArbiterKind,
        /// Grid load.
        at_load: f64,
        /// Minimum Jain's index.
        min_jain: f64,
    },
    /// CAC rejection rate stays below a ceiling.
    RejectRateBelow {
        /// Arbiter under test.
        arbiter: ArbiterKind,
        /// Grid load.
        at_load: f64,
        /// Maximum rejection fraction.
        max_rate: f64,
    },
    /// Crossbar utilization stays above a floor.
    UtilizationAbove {
        /// Arbiter under test.
        arbiter: ArbiterKind,
        /// Grid load.
        at_load: f64,
        /// Minimum utilization.
        min_utilization: f64,
    },
}

/// One compiled pack claim.
#[derive(Debug, Clone, PartialEq)]
pub struct PackClaim {
    /// Claim id.
    pub id: String,
    /// Description for reports.
    pub description: String,
    /// The typed check.
    pub check: PackCheck,
}

/// A compiled pack: the sweep to run plus the claims to gate it with.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPack {
    /// Pack name.
    pub name: String,
    /// Pack description.
    pub description: String,
    /// True when the pack targets a multi-router fabric (the runner
    /// routes it through `run_fabric_experiment`; claims are unsupported).
    pub fabric: bool,
    /// The sweep grid.
    pub sweep: SweepSpec,
    /// Typed claims.
    pub claims: Vec<PackClaim>,
}

/// Per-class delay entry of a [`PackCurvePoint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDelay {
    /// Class label.
    pub class: String,
    /// Seed-mean flit delay (µs).
    pub mean_delay_us: f64,
}

/// One reported sweep point of a pack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackCurvePoint {
    /// Arbiter label.
    pub arbiter: String,
    /// Target offered load.
    pub target_load: f64,
    /// Admission-achieved load (seed mean).
    pub achieved_load: f64,
    /// Seed-mean frame delay (µs).
    pub frame_delay_us: f64,
    /// Seed-mean delivered/generated throughput ratio.
    pub throughput: f64,
    /// Seed-mean crossbar utilization.
    pub utilization: f64,
    /// Seed-mean Jain's reservation-fairness index.
    pub fairness: f64,
    /// Seed-mean CAC rejection rate.
    pub reject_rate: f64,
    /// Per-class seed-mean delays.
    pub class_delay_us: Vec<ClassDelay>,
}

/// The evaluated report of one pack run (`results/workload_<name>.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackReport {
    /// Pack name.
    pub pack: String,
    /// Pack description.
    pub description: String,
    /// "quick" or "full".
    pub fidelity: String,
    /// Ensemble seeds.
    pub seeds: Vec<u64>,
    /// Swept loads.
    pub loads: Vec<f64>,
    /// Arbiter labels.
    pub arbiters: Vec<String>,
    /// Per-claim outcomes (ensemble-median gated).
    pub claims: Vec<ClaimOutcome>,
    /// The measured curves.
    pub curves: Vec<PackCurvePoint>,
}

impl PackReport {
    /// True when every claim passed.
    pub fn all_pass(&self) -> bool {
        self.claims.iter().all(|c| c.pass)
    }

    /// Claims that failed.
    pub fn failed(&self) -> Vec<&ClaimOutcome> {
        self.claims.iter().filter(|c| !c.pass).collect()
    }

    /// One line per claim, conformance-report style.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "pack {} [{}] — {} loads x {} arbiters x {} seeds\n",
            self.pack,
            self.fidelity,
            self.loads.len(),
            self.arbiters.len(),
            self.seeds.len(),
        );
        for c in &self.claims {
            let op = if c.higher_is_better { ">=" } else { "<=" };
            s.push_str(&format!(
                "{} {:<32} {:.4} {} {:.4} (margin {:+.4} {}, seeds {:.4}..{:.4})\n",
                if c.pass { "PASS" } else { "FAIL" },
                c.id,
                c.median,
                op,
                c.threshold,
                c.margin,
                c.unit,
                c.spread_min,
                c.spread_max,
            ));
        }
        s
    }
}

fn class_delay_of(r: &crate::experiment::ExperimentResult, class: TrafficClass) -> f64 {
    r.summary
        .metrics
        .class(class)
        .map(|c| c.mean_delay_us)
        .unwrap_or(0.0)
}

fn find_point(points: &[SweepPoint], arbiter: ArbiterKind, at_load: f64) -> &SweepPoint {
    points
        .iter()
        .find(|p| p.arbiter == arbiter && (p.target_load - at_load).abs() < LOAD_EPS)
        .expect("validated claim anchors at a swept (arbiter, load) cell")
}

impl CompiledPack {
    /// Evaluate the pack's claims over completed sweep points and
    /// assemble the report.  `points` must come from running
    /// [`Self::sweep`] (same grid, seeds innermost).
    pub fn evaluate(&self, points: &[SweepPoint], fidelity: Fidelity) -> PackReport {
        let claims = self
            .claims
            .iter()
            .map(|claim| self.evaluate_claim(claim, points))
            .collect();
        let curves = points
            .iter()
            .map(|p| PackCurvePoint {
                arbiter: p.arbiter.label().to_string(),
                target_load: p.target_load,
                achieved_load: p.achieved_load,
                frame_delay_us: p.frame_delay_us(),
                throughput: p.throughput_ratio(),
                utilization: p.utilization(),
                fairness: p.mean_of(|r| r.summary.reservation_fairness),
                reject_rate: p.mean_of(|r| r.admission.reject_rate()),
                class_delay_us: [
                    TrafficClass::CbrLow,
                    TrafficClass::CbrMedium,
                    TrafficClass::CbrHigh,
                    TrafficClass::Vbr,
                    TrafficClass::BestEffort,
                ]
                .iter()
                .filter(|&&class| {
                    p.results
                        .iter()
                        .any(|r| r.summary.metrics.class(class).is_some())
                })
                .map(|&class| ClassDelay {
                    class: class.label().to_string(),
                    mean_delay_us: p.class_delay_us(class),
                })
                .collect(),
            })
            .collect();
        PackReport {
            pack: self.name.clone(),
            description: self.description.clone(),
            fidelity: match fidelity {
                Fidelity::Quick => "quick".into(),
                Fidelity::Full => "full".into(),
            },
            seeds: self.sweep.seeds.clone(),
            loads: self.sweep.loads.clone(),
            arbiters: self
                .sweep
                .arbiters
                .iter()
                .map(|a| a.label().to_string())
                .collect(),
            claims,
            curves,
        }
    }

    fn evaluate_claim(&self, claim: &PackClaim, points: &[SweepPoint]) -> ClaimOutcome {
        // Per-seed scalars, the gate direction, the threshold, and a unit.
        let (per_seed, higher_is_better, threshold, unit): (Vec<f64>, bool, f64, &str) =
            match &claim.check {
                PackCheck::DelayBelow {
                    class,
                    arbiter,
                    at_load,
                    max_us,
                } => {
                    let p = find_point(points, *arbiter, *at_load);
                    (
                        p.results
                            .iter()
                            .map(|r| class_delay_of(r, *class))
                            .collect(),
                        false,
                        *max_us,
                        "us",
                    )
                }
                PackCheck::DelayRatioAtLeast {
                    slower,
                    faster,
                    arbiter,
                    at_load,
                    min_ratio,
                } => {
                    let p = find_point(points, *arbiter, *at_load);
                    (
                        p.results
                            .iter()
                            .map(|r| {
                                class_delay_of(r, *slower)
                                    / class_delay_of(r, *faster).max(f64::EPSILON)
                            })
                            .collect(),
                        true,
                        *min_ratio,
                        "x",
                    )
                }
                PackCheck::DelayWithinFactor {
                    class,
                    arbiter,
                    versus,
                    at_load,
                    max_factor,
                } => {
                    let a = find_point(points, *arbiter, *at_load);
                    let b = find_point(points, *versus, *at_load);
                    (
                        a.results
                            .iter()
                            .zip(&b.results)
                            .map(|(ra, rb)| {
                                class_delay_of(ra, *class)
                                    / class_delay_of(rb, *class).max(f64::EPSILON)
                            })
                            .collect(),
                        false,
                        *max_factor,
                        "x",
                    )
                }
                PackCheck::ThroughputFloor {
                    arbiter,
                    at_load,
                    min_ratio,
                } => {
                    let p = find_point(points, *arbiter, *at_load);
                    (
                        p.results
                            .iter()
                            .map(|r| r.summary.throughput_ratio())
                            .collect(),
                        true,
                        *min_ratio,
                        "ratio",
                    )
                }
                PackCheck::FairnessAbove {
                    arbiter,
                    at_load,
                    min_jain,
                } => {
                    let p = find_point(points, *arbiter, *at_load);
                    (
                        p.results
                            .iter()
                            .map(|r| r.summary.reservation_fairness)
                            .collect(),
                        true,
                        *min_jain,
                        "jain",
                    )
                }
                PackCheck::RejectRateBelow {
                    arbiter,
                    at_load,
                    max_rate,
                } => {
                    let p = find_point(points, *arbiter, *at_load);
                    (
                        p.results
                            .iter()
                            .map(|r| r.admission.reject_rate())
                            .collect(),
                        false,
                        *max_rate,
                        "fraction",
                    )
                }
                PackCheck::UtilizationAbove {
                    arbiter,
                    at_load,
                    min_utilization,
                } => {
                    let p = find_point(points, *arbiter, *at_load);
                    (
                        p.results
                            .iter()
                            .map(|r| r.summary.crossbar_utilization)
                            .collect(),
                        true,
                        *min_utilization,
                        "fraction",
                    )
                }
            };
        let med = median(&per_seed);
        let pass = if higher_is_better {
            med >= threshold
        } else {
            med <= threshold
        };
        let margin = if higher_is_better {
            med - threshold
        } else {
            threshold - med
        };
        ClaimOutcome {
            id: claim.id.clone(),
            figure: self.name.clone(),
            description: claim.description.clone(),
            pass,
            median: med,
            spread_min: per_seed.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
            spread_max: per_seed.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
            per_seed,
            threshold,
            higher_is_better,
            margin,
            unit: unit.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_pack(extra: &str) -> String {
        format!(
            r#"
[meta]
name = "test_pack"
description = "a minimal pack"

[traffic]
preset = "paper-cbr"

[run]
warmup = 100
cycles = 1000

[sweep]
loads = [0.3, 0.5]
arbiters = ["coa"]
seeds = 1
{extra}"#
        )
    }

    #[test]
    fn toml_parses_tables_arrays_and_scalars() {
        let v = toml_to_value(
            r#"
# top comment
title = "hello \"world\""
count = 42
neg = -7
ratio = 0.65
flag = true
grid = [0.1, 0.2,
        0.3]  # multiline

[outer.inner]
x = 1

[[items]]
name = "a"

[[items]]
name = "b"
"#,
        )
        .unwrap();
        assert_eq!(v.get("title"), Some(&Value::Str("hello \"world\"".into())));
        assert_eq!(v.get("count"), Some(&Value::U64(42)));
        assert_eq!(v.get("neg"), Some(&Value::I64(-7)));
        assert_eq!(v.get("ratio"), Some(&Value::F64(0.65)));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("grid"),
            Some(&Value::Array(vec![
                Value::F64(0.1),
                Value::F64(0.2),
                Value::F64(0.3)
            ]))
        );
        assert_eq!(
            v.get("outer").unwrap().get("inner").unwrap().get("x"),
            Some(&Value::U64(1))
        );
        match v.get("items") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].get("name"), Some(&Value::Str("b".into())));
            }
            other => panic!("items should be an array of tables, got {other:?}"),
        }
    }

    #[test]
    fn toml_rejects_malformed_lines() {
        for (doc, what) in [
            ("key value", "missing equals"),
            ("[unterminated", "open header"),
            ("x = [1, 2", "open array"),
            ("x = \"abc", "open string"),
            ("x = @nope", "bad scalar"),
            ("x = 1\nx = 2", "duplicate key"),
        ] {
            assert!(toml_to_value(doc).is_err(), "{what} should fail: {doc}");
        }
    }

    #[test]
    fn toml_value_roundtrip() {
        // Scalars first, then sub-tables, then arrays of tables — the
        // order the emitter writes, so Value equality holds on re-parse.
        let v = Value::Object(vec![
            ("a".into(), Value::U64(5)),
            ("b".into(), Value::F64(2.5)),
            ("c".into(), Value::Str("x\ny".into())),
            ("empty".into(), Value::Array(vec![])),
            (
                "sub".into(),
                Value::Object(vec![("d".into(), Value::Bool(false))]),
            ),
            (
                "items".into(),
                Value::Array(vec![Value::Object(vec![("e".into(), Value::I64(-1))])]),
            ),
        ]);
        let text = value_to_toml(&v);
        let back = toml_to_value(&text).unwrap();
        assert_eq!(back, v, "emitted TOML:\n{text}");
    }

    #[test]
    fn minimal_pack_parses_and_validates() {
        let spec = WorkloadSpec::parse(&minimal_pack("")).unwrap();
        assert_eq!(spec.meta.name, "test_pack");
        spec.validate().unwrap();
        let pack = spec.compile(Fidelity::Quick).unwrap();
        assert_eq!(pack.sweep.loads, vec![0.3, 0.5]);
        assert_eq!(pack.sweep.arbiters, vec![ArbiterKind::Coa]);
        assert_eq!(pack.sweep.seeds, vec![SimConfig::default().seed]);
    }

    #[test]
    fn json_documents_are_accepted() {
        let spec = WorkloadSpec::parse(&minimal_pack("")).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back = WorkloadSpec::parse(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_roundtrips_through_toml() {
        let extra = r#"
[best_effort]
load = 0.1
mean_flits = 8.0

[[claim]]
id = "test_pack.throughput"
description = "keeps throughput"
kind = "throughput-floor"
at_load = 0.5
threshold = 0.9
"#;
        let spec = WorkloadSpec::parse(&minimal_pack(extra)).unwrap();
        let text = spec.to_toml();
        let back = WorkloadSpec::parse(&text).unwrap();
        assert_eq!(back, spec, "emitted TOML:\n{text}");
    }

    #[test]
    fn generated_load_grid() {
        let doc =
            minimal_pack("").replace("loads = [0.3, 0.5]", "initial = 0.2\nmax = 0.6\nstep = 0.2");
        let spec = WorkloadSpec::parse(&doc).unwrap();
        spec.validate().unwrap();
        let loads = spec.loads(Fidelity::Quick);
        assert_eq!(loads.len(), 3);
        assert!((loads[0] - 0.2).abs() < 1e-12);
        assert!((loads[2] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn validator_rejects_malformed_specs() {
        let group_pack = |groups: &str, extra: &str| {
            minimal_pack(extra).replace("preset = \"paper-cbr\"", groups)
        };
        let bad_rate = group_pack(
            "[[traffic.group]]\nname = \"g\"\nclass = \"cbr-low\"\nrate_kbps = -64.0\nweight = 1.0",
            "",
        );
        assert!(matches!(
            WorkloadSpec::parse(&bad_rate).unwrap().validate(),
            Err(SpecError::NegativeRate { .. })
        ));
        let overlap = group_pack(
            "[[traffic.group]]\nname = \"g\"\nclass = \"cbr-low\"\nrate_kbps = 64.0\nweight = 1.0",
            "[[ramp.step]]\nat_cycle = 100\nfraction = 0.5\n\n[[ramp.step]]\nat_cycle = 100\nfraction = 1.0\n",
        );
        assert!(matches!(
            WorkloadSpec::parse(&overlap).unwrap().validate(),
            Err(SpecError::OverlappingRampWindows { .. })
        ));
        let over_capacity = minimal_pack("\n[best_effort]\nload = 0.7\nmean_flits = 8.0\n")
            .replace("loads = [0.3, 0.5]", "loads = [0.9]");
        assert!(matches!(
            WorkloadSpec::parse(&over_capacity).unwrap().validate(),
            Err(SpecError::CapacityExceeded { .. })
        ));
        let unknown_arbiter = minimal_pack("").replace("\"coa\"", "\"quantum\"");
        assert!(matches!(
            WorkloadSpec::parse(&unknown_arbiter).unwrap().validate(),
            Err(SpecError::UnknownArbiter { .. })
        ));
        let unswept = minimal_pack(
            "\n[[claim]]\nid = \"x.y\"\ndescription = \"d\"\nkind = \"throughput-floor\"\nat_load = 0.77\nthreshold = 0.5\n",
        );
        assert!(matches!(
            WorkloadSpec::parse(&unswept).unwrap().validate(),
            Err(SpecError::ClaimLoadNotSwept { .. })
        ));
    }

    #[test]
    fn fabric_section_compiles_to_fabric_spec() {
        let doc = minimal_pack("\n[fabric]\ntopology = \"mesh\"\nx = 2\ny = 2\nworkers = 2\n");
        let spec = WorkloadSpec::parse(&doc).unwrap();
        let pack = spec.compile(Fidelity::Quick).unwrap();
        assert!(pack.fabric);
        let fabric = pack.sweep.base.fabric.expect("fabric set");
        assert_eq!(fabric.topology, Topology::Mesh { x: 2, y: 2 });
        assert_eq!(fabric.workers, 2);
    }

    #[test]
    fn arbiter_and_class_names_parse() {
        assert_eq!(parse_arbiter("coa").unwrap(), ArbiterKind::Coa);
        assert_eq!(
            parse_arbiter("islip:4").unwrap(),
            ArbiterKind::Islip { iterations: 4 }
        );
        assert_eq!(
            parse_arbiter("frame-fair").unwrap(),
            ArbiterKind::FrameFair {
                frame: mmr_arbiter::frame::DEFAULT_FRAME
            }
        );
        assert!(parse_arbiter("coa:3").is_err());
        assert_eq!(parse_class("cbr-med").unwrap(), TrafficClass::CbrMedium);
        assert!(parse_class("gold").is_err());
    }
}
