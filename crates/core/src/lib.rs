//! # mmr-core — the public API of the MMR reproduction
//!
//! This crate ties the substrates together into the experiment layer used
//! by every example, test, and benchmark:
//!
//! * [`config`] — a serializable description of one simulation: router
//!   geometry, workload, switch scheduler, priority function, durations.
//! * [`experiment`] — build-and-run: constructs the workload, instantiates
//!   the router, drives it with warm-up, and returns a
//!   [`experiment::ExperimentResult`].
//! * [`sweep`](mod@sweep) — load sweeps across arbiters and seeds, parallelized
//!   with scoped threads (each point is an independent deterministic simulation).
//! * [`saturation`] — saturation-point detection over sweep results.
//! * [`conformance`] — typed, machine-checkable paper claims evaluated
//!   over multi-seed ensembles (the reproduction's regression gate).
//! * [`scenarios`] — the canned configurations reproducing each figure of
//!   the paper (Fig. 5 CBR delay, Fig. 8 VBR utilization, Fig. 9 VBR frame
//!   delay, §5.2 jitter).
//! * [`report`] — text tables and CSV rendering of sweep results.
//!
//! ## Quickstart
//!
//! ```
//! use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
//! use mmr_core::experiment::run_experiment;
//! use mmr_arbiter::scheduler::ArbiterKind;
//!
//! let cfg = SimConfig {
//!     workload: WorkloadSpec::cbr(0.5),
//!     arbiter: ArbiterKind::Coa,
//!     run: RunLength::Cycles(5_000),
//!     warmup_cycles: 500,
//!     ..SimConfig::default()
//! };
//! let result = run_experiment(&cfg);
//! assert!(result.summary.delivered_flits > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod conformance;
pub mod experiment;
pub mod report;
pub mod saturation;
pub mod scenarios;
pub mod sweep;
pub mod workload_lang;

pub use config::{RunLength, SimConfig, WorkloadSpec};
pub use experiment::{run_experiment, ExperimentResult};
pub use saturation::{detect_saturation, SaturationCriteria};
pub use sweep::{sweep, SweepPoint, SweepSpec};

// Re-export the component crates so downstream users need one dependency.
pub use mmr_arbiter as arbiter;
pub use mmr_router as router;
pub use mmr_sim as sim;
pub use mmr_traffic as traffic;
