//! Saturation-point detection.
//!
//! The paper reads saturation off its delay plots: the load at which
//! average delay turns vertical (equivalently, where the router stops
//! keeping up with generation).  We detect it from sweep results with two
//! complementary signals:
//!
//! * **throughput deficit** — delivered/generated drops below a threshold
//!   (the backlog grows without bound), and
//! * **delay blow-up** — mean delay exceeds a multiple of the low-load
//!   baseline delay.
//!
//! A coarse sweep only brackets the saturation load between two grid
//! points; [`bisect_saturation`] refines the bracket by running midpoint
//! experiments through an [`ExperimentCache`], so loads that were already
//! measured (by the sweep, or by a previous refinement) are reused instead
//! of recomputed.

use crate::config::SimConfig;
use crate::experiment::{run_experiment, ExperimentResult};
use crate::sweep::SweepPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Thresholds for calling a load point saturated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationCriteria {
    /// Saturated if delivered/generated falls below this.
    pub min_throughput_ratio: f64,
    /// Saturated if mean delay exceeds `baseline × delay_blowup`.
    pub delay_blowup: f64,
}

impl Default for SaturationCriteria {
    fn default() -> Self {
        SaturationCriteria {
            min_throughput_ratio: 0.95,
            delay_blowup: 20.0,
        }
    }
}

/// Find the saturation load for one arbiter's series (points must share
/// the arbiter and be sorted by ascending load).
///
/// Returns the *achieved load of the first saturated point*, or `None` if
/// the series never saturates.  `delay_of` extracts the delay metric the
/// figure plots (class flit delay for Fig. 5, frame delay for Fig. 9).
pub fn detect_saturation<F>(
    points: &[SweepPoint],
    criteria: SaturationCriteria,
    delay_of: F,
) -> Option<f64>
where
    F: Fn(&SweepPoint) -> f64,
{
    if points.is_empty() {
        return None;
    }
    // Baseline: the delay at the lowest measured load.
    let baseline = delay_of(&points[0]).max(1e-9);
    for p in points {
        let saturated_by_throughput = p.throughput_ratio() < criteria.min_throughput_ratio;
        let saturated_by_delay = delay_of(p) > baseline * criteria.delay_blowup;
        if saturated_by_throughput || saturated_by_delay {
            return Some(p.achieved_load);
        }
    }
    None
}

/// Dedup cache of experiment results keyed on the full serialized config.
///
/// The key is the config's canonical JSON, so two configs hit the same
/// entry exactly when every simulated parameter matches — load, arbiter,
/// seed, run length, fault plan, engine, all of it.  Determinism makes
/// the cache sound: the same config always replays to the same
/// [`ExperimentResult`], so returning a cached result is
/// indistinguishable from re-running the simulation.
#[derive(Debug, Default)]
pub struct ExperimentCache {
    map: HashMap<String, ExperimentResult>,
    hits: u64,
    misses: u64,
}

impl ExperimentCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache key for a config: its canonical JSON serialization.
    pub fn key(cfg: &SimConfig) -> String {
        serde_json::to_string(cfg).expect("SimConfig serializes")
    }

    /// A cache pre-warmed with every per-seed result already computed by a
    /// sweep, so refinement steps that land on an already-measured load
    /// hit instead of re-simulating.
    pub fn seed_from_points(points: &[SweepPoint]) -> Self {
        let mut cache = Self::new();
        for p in points {
            for r in &p.results {
                cache.map.insert(Self::key(&r.config), r.clone());
            }
        }
        cache
    }

    /// Run `cfg`, reusing the cached result if this exact config was
    /// already measured.
    pub fn run(&mut self, cfg: &SimConfig) -> ExperimentResult {
        let key = Self::key(cfg);
        if let Some(r) = self.map.get(&key) {
            self.hits += 1;
            return r.clone();
        }
        self.misses += 1;
        let result = run_experiment(cfg);
        self.map.insert(key, result.clone());
        result
    }

    /// True if this exact config is already measured.
    pub fn contains(&self, cfg: &SimConfig) -> bool {
        self.map.contains_key(&Self::key(cfg))
    }

    /// Store an externally computed result (keyed on its own config).
    pub fn insert(&mut self, result: ExperimentResult) {
        self.map.insert(Self::key(&result.config), result);
    }

    /// Run a batch of configs, reusing cached results and fanning the
    /// misses out across `workers` threads (via [`crate::sweep::run_all`];
    /// `None` = one per core).  Results come back in input order, and
    /// duplicate configs within the batch simulate only once.
    pub fn run_many(
        &mut self,
        configs: &[SimConfig],
        workers: Option<usize>,
    ) -> Vec<ExperimentResult> {
        let keys: Vec<String> = configs.iter().map(Self::key).collect();
        let mut miss_configs: Vec<SimConfig> = Vec::new();
        let mut miss_keys: Vec<&String> = Vec::new();
        for (cfg, key) in configs.iter().zip(&keys) {
            if self.map.contains_key(key) {
                self.hits += 1;
            } else if miss_keys.contains(&key) {
                self.hits += 1; // duplicate within the batch: one run serves both
            } else {
                self.misses += 1;
                miss_configs.push(cfg.clone());
                miss_keys.push(key);
            }
        }
        let fresh = crate::sweep::run_all(&miss_configs, workers);
        for (key, result) in miss_keys.into_iter().zip(fresh) {
            self.map.insert(key.clone(), result);
        }
        keys.iter()
            .map(|key| self.map.get(key).expect("batch filled every key").clone())
            .collect()
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to simulate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct configs stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn is_saturated<F>(
    p: &SweepPoint,
    baseline: f64,
    criteria: SaturationCriteria,
    delay_of: &F,
) -> bool
where
    F: Fn(&SweepPoint) -> f64,
{
    p.throughput_ratio() < criteria.min_throughput_ratio
        || delay_of(p) > baseline * criteria.delay_blowup
}

/// Refine the saturation load by bisection.
///
/// `points` is one arbiter's series sorted by ascending load (the coarse
/// sweep).  The first saturated grid point and its unsaturated predecessor
/// bracket the true saturation load; midpoint experiments narrow the
/// bracket until it is at most `tolerance` wide.  Every midpoint runs
/// through `cache`, so an already-measured load — a grid point, or a
/// midpoint from a previous refinement with the same cache — is reused
/// instead of recomputed; seed the cache with
/// [`ExperimentCache::seed_from_points`] to carry the sweep's work over.
///
/// Returns the achieved load of the tightest saturated point found, or
/// `None` if the series never saturates.  When the *lowest* grid point is
/// already saturated there is no bracket to refine and its achieved load
/// is returned as-is, matching [`detect_saturation`].
pub fn bisect_saturation<F>(
    points: &[SweepPoint],
    criteria: SaturationCriteria,
    delay_of: F,
    tolerance: f64,
    cache: &mut ExperimentCache,
) -> Option<f64>
where
    F: Fn(&SweepPoint) -> f64,
{
    if points.is_empty() {
        return None;
    }
    let baseline = delay_of(&points[0]).max(1e-9);
    let first_sat = points
        .iter()
        .position(|p| is_saturated(p, baseline, criteria, &delay_of))?;
    if first_sat == 0 {
        return Some(points[0].achieved_load);
    }

    let arbiter = points[first_sat].arbiter;
    // Per-seed configs to replay at each midpoint, taken from the
    // saturated endpoint (every grid point shares arbiter and seeds).
    let seed_cfgs: Vec<SimConfig> = points[first_sat]
        .results
        .iter()
        .map(|r| r.config.clone())
        .collect();
    let mut lo = points[first_sat - 1].target_load;
    let mut hi = points[first_sat].target_load;
    let mut hi_achieved = points[first_sat].achieved_load;
    while hi - lo > tolerance {
        let mid = (lo + hi) / 2.0;
        let results: Vec<ExperimentResult> = seed_cfgs
            .iter()
            .map(|c| cache.run(&c.with_load(mid)))
            .collect();
        let achieved = results.iter().map(|r| r.achieved_load).sum::<f64>() / results.len() as f64;
        let mid_point = SweepPoint {
            arbiter,
            target_load: mid,
            achieved_load: achieved,
            results,
        };
        if is_saturated(&mid_point, baseline, criteria, &delay_of) {
            hi = mid;
            hi_achieved = achieved;
        } else {
            lo = mid;
        }
    }
    Some(hi_achieved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::experiment::ExperimentResult;
    use mmr_arbiter::scheduler::ArbiterKind;
    use mmr_router::metrics::MetricsReport;
    use mmr_router::router::RouterSummary;

    /// Hand-build a sweep point with the given load, throughput ratio and
    /// frame delay.
    fn point(load: f64, throughput: f64, frame_delay_us: f64) -> SweepPoint {
        let metrics = MetricsReport {
            classes: vec![mmr_router::metrics::ClassStats {
                class: mmr_traffic::connection::TrafficClass::Vbr,
                generated: 1000,
                delivered: (1000.0 * throughput) as u64,
                mean_delay_us: frame_delay_us,
                p99_delay_us: frame_delay_us,
                max_delay_us: frame_delay_us,
            }],
            qos_violations: 0,
            frames_delivered: 10,
            mean_frame_delay_us: frame_delay_us,
            max_frame_delay_us: frame_delay_us,
            p99_frame_delay_us: frame_delay_us,
            mean_frame_jitter_us: 0.0,
            p99_frame_jitter_us: 0.0,
            max_frame_jitter_us: 0.0,
        };
        let summary = RouterSummary {
            arbiter: "x".into(),
            priority_fn: "y".into(),
            reservation_fairness: 1.0,
            metrics,
            crossbar_utilization: load,
            crossbar_busy_fraction: 1.0,
            reconfigurations: 0,
            measured_cycles: 1000,
            generated_flits: 1000,
            delivered_flits: (1000.0 * throughput) as u64,
            delivered_per_output: vec![],
            peak_nic_depth: 0,
            peak_vc_occupancy: 0,
            backlog_flits: 0,
            generation_window_cycles: None,
            delivered_in_window: 0,
            faults: mmr_router::fault::FaultReport::default(),
        };
        SweepPoint {
            arbiter: ArbiterKind::Coa,
            target_load: load,
            achieved_load: load,
            results: vec![ExperimentResult {
                config: SimConfig::default(),
                achieved_load: load,
                connections: 1,
                admission: Default::default(),
                executed_cycles: 1000,
                drained: true,
                summary,
                telemetry: None,
            }],
        }
    }

    #[test]
    fn no_saturation_in_healthy_series() {
        let series = vec![
            point(0.2, 1.0, 10.0),
            point(0.4, 1.0, 11.0),
            point(0.6, 1.0, 14.0),
        ];
        assert_eq!(
            detect_saturation(&series, SaturationCriteria::default(), |p| p
                .frame_delay_us()),
            None
        );
    }

    #[test]
    fn throughput_deficit_triggers() {
        let series = vec![
            point(0.5, 1.0, 10.0),
            point(0.7, 0.99, 12.0),
            point(0.8, 0.80, 15.0),
        ];
        let sat = detect_saturation(&series, SaturationCriteria::default(), |p| {
            p.frame_delay_us()
        });
        assert_eq!(sat, Some(0.8));
    }

    #[test]
    fn delay_blowup_triggers() {
        let series = vec![point(0.5, 1.0, 10.0), point(0.7, 0.99, 500.0)];
        let sat = detect_saturation(&series, SaturationCriteria::default(), |p| {
            p.frame_delay_us()
        });
        assert_eq!(sat, Some(0.7));
    }

    #[test]
    fn empty_series_is_none() {
        assert_eq!(
            detect_saturation(&[], SaturationCriteria::default(), |p| p.frame_delay_us()),
            None
        );
    }

    use crate::config::{RunLength, WorkloadSpec};
    use crate::sweep::{sweep_with_workers, SweepSpec};

    fn quick_base() -> SimConfig {
        SimConfig {
            workload: WorkloadSpec::cbr(0.3),
            warmup_cycles: 100,
            run: RunLength::Cycles(1_500),
            ..Default::default()
        }
    }

    #[test]
    fn cache_dedups_identical_configs() {
        let cfg = quick_base();
        let mut cache = ExperimentCache::new();
        let a = cache.run(&cfg);
        let b = cache.run(&cfg);
        assert_eq!(a, b, "cached replay must equal the original run");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        // A different load is a different key.
        cache.run(&cfg.with_load(0.4));
        assert_eq!((cache.misses(), cache.hits(), cache.len()), (2, 1, 2));
    }

    #[test]
    fn seeded_cache_reuses_sweep_results_without_resimulating() {
        let spec = SweepSpec::coa_vs_wfa(quick_base(), vec![0.3, 0.5]);
        let points = sweep_with_workers(&spec, Some(1));
        let mut cache = ExperimentCache::seed_from_points(&points);
        assert_eq!(cache.len(), spec.point_count());
        // Every grid config is warm: replaying the sweep costs zero runs.
        for cfg in spec.configs() {
            let r = cache.run(&cfg);
            assert!((r.achieved_load - cfg.workload.target_load()).abs() < 0.2);
        }
        assert_eq!(cache.misses(), 0, "grid configs must all be cache hits");
        assert_eq!(cache.hits(), spec.point_count() as u64);
    }

    #[test]
    fn bisection_narrows_the_bracket_and_reuses_warm_midpoints() {
        // A real two-point sweep brackets the transition; the criteria
        // threshold is set between the measured throughput ratios so the
        // low point is unsaturated and the high point saturated by
        // construction (the runs are deterministic, so this is stable).
        let spec = SweepSpec {
            base: quick_base(),
            loads: vec![0.3, 0.95],
            arbiters: vec![ArbiterKind::Coa],
            seeds: vec![quick_base().seed],
        };
        let points = sweep_with_workers(&spec, Some(1));
        let (r_lo, r_hi) = (points[0].throughput_ratio(), points[1].throughput_ratio());
        assert!(
            r_hi < r_lo,
            "high load must deliver a smaller fraction ({r_hi} vs {r_lo})"
        );
        let criteria = SaturationCriteria {
            min_throughput_ratio: (r_lo + r_hi) / 2.0,
            delay_blowup: f64::INFINITY,
        };
        let delay = |p: &SweepPoint| p.frame_delay_us();

        let coarse = detect_saturation(&points, criteria, delay).expect("bracketed");
        let mut cache = ExperimentCache::seed_from_points(&points);
        let refined =
            bisect_saturation(&points, criteria, delay, 0.1, &mut cache).expect("refined");
        // The refined estimate sits inside the coarse bracket and cannot
        // be looser than the coarse answer (the first saturated point).
        assert!(refined <= coarse + 1e-9, "refinement loosened the estimate");
        assert!(refined > 0.3, "refinement collapsed below the bracket");
        let midpoints_run = cache.misses();
        assert!(
            midpoints_run >= 2,
            "0.65-wide bracket at 0.1 tolerance needs several midpoints"
        );

        // Re-refining with the same warm cache re-simulates nothing: every
        // midpoint (and any grid load it lands on) is already measured.
        let again = bisect_saturation(&points, criteria, delay, 0.1, &mut cache).expect("refined");
        assert_eq!(again, refined, "bisection must be deterministic");
        assert_eq!(
            cache.misses(),
            midpoints_run,
            "warm midpoints were re-simulated"
        );
        assert!(
            cache.hits() >= midpoints_run,
            "second pass must hit the cache"
        );
    }

    #[test]
    fn bisection_matches_detect_when_nothing_saturates() {
        let series = vec![point(0.2, 1.0, 10.0), point(0.4, 1.0, 11.0)];
        let mut cache = ExperimentCache::new();
        assert_eq!(
            bisect_saturation(
                &series,
                SaturationCriteria::default(),
                |p| p.frame_delay_us(),
                0.05,
                &mut cache
            ),
            None
        );
        assert_eq!(cache.misses(), 0, "an unsaturated series needs no runs");
    }

    #[test]
    fn bisection_returns_first_point_when_already_saturated() {
        let series = vec![point(0.5, 0.5, 10.0), point(0.7, 0.4, 12.0)];
        let mut cache = ExperimentCache::new();
        let sat = bisect_saturation(
            &series,
            SaturationCriteria::default(),
            |p| p.frame_delay_us(),
            0.05,
            &mut cache,
        );
        assert_eq!(sat, Some(0.5), "no bracket below the lowest grid point");
        assert_eq!(cache.misses(), 0);
    }
}
