//! Saturation-point detection.
//!
//! The paper reads saturation off its delay plots: the load at which
//! average delay turns vertical (equivalently, where the router stops
//! keeping up with generation).  We detect it from sweep results with two
//! complementary signals:
//!
//! * **throughput deficit** — delivered/generated drops below a threshold
//!   (the backlog grows without bound), and
//! * **delay blow-up** — mean delay exceeds a multiple of the low-load
//!   baseline delay.

use crate::sweep::SweepPoint;
use serde::{Deserialize, Serialize};

/// Thresholds for calling a load point saturated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationCriteria {
    /// Saturated if delivered/generated falls below this.
    pub min_throughput_ratio: f64,
    /// Saturated if mean delay exceeds `baseline × delay_blowup`.
    pub delay_blowup: f64,
}

impl Default for SaturationCriteria {
    fn default() -> Self {
        SaturationCriteria {
            min_throughput_ratio: 0.95,
            delay_blowup: 20.0,
        }
    }
}

/// Find the saturation load for one arbiter's series (points must share
/// the arbiter and be sorted by ascending load).
///
/// Returns the *achieved load of the first saturated point*, or `None` if
/// the series never saturates.  `delay_of` extracts the delay metric the
/// figure plots (class flit delay for Fig. 5, frame delay for Fig. 9).
pub fn detect_saturation<F>(
    points: &[SweepPoint],
    criteria: SaturationCriteria,
    delay_of: F,
) -> Option<f64>
where
    F: Fn(&SweepPoint) -> f64,
{
    if points.is_empty() {
        return None;
    }
    // Baseline: the delay at the lowest measured load.
    let baseline = delay_of(&points[0]).max(1e-9);
    for p in points {
        let saturated_by_throughput = p.throughput_ratio() < criteria.min_throughput_ratio;
        let saturated_by_delay = delay_of(p) > baseline * criteria.delay_blowup;
        if saturated_by_throughput || saturated_by_delay {
            return Some(p.achieved_load);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::experiment::ExperimentResult;
    use mmr_arbiter::scheduler::ArbiterKind;
    use mmr_router::metrics::MetricsReport;
    use mmr_router::router::RouterSummary;

    /// Hand-build a sweep point with the given load, throughput ratio and
    /// frame delay.
    fn point(load: f64, throughput: f64, frame_delay_us: f64) -> SweepPoint {
        let metrics = MetricsReport {
            classes: vec![mmr_router::metrics::ClassStats {
                class: mmr_traffic::connection::TrafficClass::Vbr,
                generated: 1000,
                delivered: (1000.0 * throughput) as u64,
                mean_delay_us: frame_delay_us,
                p99_delay_us: frame_delay_us,
                max_delay_us: frame_delay_us,
            }],
            qos_violations: 0,
            frames_delivered: 10,
            mean_frame_delay_us: frame_delay_us,
            max_frame_delay_us: frame_delay_us,
            p99_frame_delay_us: frame_delay_us,
            mean_frame_jitter_us: 0.0,
            max_frame_jitter_us: 0.0,
        };
        let summary = RouterSummary {
            arbiter: "x".into(),
            priority_fn: "y".into(),
            reservation_fairness: 1.0,
            metrics,
            crossbar_utilization: load,
            crossbar_busy_fraction: 1.0,
            reconfigurations: 0,
            measured_cycles: 1000,
            generated_flits: 1000,
            delivered_flits: (1000.0 * throughput) as u64,
            delivered_per_output: vec![],
            peak_nic_depth: 0,
            peak_vc_occupancy: 0,
            backlog_flits: 0,
            generation_window_cycles: None,
            delivered_in_window: 0,
            faults: mmr_router::fault::FaultReport::default(),
        };
        SweepPoint {
            arbiter: ArbiterKind::Coa,
            target_load: load,
            achieved_load: load,
            results: vec![ExperimentResult {
                config: SimConfig::default(),
                achieved_load: load,
                connections: 1,
                executed_cycles: 1000,
                drained: true,
                summary,
                telemetry: None,
            }],
        }
    }

    #[test]
    fn no_saturation_in_healthy_series() {
        let series = vec![
            point(0.2, 1.0, 10.0),
            point(0.4, 1.0, 11.0),
            point(0.6, 1.0, 14.0),
        ];
        assert_eq!(
            detect_saturation(&series, SaturationCriteria::default(), |p| p
                .frame_delay_us()),
            None
        );
    }

    #[test]
    fn throughput_deficit_triggers() {
        let series = vec![
            point(0.5, 1.0, 10.0),
            point(0.7, 0.99, 12.0),
            point(0.8, 0.80, 15.0),
        ];
        let sat = detect_saturation(&series, SaturationCriteria::default(), |p| {
            p.frame_delay_us()
        });
        assert_eq!(sat, Some(0.8));
    }

    #[test]
    fn delay_blowup_triggers() {
        let series = vec![point(0.5, 1.0, 10.0), point(0.7, 0.99, 500.0)];
        let sat = detect_saturation(&series, SaturationCriteria::default(), |p| {
            p.frame_delay_us()
        });
        assert_eq!(sat, Some(0.7));
    }

    #[test]
    fn empty_series_is_none() {
        assert_eq!(
            detect_saturation(&[], SaturationCriteria::default(), |p| p.frame_delay_us()),
            None
        );
    }
}
