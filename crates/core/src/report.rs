//! Rendering sweep results as the paper's tables and series.

use crate::sweep::SweepPoint;
use mmr_arbiter::scheduler::ArbiterKind;

/// Group sweep points by arbiter, preserving load order within each
/// series.
pub fn series_by_arbiter(points: &[SweepPoint]) -> Vec<(ArbiterKind, Vec<&SweepPoint>)> {
    let mut out: Vec<(ArbiterKind, Vec<&SweepPoint>)> = Vec::new();
    for p in points {
        match out.iter_mut().find(|(k, _)| *k == p.arbiter) {
            Some((_, v)) => v.push(p),
            None => out.push((p.arbiter, vec![p])),
        }
    }
    out
}

/// Render an x/y table with one column per arbiter:
///
/// ```text
/// # <title>
/// load(%)      COA      WFA
///   50.0     12.34    13.99
/// ```
pub fn render_xy_table<F>(title: &str, ylabel: &str, points: &[SweepPoint], f: F) -> String
where
    F: Fn(&SweepPoint) -> f64,
{
    let series = series_by_arbiter(points);
    let mut s = format!("# {title}\n# y = {ylabel}\n");
    s.push_str(&format!("{:>9}", "load(%)"));
    for (k, _) in &series {
        s.push_str(&format!("{:>12}", k.label()));
    }
    s.push('\n');
    let n = series.first().map(|(_, v)| v.len()).unwrap_or(0);
    for i in 0..n {
        let load = series[0].1[i].achieved_load * 100.0;
        s.push_str(&format!("{load:>9.1}"));
        for (_, pts) in &series {
            let y = pts.get(i).map(|p| f(p)).unwrap_or(f64::NAN);
            s.push_str(&format!("{y:>12.3}"));
        }
        s.push('\n');
    }
    s
}

/// Render the same data as CSV (`load,<arb1>,<arb2>,…`).
pub fn to_csv<F>(points: &[SweepPoint], f: F) -> String
where
    F: Fn(&SweepPoint) -> f64,
{
    let series = series_by_arbiter(points);
    let mut s = String::from("load");
    for (k, _) in &series {
        s.push(',');
        s.push_str(k.label());
    }
    s.push('\n');
    let n = series.first().map(|(_, v)| v.len()).unwrap_or(0);
    for i in 0..n {
        s.push_str(&format!("{:.4}", series[0].1[i].achieved_load));
        for (_, pts) in &series {
            let y = pts.get(i).map(|p| f(p)).unwrap_or(f64::NAN);
            s.push_str(&format!(",{y:.4}"));
        }
        s.push('\n');
    }
    s
}

/// Render sweep series as an ASCII scatter plot — x is load (%), y is the
/// metric, optionally log-scaled (the paper's Fig. 9 uses a log y-axis).
/// Each arbiter's series is drawn with its own glyph.
pub fn ascii_plot<F>(title: &str, points: &[SweepPoint], log_y: bool, f: F) -> String
where
    F: Fn(&SweepPoint) -> f64,
{
    const W: usize = 64;
    const H: usize = 18;
    const GLYPHS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];
    let series = series_by_arbiter(points);
    if series.is_empty() {
        return format!("# {title}\n(no data)\n");
    }
    let transform = |v: f64| if log_y { v.max(1e-9).log10() } else { v };
    let mut ys: Vec<f64> = Vec::new();
    let mut xs: Vec<f64> = Vec::new();
    for (_, pts) in &series {
        for p in pts {
            ys.push(transform(f(p)));
            xs.push(p.achieved_load * 100.0);
        }
    }
    let (ymin, ymax) = ys
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let (xmin, xmax) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let yspan = (ymax - ymin).max(1e-9);
    let xspan = (xmax - xmin).max(1e-9);
    let mut grid = vec![vec![' '; W]; H];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for p in pts {
            let x = ((p.achieved_load * 100.0 - xmin) / xspan * (W - 1) as f64).round() as usize;
            let y = ((transform(f(p)) - ymin) / yspan * (H - 1) as f64).round() as usize;
            grid[H - 1 - y][x] = glyph;
        }
    }
    let mut out = format!("# {title}\n");
    let label = |v: f64| {
        if log_y {
            format!("{:.3e}", 10f64.powf(v))
        } else {
            format!("{v:.1}")
        }
    };
    for (row, line) in grid.iter().enumerate() {
        let yval = ymax - row as f64 / (H - 1) as f64 * yspan;
        let tick = if row % 4 == 0 {
            label(yval)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{tick:>10} |{}\n",
            line.iter().collect::<String>()
        ));
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(W)));
    out.push_str(&format!(
        "{:>10}  {:<10}{:>width$}\n",
        "",
        format!("{xmin:.0}%"),
        format!("{xmax:.0}% load"),
        width = W - 10
    ));
    for (si, (k, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>12} = {}\n",
            GLYPHS[si % GLYPHS.len()],
            k.label()
        ));
    }
    out
}

/// A simple fixed-width table builder for the report binaries.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column width fitting.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::experiment::ExperimentResult;
    use mmr_router::metrics::MetricsReport;
    use mmr_router::router::RouterSummary;

    fn point(arbiter: ArbiterKind, load: f64, util: f64) -> SweepPoint {
        let summary = RouterSummary {
            arbiter: arbiter.label().into(),
            priority_fn: "SIABP".into(),
            reservation_fairness: 1.0,
            metrics: MetricsReport {
                classes: vec![],
                qos_violations: 0,
                frames_delivered: 0,
                mean_frame_delay_us: 0.0,
                max_frame_delay_us: 0.0,
                p99_frame_delay_us: 0.0,
                mean_frame_jitter_us: 0.0,
                p99_frame_jitter_us: 0.0,
                max_frame_jitter_us: 0.0,
            },
            crossbar_utilization: util,
            crossbar_busy_fraction: 1.0,
            reconfigurations: 0,
            measured_cycles: 100,
            generated_flits: 100,
            delivered_flits: 100,
            delivered_per_output: vec![],
            peak_nic_depth: 0,
            peak_vc_occupancy: 0,
            backlog_flits: 0,
            generation_window_cycles: None,
            delivered_in_window: 0,
            faults: mmr_router::fault::FaultReport::default(),
        };
        SweepPoint {
            arbiter,
            target_load: load,
            achieved_load: load,
            results: vec![ExperimentResult {
                config: SimConfig::default(),
                achieved_load: load,
                connections: 1,
                admission: Default::default(),
                executed_cycles: 100,
                drained: true,
                summary,
                telemetry: None,
            }],
        }
    }

    fn sample_points() -> Vec<SweepPoint> {
        vec![
            point(ArbiterKind::Coa, 0.5, 0.50),
            point(ArbiterKind::Coa, 0.7, 0.69),
            point(ArbiterKind::Wfa, 0.5, 0.49),
            point(ArbiterKind::Wfa, 0.7, 0.66),
        ]
    }

    #[test]
    fn grouping_preserves_order() {
        let pts = sample_points();
        let series = series_by_arbiter(&pts);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, ArbiterKind::Coa);
        assert_eq!(series[0].1.len(), 2);
        assert_eq!(series[0].1[1].target_load, 0.7);
    }

    #[test]
    fn xy_table_has_all_series() {
        let pts = sample_points();
        let t = render_xy_table("Fig 8", "utilization", &pts, |p| p.utilization() * 100.0);
        assert!(t.contains("COA"));
        assert!(t.contains("WFA"));
        assert!(t.contains("50.0"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn csv_is_machine_readable() {
        let pts = sample_points();
        let csv = to_csv(&pts, |p| p.utilization());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "load,COA,WFA");
        let first = lines.next().unwrap();
        assert_eq!(first.split(',').count(), 3);
        assert!(first.starts_with("0.5000"));
    }

    #[test]
    fn ascii_plot_renders_all_series() {
        let pts = sample_points();
        let plot = ascii_plot("util", &pts, false, |p| p.utilization() * 100.0);
        assert!(plot.contains("o = COA"));
        assert!(plot.contains("x = WFA"));
        assert!(plot.contains('|'));
        // Four data points -> at least one 'o' and one 'x' on the grid.
        assert!(plot.matches('o').count() >= 2);
        assert!(plot.matches('x').count() >= 2);
    }

    #[test]
    fn ascii_plot_log_scale_labels() {
        let pts = sample_points();
        let plot = ascii_plot("delay", &pts, true, |p| p.utilization() * 1e4);
        assert!(
            plot.contains('e'),
            "log scale should print exponent labels:\n{plot}"
        );
    }

    #[test]
    fn ascii_plot_empty_is_graceful() {
        let plot = ascii_plot("nothing", &[], false, |_| 0.0);
        assert!(plot.contains("no data"));
    }

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["x", "1"]).row(vec!["longer-name", "2.5"]);
        let r = t.render();
        assert!(r.contains("longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn text_table_rejects_bad_rows() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }
}
