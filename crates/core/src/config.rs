//! Serializable simulation configuration.

use mmr_arbiter::priority::PriorityKind;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_router::config::RouterConfig;
use mmr_router::fabric::{FabricConfig, Topology};
use mmr_router::fault::FaultProfile;
use mmr_router::telemetry::TelemetryConfig;
use mmr_sim::fault::FaultPlanConfig;
use serde::{Deserialize, Serialize};

/// Which injection model a VBR workload uses (mirrors
/// [`mmr_traffic::workload::VbrInjection`] but serializable alongside the
/// rest of the config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionKind {
    /// Smooth-Rate (Fig. 7b).
    SmoothRate,
    /// Back-to-Back (Fig. 7a).
    BackToBack,
}

impl InjectionKind {
    /// Report label ("SR" / "BB").
    pub fn label(self) -> &'static str {
        match self {
            InjectionKind::SmoothRate => "SR",
            InjectionKind::BackToBack => "BB",
        }
    }
}

/// One connection group of a [`WorkloadSpec::Mix`] workload: a CBR class
/// with an explicit rate and pick weight (the declarative analogue of the
/// paper's fixed three-class mix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixGroup {
    /// Reporting class the group's connections carry.
    pub class: mmr_traffic::connection::TrafficClass,
    /// Per-connection bandwidth in bits per second.
    pub rate_bps: f64,
    /// Relative pick probability during admission.
    pub weight: f64,
}

/// One breakpoint of a ramp schedule: by `at_cycle`, `fraction` of the
/// admitted connections must be active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampStepConfig {
    /// Router cycle of the breakpoint.
    pub at_cycle: u64,
    /// Fraction of admitted connections active from this breakpoint on
    /// (non-decreasing across steps; the last step must reach 1.0).
    pub fraction: f64,
}

/// A ramp schedule: admitted connections activate in admission order so
/// that exactly `round(fraction * total)` are active at each breakpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RampScheduleConfig {
    /// Breakpoints, strictly increasing in `at_cycle`.
    pub steps: Vec<RampStepConfig>,
}

impl RampScheduleConfig {
    /// Number of connections the schedule makes active at `cycle`, out of
    /// `total` admitted — the contract the workload builder implements
    /// and the ramp tests check against.
    pub fn active_at(&self, total: usize, cycle: u64) -> usize {
        let mut active = 0;
        for s in &self.steps {
            if s.at_cycle <= cycle {
                active = (s.fraction * total as f64).round() as usize;
            }
        }
        active.min(total)
    }

    /// Activation cycle of connection `index` (admission order) out of
    /// `total`: the first breakpoint whose fraction covers it.
    pub fn activation_of(&self, total: usize, index: usize) -> u64 {
        for s in &self.steps {
            if index < ((s.fraction * total as f64).round() as usize).min(total) {
                return s.at_cycle;
            }
        }
        self.steps.last().map(|s| s.at_cycle).unwrap_or(0)
    }
}

/// A churn window: a fraction of the base connections depart during the
/// window and a fraction of extra connections arrive, both spread
/// deterministically across `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// First router cycle of the churn window.
    pub start: u64,
    /// One past the last router cycle of the window.
    pub end: u64,
    /// Fraction of the base connections that depart during the window.
    pub departures: f64,
    /// Extra offered load arriving during the window, as a fraction of
    /// the base target load (the arrivals go through the CAC like any
    /// other admission request).
    pub arrivals: f64,
}

/// The traffic side of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's CBR mix (64 Kbps / 1.54 Mbps / 55 Mbps, equal pick
    /// probability) at a target offered load.
    Cbr {
        /// Target offered load per input link, fraction of link bandwidth.
        target_load: f64,
    },
    /// MPEG-2 VBR streams at a target generated load.
    Vbr {
        /// Target generated load per input link.
        target_load: f64,
        /// GOPs per connection (paper: 4).
        gops: usize,
        /// Injection model.
        injection: InjectionKind,
        /// Enforce the peak-bandwidth admission test (§2).
        enforce_peak: bool,
    },
    /// A declarative CBR class mix (workload-language packs): arbitrary
    /// `(class, rate, weight)` groups with optional ramp and churn
    /// schedules.
    Mix {
        /// Target offered load per input link.
        target_load: f64,
        /// Connection groups.
        groups: Vec<MixGroup>,
        /// Optional activation ramp.
        ramp: Option<RampScheduleConfig>,
        /// Optional churn window.
        churn: Option<ChurnConfig>,
    },
}

impl WorkloadSpec {
    /// CBR mix at `target_load`.
    pub fn cbr(target_load: f64) -> Self {
        WorkloadSpec::Cbr { target_load }
    }

    /// VBR at `target_load` with the paper's defaults (4 GOPs, SR, no
    /// peak test).
    pub fn vbr(target_load: f64, injection: InjectionKind) -> Self {
        WorkloadSpec::Vbr {
            target_load,
            gops: 4,
            injection,
            enforce_peak: false,
        }
    }

    /// The configured target load.
    pub fn target_load(&self) -> f64 {
        match *self {
            WorkloadSpec::Cbr { target_load }
            | WorkloadSpec::Vbr { target_load, .. }
            | WorkloadSpec::Mix { target_load, .. } => target_load,
        }
    }

    /// With a different target load (for sweeps).
    pub fn with_load(&self, load: f64) -> Self {
        let mut s = self.clone();
        match &mut s {
            WorkloadSpec::Cbr { target_load }
            | WorkloadSpec::Vbr { target_load, .. }
            | WorkloadSpec::Mix { target_load, .. } => *target_load = load,
        }
        s
    }
}

/// How long to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunLength {
    /// Exactly this many flit cycles (CBR experiments).
    Cycles(u64),
    /// Until every finite source is exhausted and all buffers drain, with
    /// a safety bound (VBR experiments: "four complete GOPs from every
    /// connection have been forwarded").
    UntilDrained {
        /// Hard upper bound in flit cycles.
        max_cycles: u64,
    },
}

/// Unreserved best-effort background traffic added on top of the
/// reserved workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BestEffortSpec {
    /// Offered best-effort load per input link (fraction of link
    /// bandwidth, on top of the reserved load).
    pub per_link_load: f64,
    /// Mean message length in flits.
    pub mean_flits: f64,
}

impl Default for BestEffortSpec {
    fn default() -> Self {
        BestEffortSpec {
            per_link_load: 0.1,
            mean_flits: 8.0,
        }
    }
}

/// Fault injection for a simulation: the randomized schedule to generate
/// and the router's detection/recovery policy.
///
/// The concrete [`mmr_sim::fault::FaultPlan`] is derived at build time
/// from the plan config, the router geometry, and a stream split off the
/// master seed — so a `(SimConfig, seed)` pair fully determines the chaos
/// run and it replays bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Randomized fault-schedule parameters.
    pub plan: FaultPlanConfig,
    /// Detection/recovery policy.
    pub profile: FaultProfile,
}

impl FaultSpec {
    /// A copy with every fault rate multiplied by `factor` (the x-axis of
    /// fault-rate sweeps).
    pub fn scaled(&self, factor: f64) -> Self {
        FaultSpec {
            plan: self.plan.scaled(factor),
            profile: self.profile,
        }
    }
}

/// Telemetry for a simulation: arming parameters for the router's
/// counter registry, stage profiler, flight recorder, and snapshot
/// windows.  Mirrors [`TelemetryConfig`] so it serializes alongside the
/// rest of the config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Flit cycles per snapshot window (0 disables windowing).
    pub snapshot_interval: u64,
    /// Flight-recorder capacity in events (0 disables tracing).
    pub trace_capacity: usize,
    /// Maximum retained snapshot windows.
    pub max_snapshots: usize,
    /// Measure stage wall time with a real clock (sacrifices report
    /// determinism for the wall-time fields only).
    pub wall_clock: bool,
    /// Arm the QoS observatory (per-class/per-connection delay, jitter
    /// and residency histograms plus SLO tracking).
    pub observatory: bool,
    /// Delay bound in router cycles for SLO violation counting
    /// (0 disables the bound; best-effort traffic is always exempt).
    pub slo_delay_bound_rc: u64,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        let d = TelemetryConfig::default();
        TelemetrySpec {
            snapshot_interval: d.snapshot_interval,
            trace_capacity: d.trace_capacity,
            max_snapshots: d.max_snapshots,
            wall_clock: d.wall_clock,
            observatory: d.observatory,
            slo_delay_bound_rc: d.slo_delay_bound_rc,
        }
    }
}

impl TelemetrySpec {
    /// The router-side arming config this spec describes.
    pub fn to_config(self) -> TelemetryConfig {
        TelemetryConfig {
            snapshot_interval: self.snapshot_interval,
            trace_capacity: self.trace_capacity,
            max_snapshots: self.max_snapshots,
            wall_clock: self.wall_clock,
            observatory: self.observatory,
            slo_delay_bound_rc: self.slo_delay_bound_rc,
        }
    }
}

/// Multi-router fabric geometry (the paper-§6 extension at scale).
///
/// When present on a [`SimConfig`], fabric experiments instantiate this
/// topology of MMRs instead of the single router; the workload builders
/// target the fabric's flat host-port space
/// ([`Topology::workload_ports`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// Topology to instantiate.
    pub topology: Topology,
    /// Inter-node link latency in flit cycles (also the epoch length of
    /// the sharded executor).
    pub link_latency: u64,
    /// Host (injection/ejection) links per router (ring/mesh/torus).
    pub host_ports: usize,
    /// Worker threads for fabric execution.  Results are bit-identical
    /// for every value, so this is a performance knob, not a semantic
    /// one.
    pub workers: usize,
}

impl FabricSpec {
    /// A spec for `topology` with the fabric defaults (single-cycle line
    /// links, 4-cycle links otherwise, one host port, one worker).
    pub fn new(topology: Topology) -> Self {
        let d = FabricConfig::new(RouterConfig::default(), topology);
        FabricSpec {
            topology,
            link_latency: d.link_latency,
            host_ports: d.host_ports,
            workers: 1,
        }
    }

    /// A copy with a different worker count.
    pub fn with_workers(self, workers: usize) -> Self {
        FabricSpec { workers, ..self }
    }

    /// The router-side fabric config this spec describes.
    pub fn to_config(self, router: RouterConfig) -> FabricConfig {
        FabricConfig {
            router,
            topology: self.topology,
            link_latency: self.link_latency,
            host_ports: self.host_ports,
        }
    }
}

/// Which engine loop drives the simulation.
///
/// Both produce bit-identical results (`ExperimentResult`, RNG stream
/// position, armed telemetry reports) — the horizon loop just covers
/// quiescent stretches in O(1) instead of stepping them.  See DESIGN.md
/// §12 for the contract; cycle-by-cycle exists as the reference loop and
/// as a differential-testing oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// Event-horizon loop: fast-forward across quiescent cycles (the
    /// default).
    EventHorizon,
    /// Naive reference loop: execute every flit cycle.
    CycleByCycle,
}

/// A complete, reproducible description of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Router geometry/timing.
    pub router: RouterConfig,
    /// Traffic.
    pub workload: WorkloadSpec,
    /// Optional best-effort background traffic.
    pub best_effort: Option<BestEffortSpec>,
    /// Switch scheduler under test.
    pub arbiter: ArbiterKind,
    /// Link-priority function.
    pub priority: PriorityKind,
    /// Master seed (workload construction and arbitration tie-breaks).
    pub seed: u64,
    /// Warm-up flit cycles excluded from statistics.
    pub warmup_cycles: u64,
    /// Run length.
    pub run: RunLength,
    /// Optional fault injection (chaos experiments).
    pub fault: Option<FaultSpec>,
    /// Optional telemetry arming (observability; `None` keeps the router
    /// fully disarmed).  Missing in older serialized configs — tolerated
    /// as `None`.
    pub telemetry: Option<TelemetrySpec>,
    /// Engine loop override.  `None` (also what older serialized configs
    /// deserialize to) means [`EngineMode::EventHorizon`]; set
    /// `Some(EngineMode::CycleByCycle)` to force the naive reference
    /// loop.
    pub engine: Option<EngineMode>,
    /// Optional multi-router fabric geometry.  `None` (also what older
    /// serialized configs deserialize to) keeps the single-router model;
    /// `Some` routes fabric experiments through
    /// [`mmr_router::fabric::Fabric`].
    pub fabric: Option<FabricSpec>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            router: RouterConfig::default(),
            workload: WorkloadSpec::cbr(0.5),
            best_effort: None,
            arbiter: ArbiterKind::Coa,
            priority: PriorityKind::Siabp,
            seed: 0xB1ACA,
            warmup_cycles: 2_000,
            run: RunLength::Cycles(50_000),
            fault: None,
            telemetry: None,
            engine: None,
            fabric: None,
        }
    }
}

impl SimConfig {
    /// A copy with a different load.
    pub fn with_load(&self, load: f64) -> Self {
        SimConfig {
            workload: self.workload.with_load(load),
            ..self.clone()
        }
    }

    /// A copy with a different arbiter.
    pub fn with_arbiter(&self, arbiter: ArbiterKind) -> Self {
        SimConfig {
            arbiter,
            ..self.clone()
        }
    }

    /// A copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        SimConfig {
            seed,
            ..self.clone()
        }
    }

    /// A copy with fault injection enabled (or reconfigured).
    pub fn with_fault(&self, fault: FaultSpec) -> Self {
        SimConfig {
            fault: Some(fault),
            ..self.clone()
        }
    }

    /// A copy with telemetry armed (or re-armed).
    pub fn with_telemetry(&self, telemetry: TelemetrySpec) -> Self {
        SimConfig {
            telemetry: Some(telemetry),
            ..self.clone()
        }
    }

    /// A copy forcing a particular engine loop.
    pub fn with_engine(&self, engine: EngineMode) -> Self {
        SimConfig {
            engine: Some(engine),
            ..self.clone()
        }
    }

    /// A copy with a multi-router fabric geometry.
    pub fn with_fabric(&self, fabric: FabricSpec) -> Self {
        SimConfig {
            fabric: Some(fabric),
            ..self.clone()
        }
    }

    /// The effective engine mode (`None` defaults to the horizon loop).
    pub fn engine_mode(&self) -> EngineMode {
        self.engine.unwrap_or(EngineMode::EventHorizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_load_changes_only_load() {
        let base = SimConfig::default();
        let hot = base.with_load(0.9);
        assert_eq!(hot.workload.target_load(), 0.9);
        assert_eq!(hot.arbiter, base.arbiter);
        assert_eq!(hot.seed, base.seed);
    }

    #[test]
    fn vbr_spec_load_update() {
        let v = WorkloadSpec::vbr(0.5, InjectionKind::BackToBack);
        let v2 = v.with_load(0.8);
        assert_eq!(v2.target_load(), 0.8);
        match v2 {
            WorkloadSpec::Vbr {
                gops,
                injection,
                enforce_peak,
                ..
            } => {
                assert_eq!(gops, 4);
                assert_eq!(injection, InjectionKind::BackToBack);
                assert!(!enforce_peak);
            }
            _ => panic!("kind changed"),
        }
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = SimConfig::default().with_arbiter(ArbiterKind::Islip { iterations: 3 });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn fault_spec_roundtrips_and_scales() {
        let cfg = SimConfig::default().with_fault(FaultSpec::default());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        let fs = FaultSpec::default().scaled(3.0);
        assert_eq!(
            fs.plan.corrupt_per_kcycle,
            FaultPlanConfig::default().corrupt_per_kcycle * 3.0
        );
        assert_eq!(fs.profile, FaultProfile::default());
    }

    #[test]
    fn engine_mode_defaults_to_horizon_and_roundtrips() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.engine, None);
        assert_eq!(cfg.engine_mode(), EngineMode::EventHorizon);
        let forced = cfg.with_engine(EngineMode::CycleByCycle);
        assert_eq!(forced.engine_mode(), EngineMode::CycleByCycle);
        let json = serde_json::to_string(&forced).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, forced);
    }

    #[test]
    fn legacy_configs_without_engine_field_deserialize() {
        // Serialized configs from before the engine and fabric fields
        // existed must still load, defaulting to the horizon loop and
        // the single-router model.
        let json = serde_json::to_string(&SimConfig::default()).unwrap();
        let legacy = json
            .replace(",\"engine\":null", "")
            .replace(",\"fabric\":null", "");
        assert_ne!(legacy, json, "fixture must actually drop the fields");
        let back: SimConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.engine, None);
        assert_eq!(back.engine_mode(), EngineMode::EventHorizon);
        assert_eq!(back.fabric, None);
    }

    #[test]
    fn fabric_spec_roundtrips() {
        let spec = FabricSpec::new(Topology::Mesh { x: 4, y: 4 }).with_workers(8);
        assert_eq!(spec.link_latency, 4);
        assert_eq!(spec.host_ports, 1);
        let cfg = SimConfig::default().with_fabric(spec);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        let fc = spec.to_config(cfg.router);
        assert_eq!(fc.topology.node_count(), 16);
        // Line specs keep the historical single-cycle hop latency.
        assert_eq!(
            FabricSpec::new(Topology::Line { stages: 3 }).link_latency,
            1
        );
    }

    #[test]
    fn injection_labels() {
        assert_eq!(InjectionKind::SmoothRate.label(), "SR");
        assert_eq!(InjectionKind::BackToBack.label(), "BB");
    }
}
