//! Canned configurations reproducing each experiment of the paper.
//!
//! Every figure has a [`Fidelity::Quick`] variant (seconds; used by tests
//! and CI) and a [`Fidelity::Full`] variant (minutes; used by the bench
//! binaries that regenerate the figures).  The quick variants use shorter
//! runs and fewer GOPs but identical structure, so shapes are preserved —
//! only statistical smoothness differs.

use crate::config::{
    BestEffortSpec, FabricSpec, FaultSpec, InjectionKind, RunLength, SimConfig, WorkloadSpec,
};
use crate::sweep::SweepSpec;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_router::fabric::Topology;
use mmr_router::fault::FaultProfile;
use mmr_sim::fault::FaultPlanConfig;

/// How much simulation to spend per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Short runs for tests and smoke checks.
    Quick,
    /// Paper-scale runs for figure regeneration.
    Full,
}

/// Flit cycles needed for `gops` GOPs (15 frames × 33 ms each) plus a
/// drain margin.
pub fn vbr_cycle_budget(gops: usize) -> u64 {
    let tb = mmr_sim::time::TimeBase::default();
    let frames = gops as u64 * mmr_traffic::mpeg::GOP_PATTERN.len() as u64;
    let per_frame = (mmr_traffic::mpeg::FRAME_TIME_SECS / tb.flit_cycle_secs()).ceil() as u64;
    // 3x margin: GOP-phase offsets plus post-saturation drain.
    frames * per_frame * 3
}

/// Fig. 5 — average flit delay vs offered load, CBR mix, COA vs WFA.
pub fn fig5(fidelity: Fidelity) -> SweepSpec {
    let (warmup, cycles, loads): (u64, u64, Vec<f64>) = match fidelity {
        Fidelity::Quick => (2_000, 25_000, vec![0.3, 0.5, 0.7, 0.8, 0.9]),
        Fidelity::Full => (
            20_000,
            400_000,
            vec![
                0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9,
            ],
        ),
    };
    let base = SimConfig {
        workload: WorkloadSpec::cbr(0.5),
        warmup_cycles: warmup,
        run: RunLength::Cycles(cycles),
        ..Default::default()
    };
    SweepSpec::coa_vs_wfa(base, loads)
}

/// Figs. 8 & 9 — VBR (MPEG-2) sweeps; `injection` selects the SR or BB
/// panel.  Fig. 8 reads crossbar utilization off the results, Fig. 9 the
/// frame delay — same runs.
pub fn fig8_fig9(injection: InjectionKind, fidelity: Fidelity) -> SweepSpec {
    let (gops, loads): (usize, Vec<f64>) = match fidelity {
        Fidelity::Quick => (1, vec![0.4, 0.6, 0.75, 0.85]),
        Fidelity::Full => (
            4,
            vec![0.4, 0.5, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95],
        ),
    };
    let base = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.5,
            gops,
            injection,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(gops),
        },
        ..Default::default()
    };
    SweepSpec::coa_vs_wfa(base, loads)
}

/// §5.2 jitter measurements reuse the Fig. 9 runs.
pub fn jitter(injection: InjectionKind, fidelity: Fidelity) -> SweepSpec {
    fig8_fig9(injection, fidelity)
}

/// Arbiter-field comparison (ablation): all schedulers on the CBR mix.
pub fn arbiter_field(fidelity: Fidelity) -> SweepSpec {
    let mut spec = fig5(fidelity);
    spec.arbiters = ArbiterKind::all();
    spec
}

/// The fabric scaling scenario backing the BENCH fabric section and CI
/// gate: a 4×4 mesh of MMRs (16 routers) under the CBR mix at load 0.6,
/// measured at several worker counts.  Results are bit-identical across
/// worker counts; only wall-clock differs.
pub fn fabric_mesh(fidelity: Fidelity) -> SimConfig {
    let (warmup, cycles): (u64, u64) = match fidelity {
        Fidelity::Quick => (1_000, 15_000),
        Fidelity::Full => (5_000, 60_000),
    };
    SimConfig {
        workload: WorkloadSpec::cbr(0.6),
        warmup_cycles: warmup,
        run: RunLength::Cycles(cycles),
        ..Default::default()
    }
    .with_fabric(FabricSpec::new(Topology::Mesh { x: 4, y: 4 }))
}

/// A chaos experiment: one base configuration plus the fault-rate
/// multipliers to sweep (factor 0 generates an empty plan — the
/// fault-free baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Base configuration; `fault` holds the factor-1 [`FaultSpec`].
    pub base: SimConfig,
    /// Fault-rate multipliers to visit, in order.
    pub factors: Vec<f64>,
}

impl ChaosSpec {
    /// One config per factor, each with its fault rates scaled.
    pub fn configs(&self) -> Vec<SimConfig> {
        let fault = self.base.fault.unwrap_or_default();
        self.factors
            .iter()
            .map(|&f| self.base.with_fault(fault.scaled(f)))
            .collect()
    }
}

/// QoS under fault injection: a CBR mix with best-effort background
/// traffic, a mid-run fault window, and delay-bound accounting, swept
/// over fault-rate multipliers.  Guaranteed connections should hold their
/// bounds while best-effort absorbs the damage (DESIGN.md §10).
pub fn chaos(fidelity: Fidelity) -> ChaosSpec {
    let (cycles, window_start, window_len, factors): (u64, u64, u64, Vec<f64>) = match fidelity {
        Fidelity::Quick => (20_000, 5_000, 10_000, vec![0.0, 1.0, 4.0]),
        Fidelity::Full => (
            80_000,
            10_000,
            40_000,
            vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
        ),
    };
    let base = SimConfig {
        workload: WorkloadSpec::cbr(0.5),
        best_effort: Some(BestEffortSpec::default()),
        warmup_cycles: 0,
        run: RunLength::Cycles(cycles),
        fault: Some(FaultSpec {
            plan: FaultPlanConfig {
                window_start,
                window_len,
                ..Default::default()
            },
            profile: FaultProfile {
                delay_bound_flit_cycles: Some(64),
                ..Default::default()
            },
        }),
        ..Default::default()
    };
    ChaosSpec { base, factors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vbr_budget_covers_gops() {
        // 4 GOPs = 60 frames x ~39,950 flit cycles/frame ≈ 2.4M; with 3x
        // margin the budget lands around 7M.
        let b = vbr_cycle_budget(4);
        assert!(b > 2_400_000 * 2 && b < 2_400_000 * 4, "budget {b}");
    }

    #[test]
    fn fig5_spec_is_coa_vs_wfa() {
        let s = fig5(Fidelity::Quick);
        assert_eq!(s.arbiters, vec![ArbiterKind::Coa, ArbiterKind::Wfa]);
        assert!(s.loads.len() >= 4);
        assert!(matches!(s.base.run, RunLength::Cycles(_)));
    }

    #[test]
    fn fig8_spec_drains_vbr() {
        let s = fig8_fig9(InjectionKind::BackToBack, Fidelity::Quick);
        match &s.base.workload {
            WorkloadSpec::Vbr {
                injection, gops, ..
            } => {
                assert_eq!(*injection, InjectionKind::BackToBack);
                assert!(*gops >= 1);
            }
            _ => panic!("wrong workload kind"),
        }
        assert!(matches!(s.base.run, RunLength::UntilDrained { .. }));
    }

    #[test]
    fn full_fidelity_is_strictly_larger() {
        let q = fig5(Fidelity::Quick);
        let f = fig5(Fidelity::Full);
        assert!(f.loads.len() > q.loads.len());
        let (RunLength::Cycles(qc), RunLength::Cycles(fc)) = (q.base.run, f.base.run) else {
            panic!()
        };
        assert!(fc > qc);
    }

    #[test]
    fn arbiter_field_covers_all() {
        let s = arbiter_field(Fidelity::Quick);
        assert_eq!(s.arbiters.len(), ArbiterKind::all().len());
    }

    #[test]
    fn fabric_scenario_is_a_16_router_mesh_at_load_0_6() {
        let cfg = fabric_mesh(Fidelity::Quick);
        let spec = cfg.fabric.expect("fabric scenario carries a spec");
        assert_eq!(spec.topology.node_count(), 16);
        assert_eq!(cfg.workload.target_load(), 0.6);
        let full = fabric_mesh(Fidelity::Full);
        let (RunLength::Cycles(q), RunLength::Cycles(f)) = (cfg.run, full.run) else {
            panic!()
        };
        assert!(f > q);
    }

    #[test]
    fn chaos_spec_scales_fault_rates_per_factor() {
        let s = chaos(Fidelity::Quick);
        assert_eq!(s.factors[0], 0.0, "first factor is the clean baseline");
        let configs = s.configs();
        assert_eq!(configs.len(), s.factors.len());
        let base_rate = s.base.fault.unwrap().plan.corrupt_per_kcycle;
        for (cfg, &f) in configs.iter().zip(&s.factors) {
            let fault = cfg.fault.expect("every chaos config carries faults");
            assert_eq!(fault.plan.corrupt_per_kcycle, base_rate * f);
            assert_eq!(fault.profile.delay_bound_flit_cycles, Some(64));
            // Only fault rates vary across the sweep.
            assert_eq!(cfg.workload, s.base.workload);
            assert_eq!(cfg.seed, s.base.seed);
        }
    }
}
