//! Machine-checked paper conformance: typed claims over experiment curves.
//!
//! EXPERIMENTS.md records what of the paper reproduces, but as prose — no
//! test fails when a refactor silently bends a figure's *shape*.  This
//! module turns each figure/table claim into a typed, tolerance-bounded
//! [`Check`] evaluated over a **multi-seed ensemble** of experiment runs,
//! so the reproduction is guarded by `cargo test` and `scripts/ci.sh`
//! rather than by a human re-reading result files.
//!
//! Methodology (DESIGN.md §13):
//!
//! * every check reduces one seed's curves to a single scalar (a
//!   saturation gap in load points, a delay in µs, a worst-case ratio …);
//! * the scalar is computed independently per seed, and the claim passes
//!   or fails on the **ensemble median**, with the min/max spread
//!   reported alongside — one noisy seed (the paper's own single-seed
//!   methodology suffered exactly this) cannot flip a claim;
//! * thresholds are calibrated to hold in both quick and full fidelity
//!   with margin, and every margin is reported so a shrinking margin is
//!   visible before it becomes a failure.
//!
//! The committed claim manifest is [`paper_claims`]; `conformance_report`
//! (mmr-bench) evaluates it and writes `results/conformance.json`, and
//! `tests/conformance.rs` pins it in tier-1.

use crate::config::{InjectionKind, RunLength, SimConfig};
use crate::experiment::ExperimentResult;
use crate::saturation::{detect_saturation, ExperimentCache, SaturationCriteria};
use crate::scenarios::{self, Fidelity};
use crate::sweep::{group_points, SweepPoint, SweepSpec};
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_sim::rng::SimRng;
use mmr_sim::time::TimeBase;
use mmr_traffic::connection::{ConnectionId, TrafficClass};
use mmr_traffic::injection::InjectionModel;
use mmr_traffic::mpeg::{standard_sequences, FrameType, MpegTrace, FRAME_TIME_SECS, GOP_PATTERN};
use mmr_traffic::source::TrafficSource;
use mmr_traffic::vbr::VbrSource;
use serde::{Deserialize, Serialize};

/// Which figure or table of the paper a claim guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure {
    /// Fig. 5 — CBR flit delay vs offered load.
    Fig5,
    /// Fig. 7 — VBR injection models.
    Fig7,
    /// Fig. 8 — VBR crossbar utilization vs generated load.
    Fig8,
    /// Fig. 9 — VBR frame delay vs generated load.
    Fig9,
    /// Table 1 — MPEG-2 sequence statistics.
    Table1,
    /// Beyond-the-paper arbiter frontier ablation (EXPERIMENTS.md
    /// "Frontier"): COA measured against the MWM oracle, the greedy
    /// ½-approximation, frame-based fair and crosspoint-queued designs.
    Frontier,
}

impl Figure {
    /// Human label as used in EXPERIMENTS.md.
    pub fn label(self) -> &'static str {
        match self {
            Figure::Fig5 => "Fig. 5",
            Figure::Fig7 => "Fig. 7",
            Figure::Fig8 => "Fig. 8",
            Figure::Fig9 => "Fig. 9",
            Figure::Table1 => "Table 1",
            Figure::Frontier => "Frontier",
        }
    }
}

/// Which ensemble sweep a curve check reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Panel {
    /// The Fig. 5 CBR load sweep.
    Fig5Cbr,
    /// The Fig. 8/9 VBR sweep, Smooth-Rate injection.
    Fig9Sr,
    /// The Fig. 8/9 VBR sweep, Back-to-Back injection.
    Fig9Bb,
    /// The frontier-ablation CBR sweep: the Fig. 5 workload swept over
    /// the full arbiter frontier (COA, WFA, iSLIP, MWM exact + approx,
    /// frame-fair, crosspoint-queued).
    FrontierCbr,
}

/// Scalar a curve check reads off one experiment result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CurveMetric {
    /// Mean flit delay since generation for a class, µs (Fig. 5).
    ClassDelayUs(TrafficClass),
    /// Mean frame delay since generation, µs (Fig. 9).
    FrameDelayUs,
    /// Crossbar utilization within the generation window, percent
    /// (Fig. 8).
    WindowUtilizationPct,
    /// Delivered/generated flits over the whole run.
    ThroughputRatio,
}

impl CurveMetric {
    /// Extract the metric from one seed's result.
    pub fn of(self, r: &ExperimentResult) -> f64 {
        match self {
            CurveMetric::ClassDelayUs(class) => r
                .summary
                .metrics
                .class(class)
                .map(|c| c.mean_delay_us)
                .unwrap_or(0.0),
            CurveMetric::FrameDelayUs => r.summary.metrics.mean_frame_delay_us,
            CurveMetric::WindowUtilizationPct => r.summary.generation_window_utilization() * 100.0,
            CurveMetric::ThroughputRatio => r.summary.throughput_ratio(),
        }
    }
}

/// A machine-checkable assertion about the reproduction.
///
/// Each variant reduces one seed's data to a scalar `measured` value and
/// carries the threshold it must meet; [`Claim::evaluate`] takes the
/// ensemble median of `measured` and compares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Check {
    /// `winner` saturates at least `min_points` load points (percent of
    /// link bandwidth) later than `loser`, judged on `metric` with the
    /// default [`SaturationCriteria`].  A series that never saturates in
    /// the sweep range counts as saturating at its last measured load
    /// (a conservative lower bound on the gap).
    SaturationGap {
        /// Sweep the check reads.
        panel: Panel,
        /// Delay metric saturation is judged on.
        metric: CurveMetric,
        /// Arbiter the paper says lasts longer.
        winner: ArbiterKind,
        /// Arbiter the paper says collapses first.
        loser: ArbiterKind,
        /// Minimum gap, in load points (1 point = 1% of link bandwidth).
        min_points: f64,
    },
    /// `metric` for `arbiter` at the grid point `at_load` is at most
    /// `max_value`.
    DelayBelow {
        /// Sweep the check reads.
        panel: Panel,
        /// Metric bounded.
        metric: CurveMetric,
        /// Arbiter measured.
        arbiter: ArbiterKind,
        /// Target load of the grid point.
        at_load: f64,
        /// Inclusive upper bound (metric units).
        max_value: f64,
    },
    /// At `at_load`, `worse`'s metric is at least `min_factor` times
    /// `better`'s — the paper's "WFA collapses while COA holds".
    WorseBy {
        /// Sweep the check reads.
        panel: Panel,
        /// Metric compared.
        metric: CurveMetric,
        /// The arbiter with the lower (better) value.
        better: ArbiterKind,
        /// The arbiter with the higher (worse) value.
        worse: ArbiterKind,
        /// Target load of the grid point.
        at_load: f64,
        /// Minimum worse/better ratio.
        min_factor: f64,
    },
    /// For every grid point with load ≤ `until_load`, the two arbiters'
    /// metrics are within `max_factor` of each other (paper: "similar
    /// performance" below saturation).
    WithinFactor {
        /// Sweep the check reads.
        panel: Panel,
        /// Metric compared.
        metric: CurveMetric,
        /// First arbiter.
        a: ArbiterKind,
        /// Second arbiter.
        b: ArbiterKind,
        /// Load prefix checked (inclusive).
        until_load: f64,
        /// Maximum allowed max(a/b, b/a) over the prefix.
        max_factor: f64,
    },
    /// `metric` is non-decreasing in load over the prefix, within slack:
    /// every consecutive step ratio `next/prev` stays at least
    /// `min_step_ratio` (1.0 = strictly monotone; 0.8 tolerates 20%
    /// statistical dips).
    MonotoneDelay {
        /// Sweep the check reads.
        panel: Panel,
        /// Metric checked.
        metric: CurveMetric,
        /// Arbiter measured.
        arbiter: ArbiterKind,
        /// Load prefix checked (inclusive).
        until_load: f64,
        /// Minimum allowed consecutive step ratio.
        min_step_ratio: f64,
    },
    /// Delivered/generated stays at or above `min_ratio` for every grid
    /// point with load ≤ `until_load` (Fig. 8's measured "no throughput
    /// knee" deviation record).
    ThroughputFloor {
        /// Sweep the check reads.
        panel: Panel,
        /// Arbiter measured.
        arbiter: ArbiterKind,
        /// Load prefix checked (inclusive).
        until_load: f64,
        /// Minimum delivered/generated ratio.
        min_ratio: f64,
    },
    /// Window utilization scales with generated load: the ratio
    /// `util(hi)/util(lo)` divided by `load(hi)/load(lo)` is at least
    /// `min_ratio_of_ratios` (Fig. 8's overlap region tracks load).
    UtilizationScales {
        /// Sweep the check reads.
        panel: Panel,
        /// Arbiter measured.
        arbiter: ArbiterKind,
        /// Lower grid load.
        lo_load: f64,
        /// Higher grid load.
        hi_load: f64,
        /// Minimum (util ratio)/(load ratio).
        min_ratio_of_ratios: f64,
    },
    /// One-sided factor bound over a load prefix: at every grid point
    /// with load ≤ `until_load`, `numerator`'s metric stays at most
    /// `max_ratio` times `denominator`'s.  Unlike [`Check::WithinFactor`]
    /// the denominator may be arbitrarily better — this is "A never falls
    /// more than `max_ratio`× behind B", the frontier's COA-vs-oracle
    /// question.
    AtMostRatio {
        /// Sweep the check reads.
        panel: Panel,
        /// Metric compared.
        metric: CurveMetric,
        /// The arbiter whose metric is bounded.
        numerator: ArbiterKind,
        /// The arbiter providing the reference value.
        denominator: ArbiterKind,
        /// Load prefix checked (inclusive).
        until_load: f64,
        /// Maximum allowed numerator/denominator at any prefix point.
        max_ratio: f64,
    },
    /// `oracle` is the panel's performance floor: at every grid point
    /// with load ≤ `until_load`, its metric stays within `slack`× of the
    /// best (lowest) value ANY arbiter in the panel achieves there.
    DelayFloor {
        /// Sweep the check reads.
        panel: Panel,
        /// Metric compared.
        metric: CurveMetric,
        /// The arbiter claimed to be (near-)optimal.
        oracle: ArbiterKind,
        /// Load prefix checked (inclusive).
        until_load: f64,
        /// Maximum allowed oracle/best ratio over the prefix.
        slack: f64,
    },
    /// Back-to-Back injection: at least `min_mass` of frame-0's flits are
    /// emitted within the first `within_fraction` of the frame time
    /// (Fig. 7a: peak-rate burst, then idle).
    BurstConcentration {
        /// Prefix of the frame time considered, 0–1.
        within_fraction: f64,
        /// Minimum fraction of the frame's flits inside the prefix.
        min_mass: f64,
    },
    /// Smooth-Rate injection: flits land in at least `min_active_fraction`
    /// of the frame-time buckets (Fig. 7b: evenly spread).
    SmoothCoverage {
        /// Minimum fraction of non-empty buckets.
        min_active_fraction: f64,
    },
    /// Smooth-Rate injection: no bucket exceeds `max_peak_over_mean`
    /// times the mean bucket occupancy.
    SmoothPeak {
        /// Maximum allowed peak/mean bucket ratio.
        max_peak_over_mean: f64,
    },
    /// The per-frame rate profile of `sequence`'s trace is a sawtooth:
    /// within at least `min_peak_fraction` of the `period`-frame GOPs,
    /// the I-frame (phase 0) is the largest frame (Fig. 6's shape,
    /// Table 1's burst structure).
    Sawtooth {
        /// Index into [`standard_sequences`].
        sequence: usize,
        /// Expected GOP period in frames.
        period: usize,
        /// Minimum fraction of GOPs peaking at the I-frame.
        min_peak_fraction: f64,
    },
    /// Every sequence's measured average rate is within `factor`× of the
    /// calibrated Table 1 value (both directions).
    AvgRatesWithinFactor {
        /// Maximum allowed max(measured/target, target/measured) over all
        /// seven sequences.
        factor: f64,
    },
    /// I ≫ P ≫ B: for every sequence, mean I/P and P/B frame-size ratios
    /// are at least `min_ratio`.
    FrameTypeOrdering {
        /// Minimum allowed ratio at each step of the ordering.
        min_ratio: f64,
    },
}

/// One claim of the manifest: a check plus its identity and provenance.
#[derive(Debug, Clone, Copy)]
pub struct Claim {
    /// Stable identifier, referenced by EXPERIMENTS.md "enforced by"
    /// notes and by failure output.
    pub id: &'static str,
    /// Figure/table guarded.
    pub figure: Figure,
    /// What the paper (or our deviation record) asserts.
    pub description: &'static str,
    /// The executable check.
    pub check: Check,
}

/// Calibrated Table 1 average rates (Mbps) — the EXPERIMENTS.md record of
/// the synthetic substitution (4 GOPs, seed `0xB1ACA`), in
/// [`standard_sequences`] order.
pub const TABLE1_AVG_MBPS: [f64; 7] = [8.1, 7.5, 8.8, 18.9, 21.9, 12.1, 16.8];

/// The committed claim manifest: every figure/table claim the
/// reproduction enforces.  IDs are stable; EXPERIMENTS.md cross-references
/// them per figure.
pub fn paper_claims() -> Vec<Claim> {
    use ArbiterKind::{Coa, Wfa};
    let high = CurveMetric::ClassDelayUs(TrafficClass::CbrHigh);
    vec![
        // ---- Fig. 5: CBR flit delay, COA vs WFA -----------------------
        Claim {
            id: "fig5.saturation-gap",
            figure: Figure::Fig5,
            description: "COA saturates >= 8 load points later than WFA on the \
                          55 Mbps class (paper: ~13 points, measured full: ~14)",
            check: Check::SaturationGap {
                panel: Panel::Fig5Cbr,
                metric: high,
                winner: Coa,
                loser: Wfa,
                min_points: 8.0,
            },
        },
        Claim {
            id: "fig5.coa-high-delay-86",
            figure: Figure::Fig5,
            description: "COA holds the 55 Mbps class under 10 us mean flit delay \
                          at 86% offered load (measured full: 6.7 us)",
            check: Check::DelayBelow {
                panel: Panel::Fig5Cbr,
                metric: high,
                arbiter: Coa,
                at_load: 0.86,
                max_value: 10.0,
            },
        },
        Claim {
            id: "fig5.wfa-collapse-86",
            figure: Figure::Fig5,
            description: "WFA's 55 Mbps delay at 86% load is >= 10x COA's — \
                          utilization-only scheduling cannot guarantee QoS \
                          (measured full: ~220x)",
            check: Check::WorseBy {
                panel: Panel::Fig5Cbr,
                metric: high,
                better: Coa,
                worse: Wfa,
                at_load: 0.86,
                min_factor: 10.0,
            },
        },
        Claim {
            id: "fig5.low-class-parity",
            figure: Figure::Fig5,
            description: "the 64 Kbps class sees similar delay under both arbiters \
                          below saturation (within 3x up to 70% load)",
            check: Check::WithinFactor {
                panel: Panel::Fig5Cbr,
                metric: CurveMetric::ClassDelayUs(TrafficClass::CbrLow),
                a: Coa,
                b: Wfa,
                until_load: 0.7,
                max_factor: 3.0,
            },
        },
        Claim {
            id: "fig5.medium-class-parity",
            figure: Figure::Fig5,
            description: "the 1.54 Mbps class sees similar delay under both \
                          arbiters below saturation (within 3x up to 70% load)",
            check: Check::WithinFactor {
                panel: Panel::Fig5Cbr,
                metric: CurveMetric::ClassDelayUs(TrafficClass::CbrMedium),
                a: Coa,
                b: Wfa,
                until_load: 0.7,
                max_factor: 3.0,
            },
        },
        Claim {
            id: "fig5.coa-high-monotone",
            figure: Figure::Fig5,
            description: "COA's 55 Mbps delay curve rises with load (no \
                          consecutive drop below 0.7x up to 90% load)",
            check: Check::MonotoneDelay {
                panel: Panel::Fig5Cbr,
                metric: high,
                arbiter: Coa,
                until_load: 0.9,
                min_step_ratio: 0.7,
            },
        },
        // ---- Fig. 7: injection models ---------------------------------
        Claim {
            id: "fig7.bb-burst",
            figure: Figure::Fig7,
            description: "Back-to-Back emits >= 90% of a frame's flits within the \
                          first 40% of the frame time, then idles",
            check: Check::BurstConcentration {
                within_fraction: 0.4,
                min_mass: 0.9,
            },
        },
        Claim {
            id: "fig7.sr-coverage",
            figure: Figure::Fig7,
            description: "Smooth-Rate spreads a frame's flits across >= 80% of the \
                          frame time",
            check: Check::SmoothCoverage {
                min_active_fraction: 0.8,
            },
        },
        Claim {
            id: "fig7.sr-peak-bounded",
            figure: Figure::Fig7,
            description: "Smooth-Rate emission is even: no frame-time bucket \
                          exceeds 2x the mean",
            check: Check::SmoothPeak {
                max_peak_over_mean: 2.0,
            },
        },
        // ---- Fig. 8: VBR crossbar utilization -------------------------
        Claim {
            id: "fig8.overlap",
            figure: Figure::Fig8,
            description: "COA and WFA utilization curves coincide below \
                          saturation (within 5% up to 60% generated load)",
            check: Check::WithinFactor {
                panel: Panel::Fig9Sr,
                metric: CurveMetric::WindowUtilizationPct,
                a: Coa,
                b: Wfa,
                until_load: 0.6,
                max_factor: 1.05,
            },
        },
        Claim {
            id: "fig8.utilization-scales",
            figure: Figure::Fig8,
            description: "utilization tracks generated load in the overlap \
                          region (util ratio >= 85% of load ratio, 40% -> 60%)",
            check: Check::UtilizationScales {
                panel: Panel::Fig9Sr,
                arbiter: Coa,
                lo_load: 0.4,
                hi_load: 0.6,
                min_ratio_of_ratios: 0.85,
            },
        },
        Claim {
            id: "fig8.no-throughput-knee",
            figure: Figure::Fig8,
            description: "deviation record: our 4x4/k=4 crossbar delivers every \
                          generated flit through 85% load — the paper's knee does \
                          not reproduce; the schedulers differ in who waits",
            check: Check::ThroughputFloor {
                panel: Panel::Fig9Sr,
                arbiter: Coa,
                until_load: 0.85,
                min_ratio: 0.99,
            },
        },
        // ---- Fig. 9: VBR frame delay ----------------------------------
        Claim {
            id: "fig9.coa-low-delay",
            figure: Figure::Fig9,
            description: "COA keeps mean frame delay under 20 us at 60% generated \
                          load (SR; measured full: <= 8.7 us through 80%)",
            check: Check::DelayBelow {
                panel: Panel::Fig9Sr,
                metric: CurveMetric::FrameDelayUs,
                arbiter: Coa,
                at_load: 0.6,
                max_value: 20.0,
            },
        },
        Claim {
            id: "fig9.wfa-worse-at-85",
            figure: Figure::Fig9,
            description: "WFA's frame delay at 85% load is >= 2x COA's (SR; \
                          measured full: 4-22x near the knee, quick ensemble \
                          median ~2.9x)",
            check: Check::WorseBy {
                panel: Panel::Fig9Sr,
                metric: CurveMetric::FrameDelayUs,
                better: Coa,
                worse: Wfa,
                at_load: 0.85,
                min_factor: 2.0,
            },
        },
        Claim {
            id: "fig9.bb-above-sr",
            figure: Figure::Fig9,
            description: "Back-to-Back frame delays sit above Smooth-Rate's below \
                          saturation (>= 1.2x at 60% load, COA)",
            check: Check::WorseBy {
                panel: Panel::Fig9Bb,
                metric: CurveMetric::FrameDelayUs,
                better: Coa, // read from the SR panel — see evaluate()
                worse: Coa,
                at_load: 0.6,
                min_factor: 1.2,
            },
        },
        // ---- Table 1: MPEG-2 statistics -------------------------------
        Claim {
            id: "table1.rates-within-2x",
            figure: Figure::Table1,
            description: "every sequence's average rate is within 2x of the \
                          calibrated Table 1 value",
            check: Check::AvgRatesWithinFactor { factor: 2.0 },
        },
        Claim {
            id: "table1.frame-ordering",
            figure: Figure::Table1,
            description: "I >> P >> B: mean I/P and P/B frame-size ratios exceed \
                          1.1 for every sequence",
            check: Check::FrameTypeOrdering { min_ratio: 1.1 },
        },
        Claim {
            id: "table1.sawtooth",
            figure: Figure::Table1,
            description: "the Flower Garden trace is a 15-frame sawtooth: the \
                          I-frame is the GOP peak in >= 75% of GOPs",
            check: Check::Sawtooth {
                sequence: 3,
                period: GOP_PATTERN.len(),
                min_peak_fraction: 0.75,
            },
        },
        // ---- Frontier: COA vs the beyond-the-paper arbiters -----------
        Claim {
            id: "frontier.coa-within-factor-of-mwm",
            figure: Figure::Frontier,
            description: "COA's 55 Mbps delay never falls more than 3x behind the \
                          exact MWM oracle at any load through 86% — the paper's \
                          heuristic sits close to the optimality frontier \
                          (measured quick: median 1.7x)",
            check: Check::AtMostRatio {
                panel: Panel::FrontierCbr,
                metric: CurveMetric::ClassDelayUs(TrafficClass::CbrHigh),
                numerator: Coa,
                denominator: ArbiterKind::MwmExact,
                until_load: 0.86,
                max_ratio: 3.0,
            },
        },
        Claim {
            id: "frontier.mwm-delay-floor",
            figure: Figure::Frontier,
            description: "MWM-exact is the panel's delay floor: within 1.5x of the \
                          best 55 Mbps delay any arbiter posts through 70% load \
                          (measured quick: median 1.00)",
            check: Check::DelayFloor {
                panel: Panel::FrontierCbr,
                metric: CurveMetric::ClassDelayUs(TrafficClass::CbrHigh),
                oracle: ArbiterKind::MwmExact,
                until_load: 0.7,
                slack: 1.5,
            },
        },
        Claim {
            id: "frontier.mwm-approx-tracks-exact",
            figure: Figure::Frontier,
            description: "the greedy 1/2-approximation tracks the exact oracle on \
                          the 55 Mbps class (within 2x through 70% load; measured \
                          quick: median 1.09x)",
            check: Check::WithinFactor {
                panel: Panel::FrontierCbr,
                metric: CurveMetric::ClassDelayUs(TrafficClass::CbrHigh),
                a: ArbiterKind::MwmExact,
                b: ArbiterKind::MwmApprox,
                until_load: 0.7,
                max_factor: 2.0,
            },
        },
        Claim {
            id: "frontier.cq-no-hol-blocking",
            figure: Figure::Frontier,
            description: "crosspoint queueing removes HOL blocking: the CQ switch \
                          delivers >= 97% of generated flits through 86% load \
                          (measured quick: median 99.5%)",
            check: Check::ThroughputFloor {
                panel: Panel::FrontierCbr,
                arbiter: ArbiterKind::CrosspointQueued {
                    cap: mmr_arbiter::cq::DEFAULT_CAP,
                },
                until_load: 0.86,
                min_ratio: 0.97,
            },
        },
        Claim {
            id: "frontier.frame-fair-low-class-parity",
            figure: Figure::Frontier,
            description: "frame-based fairness does not starve the 64 Kbps class: \
                          its delay stays within 3x of COA's through 70% load \
                          (measured quick: median 1.48x)",
            check: Check::WithinFactor {
                panel: Panel::FrontierCbr,
                metric: CurveMetric::ClassDelayUs(TrafficClass::CbrLow),
                a: ArbiterKind::FrameFair {
                    frame: mmr_arbiter::frame::DEFAULT_FRAME,
                },
                b: Coa,
                until_load: 0.7,
                max_factor: 3.0,
            },
        },
    ]
}

/// Outcome of evaluating one claim over the ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimOutcome {
    /// Claim identifier.
    pub id: String,
    /// Figure/table label.
    pub figure: String,
    /// Claim description.
    pub description: String,
    /// Did the ensemble median meet the threshold?
    pub pass: bool,
    /// Ensemble median of the per-seed measured scalar.
    pub median: f64,
    /// Minimum per-seed measured value.
    pub spread_min: f64,
    /// Maximum per-seed measured value.
    pub spread_max: f64,
    /// Per-seed measured values (ensemble order).
    pub per_seed: Vec<f64>,
    /// The threshold the median is compared against.
    pub threshold: f64,
    /// True if larger measured values are better (≥ threshold passes).
    pub higher_is_better: bool,
    /// Signed pass margin in the measured unit (positive = pass).
    pub margin: f64,
    /// Unit of the measured scalar (for reports).
    pub unit: String,
}

/// A full conformance evaluation: the report `conformance_report` writes
/// to `results/conformance.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// "quick" or "full".
    pub fidelity: String,
    /// Seeds of the CBR (Fig. 5, Fig. 7, Table 1) ensemble.
    pub cbr_seeds: Vec<u64>,
    /// Seeds of the VBR (Fig. 8/9) ensemble.
    pub vbr_seeds: Vec<u64>,
    /// Seeds of the frontier-ablation ensemble.
    pub frontier_seeds: Vec<u64>,
    /// Per-claim outcomes, manifest order.
    pub claims: Vec<ClaimOutcome>,
}

impl ConformanceReport {
    /// Claims that failed.
    pub fn failed(&self) -> Vec<&ClaimOutcome> {
        self.claims.iter().filter(|c| !c.pass).collect()
    }

    /// True when every claim passed.
    pub fn all_pass(&self) -> bool {
        self.claims.iter().all(|c| c.pass)
    }

    /// One line per claim: `PASS fig5.saturation-gap  14.63 >= 8 (margin +6.63)`.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for c in &self.claims {
            let op = if c.higher_is_better { ">=" } else { "<=" };
            s.push_str(&format!(
                "{} {:<28} [{}] {:.4} {} {:.4} (margin {:+.4} {}, seeds {:.4}..{:.4})\n",
                if c.pass { "PASS" } else { "FAIL" },
                c.id,
                c.figure,
                c.median,
                op,
                c.threshold,
                c.margin,
                c.unit,
                c.spread_min,
                c.spread_max,
            ));
        }
        s
    }
}

/// Deterministic seed ensemble: `seeds[0]` is `base` (the paper's seed),
/// the rest are splitmix64 successors so any two ensembles of the same
/// base share a prefix.
pub fn ensemble_seeds(base: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut state = base;
    out.push(base);
    for _ in 1..n {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        out.push(z ^ (z >> 31));
    }
    out
}

/// How the ensemble is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnsembleOptions {
    /// Run scale per point.
    pub fidelity: Fidelity,
    /// Seeds for the CBR ensemble (Fig. 5; also Fig. 7/Table 1 trace
    /// generation).  Default 5.
    pub cbr_seeds: usize,
    /// Seeds for the VBR ensemble (Fig. 8/9).  Default 5 in full
    /// fidelity; 3 in quick, where the drained-GOP runs dominate the
    /// suite's wall clock (DESIGN.md §13).
    pub vbr_seeds: usize,
    /// Seeds for the frontier-ablation ensemble.  Default 3: the panel
    /// runs 7 arbiters per grid point, and its COA/WFA cells dedupe
    /// against the Fig. 5 sweep through the experiment cache only
    /// because the frontier seeds are a prefix of the CBR seeds.
    pub frontier_seeds: usize,
    /// Worker threads for the sweep fan-out (`None` = one per core).
    pub workers: Option<usize>,
}

impl EnsembleOptions {
    /// Defaults for a fidelity: 5 CBR seeds, 5 (full) / 3 (quick) VBR
    /// seeds, 3 frontier seeds.
    pub fn new(fidelity: Fidelity) -> Self {
        EnsembleOptions {
            fidelity,
            cbr_seeds: 5,
            vbr_seeds: match fidelity {
                Fidelity::Quick => 3,
                Fidelity::Full => 5,
            },
            frontier_seeds: 3,
            workers: None,
        }
    }
}

/// The Fig. 5 sweep the conformance engine runs.
///
/// Quick mode uses longer runs than [`scenarios::fig5`]'s smoke grid —
/// 120k cycles instead of 25k — because the saturation gap only becomes
/// visible once WFA's backlog has had time to grow; both modes add the
/// 86% grid point the headline claims are pinned at.
pub fn fig5_conformance_spec(fidelity: Fidelity) -> SweepSpec {
    let mut spec = scenarios::fig5(fidelity);
    if fidelity == Fidelity::Quick {
        spec.base.warmup_cycles = 5_000;
        spec.base.run = RunLength::Cycles(120_000);
        spec.loads = vec![0.3, 0.5, 0.7, 0.76, 0.8, 0.86, 0.9];
    } else if !spec.loads.contains(&0.86) {
        spec.loads.push(0.86);
        spec.loads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    spec
}

/// The frontier-ablation sweep: the Fig. 5 CBR workload swept over the
/// full arbiter frontier.  The load grid is a subset of the Fig. 5
/// conformance grid in both fidelities, so the COA and WFA cells are
/// cache hits when the Fig. 5 ensemble has already run — only the five
/// beyond-the-paper arbiters simulate fresh points.
pub fn frontier_conformance_spec(fidelity: Fidelity) -> SweepSpec {
    let mut spec = fig5_conformance_spec(fidelity);
    spec.loads = vec![0.5, 0.7, 0.86];
    spec.arbiters = vec![
        ArbiterKind::Coa,
        ArbiterKind::Wfa,
        ArbiterKind::Islip { iterations: 2 },
        ArbiterKind::MwmExact,
        ArbiterKind::MwmApprox,
        ArbiterKind::FrameFair {
            frame: mmr_arbiter::frame::DEFAULT_FRAME,
        },
        ArbiterKind::CrosspointQueued {
            cap: mmr_arbiter::cq::DEFAULT_CAP,
        },
    ];
    spec
}

/// The Fig. 8/9 sweep the conformance engine runs for one injection
/// model.  Quick mode trims the load grid to the three points the claims
/// read (40/60/85%) to keep tier-1 wall clock in minutes.
pub fn fig9_conformance_spec(injection: InjectionKind, fidelity: Fidelity) -> SweepSpec {
    let mut spec = scenarios::fig8_fig9(injection, fidelity);
    if fidelity == Fidelity::Quick {
        spec.loads = vec![0.4, 0.6, 0.85];
    }
    spec
}

/// Run a sweep through the dedup cache: already-measured configs are
/// reused, the misses fan out through `sweep`'s parallel dispatch, and
/// the grouped points come back in spec order either way.
pub fn run_sweep_cached(
    spec: &SweepSpec,
    cache: &mut ExperimentCache,
    workers: Option<usize>,
) -> Vec<SweepPoint> {
    let configs = spec.configs();
    let results = cache.run_many(&configs, workers);
    group_points(spec, results)
}

/// Frame-time emission histogram of one injection model: frame-0 flits
/// bucketed into `slots` equal slices of the 33 ms frame time (the
/// Fig. 7 illustration, as data).
pub fn injection_histogram(model: InjectionModel, slots: usize, seed: u64) -> Vec<u32> {
    let tb = TimeBase::default();
    let mut rng = SimRng::seed_from_u64(seed);
    let trace = MpegTrace::generate(&standard_sequences()[0], 1, &tb, &mut rng);
    let mut src = VbrSource::new(
        ConnectionId(0),
        trace,
        model,
        mmr_sim::time::RouterCycle(0),
        &tb,
    );
    let frame_rc = FRAME_TIME_SECS / tb.router_cycle_secs();
    let mut buckets = vec![0u32; slots];
    while let Some(t) = src.peek_next() {
        let f = src.emit();
        if f.frame.expect("VBR flits carry frame info").index > 0 {
            break;
        }
        let slot = ((t.0 as f64 / frame_rc) * slots as f64) as usize;
        buckets[slot.min(slots - 1)] += 1;
    }
    buckets
}

/// The Fig. 7 Back-to-Back peak used by the conformance histograms —
/// sized ~3x a typical I frame so the burst visibly finishes early (same
/// calibration as the `fig7_injection_models` binary).
pub const FIG7_BB_PEAK_FLITS: u64 = 2_500;

/// Number of frame-time buckets in the Fig. 7 histograms.
pub const FIG7_SLOTS: usize = 40;

/// Everything the claims are evaluated against: the multi-seed sweeps
/// plus the trace/injection data, all deterministic functions of the
/// options and the base seed.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// CBR ensemble seeds.
    pub cbr_seeds: Vec<u64>,
    /// VBR ensemble seeds.
    pub vbr_seeds: Vec<u64>,
    /// Frontier-ablation seeds (a prefix of the CBR seeds).
    pub frontier_seeds: Vec<u64>,
    /// Fig. 5 sweep points (each point carries one result per CBR seed).
    pub fig5: Vec<SweepPoint>,
    /// Frontier-ablation sweep points (one result per frontier seed).
    pub frontier: Vec<SweepPoint>,
    /// Fig. 8/9 Smooth-Rate sweep points (one result per VBR seed).
    pub fig9_sr: Vec<SweepPoint>,
    /// Fig. 8/9 Back-to-Back sweep points (one result per VBR seed).
    pub fig9_bb: Vec<SweepPoint>,
    /// Synthesized traces: `traces[seed][sequence]`.
    pub traces: Vec<Vec<MpegTrace>>,
    /// Back-to-Back frame-0 histograms, per CBR seed.
    pub bb_hist: Vec<Vec<u32>>,
    /// Smooth-Rate frame-0 histograms, per CBR seed.
    pub sr_hist: Vec<Vec<u32>>,
}

impl Ensemble {
    /// Build the ensemble, running every simulation point through
    /// `cache` (sweep-warm caches skip already-measured configs).
    pub fn build(options: EnsembleOptions, cache: &mut ExperimentCache) -> Self {
        let base = SimConfig::default().seed;
        let cbr_seeds = ensemble_seeds(base, options.cbr_seeds);
        let vbr_seeds = ensemble_seeds(base, options.vbr_seeds);

        let mut fig5_spec = fig5_conformance_spec(options.fidelity);
        fig5_spec.seeds = cbr_seeds.clone();
        let fig5 = run_sweep_cached(&fig5_spec, cache, options.workers);

        // Run after Fig. 5 so the shared COA/WFA grid cells are cache
        // hits (frontier seeds are a prefix of the CBR seeds).
        let frontier_seeds = ensemble_seeds(base, options.frontier_seeds);
        let mut frontier_spec = frontier_conformance_spec(options.fidelity);
        frontier_spec.seeds = frontier_seeds.clone();
        let frontier = run_sweep_cached(&frontier_spec, cache, options.workers);

        let mut sr_spec = fig9_conformance_spec(InjectionKind::SmoothRate, options.fidelity);
        sr_spec.seeds = vbr_seeds.clone();
        let fig9_sr = run_sweep_cached(&sr_spec, cache, options.workers);

        let mut bb_spec = fig9_conformance_spec(InjectionKind::BackToBack, options.fidelity);
        bb_spec.seeds = vbr_seeds.clone();
        let fig9_bb = run_sweep_cached(&bb_spec, cache, options.workers);

        let gops = match options.fidelity {
            Fidelity::Quick => 4,
            Fidelity::Full => 40,
        };
        let tb = TimeBase::default();
        let traces: Vec<Vec<MpegTrace>> = cbr_seeds
            .iter()
            .map(|&seed| {
                let root = SimRng::seed_from_u64(seed);
                standard_sequences()
                    .iter()
                    .enumerate()
                    .map(|(i, params)| {
                        let mut rng = root.split(i as u64);
                        MpegTrace::generate(params, gops, &tb, &mut rng)
                    })
                    .collect()
            })
            .collect();

        let bb_model = InjectionModel::back_to_back_for(FIG7_BB_PEAK_FLITS, FRAME_TIME_SECS, &tb);
        let bb_hist = cbr_seeds
            .iter()
            .map(|&s| injection_histogram(bb_model, FIG7_SLOTS, s))
            .collect();
        let sr_hist = cbr_seeds
            .iter()
            .map(|&s| injection_histogram(InjectionModel::SmoothRate, FIG7_SLOTS, s))
            .collect();

        Ensemble {
            cbr_seeds,
            vbr_seeds,
            frontier_seeds,
            fig5,
            frontier,
            fig9_sr,
            fig9_bb,
            traces,
            bb_hist,
            sr_hist,
        }
    }

    /// The sweep points behind a panel.
    pub fn panel(&self, panel: Panel) -> &[SweepPoint] {
        match panel {
            Panel::Fig5Cbr => &self.fig5,
            Panel::Fig9Sr => &self.fig9_sr,
            Panel::Fig9Bb => &self.fig9_bb,
            Panel::FrontierCbr => &self.frontier,
        }
    }

    /// Number of seeds behind a panel.
    pub fn panel_seed_count(&self, panel: Panel) -> usize {
        match panel {
            Panel::Fig5Cbr => self.cbr_seeds.len(),
            Panel::Fig9Sr | Panel::Fig9Bb => self.vbr_seeds.len(),
            Panel::FrontierCbr => self.frontier_seeds.len(),
        }
    }
}

/// Median of a non-empty slice (mean of the middle two for even lengths).
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// One arbiter's series from a panel, load order preserved.
fn arbiter_series(points: &[SweepPoint], arbiter: ArbiterKind) -> Vec<&SweepPoint> {
    let series: Vec<&SweepPoint> = points.iter().filter(|p| p.arbiter == arbiter).collect();
    assert!(
        !series.is_empty(),
        "panel carries no points for {}",
        arbiter.label()
    );
    series
}

/// The grid point at `at_load` (exact target-load match within 1e-6).
fn point_at<'a>(series: &[&'a SweepPoint], at_load: f64, claim: &str) -> &'a SweepPoint {
    series
        .iter()
        .find(|p| (p.target_load - at_load).abs() < 1e-6)
        .unwrap_or_else(|| {
            panic!(
                "claim {claim}: no grid point at load {at_load} \
                 (grid: {:?})",
                series.iter().map(|p| p.target_load).collect::<Vec<_>>()
            )
        })
}

/// Rebuild one seed's single-result view of a series, for the
/// saturation detectors (which consume `&[SweepPoint]`).
fn single_seed_series(series: &[&SweepPoint], seed: usize) -> Vec<SweepPoint> {
    series
        .iter()
        .map(|p| SweepPoint {
            arbiter: p.arbiter,
            target_load: p.target_load,
            achieved_load: p.results[seed].achieved_load,
            results: vec![p.results[seed].clone()],
        })
        .collect()
}

/// Saturation load of one seed's series, with the never-saturates case
/// mapped to the last measured load (a conservative stand-in: the true
/// saturation point is at least that far out).
fn saturation_or_last(series: &[&SweepPoint], seed: usize, metric: CurveMetric) -> f64 {
    let single = single_seed_series(series, seed);
    detect_saturation(&single, SaturationCriteria::default(), |p| {
        metric.of(&p.results[0])
    })
    .unwrap_or_else(|| single.last().expect("non-empty series").achieved_load)
}

impl Claim {
    /// Evaluate the claim over the ensemble: the per-seed scalar, its
    /// median and spread, and the pass/fail verdict.
    pub fn evaluate(&self, e: &Ensemble) -> ClaimOutcome {
        let (per_seed, threshold, higher_is_better, unit): (Vec<f64>, f64, bool, &str) = match self
            .check
        {
            Check::SaturationGap {
                panel,
                metric,
                winner,
                loser,
                min_points,
            } => {
                let pts = e.panel(panel);
                let win = arbiter_series(pts, winner);
                let lose = arbiter_series(pts, loser);
                let vals = (0..e.panel_seed_count(panel))
                    .map(|s| {
                        let w = saturation_or_last(&win, s, metric);
                        let l = saturation_or_last(&lose, s, metric);
                        // A loser that never saturates inside the sweep
                        // cannot demonstrate any gap.
                        let l_saturates = {
                            let single = single_seed_series(&lose, s);
                            detect_saturation(&single, SaturationCriteria::default(), |p| {
                                metric.of(&p.results[0])
                            })
                            .is_some()
                        };
                        if l_saturates {
                            (w - l) * 100.0
                        } else {
                            0.0
                        }
                    })
                    .collect();
                (vals, min_points, true, "load points")
            }
            Check::DelayBelow {
                panel,
                metric,
                arbiter,
                at_load,
                max_value,
            } => {
                let series = arbiter_series(e.panel(panel), arbiter);
                let p = point_at(&series, at_load, self.id);
                let vals = p.results.iter().map(|r| metric.of(r)).collect();
                (vals, max_value, false, "metric units")
            }
            Check::WorseBy {
                panel,
                metric,
                better,
                worse,
                at_load,
                min_factor,
            } => {
                // Cross-panel form: when `panel` differs from Fig9Sr and
                // better == worse, the better side reads the SR panel
                // (the fig9.bb-above-sr claim).
                let (better_pts, worse_pts) = if better == worse && panel == Panel::Fig9Bb {
                    (e.panel(Panel::Fig9Sr), e.panel(panel))
                } else {
                    (e.panel(panel), e.panel(panel))
                };
                let bs = arbiter_series(better_pts, better);
                let ws = arbiter_series(worse_pts, worse);
                let bp = point_at(&bs, at_load, self.id);
                let wp = point_at(&ws, at_load, self.id);
                let n = bp.results.len().min(wp.results.len());
                let vals = (0..n)
                    .map(|s| {
                        let b = metric.of(&bp.results[s]).max(1e-9);
                        metric.of(&wp.results[s]) / b
                    })
                    .collect();
                (vals, min_factor, true, "x")
            }
            Check::WithinFactor {
                panel,
                metric,
                a,
                b,
                until_load,
                max_factor,
            } => {
                let pts = e.panel(panel);
                let sa = arbiter_series(pts, a);
                let sb = arbiter_series(pts, b);
                let vals = (0..e.panel_seed_count(panel))
                    .map(|s| {
                        let mut worst = 1.0f64;
                        for (pa, pb) in sa.iter().zip(&sb) {
                            if pa.target_load > until_load + 1e-6 {
                                continue;
                            }
                            let va = metric.of(&pa.results[s]).max(1e-9);
                            let vb = metric.of(&pb.results[s]).max(1e-9);
                            worst = worst.max(va / vb).max(vb / va);
                        }
                        worst
                    })
                    .collect();
                (vals, max_factor, false, "x")
            }
            Check::AtMostRatio {
                panel,
                metric,
                numerator,
                denominator,
                until_load,
                max_ratio,
            } => {
                let pts = e.panel(panel);
                let ns = arbiter_series(pts, numerator);
                let ds = arbiter_series(pts, denominator);
                let vals = (0..e.panel_seed_count(panel))
                    .map(|s| {
                        let mut worst = 0.0f64;
                        for (np, dp) in ns.iter().zip(&ds) {
                            if np.target_load > until_load + 1e-6 {
                                continue;
                            }
                            let n = metric.of(&np.results[s]).max(1e-9);
                            let d = metric.of(&dp.results[s]).max(1e-9);
                            worst = worst.max(n / d);
                        }
                        worst
                    })
                    .collect();
                (vals, max_ratio, false, "x")
            }
            Check::DelayFloor {
                panel,
                metric,
                oracle,
                until_load,
                slack,
            } => {
                let pts = e.panel(panel);
                let os = arbiter_series(pts, oracle);
                let vals = (0..e.panel_seed_count(panel))
                    .map(|s| {
                        let mut worst = 1.0f64;
                        for op in os.iter().filter(|p| p.target_load <= until_load + 1e-6) {
                            let oracle_v = metric.of(&op.results[s]).max(1e-9);
                            // Best value any arbiter posts at this load.
                            let best = pts
                                .iter()
                                .filter(|p| (p.target_load - op.target_load).abs() < 1e-6)
                                .map(|p| metric.of(&p.results[s]).max(1e-9))
                                .fold(f64::INFINITY, f64::min);
                            worst = worst.max(oracle_v / best);
                        }
                        worst
                    })
                    .collect();
                (vals, slack, false, "x")
            }
            Check::MonotoneDelay {
                panel,
                metric,
                arbiter,
                until_load,
                min_step_ratio,
            } => {
                let series = arbiter_series(e.panel(panel), arbiter);
                let vals = (0..e.panel_seed_count(panel))
                    .map(|s| {
                        let prefix: Vec<f64> = series
                            .iter()
                            .filter(|p| p.target_load <= until_load + 1e-6)
                            .map(|p| metric.of(&p.results[s]).max(1e-9))
                            .collect();
                        prefix
                            .windows(2)
                            .map(|w| w[1] / w[0])
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
                (vals, min_step_ratio, true, "step ratio")
            }
            Check::ThroughputFloor {
                panel,
                arbiter,
                until_load,
                min_ratio,
            } => {
                let series = arbiter_series(e.panel(panel), arbiter);
                let vals = (0..e.panel_seed_count(panel))
                    .map(|s| {
                        series
                            .iter()
                            .filter(|p| p.target_load <= until_load + 1e-6)
                            .map(|p| p.results[s].summary.throughput_ratio())
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
                (vals, min_ratio, true, "ratio")
            }
            Check::UtilizationScales {
                panel,
                arbiter,
                lo_load,
                hi_load,
                min_ratio_of_ratios,
            } => {
                let series = arbiter_series(e.panel(panel), arbiter);
                let lo = point_at(&series, lo_load, self.id);
                let hi = point_at(&series, hi_load, self.id);
                let vals = (0..e.panel_seed_count(panel))
                    .map(|s| {
                        let u_lo = CurveMetric::WindowUtilizationPct
                            .of(&lo.results[s])
                            .max(1e-9);
                        let u_hi = CurveMetric::WindowUtilizationPct.of(&hi.results[s]);
                        let l_lo = lo.results[s].achieved_load.max(1e-9);
                        let l_hi = hi.results[s].achieved_load;
                        (u_hi / u_lo) / (l_hi / l_lo).max(1e-9)
                    })
                    .collect();
                (vals, min_ratio_of_ratios, true, "ratio of ratios")
            }
            Check::BurstConcentration {
                within_fraction,
                min_mass,
            } => {
                let vals = e
                    .bb_hist
                    .iter()
                    .map(|h| {
                        let cut = ((h.len() as f64) * within_fraction).ceil() as usize;
                        let head: u32 = h[..cut.min(h.len())].iter().sum();
                        let total: u32 = h.iter().sum();
                        head as f64 / total.max(1) as f64
                    })
                    .collect();
                (vals, min_mass, true, "mass fraction")
            }
            Check::SmoothCoverage {
                min_active_fraction,
            } => {
                let vals = e
                    .sr_hist
                    .iter()
                    .map(|h| h.iter().filter(|&&b| b > 0).count() as f64 / h.len() as f64)
                    .collect();
                (vals, min_active_fraction, true, "active fraction")
            }
            Check::SmoothPeak { max_peak_over_mean } => {
                let vals = e
                    .sr_hist
                    .iter()
                    .map(|h| {
                        let peak = *h.iter().max().expect("non-empty histogram") as f64;
                        let mean = h.iter().sum::<u32>() as f64 / h.len() as f64;
                        peak / mean.max(1e-9)
                    })
                    .collect();
                (vals, max_peak_over_mean, false, "peak/mean")
            }
            Check::Sawtooth {
                sequence,
                period,
                min_peak_fraction,
            } => {
                let vals = e
                    .traces
                    .iter()
                    .map(|per_seq| {
                        let trace = &per_seq[sequence];
                        if period != GOP_PATTERN.len() || trace.len() % period != 0 {
                            return 0.0; // wrong shape: cannot be the paper's sawtooth
                        }
                        let gops = trace.len() / period;
                        let peaked = trace
                            .frames
                            .chunks(period)
                            .filter(|gop| {
                                let max = gop.iter().map(|f| f.bits).max().unwrap();
                                gop[0].ty == FrameType::I && gop[0].bits == max
                            })
                            .count();
                        peaked as f64 / gops as f64
                    })
                    .collect();
                (vals, min_peak_fraction, true, "GOP fraction")
            }
            Check::AvgRatesWithinFactor { factor } => {
                let vals = e
                    .traces
                    .iter()
                    .map(|per_seq| {
                        per_seq
                            .iter()
                            .zip(TABLE1_AVG_MBPS)
                            .map(|(trace, target)| {
                                let m = trace.stats().avg_bandwidth.as_mbps();
                                (m / target).max(target / m)
                            })
                            .fold(0.0f64, f64::max)
                    })
                    .collect();
                (vals, factor, false, "x")
            }
            Check::FrameTypeOrdering { min_ratio } => {
                let vals = e
                    .traces
                    .iter()
                    .map(|per_seq| {
                        per_seq
                            .iter()
                            .map(|trace| {
                                let mean = |ty: FrameType| {
                                    let (mut sum, mut n) = (0u64, 0u64);
                                    for f in &trace.frames {
                                        if f.ty == ty {
                                            sum += f.bits;
                                            n += 1;
                                        }
                                    }
                                    sum as f64 / n.max(1) as f64
                                };
                                let (i, p, b) =
                                    (mean(FrameType::I), mean(FrameType::P), mean(FrameType::B));
                                (i / p.max(1e-9)).min(p / b.max(1e-9))
                            })
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
                (vals, min_ratio, true, "ratio")
            }
        };

        let med = median(&per_seed);
        let lo = per_seed.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_seed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let margin = if higher_is_better {
            med - threshold
        } else {
            threshold - med
        };
        ClaimOutcome {
            id: self.id.to_string(),
            figure: self.figure.label().to_string(),
            description: self.description.to_string(),
            pass: margin >= 0.0,
            median: med,
            spread_min: lo,
            spread_max: hi,
            per_seed,
            threshold,
            higher_is_better,
            margin,
            unit: unit.to_string(),
        }
    }
}

/// Evaluate a claim list over an ensemble.
pub fn evaluate_all(claims: &[Claim], e: &Ensemble) -> Vec<ClaimOutcome> {
    claims.iter().map(|c| c.evaluate(e)).collect()
}

/// Build the ensemble for `options` and evaluate the committed manifest.
pub fn run_conformance(options: EnsembleOptions, cache: &mut ExperimentCache) -> ConformanceReport {
    let ensemble = Ensemble::build(options, cache);
    report_from(&ensemble, options.fidelity)
}

/// Evaluate the committed manifest against an already-built ensemble.
pub fn report_from(ensemble: &Ensemble, fidelity: Fidelity) -> ConformanceReport {
    ConformanceReport {
        fidelity: match fidelity {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
        .to_string(),
        cbr_seeds: ensemble.cbr_seeds.clone(),
        vbr_seeds: ensemble.vbr_seeds.clone(),
        frontier_seeds: ensemble.frontier_seeds.clone(),
        claims: evaluate_all(&paper_claims(), ensemble),
    }
}

/// The Frontier-figure subset of the committed manifest.
pub fn frontier_claims() -> Vec<Claim> {
    paper_claims()
        .into_iter()
        .filter(|c| c.figure == Figure::Frontier)
        .collect()
}

/// Build ONLY the frontier-ablation panel (no Fig. 5/8/9 sweeps, no
/// traces): the sweep-free ensemble `ablation_frontier` evaluates the
/// Frontier claims against.  Panels other than
/// [`Panel::FrontierCbr`] are left empty, so only Frontier-figure
/// claims may be evaluated against the result.
pub fn frontier_ensemble(options: EnsembleOptions, cache: &mut ExperimentCache) -> Ensemble {
    let base = SimConfig::default().seed;
    let frontier_seeds = ensemble_seeds(base, options.frontier_seeds);
    let mut spec = frontier_conformance_spec(options.fidelity);
    spec.seeds = frontier_seeds.clone();
    let frontier = run_sweep_cached(&spec, cache, options.workers);
    Ensemble {
        cbr_seeds: vec![],
        vbr_seeds: vec![],
        frontier_seeds,
        fig5: vec![],
        frontier,
        fig9_sr: vec![],
        fig9_bb: vec![],
        traces: vec![],
        bb_hist: vec![],
        sr_hist: vec![],
    }
}

/// Run the frontier ablation alone and evaluate its claims — the
/// `ablation_frontier --gate` entry point.
pub fn run_frontier(options: EnsembleOptions, cache: &mut ExperimentCache) -> ConformanceReport {
    let ensemble = frontier_ensemble(options, cache);
    ConformanceReport {
        fidelity: match options.fidelity {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
        .to_string(),
        cbr_seeds: vec![],
        vbr_seeds: vec![],
        frontier_seeds: ensemble.frontier_seeds.clone(),
        claims: evaluate_all(&frontier_claims(), &ensemble),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadSpec;

    #[test]
    fn seeds_are_distinct_and_prefix_stable() {
        let five = ensemble_seeds(0xB1ACA, 5);
        let three = ensemble_seeds(0xB1ACA, 3);
        assert_eq!(five[0], 0xB1ACA, "seed 0 is the paper's seed");
        assert_eq!(&five[..3], &three[..], "ensembles share a prefix");
        let mut uniq = five.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5, "seeds must be distinct: {five:?}");
    }

    #[test]
    fn manifest_ids_are_unique_and_span_all_figures() {
        let claims = paper_claims();
        assert!(claims.len() >= 10, "manifest holds {} claims", claims.len());
        let mut ids: Vec<&str> = claims.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate claim id");
        for figure in [
            Figure::Fig5,
            Figure::Fig7,
            Figure::Fig8,
            Figure::Fig9,
            Figure::Table1,
            Figure::Frontier,
        ] {
            assert!(
                claims.iter().any(|c| c.figure == figure),
                "no claim guards {}",
                figure.label()
            );
        }
    }

    #[test]
    fn median_handles_odd_even_and_order() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn quick_specs_carry_the_claimed_grid_points() {
        let f5 = fig5_conformance_spec(Fidelity::Quick);
        assert!(f5.loads.contains(&0.86), "Fig. 5 claims pin 86% load");
        assert!(matches!(f5.base.run, RunLength::Cycles(c) if c >= 100_000));
        let f9 = fig9_conformance_spec(InjectionKind::SmoothRate, Fidelity::Quick);
        for l in [0.4, 0.6, 0.85] {
            assert!(f9.loads.contains(&l), "Fig. 9 claims pin {l}");
        }
        match f9.base.workload {
            WorkloadSpec::Vbr { injection, .. } => {
                assert_eq!(injection, InjectionKind::SmoothRate)
            }
            _ => panic!("Fig. 9 spec must be VBR"),
        }
    }

    #[test]
    fn frontier_spec_loads_are_a_fig5_subset_in_both_fidelities() {
        // The dedup guarantee: every frontier grid point must also be a
        // Fig. 5 grid point, so the COA/WFA cells never simulate twice.
        for fidelity in [Fidelity::Quick, Fidelity::Full] {
            let f5 = fig5_conformance_spec(fidelity);
            let fr = frontier_conformance_spec(fidelity);
            for load in &fr.loads {
                assert!(
                    f5.loads.contains(load),
                    "frontier load {load} missing from the Fig. 5 grid ({fidelity:?})"
                );
            }
            assert_eq!(fr.base, f5.base, "frontier must reuse the Fig. 5 base");
            assert_eq!(fr.arbiters.len(), 7, "the frontier compares 7 arbiters");
            for kind in [ArbiterKind::Coa, ArbiterKind::Wfa, ArbiterKind::MwmExact] {
                assert!(fr.arbiters.contains(&kind));
            }
        }
    }

    #[test]
    fn frontier_claims_are_the_frontier_figure_subset() {
        let claims = frontier_claims();
        assert!(
            claims.len() >= 4,
            "frontier manifest holds {} claims",
            claims.len()
        );
        assert!(claims.iter().all(|c| c.figure == Figure::Frontier));
        assert!(claims
            .iter()
            .any(|c| c.id == "frontier.coa-within-factor-of-mwm"));
    }

    #[test]
    fn full_specs_include_the_86_point() {
        let f5 = fig5_conformance_spec(Fidelity::Full);
        assert!(f5.loads.contains(&0.86));
        let sorted = {
            let mut l = f5.loads.clone();
            l.sort_by(|a, b| a.partial_cmp(b).unwrap());
            l
        };
        assert_eq!(f5.loads, sorted, "load grid stays sorted");
    }

    #[test]
    fn injection_histograms_distinguish_the_models() {
        let tb = TimeBase::default();
        let bb = injection_histogram(
            InjectionModel::back_to_back_for(FIG7_BB_PEAK_FLITS, FRAME_TIME_SECS, &tb),
            FIG7_SLOTS,
            7,
        );
        let sr = injection_histogram(InjectionModel::SmoothRate, FIG7_SLOTS, 7);
        // BB: everything early, tail empty.
        let bb_total: u32 = bb.iter().sum();
        let bb_head: u32 = bb[..FIG7_SLOTS / 2].iter().sum();
        assert_eq!(bb_head, bb_total, "BB empties within half the frame");
        assert_eq!(*bb.last().unwrap(), 0);
        // SR: spread across the whole frame.
        let active = sr.iter().filter(|&&b| b > 0).count();
        assert!(active > FIG7_SLOTS * 8 / 10, "SR active buckets: {active}");
    }

    #[test]
    fn trace_checks_pass_without_simulation() {
        // The Table 1 / Fig. 7 claims need no router runs; build a
        // sweep-free ensemble by hand and evaluate just those claims.
        let options = EnsembleOptions::new(Fidelity::Quick);
        let cbr_seeds = ensemble_seeds(SimConfig::default().seed, options.cbr_seeds);
        let tb = TimeBase::default();
        let traces: Vec<Vec<MpegTrace>> = cbr_seeds
            .iter()
            .map(|&seed| {
                let root = SimRng::seed_from_u64(seed);
                standard_sequences()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let mut rng = root.split(i as u64);
                        MpegTrace::generate(p, 4, &tb, &mut rng)
                    })
                    .collect()
            })
            .collect();
        let bb_model = InjectionModel::back_to_back_for(FIG7_BB_PEAK_FLITS, FRAME_TIME_SECS, &tb);
        let e = Ensemble {
            cbr_seeds: cbr_seeds.clone(),
            vbr_seeds: vec![],
            frontier_seeds: vec![],
            fig5: vec![],
            frontier: vec![],
            fig9_sr: vec![],
            fig9_bb: vec![],
            traces,
            bb_hist: cbr_seeds
                .iter()
                .map(|&s| injection_histogram(bb_model, FIG7_SLOTS, s))
                .collect(),
            sr_hist: cbr_seeds
                .iter()
                .map(|&s| injection_histogram(InjectionModel::SmoothRate, FIG7_SLOTS, s))
                .collect(),
        };
        for claim in paper_claims()
            .iter()
            .filter(|c| matches!(c.figure, Figure::Fig7 | Figure::Table1))
        {
            let o = claim.evaluate(&e);
            assert!(
                o.pass,
                "{} failed: median {} vs threshold {} ({})",
                o.id, o.median, o.threshold, o.unit
            );
            assert_eq!(o.per_seed.len(), cbr_seeds.len());
            assert!(o.spread_min <= o.median && o.median <= o.spread_max);
        }
    }

    #[test]
    fn report_serializes_and_roundtrips() {
        let outcome = ClaimOutcome {
            id: "x".into(),
            figure: "Fig. 5".into(),
            description: "d".into(),
            pass: true,
            median: 1.0,
            spread_min: 0.5,
            spread_max: 1.5,
            per_seed: vec![0.5, 1.0, 1.5],
            threshold: 0.5,
            higher_is_better: true,
            margin: 0.5,
            unit: "x".into(),
        };
        let report = ConformanceReport {
            fidelity: "quick".into(),
            cbr_seeds: vec![1, 2],
            vbr_seeds: vec![1],
            frontier_seeds: vec![1],
            claims: vec![outcome],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: ConformanceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(report.all_pass());
        assert!(report.failed().is_empty());
        assert!(report.render_text().contains("PASS"));
    }
}
