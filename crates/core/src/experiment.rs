//! Build-and-run for one simulation point.

use crate::config::{EngineMode, FabricSpec, InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_router::fabric::{Fabric, FabricRunOutcome, FabricSummary};
use mmr_router::router::{MmrRouter, RouterSummary};
use mmr_router::telemetry::TelemetryReport;
use mmr_sim::engine::{Runner, StopCondition};
use mmr_sim::rng::SimRng;
use mmr_traffic::workload::{
    AdmissionTally, CbrMixBuilder, MixWorkloadBuilder, VbrInjection, VbrMixBuilder, Workload,
};
use serde::{Deserialize, Serialize};

/// Result of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: SimConfig,
    /// Offered/generated load actually achieved by admission (mean over
    /// input links) — the x-axis value of the paper's plots.
    pub achieved_load: f64,
    /// Connections admitted.
    pub connections: usize,
    /// CAC accept/reject counts from workload construction.
    pub admission: AdmissionTally,
    /// Flit cycles executed.
    pub executed_cycles: u64,
    /// True if the workload drained completely (finite workloads only).
    pub drained: bool,
    /// Router-side results.
    pub summary: RouterSummary,
    /// Telemetry observations (`None` unless the config armed telemetry).
    pub telemetry: Option<TelemetryReport>,
}

impl ExperimentResult {
    /// Prometheus text exposition (format 0.0.4) of this result's
    /// telemetry: counter registry, stage profiler, kernel stats, the QoS
    /// observatory's per-class histograms/SLO counters, and the CAC
    /// admission tally.  Empty when telemetry was not armed.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        self.prometheus_into(&mut out);
        out
    }

    /// As [`Self::prometheus`], appending into a caller-owned buffer.
    pub fn prometheus_into(&self, out: &mut String) {
        let Some(t) = &self.telemetry else { return };
        t.write_prometheus(out, self.config.router.time.router_cycle_secs());
        mmr_sim::telemetry::expose::write_counters(
            out,
            "mmr_admission",
            [
                ("accepted_total", self.admission.accepted),
                ("rejected_total", self.admission.rejected),
            ]
            .into_iter(),
        );
    }
}

/// Construct the workload a config describes.
pub fn build_workload(cfg: &SimConfig) -> Workload {
    build_workload_for_ports(cfg, cfg.router.ports)
}

/// As [`build_workload`], but targeting an explicit port count — fabric
/// experiments pass the topology's flat host-port space.
pub fn build_workload_for_ports(cfg: &SimConfig, ports: usize) -> Workload {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut workload = match &cfg.workload {
        WorkloadSpec::Cbr { target_load } => {
            CbrMixBuilder::new(ports, cfg.router.time, cfg.router.round)
                .target_load(*target_load)
                .build(&mut rng)
        }
        WorkloadSpec::Vbr {
            target_load,
            gops,
            injection,
            enforce_peak,
        } => {
            let inj = match injection {
                InjectionKind::SmoothRate => VbrInjection::SmoothRate,
                InjectionKind::BackToBack => VbrInjection::BackToBack,
            };
            VbrMixBuilder::new(ports, cfg.router.time, cfg.router.round)
                .target_load(*target_load)
                .gops(*gops)
                .injection(inj)
                .enforce_peak(*enforce_peak)
                .build(&mut rng)
        }
        WorkloadSpec::Mix {
            target_load,
            groups,
            ramp,
            churn,
        } => {
            let classes = groups
                .iter()
                .map(|g| {
                    (
                        g.class,
                        mmr_sim::units::Bandwidth::bps(g.rate_bps),
                        g.weight,
                    )
                })
                .collect();
            let mut b = MixWorkloadBuilder::new(ports, cfg.router.time, cfg.router.round)
                .target_load(*target_load)
                .classes(classes);
            if let Some(ramp) = ramp {
                b = b.ramp(
                    ramp.steps
                        .iter()
                        .map(|s| (s.at_cycle, s.fraction))
                        .collect(),
                );
            }
            if let Some(c) = churn {
                b = b.churn(c.start, c.end, c.departures, c.arrivals);
            }
            b.build(&mut rng)
        }
    };
    if let Some(be) = &cfg.best_effort {
        workload.append_best_effort(
            ports,
            be.per_link_load,
            be.mean_flits,
            &cfg.router.time,
            &mut rng,
        );
    }
    workload
}

/// Build the router for a config and workload.
pub fn build_router(cfg: &SimConfig, workload: Workload) -> MmrRouter {
    MmrRouter::new(
        cfg.router,
        workload,
        cfg.arbiter.instantiate(cfg.router.ports),
        cfg.priority.instantiate(),
        cfg.seed,
    )
}

/// Run one experiment to completion.
pub fn run_experiment(cfg: &SimConfig) -> ExperimentResult {
    let workload = build_workload(cfg);
    let achieved_load = workload.mean_load();
    let connections = workload.len();
    let admission = workload.admission;
    let mut router = build_router(cfg, workload);
    if let Some(fault) = &cfg.fault {
        // The fault schedule draws from its own stream split off the
        // master seed, so enabling faults never perturbs workload
        // construction or arbitration randomness.
        let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xFA17).split(71);
        let plan = fault.plan.generate(cfg.router.ports, connections, &mut rng);
        router.set_faults(plan, fault.profile);
    }
    if let Some(t) = &cfg.telemetry {
        router.set_telemetry(t.to_config());
    }
    let stop = match cfg.run {
        RunLength::Cycles(n) => StopCondition::Cycles(n),
        RunLength::UntilDrained { max_cycles } => StopCondition::ModelDoneOrCycles(max_cycles),
    };
    let runner = Runner::new(cfg.warmup_cycles, stop);
    // Both loops are bit-identical by contract (proven differentially in
    // tests/determinism.rs); the horizon loop just fast-forwards across
    // quiescent stretches.
    let outcome = match cfg.engine_mode() {
        EngineMode::EventHorizon => runner.run_horizon(&mut router),
        EngineMode::CycleByCycle => runner.run(&mut router),
    };
    ExperimentResult {
        config: cfg.clone(),
        achieved_load,
        connections,
        admission,
        executed_cycles: outcome.executed,
        drained: router.drained(),
        summary: router.summary(),
        telemetry: cfg.telemetry.map(|_| router.telemetry_report()),
    }
}

/// Result of one fabric simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricExperimentResult {
    /// The configuration that produced this result (always carries
    /// `Some(fabric)`).
    pub config: SimConfig,
    /// Offered load actually achieved by admission (mean over the
    /// fabric's host links).
    pub achieved_load: f64,
    /// Connections admitted.
    pub connections: usize,
    /// CAC accept/reject counts from workload construction.
    pub admission: AdmissionTally,
    /// Engine accounting (executed counts stepped plus skipped).
    pub outcome: FabricRunOutcome,
    /// True if the workload drained completely (finite workloads only).
    pub drained: bool,
    /// Fabric-side results.
    pub summary: FabricSummary,
}

/// The fabric workload a config describes: the usual builders, targeting
/// the topology's flat host-port space.
pub fn build_fabric_workload(cfg: &SimConfig, spec: &FabricSpec) -> Workload {
    let ports = spec
        .topology
        .workload_ports(cfg.router.ports, spec.host_ports);
    build_workload_for_ports(cfg, ports)
}

/// Build the fabric for a config and workload.
pub fn build_fabric(cfg: &SimConfig, spec: &FabricSpec, workload: Workload) -> Fabric {
    Fabric::new(
        spec.to_config(cfg.router),
        workload,
        cfg.arbiter,
        cfg.priority,
        cfg.seed,
    )
}

/// Run one fabric experiment to completion on `cfg.fabric.workers`
/// worker threads.  Results are bit-identical for every worker count and
/// engine mode; fault injection and telemetry arming are single-router
/// features and are ignored here.
///
/// # Panics
///
/// Panics if `cfg.fabric` is `None`.
pub fn run_fabric_experiment(cfg: &SimConfig) -> FabricExperimentResult {
    let spec = cfg
        .fabric
        .expect("run_fabric_experiment needs cfg.fabric = Some(..)");
    let workload = build_fabric_workload(cfg, &spec);
    let achieved_load = workload.mean_load();
    let connections = workload.len();
    let admission = workload.admission;
    let mut fabric = build_fabric(cfg, &spec, workload);
    let bound = match cfg.run {
        RunLength::Cycles(n) | RunLength::UntilDrained { max_cycles: n } => n,
    };
    let horizon = cfg.engine_mode() == EngineMode::EventHorizon;
    let outcome = fabric.run_parallel(cfg.warmup_cycles, bound, spec.workers, horizon);
    FabricExperimentResult {
        config: cfg.clone(),
        achieved_load,
        connections,
        admission,
        outcome,
        drained: fabric.drained(),
        summary: fabric.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_arbiter::scheduler::ArbiterKind;
    use mmr_router::fabric::Topology;
    use mmr_traffic::connection::TrafficClass;

    #[test]
    fn cbr_experiment_runs() {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(0.4),
            warmup_cycles: 200,
            run: RunLength::Cycles(3_000),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert!(r.connections > 0);
        assert!(
            (r.achieved_load - 0.4).abs() < 0.08,
            "load {}",
            r.achieved_load
        );
        assert_eq!(r.executed_cycles, 3_000);
        assert!(r.summary.delivered_flits > 0);
        assert!(!r.drained, "CBR sources are infinite");
    }

    #[test]
    fn vbr_experiment_drains() {
        let cfg = SimConfig {
            workload: WorkloadSpec::Vbr {
                target_load: 0.3,
                gops: 1,
                injection: InjectionKind::SmoothRate,
                enforce_peak: false,
            },
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: 2_000_000,
            },
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert!(r.drained, "low-load VBR must drain");
        assert!(r.summary.metrics.frames_delivered > 0);
        let vbr = r.summary.metrics.class(TrafficClass::Vbr).unwrap();
        assert_eq!(vbr.delivered, vbr.generated, "all flits delivered");
    }

    #[test]
    fn same_config_same_result() {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(0.6),
            warmup_cycles: 100,
            run: RunLength::Cycles(2_000),
            ..Default::default()
        };
        assert_eq!(run_experiment(&cfg), run_experiment(&cfg));
    }

    #[test]
    fn chaos_experiment_fires_faults_without_perturbing_the_workload() {
        use crate::config::FaultSpec;
        let faulty_cfg = SimConfig {
            workload: WorkloadSpec::cbr(0.5),
            warmup_cycles: 0,
            run: RunLength::Cycles(16_000),
            fault: Some(FaultSpec::default()),
            ..Default::default()
        };
        let clean_cfg = SimConfig {
            fault: None,
            ..faulty_cfg.clone()
        };
        let faulty = run_experiment(&faulty_cfg);
        let clean = run_experiment(&clean_cfg);
        assert!(faulty.summary.faults.events_fired > 0);
        assert!(faulty.summary.faults.lost_flits() > 0);
        assert_eq!(
            clean.summary.faults,
            mmr_router::fault::FaultReport::default()
        );
        // Fault randomness is split off: the admitted workload and its
        // achieved load are identical with and without injection.
        assert_eq!(faulty.achieved_load, clean.achieved_load);
        assert_eq!(faulty.connections, clean.connections);
        // Determinism holds for chaos runs too.
        assert_eq!(faulty, run_experiment(&faulty_cfg));
    }

    #[test]
    fn fabric_experiment_runs_and_is_worker_invariant() {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(0.4),
            warmup_cycles: 300,
            run: RunLength::Cycles(4_000),
            ..Default::default()
        }
        .with_fabric(FabricSpec::new(Topology::Mesh { x: 3, y: 3 }));
        let one = run_fabric_experiment(&cfg);
        assert!(one.connections > 0);
        assert!(one.summary.delivered_flits > 0);
        assert_eq!(one.summary.nodes, 9);
        assert_eq!(one.outcome.executed, 4_000);
        let spec = cfg.fabric.unwrap().with_workers(4);
        let four = run_fabric_experiment(&cfg.with_fabric(spec));
        // Worker count is a pure performance knob.
        assert_eq!(one.summary, four.summary);
        assert_eq!(one.achieved_load, four.achieved_load);
    }

    #[test]
    fn arbiter_choice_respected() {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(0.3),
            run: RunLength::Cycles(500),
            warmup_cycles: 0,
            ..Default::default()
        };
        let coa = run_experiment(&cfg);
        let wfa = run_experiment(&cfg.with_arbiter(ArbiterKind::Wfa));
        assert_eq!(coa.summary.arbiter, "Candidate-Order Arbiter");
        assert_eq!(wfa.summary.arbiter, "Wave Front Arbiter");
        // Same seed -> same workload -> same admitted load either way.
        assert_eq!(coa.achieved_load, wfa.achieved_load);
    }
}
