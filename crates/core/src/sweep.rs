//! Load sweeps: the x-axes of the paper's figures.
//!
//! A sweep is a grid of (load, arbiter, seed) points over a base config.
//! Points are independent deterministic simulations, so they parallelize
//! embarrassingly; a scoped-thread fan-out spreads them across cores while
//! preserving the spec's deterministic result order.

use crate::config::SimConfig;
use crate::experiment::{run_experiment, ExperimentResult};
use mmr_arbiter::scheduler::ArbiterKind;
use serde::{Deserialize, Serialize};

/// A sweep definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Base configuration (its load/arbiter/seed fields are overridden).
    pub base: SimConfig,
    /// Target loads to visit.
    pub loads: Vec<f64>,
    /// Arbiters to compare.
    pub arbiters: Vec<ArbiterKind>,
    /// Seeds to average over (≥1).
    pub seeds: Vec<u64>,
}

impl SweepSpec {
    /// Sweep `base` over `loads` for the COA-vs-WFA comparison with one
    /// seed (the paper's setup).
    pub fn coa_vs_wfa(base: SimConfig, loads: Vec<f64>) -> Self {
        SweepSpec {
            seeds: vec![base.seed],
            base,
            loads,
            arbiters: vec![ArbiterKind::Coa, ArbiterKind::Wfa],
        }
    }

    /// Total number of simulation points.
    pub fn point_count(&self) -> usize {
        self.loads.len() * self.arbiters.len() * self.seeds.len()
    }

    /// Enumerate the configs in deterministic order.
    pub fn configs(&self) -> Vec<SimConfig> {
        let mut out = Vec::with_capacity(self.point_count());
        for &arbiter in &self.arbiters {
            for &load in &self.loads {
                for &seed in &self.seeds {
                    out.push(
                        self.base
                            .with_load(load)
                            .with_arbiter(arbiter)
                            .with_seed(seed),
                    );
                }
            }
        }
        out
    }
}

/// One aggregated sweep point: the seed-averaged results for a
/// (load, arbiter) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Arbiter used.
    pub arbiter: ArbiterKind,
    /// Target load.
    pub target_load: f64,
    /// Mean achieved load across seeds.
    pub achieved_load: f64,
    /// Per-seed results.
    pub results: Vec<ExperimentResult>,
}

impl SweepPoint {
    /// Seed-mean of an arbitrary metric.
    pub fn mean_of<F: Fn(&ExperimentResult) -> f64>(&self, f: F) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().map(&f).sum::<f64>() / self.results.len() as f64
    }

    /// Seed-mean crossbar utilization.
    pub fn utilization(&self) -> f64 {
        self.mean_of(|r| r.summary.crossbar_utilization)
    }

    /// Seed-mean frame delay (µs).
    pub fn frame_delay_us(&self) -> f64 {
        self.mean_of(|r| r.summary.metrics.mean_frame_delay_us)
    }

    /// Seed-mean flit delay for a class (µs); 0 if the class is absent.
    pub fn class_delay_us(&self, class: mmr_traffic::connection::TrafficClass) -> f64 {
        self.mean_of(|r| {
            r.summary
                .metrics
                .class(class)
                .map(|c| c.mean_delay_us)
                .unwrap_or(0.0)
        })
    }

    /// Seed-mean throughput ratio (delivered/generated).
    pub fn throughput_ratio(&self) -> f64 {
        self.mean_of(|r| r.summary.throughput_ratio())
    }
}

/// Run a sweep, parallelized across points, returning aggregated points
/// grouped by (arbiter, load) in the spec's order.
pub fn sweep(spec: &SweepSpec) -> Vec<SweepPoint> {
    sweep_with_workers(spec, None)
}

/// [`sweep`] with an explicit worker count (`None` = one per core).
/// Results are identical for any worker count — points are independent
/// deterministic simulations and land at spec order regardless of which
/// thread computed them.
pub fn sweep_with_workers(spec: &SweepSpec, workers: Option<usize>) -> Vec<SweepPoint> {
    let configs = spec.configs();
    let results = parallel_map(&configs, run_experiment, workers);
    group_points(spec, results)
}

/// Aggregate a flat result list (in [`SweepSpec::configs`] order — seeds
/// innermost) back into (arbiter, load) points.  Shared by the sweep
/// runner and the conformance engine's cached runner.
pub fn group_points(spec: &SweepSpec, results: Vec<ExperimentResult>) -> Vec<SweepPoint> {
    assert_eq!(
        results.len(),
        spec.point_count(),
        "result list does not match the sweep grid"
    );
    let s = spec.seeds.len();
    let mut points = Vec::with_capacity(spec.loads.len() * spec.arbiters.len());
    let mut it = results.into_iter();
    for &arbiter in &spec.arbiters {
        for &load in &spec.loads {
            let group: Vec<ExperimentResult> = (&mut it).take(s).collect();
            let achieved = group.iter().map(|r| r.achieved_load).sum::<f64>() / group.len() as f64;
            points.push(SweepPoint {
                arbiter,
                target_load: load,
                achieved_load: achieved,
                results: group,
            });
        }
    }
    points
}

/// Run a flat list of configs in parallel, preserving input order.
/// `workers = None` uses one thread per core.
pub fn run_all(configs: &[SimConfig], workers: Option<usize>) -> Vec<ExperimentResult> {
    parallel_map(configs, run_experiment, workers)
}

/// Order-preserving parallel map over a slice: results land at the same
/// index as their input regardless of which worker computed them.
fn parallel_map<T, R, F>(items: &[T], f: F, workers: Option<usize>) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(items.len().max(1));
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    if workers <= 1 {
        for (slot, item) in slots.iter_mut().zip(items) {
            *slot = Some(f(item));
        }
    } else {
        // Deterministic chunked dispatch: the input is split into `workers`
        // contiguous chunks (the first `len % workers` chunks take one
        // extra item), and each thread gets exclusive `&mut` access to its
        // own output chunk.  `split_at_mut` proves the disjointness the
        // old shared-index/raw-pointer scheme asserted by hand, so there
        // is no unsafe and no cross-thread index traffic at all — which
        // worker computes which point is a pure function of (len, workers).
        let f = &f;
        let base = items.len() / workers;
        let rem = items.len() % workers;
        std::thread::scope(|scope| {
            let mut slots_rest = slots.as_mut_slice();
            let mut items_rest = items;
            for w in 0..workers {
                let take = base + usize::from(w < rem);
                let (slot_chunk, s_rest) = std::mem::take(&mut slots_rest).split_at_mut(take);
                let (item_chunk, i_rest) = items_rest.split_at(take);
                slots_rest = s_rest;
                items_rest = i_rest;
                scope.spawn(move || {
                    for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RunLength, WorkloadSpec};

    fn quick_base() -> SimConfig {
        SimConfig {
            workload: WorkloadSpec::cbr(0.3),
            warmup_cycles: 100,
            run: RunLength::Cycles(1_500),
            ..Default::default()
        }
    }

    #[test]
    fn sweep_visits_full_grid() {
        let spec = SweepSpec {
            base: quick_base(),
            loads: vec![0.2, 0.4],
            arbiters: vec![ArbiterKind::Coa, ArbiterKind::Wfa],
            seeds: vec![1, 2],
        };
        assert_eq!(spec.point_count(), 8);
        let points = sweep(&spec);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(p.results.len(), 2);
            assert!(p.utilization() > 0.0);
        }
        // Order: arbiter-major, then load.
        assert_eq!(points[0].arbiter, ArbiterKind::Coa);
        assert_eq!(points[0].target_load, 0.2);
        assert_eq!(points[1].target_load, 0.4);
        assert_eq!(points[2].arbiter, ArbiterKind::Wfa);
    }

    #[test]
    fn parallel_matches_sequential() {
        let spec = SweepSpec::coa_vs_wfa(quick_base(), vec![0.3]);
        let parallel = sweep(&spec);
        let sequential: Vec<ExperimentResult> = spec
            .configs()
            .iter()
            .map(crate::experiment::run_experiment)
            .collect();
        assert_eq!(parallel[0].results[0], sequential[0]);
        assert_eq!(parallel[1].results[0], sequential[1]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // Chunked dispatch must be invisible in the output: 1, 2 and 8
        // workers (uneven chunks, single-point chunks) produce the same
        // points, down to the serialized bytes of the whole sweep.
        let spec = SweepSpec {
            base: quick_base(),
            loads: vec![0.3, 0.5],
            arbiters: vec![ArbiterKind::Coa, ArbiterKind::Wfa],
            seeds: vec![7, 8],
        };
        let one = sweep_with_workers(&spec, Some(1));
        let two = sweep_with_workers(&spec, Some(2));
        let eight = sweep_with_workers(&spec, Some(8));
        assert_eq!(one, two);
        assert_eq!(one, eight);
        let json_one = serde_json::to_string(&one).expect("points serialize");
        let json_two = serde_json::to_string(&two).expect("points serialize");
        let json_eight = serde_json::to_string(&eight).expect("points serialize");
        assert_eq!(
            json_one, json_two,
            "sweep JSON differs between 1 and 2 workers"
        );
        assert_eq!(
            json_one, json_eight,
            "sweep JSON differs between 1 and 8 workers"
        );
    }

    #[test]
    fn point_metric_helpers() {
        let spec = SweepSpec::coa_vs_wfa(quick_base(), vec![0.3]);
        let points = sweep(&spec);
        let p = &points[0];
        assert!(p.throughput_ratio() > 0.9);
        assert!(p.class_delay_us(mmr_traffic::connection::TrafficClass::CbrHigh) > 0.0);
        assert_eq!(p.frame_delay_us(), 0.0, "CBR workloads have no frames");
    }
}
