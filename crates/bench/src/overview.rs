//! `results/overview.html` — the QoS observatory dashboard.
//!
//! A single self-contained HTML file: the experiment's observatory data
//! is inlined as JSON and rendered client-side by a small vanilla-JS SVG
//! layer (no network dependencies, openable from `file://`).  Panels:
//!
//! * KPI row — delivered flits, SLO violations, best-effort starvation,
//!   CAC reject rate;
//! * per-class end-to-end delay CDFs, read straight from the
//!   observatory's log-bucketed histograms (cumulative bucket counts);
//! * an SLO table (the accessibility twin of the CDF chart: every value
//!   the charts encode is also a number in a table);
//! * the `BENCH_<n>` trajectory of the telemetry layer's per-cycle cost
//!   across repository revisions.
//!
//! The categorical palette (5 slots, light and dark steps) was validated
//! for adjacent-pair CVD separation and normal-vision distance in both
//! modes; three light-mode slots sit below 3:1 contrast on the surface,
//! which is why the table view is always rendered alongside the chart.

use mmr_core::experiment::ExperimentResult;
use mmr_sim::stats::LogHistogram;
use serde::Serialize;
use std::path::Path;

/// One `results/BENCH_<n>.json` point of the telemetry-cost trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct BenchTrajPoint {
    /// Revision index `n` from the file name.
    pub n: u64,
    /// Router step cost with telemetry disarmed, ns/cycle.
    pub disabled_ns: f64,
    /// Router step cost with telemetry armed, ns/cycle.
    pub armed_ns: f64,
}

fn value_f64(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::U64(n) => Some(*n as f64),
        serde_json::Value::I64(n) => Some(*n as f64),
        serde_json::Value::F64(n) => Some(*n),
        _ => None,
    }
}

/// Scan `dir` for `BENCH_<n>.json` files and extract the telemetry
/// cost trajectory, sorted by `n`.  Files without a `telemetry` section
/// are skipped.
pub fn load_bench_trajectory(dir: &Path) -> Vec<BenchTrajPoint> {
    let mut points = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return points;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(value) = serde_json::parse_value(&text) else {
            continue;
        };
        let Some(t) = value.get("telemetry") else {
            continue;
        };
        let (Some(disabled_ns), Some(armed_ns)) = (
            t.get("disabled_ns_per_cycle").and_then(value_f64),
            t.get("armed_ns_per_cycle").and_then(value_f64),
        ) else {
            continue;
        };
        points.push(BenchTrajPoint {
            n,
            disabled_ns,
            armed_ns,
        });
    }
    points.sort_by_key(|p| p.n);
    points
}

/// Per-class row of the dashboard data: table values plus the delay CDF
/// polyline extracted from the observatory histogram.
#[derive(Debug, Serialize)]
struct ClassRow {
    label: String,
    generated: u64,
    delivered: u64,
    mean_delay_us: f64,
    p50_delay_us: f64,
    p99_delay_us: f64,
    max_delay_us: f64,
    p99_jitter_us: f64,
    p99_residency_us: f64,
    slo_violations: u64,
    /// CDF x-coordinates (delay, µs), one per non-empty bucket.
    cdf_us: Vec<f64>,
    /// CDF y-coordinates (cumulative % of deliveries), same length.
    cdf_pct: Vec<f64>,
}

#[derive(Debug, Serialize)]
struct SloPanel {
    delay_bound_us: f64,
    violations_total: u64,
    best_effort_starved_windows: u64,
    best_effort_starved_cycles: u64,
    windows_observed: u64,
    admission_accepted: u64,
    admission_rejected: u64,
    admission_reject_pct: f64,
}

#[derive(Debug, Serialize)]
struct OverviewData {
    scenario: String,
    arbiter: String,
    achieved_load: f64,
    executed_cycles: u64,
    delivered_flits: u64,
    classes: Vec<ClassRow>,
    slo: SloPanel,
    bench: Vec<BenchTrajPoint>,
}

/// Cumulative distribution of a log-bucketed histogram: one point per
/// non-empty bucket at `(bucket hi, cumulative fraction)`, the top point
/// clamped to the observed maximum.
fn cdf(h: &LogHistogram, us_per_rc: f64) -> (Vec<f64>, Vec<f64>) {
    let total = h.count();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    if total == 0 {
        return (xs, ys);
    }
    let mut cum = 0u64;
    for b in h.nonzero_buckets() {
        cum += b.count;
        xs.push(b.hi.min(h.max()) as f64 * us_per_rc);
        ys.push(100.0 * cum as f64 / total as f64);
    }
    (xs, ys)
}

fn quantile_us(h: &LogHistogram, q: f64, us_per_rc: f64) -> f64 {
    h.quantile(q).map(|v| v as f64 * us_per_rc).unwrap_or(0.0)
}

/// Assemble the dashboard data model from an experiment result.  Returns
/// `None` when the result carries no armed-observatory telemetry (there
/// is nothing to plot).
fn build_data(
    scenario: &str,
    result: &ExperimentResult,
    bench: &[BenchTrajPoint],
) -> Option<OverviewData> {
    let telemetry = result.telemetry.as_ref()?;
    let observatory = telemetry.observatory.as_ref()?;
    let us_per_rc = result.config.router.time.router_cycle_secs() * 1e6;
    let classes = observatory
        .classes
        .iter()
        .filter(|c| !c.delay.is_empty())
        .map(|c| {
            let (cdf_us, cdf_pct) = cdf(&c.delay, us_per_rc);
            let generated = result
                .summary
                .metrics
                .class(c.class)
                .map(|s| s.generated)
                .unwrap_or(0);
            ClassRow {
                label: c.class.label().to_string(),
                generated,
                delivered: c.delay.count(),
                mean_delay_us: c.delay.mean() * us_per_rc,
                p50_delay_us: quantile_us(&c.delay, 0.50, us_per_rc),
                p99_delay_us: quantile_us(&c.delay, 0.99, us_per_rc),
                max_delay_us: c.delay.max() as f64 * us_per_rc,
                p99_jitter_us: quantile_us(&c.jitter, 0.99, us_per_rc),
                p99_residency_us: quantile_us(&c.residency, 0.99, us_per_rc),
                slo_violations: c.slo_violations,
                cdf_us,
                cdf_pct,
            }
        })
        .collect();
    let slo = SloPanel {
        delay_bound_us: observatory.slo.delay_bound_rc as f64 * us_per_rc,
        violations_total: observatory.slo.violations_total,
        best_effort_starved_windows: observatory.slo.best_effort_starved_windows,
        best_effort_starved_cycles: observatory.slo.best_effort_starved_cycles,
        windows_observed: observatory.slo.windows_observed,
        admission_accepted: result.admission.accepted,
        admission_rejected: result.admission.rejected,
        admission_reject_pct: 100.0 * result.admission.reject_rate(),
    };
    Some(OverviewData {
        scenario: scenario.to_string(),
        arbiter: result.summary.arbiter.clone(),
        achieved_load: result.achieved_load,
        executed_cycles: result.executed_cycles,
        delivered_flits: result.summary.delivered_flits,
        classes,
        slo,
        bench: bench.to_vec(),
    })
}

/// Render the self-contained overview dashboard.  Returns `None` when
/// the result has no armed observatory.
pub fn render_overview(
    scenario: &str,
    result: &ExperimentResult,
    bench: &[BenchTrajPoint],
) -> Option<String> {
    let data = build_data(scenario, result, bench)?;
    let json = serde_json::to_string(&data).ok()?;
    // `</script>`-safe embedding: break any close-tag sequence.
    let json = json.replace("</", "<\\/");
    Some(TEMPLATE.replace("__OVERVIEW_DATA__", &json))
}

/// Structural self-check for a rendered dashboard: the inline JSON
/// parses and every panel the template promises is present.  Returns a
/// human-readable error on failure (used by `metrics_dump` and CI).
pub fn validate_overview(html: &str) -> Result<(), String> {
    for marker in [
        "</html>",
        "id=\"overview-data\"",
        "id=\"cdf-chart\"",
        "id=\"bench-chart\"",
        "id=\"class-table\"",
        "id=\"kpi-row\"",
    ] {
        if !html.contains(marker) {
            return Err(format!("overview.html is missing `{marker}`"));
        }
    }
    let start = html
        .find("id=\"overview-data\"")
        .and_then(|i| html[i..].find('>').map(|j| i + j + 1))
        .ok_or("unterminated data script tag")?;
    let end = start
        + html[start..]
            .find("</script>")
            .ok_or("unclosed data script")?;
    let json = html[start..end].replace("<\\/", "</");
    let value: serde_json::Value =
        serde_json::parse_value(json.trim()).map_err(|e| format!("inline JSON invalid: {e}"))?;
    for key in ["scenario", "classes", "slo", "bench"] {
        if value.get(key).is_none() {
            return Err(format!("inline JSON is missing `{key}`"));
        }
    }
    match value.get("classes") {
        Some(serde_json::Value::Array(classes)) if !classes.is_empty() => Ok(()),
        _ => Err("inline JSON has no per-class observations".into()),
    }
}

/// The dashboard shell.  Palette: categorical slots 1–5 (blue, orange,
/// aqua, yellow, magenta) with per-mode steps, validated for adjacent
/// CVD separation on both surfaces; text wears ink tokens, never series
/// color; gridlines are solid hairlines; lines are 2px.
const TEMPLATE: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>MMR QoS observatory</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --axis: #c3c2b7;
    --border: rgba(11, 11, 11, 0.10);
    --series-1: #2a78d6;
    --series-2: #eb6834;
    --series-3: #1baf7a;
    --series-4: #eda100;
    --series-5: #e87ba4;
    --status-critical: #d03b3b;
    --status-good: #0ca30c;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --axis: #383835;
      --border: rgba(255, 255, 255, 0.10);
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
      --series-4: #c98500;
      --series-5: #d55181;
      --status-critical: #d03b3b;
      --status-good: #0ca30c;
    }
  }
  body.viz-root {
    margin: 0;
    background: var(--page);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  main { max-width: 1060px; margin: 0 auto; padding: 24px 20px 48px; }
  h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
  .subtitle { color: var(--text-secondary); margin: 0 0 20px; }
  .card {
    background: var(--surface-1);
    border: 1px solid var(--border);
    border-radius: 10px;
    padding: 16px 18px;
    margin-bottom: 18px;
  }
  .card h2 { font-size: 15px; font-weight: 600; margin: 0 0 2px; }
  .card .note { color: var(--text-muted); font-size: 12px; margin: 0 0 12px; }
  #kpi-row { display: grid; grid-template-columns: repeat(auto-fit, minmax(180px, 1fr)); gap: 12px; margin-bottom: 18px; }
  .tile { background: var(--surface-1); border: 1px solid var(--border); border-radius: 10px; padding: 12px 16px; }
  .tile .label { color: var(--text-secondary); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .detail { color: var(--text-muted); font-size: 12px; margin-top: 2px; }
  .legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 0 0 8px; font-size: 12px; color: var(--text-secondary); }
  .legend .key { display: inline-flex; align-items: center; gap: 6px; }
  .legend .swatch { width: 14px; height: 0; border-top: 2px solid; border-radius: 1px; }
  svg { display: block; width: 100%; height: auto; }
  svg text { fill: var(--text-muted); font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
  .gridline { stroke: var(--grid); stroke-width: 1; }
  .axisline { stroke: var(--axis); stroke-width: 1; }
  .series { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
  .crosshair { stroke: var(--axis); stroke-width: 1; visibility: hidden; }
  .chart-wrap { position: relative; }
  .tooltip {
    position: absolute; pointer-events: none; visibility: hidden;
    background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
    padding: 8px 10px; font-size: 12px; box-shadow: 0 2px 10px rgba(0,0,0,0.12);
    min-width: 140px; z-index: 2;
  }
  .tooltip .tt-title { color: var(--text-muted); margin-bottom: 4px; }
  .tooltip .tt-row { display: flex; align-items: center; gap: 6px; margin-top: 2px; }
  .tooltip .tt-key { width: 12px; height: 0; border-top: 2px solid; flex: none; }
  .tooltip .tt-val { font-weight: 600; color: var(--text-primary); margin-left: auto; }
  .tooltip .tt-name { color: var(--text-secondary); }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th, td { text-align: right; padding: 6px 10px; border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums; }
  th:first-child, td:first-child { text-align: left; }
  th { color: var(--text-secondary); font-weight: 500; }
  td.class-name { color: var(--text-primary); }
  td .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%; margin-right: 7px; }
  .bad { color: var(--status-critical); font-weight: 600; }
  .ok { color: var(--status-good); font-weight: 600; }
</style>
</head>
<body class="viz-root">
<script id="overview-data" type="application/json">__OVERVIEW_DATA__</script>
<main>
  <h1>MMR QoS observatory</h1>
  <p class="subtitle" id="subtitle"></p>
  <div id="kpi-row"></div>
  <div class="card">
    <h2>End-to-end flit delay — CDF per class</h2>
    <p class="note">Cumulative share of delivered flits vs delay (&micro;s, log scale), from the observatory's log-bucketed histograms (&le;12.5% bucket error).</p>
    <div class="legend" id="cdf-legend"></div>
    <div class="chart-wrap"><svg id="cdf-chart"></svg><div class="tooltip" id="cdf-tip"></div></div>
  </div>
  <div class="card">
    <h2>Per-class service detail</h2>
    <p class="note">The table twin of the chart above: every plotted value, as numbers.</p>
    <table id="class-table"></table>
  </div>
  <div class="card">
    <h2>Telemetry cost trajectory</h2>
    <p class="note">Router step cost (ns/cycle) across repository revisions (BENCH_n), telemetry disarmed vs armed.</p>
    <div class="legend" id="bench-legend"></div>
    <div class="chart-wrap"><svg id="bench-chart"></svg><div class="tooltip" id="bench-tip"></div></div>
  </div>
</main>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("overview-data").textContent);
const SERIES_VARS = ["--series-1", "--series-2", "--series-3", "--series-4", "--series-5"];
const css = name => getComputedStyle(document.body).getPropertyValue(name).trim();

function fmt(v, digits) {
  if (!isFinite(v)) return "-";
  if (digits === undefined) digits = v >= 100 ? 0 : v >= 10 ? 1 : 2;
  return v.toLocaleString("en-US", { maximumFractionDigits: digits, minimumFractionDigits: 0 });
}

function el(tag, attrs, parent) {
  const ns = "http://www.w3.org/2000/svg";
  const node = tag === "div" || tag === "span" ? document.createElement(tag) : document.createElementNS(ns, tag);
  for (const k in attrs) node.setAttribute(k, attrs[k]);
  if (parent) parent.appendChild(node);
  return node;
}

function tile(parent, label, value, detail, cls) {
  const t = document.createElement("div");
  t.className = "tile";
  const l = document.createElement("div"); l.className = "label"; l.textContent = label;
  const v = document.createElement("div"); v.className = "value" + (cls ? " " + cls : ""); v.textContent = value;
  t.appendChild(l); t.appendChild(v);
  if (detail) { const d = document.createElement("div"); d.className = "detail"; d.textContent = detail; t.appendChild(d); }
  parent.appendChild(t);
}

function legend(container, series) {
  for (const s of series) {
    const key = document.createElement("span"); key.className = "key";
    const sw = document.createElement("span"); sw.className = "swatch"; sw.style.borderTopColor = s.color;
    const name = document.createElement("span"); name.textContent = s.label;
    key.appendChild(sw); key.appendChild(name); container.appendChild(key);
  }
}

// Shared line-chart renderer: series = [{label, color, xs, ys}], opts =
// {xlog, xTicks(fn)?, xLabel, yLabel, yMax?}.  Draws hairline grid, 2px
// lines, and a crosshair+tooltip listing every series at the nearest X.
function lineChart(svgId, tipId, series, opts) {
  const svg = document.getElementById(svgId);
  const tip = document.getElementById(tipId);
  const W = 980, H = 300, M = { l: 58, r: 16, t: 10, b: 36 };
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  svg.replaceChildren();
  const xsAll = series.flatMap(s => s.xs), ysAll = series.flatMap(s => s.ys);
  if (!xsAll.length) return;
  const xMinRaw = Math.min(...xsAll), xMaxRaw = Math.max(...xsAll);
  const xMin = opts.xlog ? Math.max(1e-3, xMinRaw) : xMinRaw;
  const xMax = Math.max(xMaxRaw, xMin * (opts.xlog ? 10 : 1) + 1e-9);
  const yMax = opts.yMax !== undefined ? opts.yMax : Math.max(...ysAll) * 1.08;
  const xPos = v => {
    if (opts.xlog) {
      const lv = Math.log10(Math.max(v, xMin));
      return M.l + (lv - Math.log10(xMin)) / (Math.log10(xMax) - Math.log10(xMin)) * (W - M.l - M.r);
    }
    return M.l + (v - xMin) / (xMax - xMin) * (W - M.l - M.r);
  };
  const yPos = v => H - M.b - (v / yMax) * (H - M.t - M.b);

  // Grid + ticks.
  const yTicks = 4;
  for (let i = 0; i <= yTicks; i++) {
    const v = yMax * i / yTicks, y = yPos(v);
    el("line", { x1: M.l, x2: W - M.r, y1: y, y2: y, class: "gridline" }, svg);
    const t = el("text", { x: M.l - 8, y: y + 4, "text-anchor": "end" }, svg);
    t.textContent = fmt(v, v < 10 ? 1 : 0);
  }
  let xTickVals = [];
  if (opts.xlog) {
    for (let e = Math.floor(Math.log10(xMin)); e <= Math.ceil(Math.log10(xMax)); e++) {
      const v = Math.pow(10, e);
      if (v >= xMin / 1.001 && v <= xMax * 1.001) xTickVals.push(v);
    }
  } else {
    const n = Math.min(8, Math.max(2, Math.round(xMax - xMin)));
    for (let i = 0; i <= n; i++) xTickVals.push(xMin + (xMax - xMin) * i / n);
  }
  for (const v of xTickVals) {
    const x = xPos(v);
    el("line", { x1: x, x2: x, y1: M.t, y2: H - M.b, class: "gridline" }, svg);
    const t = el("text", { x: x, y: H - M.b + 16, "text-anchor": "middle" }, svg);
    t.textContent = opts.xTickFmt ? opts.xTickFmt(v) : fmt(v);
  }
  el("line", { x1: M.l, x2: W - M.r, y1: H - M.b, y2: H - M.b, class: "axisline" }, svg);
  el("line", { x1: M.l, x2: M.l, y1: M.t, y2: H - M.b, class: "axisline" }, svg);
  const xl = el("text", { x: (M.l + W - M.r) / 2, y: H - 4, "text-anchor": "middle" }, svg);
  xl.textContent = opts.xLabel;
  const yl = el("text", { x: 14, y: (M.t + H - M.b) / 2, "text-anchor": "middle",
    transform: "rotate(-90 14 " + (M.t + H - M.b) / 2 + ")" }, svg);
  yl.textContent = opts.yLabel;

  // Series lines.
  for (const s of series) {
    const d = s.xs.map((x, i) => (i ? "L" : "M") + xPos(x).toFixed(1) + " " + yPos(s.ys[i]).toFixed(1)).join(" ");
    el("path", { d: d, class: "series", stroke: s.color }, svg);
  }

  // Crosshair + tooltip: snap to nearest point per series.
  const hair = el("line", { y1: M.t, y2: H - M.b, class: "crosshair" }, svg);
  const wrap = svg.parentElement;
  svg.addEventListener("pointerleave", () => {
    hair.style.visibility = "hidden"; tip.style.visibility = "hidden";
  });
  svg.addEventListener("pointermove", ev => {
    const rect = svg.getBoundingClientRect();
    const px = (ev.clientX - rect.left) / rect.width * W;
    if (px < M.l || px > W - M.r) { hair.style.visibility = "hidden"; tip.style.visibility = "hidden"; return; }
    let snapX = null;
    const rows = [];
    for (const s of series) {
      if (!s.xs.length) continue;
      let best = 0, bestD = Infinity;
      for (let i = 0; i < s.xs.length; i++) {
        const d = Math.abs(xPos(s.xs[i]) - px);
        if (d < bestD) { bestD = d; best = i; }
      }
      rows.push({ label: s.label, color: s.color, x: s.xs[best], y: s.ys[best] });
      const sx = xPos(s.xs[best]);
      if (snapX === null || Math.abs(sx - px) < Math.abs(snapX - px)) snapX = sx;
    }
    hair.setAttribute("x1", snapX); hair.setAttribute("x2", snapX);
    hair.style.visibility = "visible";
    tip.replaceChildren();
    const title = document.createElement("div"); title.className = "tt-title";
    title.textContent = opts.xLabel + ": " + (opts.xTickFmt ? opts.xTickFmt(rows[0].x) : fmt(rows[0].x));
    tip.appendChild(title);
    for (const r of rows) {
      const row = document.createElement("div"); row.className = "tt-row";
      const key = document.createElement("span"); key.className = "tt-key"; key.style.borderTopColor = r.color;
      const name = document.createElement("span"); name.className = "tt-name"; name.textContent = r.label;
      const val = document.createElement("span"); val.className = "tt-val"; val.textContent = fmt(r.y) + (opts.yUnit || "");
      row.appendChild(key); row.appendChild(name); row.appendChild(val); tip.appendChild(row);
    }
    tip.style.visibility = "visible";
    const wrapRect = wrap.getBoundingClientRect();
    let left = (ev.clientX - wrapRect.left) + 14;
    if (left + tip.offsetWidth > wrapRect.width - 4) left = left - tip.offsetWidth - 28;
    tip.style.left = left + "px";
    tip.style.top = Math.max(0, ev.clientY - wrapRect.top - tip.offsetHeight - 10) + "px";
  });
}

// --- KPI row ---
const kpi = document.getElementById("kpi-row");
tile(kpi, "Delivered flits", fmt(DATA.delivered_flits), DATA.executed_cycles.toLocaleString("en-US") + " cycles @ load " + DATA.achieved_load.toFixed(2));
tile(kpi, "SLO violations", fmt(DATA.slo.violations_total),
  "bound " + fmt(DATA.slo.delay_bound_us) + " µs, guaranteed classes",
  DATA.slo.violations_total > 0 ? "bad" : "ok");
tile(kpi, "Best-effort starved windows", fmt(DATA.slo.best_effort_starved_windows),
  "of " + fmt(DATA.slo.windows_observed) + " windows (" + fmt(DATA.slo.best_effort_starved_cycles) + " cycles)",
  DATA.slo.best_effort_starved_windows > 0 ? "bad" : "ok");
tile(kpi, "CAC reject rate", fmt(DATA.slo.admission_reject_pct, 1) + "%",
  fmt(DATA.slo.admission_accepted) + " accepted / " + fmt(DATA.slo.admission_rejected) + " rejected");

document.getElementById("subtitle").textContent =
  DATA.scenario + " · " + DATA.arbiter + " · achieved load " + DATA.achieved_load.toFixed(2);

// --- Delay CDF per class ---
const cdfSeries = DATA.classes.map((c, i) => ({
  label: c.label, color: css(SERIES_VARS[i % SERIES_VARS.length]),
  xs: c.cdf_us, ys: c.cdf_pct,
}));
legend(document.getElementById("cdf-legend"), cdfSeries);
lineChart("cdf-chart", "cdf-tip", cdfSeries,
  { xlog: true, xLabel: "delay (µs)", yLabel: "% of flits", yMax: 100, yUnit: "%" });

// --- Class table ---
const table = document.getElementById("class-table");
{
  const head = document.createElement("tr");
  for (const h of ["class", "generated", "delivered", "mean delay µs", "p50 µs", "p99 µs", "max µs", "p99 jitter µs", "p99 residency µs", "SLO violations"]) {
    const th = document.createElement("th"); th.textContent = h; head.appendChild(th);
  }
  table.appendChild(head);
  DATA.classes.forEach((c, i) => {
    const tr = document.createElement("tr");
    const name = document.createElement("td"); name.className = "class-name";
    const dot = document.createElement("span"); dot.className = "dot";
    dot.style.background = css(SERIES_VARS[i % SERIES_VARS.length]);
    name.appendChild(dot); name.appendChild(document.createTextNode(c.label)); tr.appendChild(name);
    for (const v of [fmt(c.generated), fmt(c.delivered), fmt(c.mean_delay_us), fmt(c.p50_delay_us), fmt(c.p99_delay_us), fmt(c.max_delay_us), fmt(c.p99_jitter_us), fmt(c.p99_residency_us), fmt(c.slo_violations)]) {
      const td = document.createElement("td"); td.textContent = v; tr.appendChild(td);
    }
    table.appendChild(tr);
  });
}

// --- BENCH trajectory ---
const benchSeries = [
  { label: "disarmed ns/cycle", color: css("--series-1"), xs: DATA.bench.map(b => b.n), ys: DATA.bench.map(b => b.disabled_ns) },
  { label: "armed ns/cycle", color: css("--series-2"), xs: DATA.bench.map(b => b.n), ys: DATA.bench.map(b => b.armed_ns) },
];
if (DATA.bench.length) {
  legend(document.getElementById("bench-legend"), benchSeries);
  lineChart("bench-chart", "bench-tip", benchSeries,
    { xlog: false, xLabel: "BENCH revision", yLabel: "ns per cycle", xTickFmt: v => "n=" + Math.round(v) });
} else {
  document.getElementById("bench-chart").replaceWith(Object.assign(document.createElement("p"), { textContent: "no BENCH_n.json files found", className: "note" }));
}
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_has_every_validated_marker() {
        // The validator's markers must stay in sync with the template.
        let fake = TEMPLATE.replace(
            "__OVERVIEW_DATA__",
            r#"{"scenario":"t","classes":[{"label":"cbr-high"}],"slo":{},"bench":[]}"#,
        );
        validate_overview(&fake).expect("template with data validates");
    }

    #[test]
    fn validator_rejects_missing_panels() {
        assert!(validate_overview("<html></html>").is_err());
        let no_classes = TEMPLATE.replace(
            "__OVERVIEW_DATA__",
            r#"{"scenario":"t","classes":[],"slo":{},"bench":[]}"#,
        );
        assert!(validate_overview(&no_classes).is_err());
    }

    #[test]
    fn bench_trajectory_ignores_foreign_files() {
        let dir = std::env::temp_dir().join("mmr_overview_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_3.json"),
            r#"{"telemetry":{"disabled_ns_per_cycle":800.0,"armed_ns_per_cycle":1600.0}}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_1.json"),
            r#"{"telemetry":{"disabled_ns_per_cycle":900.0,"armed_ns_per_cycle":1700.0}}"#,
        )
        .unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        let points = load_bench_trajectory(&dir);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].n, 1);
        assert_eq!(points[1].n, 3);
        assert_eq!(points[1].disabled_ns, 800.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
