//! Minimal self-calibrating timing harness.
//!
//! Replaces the Criterion dependency (unavailable offline) for the
//! kernel micro-benchmarks: each measurement first calibrates a batch
//! size so one batch runs long enough to swamp timer overhead, then
//! takes several timed batches and reports the median, which is robust
//! to scheduler noise without Criterion's full statistics machinery.

use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median nanoseconds per iteration across the sample batches.
    pub ns_per_iter: f64,
    /// Iterations per timed batch after calibration.
    pub iters_per_batch: u64,
    /// Number of timed batches.
    pub samples: usize,
}

impl Measurement {
    /// Iterations per second implied by the median.
    pub fn per_second(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Calibration floor: a batch must take at least this long before we
/// trust `elapsed / iters`.
const CALIBRATION_NS: u128 = 2_000_000; // 2 ms
/// Target duration of each timed batch.
const BATCH_TARGET_NS: u128 = 20_000_000; // 20 ms
/// Timed batches per measurement (median of these is reported).
const SAMPLES: usize = 5;

fn time_batch<F: FnMut()>(f: &mut F, iters: u64) -> u128 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos()
}

/// Measure `f` with default sampling (5 × ~20 ms batches).
pub fn bench<F: FnMut()>(f: F) -> Measurement {
    bench_with(f, SAMPLES, BATCH_TARGET_NS)
}

/// Measure `f` with a custom sample count and per-batch time target
/// (nanoseconds).  Use smaller targets for smoke runs.
pub fn bench_with<F: FnMut()>(mut f: F, samples: usize, batch_target_ns: u128) -> Measurement {
    // Calibrate: double the batch size until one batch crosses the floor.
    let mut iters = 1u64;
    let mut elapsed = time_batch(&mut f, iters);
    while elapsed < CALIBRATION_NS.min(batch_target_ns) {
        iters = iters.saturating_mul(2);
        elapsed = time_batch(&mut f, iters);
    }
    // Scale so one batch lands near the target duration.
    let ns_per_iter_est = (elapsed as f64 / iters as f64).max(0.01);
    let iters_per_batch = ((batch_target_ns as f64 / ns_per_iter_est) as u64).max(1);

    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| time_batch(&mut f, iters_per_batch) as f64 / iters_per_batch as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let ns_per_iter = per_iter[per_iter.len() / 2];
    Measurement {
        ns_per_iter,
        iters_per_batch,
        samples: samples.max(1),
    }
}

/// Render a measurement as a human-readable report line.
pub fn report_line(name: &str, m: &Measurement) -> String {
    let rate = m.per_second();
    let rate_str = if rate >= 1e6 {
        format!("{:.2} M/s", rate / 1e6)
    } else {
        format!("{:.1} K/s", rate / 1e3)
    };
    format!(
        "{name:<44} {:>12.1} ns/iter   {rate_str:>12}",
        m.ns_per_iter
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hint::black_box;

    #[test]
    fn bench_reports_positive_time() {
        let mut acc = 0u64;
        let m = bench_with(
            || {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(acc);
            },
            3,
            200_000,
        );
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters_per_batch >= 1);
        assert_eq!(m.samples, 3);
        assert!(m.per_second() > 0.0);
    }

    #[test]
    fn report_line_contains_name_and_units() {
        let m = Measurement {
            ns_per_iter: 125.0,
            iters_per_batch: 1000,
            samples: 5,
        };
        let line = report_line("coa/16x16", &m);
        assert!(line.contains("coa/16x16"));
        assert!(line.contains("ns/iter"));
        assert!(line.contains("M/s"));
    }
}
