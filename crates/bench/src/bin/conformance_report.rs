//! Paper-conformance gate: evaluate the committed claim manifest over a
//! multi-seed ensemble and write `results/conformance.json`.
//!
//! Exit status is the gate: 0 when every claim passes at the ensemble
//! median, 1 when any claim regresses — `scripts/ci.sh` runs this in
//! quick fidelity.  `--list-claims` prints the manifest (id, figure,
//! threshold, description) without running any simulation, so a failing
//! CI line can be matched to its exact claim.

use mmr_bench::{banner, emit, fidelity_from_args, results_dir};
use mmr_core::conformance::{paper_claims, run_conformance, EnsembleOptions};
use mmr_core::saturation::ExperimentCache;

fn main() {
    if std::env::args().any(|a| a == "--list-claims") {
        println!("{:<28} {:<8} claim", "id", "figure");
        println!("{}", "-".repeat(96));
        for c in paper_claims() {
            println!("{:<28} {:<8} {}", c.id, c.figure.label(), c.description);
        }
        return;
    }

    let fidelity = fidelity_from_args();
    let options = EnsembleOptions::new(fidelity);
    eprintln!(
        "running conformance ensemble: {} CBR seeds, {} VBR seeds…",
        options.cbr_seeds, options.vbr_seeds
    );
    let mut cache = ExperimentCache::new();
    let report = run_conformance(options, &mut cache);

    let mut out = banner(
        "Conformance",
        "machine-checked paper claims, ensemble median across seeds",
        fidelity,
    );
    out.push_str(&report.render_text());
    let failed = report.failed();
    out.push_str(&format!(
        "\n{}/{} claims pass ({} simulations, {} cache hits)\n",
        report.claims.len() - failed.len(),
        report.claims.len(),
        cache.misses(),
        cache.hits(),
    ));
    emit("conformance.txt", &out);

    let json = serde_json::to_string(&report).expect("report serializes");
    let path = results_dir().join("conformance.json");
    std::fs::write(&path, &json).expect("write conformance.json");
    eprintln!("[written {}]", path.display());

    if !failed.is_empty() {
        eprintln!("conformance FAILED:");
        for c in &failed {
            eprintln!(
                "  {} [{}]: median {:.4} vs threshold {:.4} (margin {:+.4} {})",
                c.id, c.figure, c.median, c.threshold, c.margin, c.unit
            );
        }
        std::process::exit(1);
    }
}
