//! Ablation — link scheduling policy: dynamic SIABP priorities vs a
//! static TDM slot table (with and without backfill).
//!
//! §2 reserves bandwidth in flit-cycle slots per round; the MMR serves
//! those reservations *dynamically* through biased priorities rather than
//! a literal slot table.  This ablation quantifies that choice: on CBR
//! the table is competitive (its slots match the traffic), on bursty
//! MPEG-2 the pure table wastes every idle slot, and backfill recovers
//! throughput but still pins burst service to table positions.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;
use mmr_core::report::TextTable;
use mmr_core::router::config::{LinkPolicy, RouterConfig};
use mmr_core::scenarios::{vbr_cycle_budget, Fidelity};
use mmr_core::traffic::connection::TrafficClass;

fn policies() -> Vec<(&'static str, LinkPolicy)> {
    vec![
        ("SIABP", LinkPolicy::Priority),
        (
            "TDM",
            LinkPolicy::SlotTable {
                backfill: false,
                table_len: 1024,
            },
        ),
        (
            "TDM+backfill",
            LinkPolicy::SlotTable {
                backfill: true,
                table_len: 1024,
            },
        ),
    ]
}

fn main() {
    let fidelity = fidelity_from_args();
    let (warmup, cycles, gops): (u64, u64, usize) = match fidelity {
        Fidelity::Quick => (2_000, 25_000, 1),
        Fidelity::Full => (10_000, 200_000, 4),
    };
    let mut out = banner(
        "Ablation",
        "link policy: dynamic priority vs TDM slot table",
        fidelity,
    );

    out.push_str("CBR mix, 70% load:\n");
    let mut t1 = TextTable::new(vec![
        "policy",
        "util(%)",
        "high delay(µs)",
        "low delay(µs)",
        "throughput",
    ]);
    for (name, policy) in policies() {
        let cfg = SimConfig {
            router: RouterConfig {
                link_policy: policy,
                ..Default::default()
            },
            workload: WorkloadSpec::cbr(0.7),
            warmup_cycles: warmup,
            run: RunLength::Cycles(cycles),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        let d = |c| {
            r.summary
                .metrics
                .class(c)
                .map(|s| s.mean_delay_us)
                .unwrap_or(f64::NAN)
        };
        t1.row(vec![
            name.to_string(),
            format!("{:.1}", r.summary.crossbar_utilization * 100.0),
            format!("{:.2}", d(TrafficClass::CbrHigh)),
            format!("{:.2}", d(TrafficClass::CbrLow)),
            format!("{:.3}", r.summary.throughput_ratio()),
        ]);
    }
    out.push_str(&t1.render());

    out.push_str("\nMPEG-2 VBR (SR), 70% generated load:\n");
    let mut t2 = TextTable::new(vec![
        "policy",
        "frame delay(µs)",
        "max frame delay(µs)",
        "jitter(µs)",
        "drained",
    ]);
    for (name, policy) in policies() {
        let cfg = SimConfig {
            router: RouterConfig {
                link_policy: policy,
                ..Default::default()
            },
            workload: WorkloadSpec::Vbr {
                target_load: 0.7,
                gops,
                injection: InjectionKind::SmoothRate,
                enforce_peak: false,
            },
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: vbr_cycle_budget(gops),
            },
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        let m = &r.summary.metrics;
        t2.row(vec![
            name.to_string(),
            format!("{:.1}", m.mean_frame_delay_us),
            format!("{:.1}", m.max_frame_delay_us),
            format!("{:.2}", m.mean_frame_jitter_us),
            format!("{}", r.drained),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "# expectation: TDM matches SIABP on CBR (slots fit the traffic) but\n\
                  # degrades on VBR bursts; backfill recovers most of the gap\n",
    );
    emit("ablation_link_policy.txt", &out);
}
