//! Benchmark-trajectory report: `results/BENCH_<n>.json`.
//!
//! Aggregates the hot-path kernel numbers into one machine-readable
//! snapshot so successive revisions can be compared file-to-file:
//!
//! * `schedule_into` ns/op for every arbiter at 4/8/16/64/128/256 ports ×
//!   4 levels (64 = the single-word port-set limit, 128/256 = the two- and
//!   four-word widths), with the matching throughput (grants per second)
//!   each implies;
//! * the optimized COA against its `reference` transcription at
//!   16 ports × 4 levels, with the speedup measured in the same run;
//! * whole-router simulated cycles per second for COA and WFA.
//!
//! Each invocation writes the next free `BENCH_<n>.json` under
//! `results/` (override with `--out <path>`); pass `--quick` for a smoke
//! run with shorter batches.
//!
//! The report also carries a telemetry-overhead section (router step with
//! telemetry disabled vs armed) and a whole-experiment sweep section:
//! the wall clock of a Fig. 5-style CBR run at 0.2/0.6/0.9 normalized
//! load under three engines — `legacy` (cycle-by-cycle with per-source
//! polling, the pre-calendar loop), `naive` (cycle-by-cycle with
//! injection calendars) and `horizon` (event-horizon fast-forwarding) —
//! with the engines' bit-identity asserted on every rep.
//!
//! Pass `--gate <baseline.json>` to fail (exit 1) if:
//! * the COA kernel at 16 ports regresses more than
//!   `MMR_KERNEL_GATE_PCT` percent (default 25) against the baseline's
//!   kernel row, or climbs above 0.6x the pre-bit-matrix cost recorded in
//!   the committed `results/BENCH_3.json` (scaled by the naive reference
//!   kernel's same-run cost ratio, which cancels host drift);
//! * the instrumented-but-disabled router step regresses more than
//!   `MMR_TELEMETRY_GATE_PCT` percent (default 10) against the COA router
//!   number in the baseline — the "zero-overhead when disarmed" contract;
//! * the horizon engine's speedup over the legacy loop falls below 3x at
//!   0.2 load, or the horizon run is more than 2% slower than the naive
//!   loop at 0.9 load (where skips are rare);
//! * the horizon wall clock regresses more than `MMR_SWEEP_GATE_PCT`
//!   percent (default 25 — whole-run wall clocks are noisy) against the
//!   baseline's sweep section, when the baseline has one.

use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_arbiter::matching::Matching;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_bench::harness::{bench_with, Measurement};
use mmr_bench::results_dir;
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload};
use mmr_router::telemetry::TelemetryConfig;
use mmr_sim::engine::{CycleModel, Runner, StopCondition};
use mmr_sim::rng::SimRng;
use mmr_sim::time::FlitCycle;
use serde_json::Value;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

const LEVELS: usize = 4;

fn candidate_set(ports: usize, seed: u64) -> CandidateSet {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut cs = CandidateSet::new(ports, LEVELS);
    for input in 0..ports {
        let mut cands: Vec<Candidate> = (0..LEVELS)
            .map(|vc| Candidate {
                input,
                vc,
                output: rng.index(ports),
                priority: Priority::new((1u64 << (4 + rng.index(12))) as f64),
            })
            .collect();
        cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
        cs.set_input(input, &cands);
    }
    cs
}

/// Average grants per `schedule_into` call on the benchmark workload.
fn grants_per_call(kind: ArbiterKind, ports: usize) -> f64 {
    let cs = candidate_set(ports, 42);
    let mut sched = kind.instantiate(ports);
    let mut rng = SimRng::seed_from_u64(7);
    let mut out = Matching::new(ports);
    let mut total = 0usize;
    const CALLS: usize = 256;
    for _ in 0..CALLS {
        sched.schedule_into(&cs, &mut rng, &mut out);
        total += out.size();
    }
    total as f64 / CALLS as f64
}

fn measure_kernel(kind: ArbiterKind, ports: usize, samples: usize, target: u128) -> Measurement {
    let cs = candidate_set(ports, 42);
    let mut sched = kind.instantiate(ports);
    let mut rng = SimRng::seed_from_u64(7);
    let mut out = Matching::new(ports);
    bench_with(
        || {
            sched.schedule_into(black_box(&cs), &mut rng, &mut out);
            black_box(&out);
        },
        samples,
        target,
    )
}

fn measure_reference_coa(ports: usize, samples: usize, target: u128) -> Measurement {
    let cs = candidate_set(ports, 42);
    let mut sched = ArbiterKind::Coa.instantiate_reference(ports);
    let mut rng = SimRng::seed_from_u64(7);
    let mut out = Matching::new(ports);
    bench_with(
        || {
            sched.schedule_into(black_box(&cs), &mut rng, &mut out);
            black_box(&out);
        },
        samples,
        target,
    )
}

fn measure_router(kind: ArbiterKind, load: f64, samples: usize, target: u128) -> Measurement {
    measure_router_telemetry(kind, load, samples, target, false)
}

/// Router step throughput with telemetry optionally armed.  Disarmed
/// routers still carry the instrumentation (probes compiled in, masked
/// off) — exactly the configuration the overhead gate polices.
fn measure_router_telemetry(
    kind: ArbiterKind,
    load: f64,
    samples: usize,
    target: u128,
    armed: bool,
) -> Measurement {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(load),
        arbiter: kind,
        run: RunLength::Cycles(u64::MAX),
        ..Default::default()
    };
    let mut router = build_router(&cfg, build_workload(&cfg));
    if armed {
        // Worst-case arming: wall-clock stage timing plus tracing.
        router.set_telemetry(TelemetryConfig {
            wall_clock: true,
            ..TelemetryConfig::default()
        });
    }
    let mut t = 0u64;
    bench_with(
        || {
            router.step(FlitCycle(t), true);
            t += 1;
            black_box(t);
        },
        samples,
        target,
    )
}

/// Best-of-`reps` wall clock of a whole Fig. 5-style CBR experiment at
/// `load`, per engine.
struct SweepTiming {
    load: f64,
    /// Cycle-by-cycle loop with per-source polling (the pre-calendar
    /// stage-1 behaviour) — the historical baseline the speedup metric
    /// is measured against.
    legacy_s: f64,
    /// Cycle-by-cycle loop with injection calendars.
    naive_s: f64,
    /// Event-horizon loop.
    horizon_s: f64,
    /// Fraction of cycles the horizon engine fast-forwarded.
    skipped_fraction: f64,
}

/// Time the three engines on one load point.  Every rep rebuilds the
/// router (timing covers the run loop only, not construction) and the
/// final state — summary, RNG stream position, executed cycles — is
/// asserted identical across engines, so the benchmark doubles as a
/// differential check.
fn measure_sweep_point(load: f64, warmup: u64, cycles: u64, reps: usize) -> SweepTiming {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(load),
        warmup_cycles: warmup,
        run: RunLength::Cycles(cycles),
        ..Default::default()
    };
    let runner = Runner::new(warmup, StopCondition::Cycles(cycles));
    // (legacy, naive, horizon): legacy = polling stage 1, horizon = skip loop.
    let modes = [(true, false), (false, false), (false, true)];
    let mut best = [f64::INFINITY; 3];
    let mut skipped_fraction = 0.0;
    let mut identity = None;
    for _ in 0..reps {
        for (i, &(legacy, horizon)) in modes.iter().enumerate() {
            let mut router = build_router(&cfg, build_workload(&cfg));
            router.set_calendar_fast_path(!legacy);
            let t0 = Instant::now();
            let out = if horizon {
                runner.run_horizon(&mut router)
            } else {
                runner.run(&mut router)
            };
            best[i] = best[i].min(t0.elapsed().as_secs_f64());
            if horizon {
                skipped_fraction = out.skipped as f64 / out.executed as f64;
            }
            let probe = (router.summary(), router.rng_fingerprint(), out.executed);
            match &identity {
                Some(prev) => assert_eq!(
                    prev, &probe,
                    "engines diverged at load {load} (legacy={legacy}, horizon={horizon})"
                ),
                None => identity = Some(probe),
            }
        }
    }
    SweepTiming {
        load,
        legacy_s: best[0],
        naive_s: best[1],
        horizon_s: best[2],
        skipped_fraction,
    }
}

/// The run length and per-load `horizon_s` wall clocks recorded in a
/// previous `BENCH_<n>.json`, if it carries a sweep section (reports
/// predating the horizon engine do not).
fn baseline_sweep_horizon(path: &Path) -> Option<(u64, Vec<(f64, f64)>)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
    let report = serde_json::parse_value(&text)
        .unwrap_or_else(|e| panic!("parse baseline {}: {e}", path.display()));
    let sweep = report.get("sweep")?;
    let cycles = match sweep.get("run_cycles") {
        Some(Value::U64(n)) => *n,
        _ => return None,
    };
    let rows = match sweep.get("rows") {
        Some(Value::Array(rows)) => rows,
        _ => return None,
    };
    let mut out = Vec::new();
    for row in rows {
        if let (Some(Value::F64(load)), Some(Value::F64(s))) =
            (row.get("load"), row.get("horizon_s"))
        {
            out.push((*load, *s));
        }
    }
    Some((cycles, out))
}

/// The `ns_per_op` a previous `BENCH_<n>.json` recorded for one kernel
/// row, if present.
fn baseline_kernel_ns(path: &Path, label: &str, ports: u64) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let report = serde_json::parse_value(&text).ok()?;
    let rows = match report.get("kernels") {
        Some(Value::Array(rows)) => rows,
        _ => return None,
    };
    for row in rows {
        if let (Some(Value::Str(arbiter)), Some(Value::U64(p)), Some(Value::F64(ns))) =
            (row.get("arbiter"), row.get("ports"), row.get("ns_per_op"))
        {
            if arbiter == label && *p == ports {
                return Some(*ns);
            }
        }
    }
    None
}

/// The naive-reference COA ns/op a previous `BENCH_<n>.json` recorded in
/// its `coa_vs_reference` section, if present.
fn baseline_coa_reference_ns(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let report = serde_json::parse_value(&text).ok()?;
    match report.get("coa_vs_reference")?.get("reference_ns_per_op") {
        Some(Value::F64(ns)) => Some(*ns),
        _ => None,
    }
}

/// The COA `ns_per_cycle` recorded in a previous `BENCH_<n>.json`.
fn baseline_router_ns(path: &Path) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
    let report = serde_json::parse_value(&text)
        .unwrap_or_else(|e| panic!("parse baseline {}: {e}", path.display()));
    let rows = match report.get("router") {
        Some(Value::Array(rows)) => rows,
        _ => panic!("baseline {} has no router section", path.display()),
    };
    for row in rows {
        if let (Some(Value::Str(arbiter)), Some(Value::F64(ns))) =
            (row.get("arbiter"), row.get("ns_per_cycle"))
        {
            if arbiter == ArbiterKind::Coa.label() {
                return *ns;
            }
        }
    }
    panic!("baseline {} has no COA router row", path.display());
}

/// Next free `BENCH_<n>.json` path under `results/`.
fn next_report_path() -> PathBuf {
    let dir = results_dir();
    for n in 1.. {
        let p = dir.join(format!("BENCH_{n}.json"));
        if !p.exists() {
            return p;
        }
    }
    unreachable!()
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (samples, target) = if quick {
        (3, 1_000_000)
    } else {
        (5, 20_000_000)
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(next_report_path);
    let gate_baseline = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| PathBuf::from(args.get(i + 1).expect("--gate needs a baseline path")));

    println!(
        "bench_report: {} mode",
        if quick { "quick" } else { "full" }
    );

    // --- Arbitration kernels, all kinds × port counts --------------------
    // 4/8/16 are the paper's sizes; 64 is the single-word limit; 128 and
    // 256 exercise the two- and four-word `PortSet` monomorphizations.
    let mut kernels = Vec::new();
    for ports in [4usize, 8, 16, 64, 128, 256] {
        for kind in ArbiterKind::all() {
            let m = measure_kernel(kind, ports, samples, target);
            let grants = grants_per_call(kind, ports);
            let grants_per_sec = grants * m.per_second();
            println!(
                "  {:<12} {ports:>2} ports  {:>9.1} ns/op  {:>7.2} M match/s  {:>7.2} M grants/s",
                kind.label(),
                m.ns_per_iter,
                m.per_second() / 1e6,
                grants_per_sec / 1e6,
            );
            kernels.push(obj(vec![
                ("arbiter", Value::Str(kind.label().to_string())),
                ("ports", Value::U64(ports as u64)),
                ("levels", Value::U64(LEVELS as u64)),
                ("ns_per_op", Value::F64(m.ns_per_iter)),
                ("matchings_per_sec", Value::F64(m.per_second())),
                ("avg_grants_per_matching", Value::F64(grants)),
                ("grants_per_sec", Value::F64(grants_per_sec)),
            ]));
        }
    }

    // --- COA vs reference at 16 ports ------------------------------------
    let coa = measure_kernel(ArbiterKind::Coa, 16, samples, target);
    let reference = measure_reference_coa(16, samples, target);
    let speedup = reference.ns_per_iter / coa.ns_per_iter;
    println!(
        "  COA 16x16x{LEVELS}: incremental {:.1} ns/op vs reference {:.1} ns/op — {speedup:.2}x",
        coa.ns_per_iter, reference.ns_per_iter,
    );
    let coa_vs_reference = obj(vec![
        ("ports", Value::U64(16)),
        ("levels", Value::U64(LEVELS as u64)),
        ("incremental_ns_per_op", Value::F64(coa.ns_per_iter)),
        ("reference_ns_per_op", Value::F64(reference.ns_per_iter)),
        ("speedup", Value::F64(speedup)),
    ]);

    // --- Whole-router throughput -----------------------------------------
    let mut router_rows = Vec::new();
    let mut coa_disabled_ns = f64::INFINITY;
    for kind in [ArbiterKind::Coa, ArbiterKind::Wfa] {
        let m = measure_router(kind, 0.5, samples, target);
        if kind == ArbiterKind::Coa {
            coa_disabled_ns = m.ns_per_iter;
        }
        println!(
            "  router {:<8} load 0.5: {:>8.0} ns/cycle  {:>8.1} K cycles/s",
            kind.label(),
            m.ns_per_iter,
            m.per_second() / 1e3,
        );
        router_rows.push(obj(vec![
            ("arbiter", Value::Str(kind.label().to_string())),
            ("load", Value::F64(0.5)),
            ("ns_per_cycle", Value::F64(m.ns_per_iter)),
            ("cycles_per_sec", Value::F64(m.per_second())),
        ]));
    }

    // --- Telemetry overhead: disabled vs armed ----------------------------
    let armed = measure_router_telemetry(ArbiterKind::Coa, 0.5, samples, target, true);
    let armed_overhead_pct = (armed.ns_per_iter / coa_disabled_ns - 1.0) * 100.0;
    println!(
        "  telemetry COA load 0.5: disabled {:>8.0} ns/cycle, armed {:>8.0} ns/cycle ({:+.1}%)",
        coa_disabled_ns, armed.ns_per_iter, armed_overhead_pct,
    );
    let telemetry = obj(vec![
        ("arbiter", Value::Str(ArbiterKind::Coa.label().to_string())),
        ("load", Value::F64(0.5)),
        ("disabled_ns_per_cycle", Value::F64(coa_disabled_ns)),
        ("armed_ns_per_cycle", Value::F64(armed.ns_per_iter)),
        ("armed_overhead_pct", Value::F64(armed_overhead_pct)),
    ]);

    // --- Whole-experiment wall clock: legacy vs naive vs horizon ----------
    // Shorter runs under --quick; the speedup ratios are load-dependent,
    // not length-dependent, so the gate's thresholds hold either way.
    let (sweep_warmup, sweep_cycles, sweep_reps) = if quick {
        (2_000, 80_000, 2)
    } else {
        (20_000, 400_000, 3)
    };
    let mut sweep_rows = Vec::new();
    let mut timings = Vec::new();
    for &load in &[0.2, 0.6, 0.9] {
        let t = measure_sweep_point(load, sweep_warmup, sweep_cycles, sweep_reps);
        println!(
            "  sweep load {load}: legacy {:.3}s  naive {:.3}s  horizon {:.3}s  \
             ({:.2}x vs legacy, {:.2}x vs naive, {:.0}% skipped)",
            t.legacy_s,
            t.naive_s,
            t.horizon_s,
            t.legacy_s / t.horizon_s,
            t.naive_s / t.horizon_s,
            t.skipped_fraction * 100.0,
        );
        sweep_rows.push(obj(vec![
            ("load", Value::F64(t.load)),
            ("legacy_s", Value::F64(t.legacy_s)),
            ("naive_s", Value::F64(t.naive_s)),
            ("horizon_s", Value::F64(t.horizon_s)),
            ("speedup_vs_legacy", Value::F64(t.legacy_s / t.horizon_s)),
            ("speedup_vs_naive", Value::F64(t.naive_s / t.horizon_s)),
            ("skipped_fraction", Value::F64(t.skipped_fraction)),
        ]));
        timings.push(t);
    }
    let sweep = obj(vec![
        ("workload", Value::Str("fig5-cbr".to_string())),
        ("warmup_cycles", Value::U64(sweep_warmup)),
        ("run_cycles", Value::U64(sweep_cycles)),
        ("rows", Value::Array(sweep_rows)),
    ]);

    let report = obj(vec![
        ("schema", Value::Str("mmr-bench-report/1".to_string())),
        (
            "mode",
            Value::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("kernels", Value::Array(kernels)),
        ("coa_vs_reference", coa_vs_reference),
        ("router", Value::Array(router_rows)),
        ("telemetry", telemetry),
        ("sweep", sweep),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("[written {}]", out_path.display());

    if !quick && speedup < 2.0 {
        eprintln!("warning: COA speedup vs reference below 2x ({speedup:.2}x)");
        std::process::exit(1);
    }

    // --- COA kernel-speed gate --------------------------------------------
    // Two clauses guard the dense bit-matrix rewrite:
    //  * trajectory: COA@16 must not regress more than
    //    `MMR_KERNEL_GATE_PCT` percent (default 25) against the gate
    //    baseline's kernel row;
    //  * floor: COA@16 must stay at or below 0.6x the pre-rewrite cost
    //    recorded in the committed `results/BENCH_3.json` — the rewrite's
    //    headline claim, pinned so later baselines can't ratchet it away.
    // Both clauses re-measure at full fidelity and keep the minimum, like
    // the telemetry gate: quick batches swing ~20% and the gate should
    // only trip on real regressions.
    if let Some(baseline_path) = gate_baseline.as_ref() {
        let mut kernel_failed = false;
        let mut coa16_ns = coa.ns_per_iter;
        for _ in 0..3 {
            let m = measure_kernel(ArbiterKind::Coa, 16, 5, 20_000_000);
            coa16_ns = coa16_ns.min(m.ns_per_iter);
        }
        let kernel_gate_pct: f64 = std::env::var("MMR_KERNEL_GATE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0);
        match baseline_kernel_ns(baseline_path, ArbiterKind::Coa.label(), 16) {
            Some(base_ns) => {
                let delta_pct = (coa16_ns / base_ns - 1.0) * 100.0;
                println!(
                    "  gate: COA kernel 16 ports {coa16_ns:.1} ns/op vs baseline {base_ns:.1} \
                     ({delta_pct:+.1}%, limit +{kernel_gate_pct:.0}%)"
                );
                if coa16_ns > base_ns * (1.0 + kernel_gate_pct / 100.0) {
                    eprintln!(
                        "error: COA kernel at 16 ports regressed {delta_pct:.1}% over \
                         baseline {} (limit {kernel_gate_pct:.0}%)",
                        baseline_path.display(),
                    );
                    kernel_failed = true;
                }
            }
            None => println!(
                "  gate: baseline {} has no COA 16-port kernel row; skipping the \
                 kernel trajectory check",
                baseline_path.display()
            ),
        }
        let bench3 = results_dir().join("BENCH_3.json");
        if let Some(pre_rewrite_ns) = baseline_kernel_ns(&bench3, ArbiterKind::Coa.label(), 16) {
            // The floor is machine-normalized: the naive reference kernel
            // is untouched by optimization work, so the ratio of its cost
            // now vs in BENCH_3 measures pure host drift (shared boxes
            // swing 20-40% across days).  Scaling the floor by that ratio
            // keeps the clause equivalent to "COA@16 is at least 1.67x
            // faster than before the bit-matrix rewrite, on this machine,
            // today".
            let mut ref_ns = reference.ns_per_iter;
            for _ in 0..2 {
                let m = measure_reference_coa(16, 5, 20_000_000);
                ref_ns = ref_ns.min(m.ns_per_iter);
            }
            let drift = baseline_coa_reference_ns(&bench3)
                .map(|base_ref| ref_ns / base_ref)
                .unwrap_or(1.0);
            let floor = pre_rewrite_ns * 0.6 * drift;
            println!(
                "  gate: COA kernel 16 ports {coa16_ns:.1} ns/op vs pre-rewrite floor \
                 {floor:.1} (0.6x of BENCH_3's {pre_rewrite_ns:.1}, host drift x{drift:.2} \
                 from the reference kernel)"
            );
            if coa16_ns > floor {
                eprintln!(
                    "error: COA kernel at 16 ports is {coa16_ns:.1} ns/op, above the \
                     0.6x-of-BENCH_3 floor of {floor:.1} (bit-matrix speedup lost)"
                );
                kernel_failed = true;
            }
        }
        if kernel_failed {
            std::process::exit(1);
        }
    }

    // --- Telemetry-overhead gate ------------------------------------------
    if let Some(baseline_path) = gate_baseline {
        let baseline_ns = baseline_router_ns(&baseline_path);
        // Default 10%: the step is fast enough post-calendar that
        // process-to-process measurement spread alone reaches ~8% on a
        // shared box, while the failure this gate exists to catch —
        // armed-path cost leaking into the disarmed step — measures
        // around +100% when it happens, so 10% still has huge margin.
        let gate_pct: f64 = std::env::var("MMR_TELEMETRY_GATE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10.0);
        // Re-measure at full fidelity (long batches, even under --quick —
        // quick batches swing ±20%) and keep the minimum: the gate should
        // only trip on a real regression, not a noisy sample.
        let mut gate_ns = coa_disabled_ns;
        for _ in 0..3 {
            let m = measure_router(ArbiterKind::Coa, 0.5, 5, 20_000_000);
            gate_ns = gate_ns.min(m.ns_per_iter);
        }
        let limit = baseline_ns * (1.0 + gate_pct / 100.0);
        let delta_pct = (gate_ns / baseline_ns - 1.0) * 100.0;
        println!(
            "  gate: disabled COA router {gate_ns:.0} ns/cycle vs baseline {baseline_ns:.0} \
             ({delta_pct:+.1}%, limit +{gate_pct:.1}%) [{}]",
            baseline_path.display(),
        );
        if gate_ns > limit {
            eprintln!(
                "error: telemetry-disabled router step regressed {delta_pct:.1}% \
                 over baseline {} (limit {gate_pct:.1}%)",
                baseline_path.display(),
            );
            std::process::exit(1);
        }

        // --- Sweep wall-clock gate ----------------------------------------
        // Invariant half, baseline-free: the engine-vs-engine ratios were
        // measured in this very run, so they are machine-independent.
        let mut failed = false;
        for t in &timings {
            if (t.load - 0.2).abs() < 1e-9 {
                let speedup = t.legacy_s / t.horizon_s;
                if speedup < 3.0 {
                    eprintln!(
                        "error: horizon speedup vs legacy loop at load 0.2 is \
                         {speedup:.2}x (gate requires >= 3x)"
                    );
                    failed = true;
                }
            }
            // 2% at full fidelity; quick samples are ~0.4 s and carry
            // scheduler jitter that measures up to ~9% on a busy shared
            // host, so allow 10% there — the failure this clause catches
            // (per-cycle horizon bookkeeping leaking into the no-skip
            // regime) costs tens of percent when real.
            let overhead_limit = if quick { 1.10 } else { 1.02 };
            if (t.load - 0.9).abs() < 1e-9 && t.horizon_s > t.naive_s * overhead_limit {
                eprintln!(
                    "error: horizon loop {:.1}% slower than cycle-by-cycle at load 0.9 \
                     (limit {:.0}% — skips are rare there, overhead must be negligible)",
                    (t.horizon_s / t.naive_s - 1.0) * 100.0,
                    (overhead_limit - 1.0) * 100.0
                );
                failed = true;
            }
        }
        // Trajectory half: horizon wall clock against the committed
        // baseline, when it has a sweep section.  Generous default — a
        // multi-second whole-run wall clock swings far more than a
        // min-of-batches ns/cycle number: back-to-back full runs of
        // identical code have measured a 29% spread on the 0.9-load
        // point on a busy shared host, so the default sits just above
        // that.
        let sweep_gate_pct: f64 = std::env::var("MMR_SWEEP_GATE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(35.0);
        match baseline_sweep_horizon(&baseline_path) {
            Some((base_cycles, baseline_rows)) => {
                for (load, base_s) in baseline_rows {
                    let Some(t) = timings.iter().find(|t| (t.load - load).abs() < 1e-9) else {
                        continue;
                    };
                    // Quick runs are shorter than the committed full-mode
                    // baseline; scale to per-cycle before comparing.
                    let base_per_cycle = base_s / base_cycles as f64;
                    let here_per_cycle = t.horizon_s / sweep_cycles as f64;
                    let delta_pct = (here_per_cycle / base_per_cycle - 1.0) * 100.0;
                    println!(
                        "  gate: sweep load {load} horizon {:.2} us/kcycle vs baseline {:.2} \
                         ({delta_pct:+.1}%, limit +{sweep_gate_pct:.0}%)",
                        here_per_cycle * 1e9 / 1e3,
                        base_per_cycle * 1e9 / 1e3,
                    );
                    if delta_pct > sweep_gate_pct {
                        eprintln!(
                            "error: horizon sweep wall clock at load {load} regressed \
                             {delta_pct:.1}% over baseline {} (limit {sweep_gate_pct:.0}%)",
                            baseline_path.display(),
                        );
                        failed = true;
                    }
                }
            }
            None => println!(
                "  gate: baseline {} has no sweep section (pre-horizon report); \
                 skipping the wall-clock trajectory check",
                baseline_path.display()
            ),
        }
        if failed {
            std::process::exit(1);
        }
    }
}
