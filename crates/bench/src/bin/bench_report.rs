//! Benchmark-trajectory report: `results/BENCH_<n>.json`.
//!
//! Aggregates the hot-path kernel numbers into one machine-readable
//! snapshot so successive revisions can be compared file-to-file:
//!
//! * `schedule_into` ns/op for every arbiter at 4/8/16 ports × 4 levels,
//!   with the matching throughput (grants per second) each implies;
//! * the optimized COA against its `reference` transcription at
//!   16 ports × 4 levels, with the speedup measured in the same run;
//! * whole-router simulated cycles per second for COA and WFA.
//!
//! Each invocation writes the next free `BENCH_<n>.json` under
//! `results/` (override with `--out <path>`); pass `--quick` for a smoke
//! run with shorter batches.
//!
//! The report also carries a telemetry-overhead section (router step with
//! telemetry disabled vs armed).  Pass `--gate <baseline.json>` to fail
//! (exit 1) if the instrumented-but-disabled router step regresses more
//! than `MMR_TELEMETRY_GATE_PCT` percent (default 2) against the COA
//! router number in a committed baseline report — the "zero-overhead
//! when disarmed" contract, enforced in CI.

use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_arbiter::matching::Matching;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_bench::harness::{bench_with, Measurement};
use mmr_bench::results_dir;
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload};
use mmr_router::telemetry::TelemetryConfig;
use mmr_sim::engine::CycleModel;
use mmr_sim::rng::SimRng;
use mmr_sim::time::FlitCycle;
use serde_json::Value;
use std::hint::black_box;
use std::path::{Path, PathBuf};

const LEVELS: usize = 4;

fn candidate_set(ports: usize, seed: u64) -> CandidateSet {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut cs = CandidateSet::new(ports, LEVELS);
    for input in 0..ports {
        let mut cands: Vec<Candidate> = (0..LEVELS)
            .map(|vc| Candidate {
                input,
                vc,
                output: rng.index(ports),
                priority: Priority::new((1u64 << (4 + rng.index(12))) as f64),
            })
            .collect();
        cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
        cs.set_input(input, &cands);
    }
    cs
}

/// Average grants per `schedule_into` call on the benchmark workload.
fn grants_per_call(kind: ArbiterKind, ports: usize) -> f64 {
    let cs = candidate_set(ports, 42);
    let mut sched = kind.instantiate(ports);
    let mut rng = SimRng::seed_from_u64(7);
    let mut out = Matching::new(ports);
    let mut total = 0usize;
    const CALLS: usize = 256;
    for _ in 0..CALLS {
        sched.schedule_into(&cs, &mut rng, &mut out);
        total += out.size();
    }
    total as f64 / CALLS as f64
}

fn measure_kernel(kind: ArbiterKind, ports: usize, samples: usize, target: u128) -> Measurement {
    let cs = candidate_set(ports, 42);
    let mut sched = kind.instantiate(ports);
    let mut rng = SimRng::seed_from_u64(7);
    let mut out = Matching::new(ports);
    bench_with(
        || {
            sched.schedule_into(black_box(&cs), &mut rng, &mut out);
            black_box(&out);
        },
        samples,
        target,
    )
}

fn measure_reference_coa(ports: usize, samples: usize, target: u128) -> Measurement {
    let cs = candidate_set(ports, 42);
    let mut sched = ArbiterKind::Coa.instantiate_reference(ports);
    let mut rng = SimRng::seed_from_u64(7);
    let mut out = Matching::new(ports);
    bench_with(
        || {
            sched.schedule_into(black_box(&cs), &mut rng, &mut out);
            black_box(&out);
        },
        samples,
        target,
    )
}

fn measure_router(kind: ArbiterKind, load: f64, samples: usize, target: u128) -> Measurement {
    measure_router_telemetry(kind, load, samples, target, false)
}

/// Router step throughput with telemetry optionally armed.  Disarmed
/// routers still carry the instrumentation (probes compiled in, masked
/// off) — exactly the configuration the overhead gate polices.
fn measure_router_telemetry(
    kind: ArbiterKind,
    load: f64,
    samples: usize,
    target: u128,
    armed: bool,
) -> Measurement {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(load),
        arbiter: kind,
        run: RunLength::Cycles(u64::MAX),
        ..Default::default()
    };
    let mut router = build_router(&cfg, build_workload(&cfg));
    if armed {
        // Worst-case arming: wall-clock stage timing plus tracing.
        router.set_telemetry(TelemetryConfig {
            wall_clock: true,
            ..TelemetryConfig::default()
        });
    }
    let mut t = 0u64;
    bench_with(
        || {
            router.step(FlitCycle(t), true);
            t += 1;
            black_box(t);
        },
        samples,
        target,
    )
}

/// The COA `ns_per_cycle` recorded in a previous `BENCH_<n>.json`.
fn baseline_router_ns(path: &Path) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
    let report = serde_json::parse_value(&text)
        .unwrap_or_else(|e| panic!("parse baseline {}: {e}", path.display()));
    let rows = match report.get("router") {
        Some(Value::Array(rows)) => rows,
        _ => panic!("baseline {} has no router section", path.display()),
    };
    for row in rows {
        if let (Some(Value::Str(arbiter)), Some(Value::F64(ns))) =
            (row.get("arbiter"), row.get("ns_per_cycle"))
        {
            if arbiter == ArbiterKind::Coa.label() {
                return *ns;
            }
        }
    }
    panic!("baseline {} has no COA router row", path.display());
}

/// Next free `BENCH_<n>.json` path under `results/`.
fn next_report_path() -> PathBuf {
    let dir = results_dir();
    for n in 1.. {
        let p = dir.join(format!("BENCH_{n}.json"));
        if !p.exists() {
            return p;
        }
    }
    unreachable!()
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (samples, target) = if quick {
        (3, 1_000_000)
    } else {
        (5, 20_000_000)
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(next_report_path);
    let gate_baseline = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| PathBuf::from(args.get(i + 1).expect("--gate needs a baseline path")));

    println!(
        "bench_report: {} mode",
        if quick { "quick" } else { "full" }
    );

    // --- Arbitration kernels, all kinds × port counts --------------------
    let mut kernels = Vec::new();
    for ports in [4usize, 8, 16] {
        for kind in ArbiterKind::all() {
            let m = measure_kernel(kind, ports, samples, target);
            let grants = grants_per_call(kind, ports);
            let grants_per_sec = grants * m.per_second();
            println!(
                "  {:<12} {ports:>2} ports  {:>9.1} ns/op  {:>7.2} M match/s  {:>7.2} M grants/s",
                kind.label(),
                m.ns_per_iter,
                m.per_second() / 1e6,
                grants_per_sec / 1e6,
            );
            kernels.push(obj(vec![
                ("arbiter", Value::Str(kind.label().to_string())),
                ("ports", Value::U64(ports as u64)),
                ("levels", Value::U64(LEVELS as u64)),
                ("ns_per_op", Value::F64(m.ns_per_iter)),
                ("matchings_per_sec", Value::F64(m.per_second())),
                ("avg_grants_per_matching", Value::F64(grants)),
                ("grants_per_sec", Value::F64(grants_per_sec)),
            ]));
        }
    }

    // --- COA vs reference at 16 ports ------------------------------------
    let coa = measure_kernel(ArbiterKind::Coa, 16, samples, target);
    let reference = measure_reference_coa(16, samples, target);
    let speedup = reference.ns_per_iter / coa.ns_per_iter;
    println!(
        "  COA 16x16x{LEVELS}: incremental {:.1} ns/op vs reference {:.1} ns/op — {speedup:.2}x",
        coa.ns_per_iter, reference.ns_per_iter,
    );
    let coa_vs_reference = obj(vec![
        ("ports", Value::U64(16)),
        ("levels", Value::U64(LEVELS as u64)),
        ("incremental_ns_per_op", Value::F64(coa.ns_per_iter)),
        ("reference_ns_per_op", Value::F64(reference.ns_per_iter)),
        ("speedup", Value::F64(speedup)),
    ]);

    // --- Whole-router throughput -----------------------------------------
    let mut router_rows = Vec::new();
    let mut coa_disabled_ns = f64::INFINITY;
    for kind in [ArbiterKind::Coa, ArbiterKind::Wfa] {
        let m = measure_router(kind, 0.5, samples, target);
        if kind == ArbiterKind::Coa {
            coa_disabled_ns = m.ns_per_iter;
        }
        println!(
            "  router {:<8} load 0.5: {:>8.0} ns/cycle  {:>8.1} K cycles/s",
            kind.label(),
            m.ns_per_iter,
            m.per_second() / 1e3,
        );
        router_rows.push(obj(vec![
            ("arbiter", Value::Str(kind.label().to_string())),
            ("load", Value::F64(0.5)),
            ("ns_per_cycle", Value::F64(m.ns_per_iter)),
            ("cycles_per_sec", Value::F64(m.per_second())),
        ]));
    }

    // --- Telemetry overhead: disabled vs armed ----------------------------
    let armed = measure_router_telemetry(ArbiterKind::Coa, 0.5, samples, target, true);
    let armed_overhead_pct = (armed.ns_per_iter / coa_disabled_ns - 1.0) * 100.0;
    println!(
        "  telemetry COA load 0.5: disabled {:>8.0} ns/cycle, armed {:>8.0} ns/cycle ({:+.1}%)",
        coa_disabled_ns, armed.ns_per_iter, armed_overhead_pct,
    );
    let telemetry = obj(vec![
        ("arbiter", Value::Str(ArbiterKind::Coa.label().to_string())),
        ("load", Value::F64(0.5)),
        ("disabled_ns_per_cycle", Value::F64(coa_disabled_ns)),
        ("armed_ns_per_cycle", Value::F64(armed.ns_per_iter)),
        ("armed_overhead_pct", Value::F64(armed_overhead_pct)),
    ]);

    let report = obj(vec![
        ("schema", Value::Str("mmr-bench-report/1".to_string())),
        (
            "mode",
            Value::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("kernels", Value::Array(kernels)),
        ("coa_vs_reference", coa_vs_reference),
        ("router", Value::Array(router_rows)),
        ("telemetry", telemetry),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("[written {}]", out_path.display());

    if !quick && speedup < 2.0 {
        eprintln!("warning: COA speedup vs reference below 2x ({speedup:.2}x)");
        std::process::exit(1);
    }

    // --- Telemetry-overhead gate ------------------------------------------
    if let Some(baseline_path) = gate_baseline {
        let baseline_ns = baseline_router_ns(&baseline_path);
        let gate_pct: f64 = std::env::var("MMR_TELEMETRY_GATE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2.0);
        // Re-measure at full fidelity (long batches, even under --quick —
        // quick batches swing ±20%) and keep the minimum: the gate should
        // only trip on a real regression, not a noisy sample.
        let mut gate_ns = coa_disabled_ns;
        for _ in 0..2 {
            let m = measure_router(ArbiterKind::Coa, 0.5, 5, 20_000_000);
            gate_ns = gate_ns.min(m.ns_per_iter);
        }
        let limit = baseline_ns * (1.0 + gate_pct / 100.0);
        let delta_pct = (gate_ns / baseline_ns - 1.0) * 100.0;
        println!(
            "  gate: disabled COA router {gate_ns:.0} ns/cycle vs baseline {baseline_ns:.0} \
             ({delta_pct:+.1}%, limit +{gate_pct:.1}%) [{}]",
            baseline_path.display(),
        );
        if gate_ns > limit {
            eprintln!(
                "error: telemetry-disabled router step regressed {delta_pct:.1}% \
                 over baseline {} (limit {gate_pct:.1}%)",
                baseline_path.display(),
            );
            std::process::exit(1);
        }
    }
}
