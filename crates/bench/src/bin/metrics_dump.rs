//! Observability artifacts: `results/metrics.prom` (Prometheus text
//! exposition 0.0.4) and `results/overview.html` (the self-contained QoS
//! dashboard).
//!
//! Runs the Fig. 5 CBR mix at offered load 0.7 with the telemetry layer
//! and QoS observatory armed, then:
//!
//! * writes the full exposition — counter registry, stage profile,
//!   kernel probes, per-class delay/jitter/residency histograms, SLO
//!   counters, and the CAC admission tally — and re-validates it with
//!   the parser in `mmr_sim::telemetry` (declared families, monotone
//!   cumulative buckets, `+Inf`/`_count` agreement);
//! * renders the overview dashboard from the same `ExperimentResult`
//!   plus the `results/BENCH_<n>.json` trajectory, and structurally
//!   validates the artifact (inline JSON parses, every panel present).
//!
//! Exits non-zero if either artifact fails its self-check, so CI can
//! gate on it.  Pass `--full` for the paper-scale run.

use mmr_bench::overview::{load_bench_trajectory, render_overview, validate_overview};
use mmr_bench::{fidelity_from_args, results_dir};
use mmr_core::config::TelemetrySpec;
use mmr_core::experiment::run_experiment;
use mmr_core::scenarios::{fig5, Fidelity};
use mmr_sim::telemetry::validate_exposition;

fn main() {
    let fidelity = fidelity_from_args();
    println!(
        "metrics_dump: {} mode",
        match fidelity {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
    );

    let mut cfg = fig5(fidelity).base.with_load(0.7);
    cfg.telemetry = Some(TelemetrySpec::default());
    let result = run_experiment(&cfg);
    println!(
        "  fig5_cbr @ 0.7: {} cycles, {} connections, {} flits delivered",
        result.executed_cycles, result.connections, result.summary.delivered_flits
    );

    let dir = results_dir();

    // Prometheus exposition, self-checked before it is written.
    let prom = result.prometheus();
    let stats = match validate_exposition(&prom) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("metrics_dump: exposition failed validation: {e}");
            std::process::exit(1);
        }
    };
    let prom_path = dir.join("metrics.prom");
    std::fs::write(&prom_path, &prom).expect("write metrics.prom");
    println!(
        "  [written {} — {} families, {} samples, validated]",
        prom_path.display(),
        stats.families,
        stats.samples
    );

    // Overview dashboard from the same result + the BENCH trajectory.
    let bench = load_bench_trajectory(&dir);
    let html = match render_overview("fig5_cbr @ load 0.7", &result, &bench) {
        Some(html) => html,
        None => {
            eprintln!("metrics_dump: result carried no armed observatory");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_overview(&html) {
        eprintln!("metrics_dump: overview.html failed validation: {e}");
        std::process::exit(1);
    }
    let html_path = dir.join("overview.html");
    std::fs::write(&html_path, &html).expect("write overview.html");
    println!(
        "  [written {} — {} classes, {} BENCH points, validated]",
        html_path.display(),
        result
            .telemetry
            .as_ref()
            .and_then(|t| t.observatory.as_ref())
            .map(|o| o.classes.len())
            .unwrap_or(0),
        bench.len()
    );
}
