//! §5.2 jitter — average frame jitter for the VBR workloads.
//!
//! Paper result: "average jitters are under 8 and 10 microseconds for the
//! SR and BB injection models respectively" below saturation — far below
//! the several milliseconds MPEG-2 playback tolerates.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::InjectionKind;
use mmr_core::report::render_xy_table;
use mmr_core::scenarios::jitter;
use mmr_core::sweep::sweep;

fn main() {
    let fidelity = fidelity_from_args();
    let mut out = banner(
        "§5.2 jitter",
        "average frame jitter (µs), VBR traffic",
        fidelity,
    );
    for injection in [InjectionKind::SmoothRate, InjectionKind::BackToBack] {
        let spec = jitter(injection, fidelity);
        eprintln!(
            "running {} panel: {} simulation points…",
            injection.label(),
            spec.point_count()
        );
        let points = sweep(&spec);
        out.push_str(&render_xy_table(
            &format!("Frame jitter — {} injection model", injection.label()),
            "mean frame jitter (µs)",
            &points,
            |p| p.mean_of(|r| r.summary.metrics.mean_frame_jitter_us),
        ));
        out.push_str(&render_xy_table(
            &format!("p99 frame jitter — {} injection model", injection.label()),
            "p99 frame jitter (µs)",
            &points,
            |p| p.mean_of(|r| r.summary.metrics.p99_frame_jitter_us),
        ));
        out.push_str(&render_xy_table(
            &format!("Max frame jitter — {} injection model", injection.label()),
            "max frame jitter (µs)",
            &points,
            |p| p.mean_of(|r| r.summary.metrics.max_frame_jitter_us),
        ));
        out.push('\n');
    }
    out.push_str(
        "# paper: mean jitter under ~8 µs (SR) / ~10 µs (BB) below saturation;\n\
         # MPEG-2 playback tolerates several milliseconds\n\
         # p99 is read from the per-connection jitter histograms (log-bucketed,\n\
         # <=12.5% relative error), merged across connections per point\n",
    );
    emit("jitter_report.txt", &out);
}
