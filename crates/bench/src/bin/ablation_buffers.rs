//! Ablation — VC buffer depth {1, 2, 4, 8, 16} flits.
//!
//! §2 argues small per-VC buffers + credit flow control suffice because
//! the NIC adapts to the router; this sweep measures how little buffering
//! the router actually needs before throughput suffers.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::report::TextTable;
use mmr_core::scenarios::Fidelity;
use mmr_core::sweep::{sweep, SweepSpec};
use mmr_router::config::RouterConfig;

fn main() {
    let fidelity = fidelity_from_args();
    let (warmup, cycles, load): (u64, u64, f64) = match fidelity {
        Fidelity::Quick => (1_000, 20_000, 0.8),
        Fidelity::Full => (10_000, 200_000, 0.8),
    };
    let mut out = banner(
        "Ablation",
        "VC buffer depth (COA, CBR mix, 80% load)",
        fidelity,
    );
    let mut table = TextTable::new(vec![
        "buffer(flits)",
        "utilization(%)",
        "high-class delay(µs)",
        "throughput",
        "peak VC occupancy",
    ]);
    for depth in [1usize, 2, 4, 8, 16] {
        let base = SimConfig {
            router: RouterConfig {
                vc_buffer_flits: depth,
                ..Default::default()
            },
            workload: WorkloadSpec::cbr(load),
            warmup_cycles: warmup,
            run: RunLength::Cycles(cycles),
            ..Default::default()
        };
        let spec = SweepSpec {
            base,
            loads: vec![load],
            arbiters: vec![mmr_arbiter::scheduler::ArbiterKind::Coa],
            seeds: vec![0xB1ACA],
        };
        for p in sweep(&spec) {
            table.row(vec![
                format!("{depth}"),
                format!("{:.1}", p.utilization() * 100.0),
                format!(
                    "{:.2}",
                    p.class_delay_us(mmr_traffic::connection::TrafficClass::CbrHigh)
                ),
                format!("{:.3}", p.throughput_ratio()),
                format!("{}", p.results[0].summary.peak_vc_occupancy),
            ]);
        }
    }
    out.push_str(&table.render());
    emit("ablation_buffers.txt", &out);
}
