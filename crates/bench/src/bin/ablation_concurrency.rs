//! Ablation — the VBR concurrency factor (§2, "Connection Set up").
//!
//! With the peak-bandwidth admission test enforced, the concurrency
//! factor trades admitted load (how many VBR connections fit) against QoS
//! strength (how much the admitted ones can burst together).  This sweep
//! shows admitted load and resulting frame delay across factors.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::report::TextTable;
use mmr_core::scenarios::{vbr_cycle_budget, Fidelity};
use mmr_core::sweep::{sweep, SweepSpec};
use mmr_router::config::RouterConfig;
use mmr_traffic::admission::RoundConfig;

fn main() {
    let fidelity = fidelity_from_args();
    let gops = match fidelity {
        Fidelity::Quick => 1,
        Fidelity::Full => 4,
    };
    let mut out = banner(
        "Ablation",
        "VBR concurrency factor (peak admission test enforced, COA, SR)",
        fidelity,
    );
    let mut table = TextTable::new(vec![
        "concurrency",
        "admitted load(%)",
        "connections",
        "frame delay(µs)",
        "max jitter(µs)",
    ]);
    for factor in [1.0f64, 1.5, 2.0, 3.0, 4.0] {
        let round = RoundConfig {
            concurrency_factor: factor,
            ..Default::default()
        };
        let base = SimConfig {
            router: RouterConfig {
                round,
                ..Default::default()
            },
            workload: WorkloadSpec::Vbr {
                target_load: 0.9, // ask for more than the CAC will grant
                gops,
                injection: InjectionKind::SmoothRate,
                enforce_peak: true,
            },
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: vbr_cycle_budget(gops),
            },
            ..Default::default()
        };
        let spec = SweepSpec {
            base,
            loads: vec![0.9],
            arbiters: vec![mmr_arbiter::scheduler::ArbiterKind::Coa],
            seeds: vec![0xB1ACA],
        };
        for p in sweep(&spec) {
            table.row(vec![
                format!("{factor:.1}"),
                format!("{:.1}", p.achieved_load * 100.0),
                format!("{}", p.results[0].connections),
                format!("{:.1}", p.frame_delay_us()),
                format!(
                    "{:.1}",
                    p.mean_of(|r| r.summary.metrics.max_frame_jitter_us)
                ),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "# a small factor admits little load but keeps bursts schedulable;\n\
                  # a large factor admits more but lets peaks collide (§2 trade-off)\n",
    );
    emit("ablation_concurrency.txt", &out);
}
