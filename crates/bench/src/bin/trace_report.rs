//! Telemetry artifacts: `results/telemetry_<scenario>.json` plus an
//! arbitration grant trace `results/trace_<scenario>.jsonl`.
//!
//! Runs two instrumented scenarios with the telemetry layer armed
//! (`wall_clock` on, so the stage profiler reports real nanoseconds):
//!
//! * `fig5_cbr` — the Fig. 5 CBR mix at offered load 0.7, COA arbiter;
//! * `chaos` — the highest fault-rate point of the chaos sweep, so the
//!   trace contains fault-detected and quarantine events alongside the
//!   grant stream.
//!
//! The JSON report carries the counter registry, per-stage profile,
//! kernel probe totals, and windowed per-class snapshots; the JSONL file
//! is the flight-recorder ring dumped event-per-line.  Pass `--full` for
//! paper-scale runs; quick mode preserves the shapes.

use mmr_bench::{fidelity_from_args, results_dir};
use mmr_core::config::{RunLength, SimConfig};
use mmr_core::experiment::{build_router, build_workload};
use mmr_core::scenarios::{chaos, fig5, Fidelity};
use mmr_router::router::MmrRouter;
use mmr_router::telemetry::TelemetryConfig;
use mmr_sim::engine::{Runner, StopCondition};
use mmr_sim::rng::SimRng;

/// Build the router for `cfg` with faults (if configured) and telemetry
/// armed, mirroring `run_experiment` but keeping the router so the
/// flight recorder can be dumped afterwards.
fn build_instrumented(cfg: &SimConfig) -> MmrRouter {
    let workload = build_workload(cfg);
    let connections = workload.len();
    let mut router = build_router(cfg, workload);
    if let Some(fault) = &cfg.fault {
        let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xFA17).split(71);
        let plan = fault.plan.generate(cfg.router.ports, connections, &mut rng);
        router.set_faults(plan, fault.profile);
    }
    router.set_telemetry(TelemetryConfig {
        wall_clock: true,
        ..TelemetryConfig::default()
    });
    router
}

/// Run `cfg` instrumented and write the report/trace artifact pair.
fn run_scenario(name: &str, cfg: &SimConfig) {
    let mut router = build_instrumented(cfg);
    let stop = match cfg.run {
        RunLength::Cycles(n) => StopCondition::Cycles(n),
        RunLength::UntilDrained { max_cycles } => StopCondition::ModelDoneOrCycles(max_cycles),
    };
    let outcome = Runner::new(cfg.warmup_cycles, stop).run(&mut router);

    let report = router.telemetry_report();
    let recorder = router.telemetry().recorder();
    println!(
        "  {name}: {} cycles, {} windows, {} trace events recorded ({} retained)",
        outcome.executed,
        report.windows.len(),
        recorder.recorded(),
        recorder.len(),
    );

    let dir = results_dir();
    let json_path = dir.join(format!("telemetry_{name}.json"));
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&json_path, json + "\n").expect("write telemetry report");
    println!("  [written {}]", json_path.display());

    let trace_path = dir.join(format!("trace_{name}.jsonl"));
    std::fs::write(&trace_path, recorder.dump_jsonl()).expect("write trace");
    println!("  [written {}]", trace_path.display());
}

fn main() {
    let fidelity = fidelity_from_args();
    println!(
        "trace_report: {} mode",
        match fidelity {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
    );

    // Fig. 5 CBR point at load 0.7, COA arbiter (the sweep's base kind).
    let fig5_cfg = fig5(fidelity).base.with_load(0.7);
    run_scenario("fig5_cbr", &fig5_cfg);

    // The hottest chaos point, so fault detections and quarantines show
    // up in the trace next to grants and stalls.  The run is truncated at
    // the fault-window end: the flight recorder retains the newest ring
    // of events, and stopping inside active injection keeps detections
    // in the retained tail instead of only post-window steady state.
    let chaos_spec = chaos(fidelity);
    let mut chaos_cfg = chaos_spec
        .configs()
        .into_iter()
        .next_back()
        .expect("chaos sweep has at least one factor");
    let plan = chaos_cfg.fault.expect("chaos configs carry faults").plan;
    chaos_cfg.run = RunLength::Cycles(plan.window_start + plan.window_len);
    run_scenario("chaos", &chaos_cfg);
}
