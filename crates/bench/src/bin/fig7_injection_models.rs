//! Fig. 7 — the two VBR injection models, illustrated: flit emission
//! timelines for one frame under Back-to-Back and Smooth-Rate.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_sim::rng::SimRng;
use mmr_sim::time::{RouterCycle, TimeBase};
use mmr_traffic::connection::ConnectionId;
use mmr_traffic::injection::InjectionModel;
use mmr_traffic::mpeg::{standard_sequences, MpegTrace, FRAME_TIME_SECS};
use mmr_traffic::source::TrafficSource;
use mmr_traffic::vbr::VbrSource;

fn timeline(model: InjectionModel, label: &str, out: &mut String) {
    let tb = TimeBase::default();
    let mut rng = SimRng::seed_from_u64(7);
    let trace = MpegTrace::generate(&standard_sequences()[0], 1, &tb, &mut rng);
    let mut src = VbrSource::new(ConnectionId(0), trace, model, RouterCycle(0), &tb);
    // Bucket frame-0 emissions into 40 slots across the frame time.
    const SLOTS: usize = 40;
    let frame_rc = FRAME_TIME_SECS / tb.router_cycle_secs();
    let mut buckets = [0u32; SLOTS];
    let mut emitted = 0u64;
    while let Some(t) = src.peek_next() {
        let f = src.emit();
        if f.frame.unwrap().index > 0 {
            break;
        }
        let slot = ((t.0 as f64 / frame_rc) * SLOTS as f64) as usize;
        buckets[slot.min(SLOTS - 1)] += 1;
        emitted += 1;
    }
    out.push_str(&format!(
        "\n{label} — {emitted} flits of frame 0 across one 33 ms frame time:\n"
    ));
    let max = *buckets.iter().max().unwrap() as f64;
    for (i, &b) in buckets.iter().enumerate() {
        let t_ms = i as f64 / SLOTS as f64 * 33.0;
        let bar = "#".repeat(((b as f64 / max) * 50.0).round() as usize);
        out.push_str(&format!("{t_ms:>6.1} ms |{bar:<50}| {b}\n"));
    }
}

fn main() {
    let fidelity = fidelity_from_args();
    let mut out = banner("Fig. 7", "VBR injection models (BB vs SR)", fidelity);
    let tb = TimeBase::default();
    // Peak sized for a frame ~3x this trace's typical I frame, so the BB
    // burst visibly finishes early.
    let bb = InjectionModel::back_to_back_for(2500, FRAME_TIME_SECS, &tb);
    timeline(bb, "(a) Back-to-Back: peak-rate burst, then idle", &mut out);
    timeline(
        InjectionModel::SmoothRate,
        "(b) Smooth-Rate: evenly spread",
        &mut out,
    );
    emit("fig7_injection_models.txt", &out);
}
