//! Ablation — priority function: SIABP vs IABP vs FIFO vs Static.
//!
//! §3.1 claims the cheap shift-based SIABP preserves IABP's behaviour;
//! this sweep verifies it (their curves should overlap) and shows what the
//! QoS bias buys over FIFO (no reservation awareness) and Static (no
//! delay awareness).

use mmr_arbiter::priority::PriorityKind;
use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::report::TextTable;
use mmr_core::scenarios::Fidelity;
use mmr_core::sweep::{sweep, SweepSpec};
use mmr_traffic::connection::TrafficClass;

fn main() {
    let fidelity = fidelity_from_args();
    let (warmup, cycles, loads): (u64, u64, Vec<f64>) = match fidelity {
        Fidelity::Quick => (1_000, 20_000, vec![0.5, 0.8]),
        Fidelity::Full => (10_000, 200_000, vec![0.3, 0.5, 0.7, 0.8, 0.9]),
    };
    let mut out = banner(
        "Ablation",
        "link-priority function (COA, CBR mix)",
        fidelity,
    );
    let mut table = TextTable::new(vec![
        "priority",
        "load(%)",
        "low(µs)",
        "med(µs)",
        "high(µs)",
        "throughput",
    ]);
    for kind in PriorityKind::all() {
        let base = SimConfig {
            priority: kind,
            workload: WorkloadSpec::cbr(0.5),
            warmup_cycles: warmup,
            run: RunLength::Cycles(cycles),
            ..Default::default()
        };
        let spec = SweepSpec {
            base,
            loads: loads.clone(),
            arbiters: vec![mmr_arbiter::scheduler::ArbiterKind::Coa],
            seeds: vec![0xB1ACA],
        };
        for p in sweep(&spec) {
            table.row(vec![
                kind.label().to_string(),
                format!("{:.1}", p.achieved_load * 100.0),
                format!("{:.2}", p.class_delay_us(TrafficClass::CbrLow)),
                format!("{:.2}", p.class_delay_us(TrafficClass::CbrMedium)),
                format!("{:.2}", p.class_delay_us(TrafficClass::CbrHigh)),
                format!("{:.3}", p.throughput_ratio()),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "# expectation: SIABP ≈ IABP (the shift approximates the division);\n\
                  # FIFO ignores reservations; Static starves aged low-priority flits\n",
    );
    emit("ablation_priority.txt", &out);
}
