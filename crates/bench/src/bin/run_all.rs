//! Run every figure/table reproduction in sequence (the EXPERIMENTS.md
//! driver).  Forwards `--full` to each harness.

use std::process::Command;

const BINS: &[&str] = &[
    "table1_mpeg_stats",
    "fig6_trace_profile",
    "fig7_injection_models",
    "fig5_cbr_delay",
    "fig8_vbr_utilization",
    "fig9_vbr_frame_delay",
    "jitter_report",
    "hw_cost_report",
    "ablation_levels",
    "ablation_priority",
    "ablation_buffers",
    "ablation_arbiters",
    "ablation_concurrency",
    "ablation_link_policy",
    "fabric_report",
    "ext_besteffort",
    "ext_hol_blocking",
];

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in BINS {
        eprintln!("\n=== {bin} ===");
        let mut cmd = Command::new(exe_dir.join(bin));
        if full {
            cmd.arg("--full");
        }
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to launch: {e} (build with `cargo build --release -p mmr-bench` first)");
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        eprintln!(
            "\nall {} experiments completed; outputs in results/",
            BINS.len()
        );
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
