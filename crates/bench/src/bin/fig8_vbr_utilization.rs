//! Fig. 8 — average crossbar utilization vs generated load, VBR (MPEG-2)
//! traffic, SR and BB injection panels, COA vs WFA.
//!
//! Paper result: utilization tracks generated load until the scheduler
//! saturates — around 75 % for WFA, while COA keeps scaling to ≈85 %.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::InjectionKind;
use mmr_core::report::{ascii_plot, render_xy_table};
use mmr_core::scenarios::fig8_fig9;
use mmr_core::sweep::sweep;

fn main() {
    let fidelity = fidelity_from_args();
    let mut out = banner(
        "Fig. 8",
        "average crossbar utilization (%) vs generated load, VBR traffic",
        fidelity,
    );
    for injection in [InjectionKind::SmoothRate, InjectionKind::BackToBack] {
        let spec = fig8_fig9(injection, fidelity);
        eprintln!(
            "running {} panel: {} simulation points…",
            injection.label(),
            spec.point_count()
        );
        let points = sweep(&spec);
        // The paper's metric: bandwidth delivered while traffic was being
        // generated — backlog that slips past the generation window does
        // not count, so the curve bends exactly where the scheduler stops
        // keeping up.
        let window_util = |p: &mmr_core::sweep::SweepPoint| {
            p.mean_of(|r| r.summary.generation_window_utilization()) * 100.0
        };
        out.push_str(&render_xy_table(
            &format!("Fig. 8 — {} injection model", injection.label()),
            "crossbar utilization within the generation window (%)",
            &points,
            window_util,
        ));
        out.push_str(&ascii_plot(
            &format!("Fig. 8 — {} (window utilization %)", injection.label()),
            &points,
            false,
            window_util,
        ));
        out.push_str(&render_xy_table(
            &format!("Fig. 8 (whole run) — {}", injection.label()),
            "mean crossbar utilization over the whole run incl. drain (%)",
            &points,
            |p| p.utilization() * 100.0,
        ));
        out.push('\n');
    }
    out.push_str("# paper: WFA degrades near 75% generated load; COA reaches ≈85%\n");
    emit("fig8_vbr_utilization.txt", &out);
}
