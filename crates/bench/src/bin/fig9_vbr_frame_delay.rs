//! Fig. 9 — average frame delay since generation (log scale) vs generated
//! load, VBR traffic, SR and BB panels, COA vs WFA.
//!
//! Paper result: with COA, frame delays stay low up to ≈78 % load (SR),
//! with a pre-saturation rise near 80 % caused by I-frame bursts; WFA
//! saturates near 70 %.  BB delays sit above SR delays below saturation,
//! but saturation lands at the same load.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::InjectionKind;
use mmr_core::report::{ascii_plot, render_xy_table};
use mmr_core::saturation::{detect_saturation, SaturationCriteria};
use mmr_core::scenarios::fig8_fig9;
use mmr_core::sweep::sweep;

fn main() {
    let fidelity = fidelity_from_args();
    let mut out = banner(
        "Fig. 9",
        "average frame delay since generation (µs, log-scale in the paper)",
        fidelity,
    );
    for injection in [InjectionKind::SmoothRate, InjectionKind::BackToBack] {
        let spec = fig8_fig9(injection, fidelity);
        eprintln!(
            "running {} panel: {} simulation points…",
            injection.label(),
            spec.point_count()
        );
        let points = sweep(&spec);
        out.push_str(&render_xy_table(
            &format!("Fig. 9 — {} injection model", injection.label()),
            "mean frame delay since generation (µs)",
            &points,
            |p| p.frame_delay_us(),
        ));
        out.push_str(&ascii_plot(
            &format!("Fig. 9 — {} (log y, µs)", injection.label()),
            &points,
            true,
            |p| p.frame_delay_us(),
        ));
        for (kind, series) in mmr_core::report::series_by_arbiter(&points) {
            let series: Vec<_> = series.into_iter().cloned().collect();
            let sat = detect_saturation(&series, SaturationCriteria::default(), |p| {
                p.frame_delay_us()
            });
            match sat {
                Some(l) => out.push_str(&format!(
                    "{} [{}]: saturates near {:.0}% generated load\n",
                    kind.label(),
                    injection.label(),
                    l * 100.0
                )),
                None => out.push_str(&format!(
                    "{} [{}]: no saturation in sweep range\n",
                    kind.label(),
                    injection.label()
                )),
            }
        }
        out.push('\n');
    }
    out.push_str(
        "# paper: COA low delays to ≈78%; WFA saturates ≈70%; BB delays > SR below saturation\n",
    );
    emit("fig9_vbr_frame_delay.txt", &out);
}
