//! Fig. 6 — bandwidth-vs-time profile of a typical MPEG-2 sequence
//! (Flower Garden): the per-frame bit rate over one second of video,
//! showing the I ≫ P ≫ B burst structure inside each GOP.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::scenarios::Fidelity;
use mmr_sim::rng::SimRng;
use mmr_sim::time::TimeBase;
use mmr_traffic::mpeg::{standard_sequences, MpegTrace, FRAME_TIME_SECS};

fn main() {
    let fidelity = fidelity_from_args();
    let gops = match fidelity {
        Fidelity::Quick => 2,
        Fidelity::Full => 8,
    };
    let mut out = banner(
        "Fig. 6",
        "Flower Garden sequence bandwidth profile",
        fidelity,
    );
    let params = standard_sequences()
        .into_iter()
        .find(|s| s.name == "Flower Garden")
        .expect("sequence table contains Flower Garden");
    let tb = TimeBase::default();
    let mut rng = SimRng::seed_from_u64(0xF10E);
    let trace = MpegTrace::generate(&params, gops, &tb, &mut rng);
    out.push_str("# time(ms)   rate(Mbit/s)   frame\n");
    for (i, (rate, frame)) in trace
        .rate_profile_mbps()
        .iter()
        .zip(&trace.frames)
        .enumerate()
    {
        let t_ms = i as f64 * FRAME_TIME_SECS * 1e3;
        let bar = "#".repeat((rate / 2.0).round() as usize);
        out.push_str(&format!(
            "{t_ms:>9.0} {rate:>12.1}   {:?} {bar}\n",
            frame.ty
        ));
    }
    let s = trace.stats();
    out.push_str(&format!(
        "\navg rate {:.1} Mbps, peak {:.1} Mbps (paper's Fig. 6 shows the same sawtooth: one I-frame spike per 15-frame GOP)\n",
        s.avg_bandwidth.as_mbps(),
        s.peak_bandwidth.as_mbps()
    ));
    emit("fig6_trace_profile.txt", &out);
}
