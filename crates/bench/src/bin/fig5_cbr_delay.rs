//! Fig. 5 — average flit delay since generation vs offered load, CBR mix,
//! COA vs WFA, one panel per bandwidth class.
//!
//! Paper result: both schemes track each other for the low and medium
//! classes; for the 55 Mbps class WFA saturates around 70 % offered load
//! while COA holds to ≈83 %.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::report::{ascii_plot, render_xy_table};
use mmr_core::saturation::{detect_saturation, SaturationCriteria};
use mmr_core::scenarios::fig5;
use mmr_core::sweep::sweep;
use mmr_traffic::connection::TrafficClass;

fn main() {
    let fidelity = fidelity_from_args();
    let spec = fig5(fidelity);
    let mut out = banner(
        "Fig. 5",
        "average flit delay since generation, CBR traffic (µs)",
        fidelity,
    );
    eprintln!("running {} simulation points…", spec.point_count());
    let points = sweep(&spec);

    let panels = [
        (TrafficClass::CbrLow, "(a) 0.064 Mbps connections"),
        (TrafficClass::CbrMedium, "(b) 1.54 Mbps connections"),
        (TrafficClass::CbrHigh, "(c) 55 Mbps connections"),
    ];
    for (class, title) in panels {
        out.push_str(&render_xy_table(
            &format!("Fig. 5 {title}"),
            "mean flit delay since generation (µs)",
            &points,
            |p| p.class_delay_us(class),
        ));
        out.push_str(&ascii_plot(
            &format!("Fig. 5 {title} (log y, µs)"),
            &points,
            true,
            |p| p.class_delay_us(class),
        ));
        out.push('\n');
    }

    // Saturation points per arbiter, judged on the high-bandwidth class.
    out.push_str("# saturation (high-bandwidth class delay blow-up or throughput deficit)\n");
    for (kind, series) in mmr_core::report::series_by_arbiter(&points) {
        let series: Vec<_> = series.into_iter().cloned().collect();
        let sat = detect_saturation(&series, SaturationCriteria::default(), |p| {
            p.class_delay_us(TrafficClass::CbrHigh)
        });
        match sat {
            Some(l) => out.push_str(&format!(
                "{}: saturates near {:.0}% load\n",
                kind.label(),
                l * 100.0
            )),
            None => out.push_str(&format!("{}: no saturation in sweep range\n", kind.label())),
        }
    }
    out.push_str("# paper: WFA ≈70%, COA ≈83% for the 55 Mbps class\n");

    emit("fig5_cbr_delay.txt", &out);
}
