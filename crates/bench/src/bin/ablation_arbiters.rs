//! Ablation — the full arbiter field: COA vs WFA vs iSLIP vs PIM vs
//! greedy-priority vs random, on the CBR mix.
//!
//! Extends the paper's two-way comparison with the related-work schemes
//! §4 cites, isolating which of COA's ingredients matter: priority
//! awareness (greedy has it, iSLIP/PIM/random do not) and conflict-aware
//! port ordering (only COA).

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::report::render_xy_table;
use mmr_core::scenarios::{arbiter_field, Fidelity};
use mmr_core::sweep::sweep;
use mmr_traffic::connection::TrafficClass;

fn main() {
    let fidelity = fidelity_from_args();
    let spec = arbiter_field(fidelity);
    let mut out = banner("Ablation", "switch-scheduler field, CBR mix", fidelity);
    eprintln!("running {} simulation points…", spec.point_count());
    let points = sweep(&spec);
    for (class, label) in [
        (TrafficClass::CbrLow, "low (64 Kbps)"),
        (TrafficClass::CbrMedium, "medium (1.54 Mbps)"),
        (TrafficClass::CbrHigh, "high (55 Mbps)"),
    ] {
        out.push_str(&render_xy_table(
            &format!("mean flit delay — {label} class"),
            "µs",
            &points,
            |p| p.class_delay_us(class),
        ));
        out.push('\n');
    }
    out.push_str(&render_xy_table(
        "throughput ratio (delivered/generated)",
        "fraction",
        &points,
        |p| p.throughput_ratio(),
    ));
    if matches!(fidelity, Fidelity::Quick) {
        out.push_str("\n# quick mode: single seed, short runs — expect noise at high load\n");
    }
    emit("ablation_arbiters.txt", &out);
}
