//! §3.1 / §6 hardware cost — the analytic gate-level comparison:
//! SIABP vs IABP priority hardware, and COA vs WFA arbiter cost.
//!
//! Paper: SIABP cut area ≈30× (companion report) and delay 38× vs IABP;
//! §6 leaves the COA-vs-WFA hardware comparison as future work, which the
//! model below carries out.

use mmr_arbiter::hw::{coa_cost, iabp_cost, priority_comparison, siabp_cost, wfa_cost};
use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::report::TextTable;

fn main() {
    let fidelity = fidelity_from_args();
    let mut out = banner("HW cost", "analytic gate-level cost model", fidelity);

    let (siabp, iabp) = priority_comparison();
    let mut t1 = TextTable::new(vec!["priority function", "area (gates)", "delay (ns)"]);
    t1.row(vec![
        "SIABP (shift)".to_string(),
        format!("{:.0}", siabp.area_gates),
        format!("{:.2}", siabp.delay_ns),
    ]);
    t1.row(vec![
        "IABP (FP divide)".to_string(),
        format!("{:.0}", iabp.area_gates),
        format!("{:.2}", iabp.delay_ns),
    ]);
    t1.row(vec![
        "ratio IABP/SIABP".to_string(),
        format!("{:.1}x", iabp.area_ratio(&siabp)),
        format!("{:.1}x", iabp.delay_ratio(&siabp)),
    ]);
    out.push_str(&t1.render());
    out.push_str("# paper: ~30x area, 38x delay (VHDL synthesis)\n\n");

    let mut t2 = TextTable::new(vec!["arbiter (4x4)", "area (gates)", "delay (ns)"]);
    let wfa = wfa_cost(4);
    let coa = coa_cost(4, 4, 16);
    t2.row(vec![
        "WFA".to_string(),
        format!("{:.0}", wfa.area_gates),
        format!("{:.2}", wfa.delay_ns),
    ]);
    t2.row(vec![
        "COA (k=4)".to_string(),
        format!("{:.0}", coa.area_gates),
        format!("{:.2}", coa.delay_ns),
    ]);
    t2.row(vec![
        "ratio COA/WFA".to_string(),
        format!("{:.1}x", coa.area_ratio(&wfa)),
        format!("{:.1}x", coa.delay_ratio(&wfa)),
    ]);
    out.push_str(&t2.render());
    out.push_str(&format!(
        "# COA delay {:.1} ns vs flit cycle 825.8 ns: arbitration hides under transmission (§2)\n",
        coa.delay_ns
    ));

    // Scaling study: priority bits and port count.
    let mut t3 = TextTable::new(vec![
        "ports",
        "COA area",
        "COA delay",
        "WFA area",
        "WFA delay",
    ]);
    for ports in [4u32, 8, 16] {
        let c = coa_cost(ports, 4, 16);
        let w = wfa_cost(ports);
        t3.row(vec![
            format!("{ports}"),
            format!("{:.0}", c.area_gates),
            format!("{:.1}", c.delay_ns),
            format!("{:.0}", w.area_gates),
            format!("{:.1}", w.delay_ns),
        ]);
    }
    out.push('\n');
    out.push_str(&t3.render());

    let _ = (siabp_cost(24, 16), iabp_cost(24)); // exported API exercised above
    emit("hw_cost_report.txt", &out);
}
