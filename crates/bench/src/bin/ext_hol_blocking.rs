//! Extension — why the MMR uses per-connection virtual channels.
//!
//! §2 justifies the VC memory by citing Karol, Hluchyj & Morgan: a
//! single-FIFO-per-input switch head-of-line blocks and saturates at
//! 2 − √2 ≈ 58.6 % under uniform traffic.  This experiment regenerates
//! that curve with the minimal FIFO model and contrasts it with the MMR
//! (VCs + COA) under the CBR mix at the same loads.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;
use mmr_core::report::TextTable;
use mmr_core::router::holfifo::FifoSwitch;
use mmr_core::scenarios::Fidelity;

fn main() {
    let fidelity = fidelity_from_args();
    let (fifo_cycles, mmr_cycles): (u64, u64) = match fidelity {
        Fidelity::Quick => (100_000, 15_000),
        Fidelity::Full => (1_000_000, 120_000),
    };
    let mut out = banner(
        "Extension",
        "HOL blocking: single-FIFO inputs vs the MMR's virtual channels",
        fidelity,
    );
    let mut table = TextTable::new(vec![
        "offered load(%)",
        "FIFO throughput(%)",
        "MMR throughput(%)",
    ]);
    for load in [0.3f64, 0.5, 0.58, 0.7, 0.8, 0.9, 1.0] {
        let mut fifo = FifoSwitch::new(16, 0xB1ACA);
        fifo.run(load, fifo_cycles);
        // The MMR itself (4x4, VCs, COA) — CBR mix can't reach 1.0, cap it.
        let mmr_tp = if load <= 0.95 {
            let cfg = SimConfig {
                workload: WorkloadSpec::cbr(load.min(0.95)),
                warmup_cycles: mmr_cycles / 10,
                run: RunLength::Cycles(mmr_cycles),
                ..Default::default()
            };
            let r = run_experiment(&cfg);
            // Carried load = utilization (each delivered flit uses one
            // output slot).
            Some(r.summary.crossbar_utilization)
        } else {
            None
        };
        table.row(vec![
            format!("{:.0}", load * 100.0),
            format!("{:.1}", fifo.throughput() * 100.0),
            mmr_tp
                .map(|t| format!("{:.1}", t * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "# Karol/Hluchyj/Morgan FIFO limit: 2 - sqrt(2) = {:.1}% — the number §2's\n\
         # VC design exists to beat; the MMR keeps carrying offered load well past it\n",
        FifoSwitch::KAROL_LIMIT * 100.0
    ));
    emit("ext_hol_blocking.txt", &out);
}
