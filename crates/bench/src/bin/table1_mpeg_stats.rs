//! Table 1 — MPEG-2 video sequence statistics (max/min/average frame
//! size in bits), regenerated from the synthetic trace generator.
//!
//! The paper tabulates these statistics for its seven real traces; ours
//! are synthesized (DESIGN.md §3), so this table doubles as the record of
//! the substitution's calibration.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::report::TextTable;
use mmr_core::scenarios::Fidelity;
use mmr_sim::rng::SimRng;
use mmr_sim::time::TimeBase;
use mmr_traffic::mpeg::{standard_sequences, MpegTrace};

fn main() {
    let fidelity = fidelity_from_args();
    let gops = match fidelity {
        Fidelity::Quick => 4,
        Fidelity::Full => 40,
    };
    let mut out = banner(
        "Table 1",
        "MPEG-2 video sequence statistics (bits)",
        fidelity,
    );
    let tb = TimeBase::default();
    let root = SimRng::seed_from_u64(0xB1ACA);
    let mut table = TextTable::new(vec![
        "Video Sequence",
        "Max",
        "Min",
        "Average",
        "Avg Mbps",
        "Peak Mbps",
    ]);
    for (i, params) in standard_sequences().iter().enumerate() {
        let mut rng = root.split(i as u64);
        let trace = MpegTrace::generate(params, gops, &tb, &mut rng);
        let s = trace.stats();
        table.row(vec![
            params.name.to_string(),
            format!("{}", s.max_bits),
            format!("{}", s.min_bits),
            format!("{:.0}", s.avg_bits),
            format!("{:.2}", s.avg_bandwidth.as_mbps()),
            format!("{:.2}", s.peak_bandwidth.as_mbps()),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\n({gops} GOPs per sequence, GOP = IBBPBBPBBPBBPBB, 33 ms frame time)\n"
    ));
    emit("table1_mpeg_stats.txt", &out);
}
