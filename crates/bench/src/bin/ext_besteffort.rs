//! Extension — best-effort traffic over the reserved classes.
//!
//! The MMR's design goal (§1) is to satisfy multimedia QoS "while
//! allocating the remaining bandwidth to best-effort traffic".  This
//! experiment layers unreserved Poisson message traffic on top of the CBR
//! mix and measures (a) how much residual bandwidth best-effort actually
//! gets and (b) whether the reserved classes' QoS survives the intrusion.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::{BestEffortSpec, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;
use mmr_core::report::TextTable;
use mmr_core::scenarios::Fidelity;
use mmr_core::traffic::connection::TrafficClass;

fn main() {
    let fidelity = fidelity_from_args();
    let (warmup, cycles): (u64, u64) = match fidelity {
        Fidelity::Quick => (2_000, 25_000),
        Fidelity::Full => (10_000, 200_000),
    };
    let mut out = banner(
        "Extension",
        "best-effort traffic scavenging residual bandwidth (COA, SIABP)",
        fidelity,
    );
    let mut table = TextTable::new(vec![
        "reserved load(%)",
        "BE offered(%)",
        "BE delivered(%)",
        "BE delay(µs)",
        "high-class delay(µs)",
        "high-class delta",
    ]);
    for reserved in [0.3f64, 0.5, 0.7, 0.85] {
        // Baseline without best-effort.
        let base_cfg = SimConfig {
            workload: WorkloadSpec::cbr(reserved),
            warmup_cycles: warmup,
            run: RunLength::Cycles(cycles),
            ..Default::default()
        };
        let baseline = run_experiment(&base_cfg);
        let base_high = baseline
            .summary
            .metrics
            .class(TrafficClass::CbrHigh)
            .map(|c| c.mean_delay_us)
            .unwrap_or(0.0);
        for be_load in [0.1f64, 0.3] {
            let cfg = SimConfig {
                best_effort: Some(BestEffortSpec {
                    per_link_load: be_load,
                    mean_flits: 8.0,
                }),
                ..base_cfg.clone()
            };
            let r = run_experiment(&cfg);
            let be = r.summary.metrics.class(TrafficClass::BestEffort).unwrap();
            let high = r
                .summary
                .metrics
                .class(TrafficClass::CbrHigh)
                .map(|c| c.mean_delay_us)
                .unwrap_or(0.0);
            let be_delivered_frac = if be.generated == 0 {
                0.0
            } else {
                be.delivered as f64 / be.generated as f64 * be_load
            };
            table.row(vec![
                format!("{:.1}", r.achieved_load * 100.0),
                format!("{:.0}", be_load * 100.0),
                format!("{:.1}", be_delivered_frac * 100.0),
                format!("{:.1}", be.mean_delay_us),
                format!("{high:.2}"),
                format!("{:+.2}", high - base_high),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "# 'BE delivered' is the best-effort load actually carried; 'delta' is the\n\
         # change in the 55 Mbps class's delay caused by adding best-effort traffic.\n\
         # Expectation: BE fills headroom when there is any, reserved QoS barely moves.\n",
    );
    emit("ext_besteffort.txt", &out);
}
