//! Fabric scaling report and gate (supersedes the old `ext_network`
//! bin, whose line-network table it still emits).
//!
//! Two sections:
//!
//! * **Line network** (§6 extension, the historical `ext_network.txt`
//!   columns): the CBR mix through 1–4 routers in tandem, COA vs WFA,
//!   end-to-end high-class delay / max stage utilization / throughput.
//! * **Fabric scaling**: the 16-router 4×4 mesh at load 0.6
//!   (`scenarios::fabric_mesh`) executed at worker counts 1/2/8,
//!   reporting routers × connections × simulated cycles/sec, with the
//!   run results asserted bit-identical across every worker count.
//!
//! Flags:
//!
//! * `--full` — paper-scale runs (defaults to a quick smoke mode).
//! * `--merge <bench.json>` — insert/replace the `fabric` key of an
//!   existing `BENCH_<n>.json` (how the fabric section joins the
//!   trajectory); otherwise the section is written standalone to
//!   `results/fabric_report.json`.
//! * `--gate <baseline.json>` — exit 1 unless:
//!   * worker-count bit-identity holds (checked unconditionally — a
//!     violation panics);
//!   * the worker-scaling floor holds.  On hosts with >= 8 CPUs the
//!     8-worker run must reach `MMR_FABRIC_GATE_SPEEDUP` (default 2.5)
//!     times the 1-worker throughput; on smaller hosts a 2.5x wall-clock
//!     speedup is physically impossible, so the clause degrades to an
//!     oversubscription bound — 8 workers must keep at least
//!     `MMR_FABRIC_GATE_OVERSUB` (default 0.25) of the 1-worker
//!     throughput, i.e. the barrier/spawn machinery must not collapse
//!     under more workers than cores (a single-core host measures
//!     around 0.4x; the failure mode this clause catches is 10x-plus);
//!   * the 1-worker fabric throughput has not regressed more than
//!     `MMR_FABRIC_GATE_PCT` percent (default 35) against the
//!     baseline's fabric section.  A single-router reference run
//!     measured both here and in the baseline normalizes for host
//!     drift, but only *downward*: a slower host lowers the bar
//!     proportionally, while a faster reference never raises it above
//!     the baseline's raw number — the reference and the fabric do not
//!     co-vary tightly enough under scheduler noise to trust the
//!     normalization in the demanding direction.

use mmr_arbiter::priority::PriorityKind;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_bench::{banner, emit, fidelity_from_args, results_dir};
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_fabric, build_fabric_workload, build_router, build_workload};
use mmr_core::report::TextTable;
use mmr_core::scenarios::{fabric_mesh, Fidelity};
use mmr_router::config::RouterConfig;
use mmr_router::fabric::FabricRunOutcome;
use mmr_router::network::LineNetwork;
use mmr_sim::engine::{Runner, StopCondition};
use mmr_sim::rng::SimRng;
use mmr_traffic::admission::RoundConfig;
use mmr_traffic::connection::TrafficClass;
use mmr_traffic::workload::CbrMixBuilder;
use serde_json::Value;
use std::path::PathBuf;
use std::time::Instant;

/// One end-to-end line-network point (the historical `ext_network`
/// measurement, unchanged columns).
fn run_net(
    stages: usize,
    load: f64,
    kind: ArbiterKind,
    cycles: u64,
    warmup: u64,
) -> (f64, f64, f64) {
    let cfg = RouterConfig::default();
    let mut rng = SimRng::seed_from_u64(0xB1ACA);
    let w = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
        .target_load(load)
        .build(&mut rng);
    let mut net = LineNetwork::new(cfg, w, stages, kind, PriorityKind::Siabp, 0xB1ACA);
    Runner::new(warmup, StopCondition::Cycles(cycles)).run(&mut net);
    let s = net.summary();
    let high = s
        .metrics
        .class(TrafficClass::CbrHigh)
        .map(|c| c.mean_delay_us)
        .unwrap_or(0.0);
    let util = s.stage_utilization.iter().copied().fold(0.0, f64::max);
    let tput = if s.generated_flits == 0 {
        1.0
    } else {
        s.delivered_flits as f64 / s.generated_flits as f64
    };
    (high, util, tput)
}

fn line_section(fidelity: Fidelity) {
    let (cycles, warmup, loads): (u64, u64, Vec<f64>) = match fidelity {
        Fidelity::Quick => (15_000, 1_000, vec![0.5, 0.8]),
        Fidelity::Full => (150_000, 10_000, vec![0.3, 0.5, 0.7, 0.8]),
    };
    let mut out = banner(
        "Extension",
        "line network of MMRs (end-to-end, CBR mix)",
        fidelity,
    );
    let mut table = TextTable::new(vec![
        "stages",
        "load(%)",
        "arbiter",
        "high-class delay(µs)",
        "max stage util(%)",
        "throughput",
    ]);
    for stages in [1usize, 2, 3, 4] {
        for &load in &loads {
            for kind in [ArbiterKind::Coa, ArbiterKind::Wfa] {
                let (delay, util, tput) = run_net(stages, load, kind, cycles, warmup);
                table.row(vec![
                    format!("{stages}"),
                    format!("{:.0}", load * 100.0),
                    kind.label().to_string(),
                    format!("{delay:.2}"),
                    format!("{:.1}", util * 100.0),
                    format!("{tput:.3}"),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "# expectation: delay grows ~linearly with hops below saturation;\n\
                  # COA's QoS advantage compounds across stages\n",
    );
    emit("ext_network.txt", &out);
}

/// Wall-clock one fabric run (construction excluded) and return the
/// identity probe for cross-worker comparison.
type FabricProbe = (
    mmr_router::fabric::FabricSummary,
    Vec<u64>,
    FabricRunOutcome,
);

fn measure_fabric(cfg: &SimConfig, workers: usize, reps: usize) -> (f64, usize, FabricProbe) {
    let spec = cfg.fabric.expect("fabric config");
    let (RunLength::Cycles(cycles) | RunLength::UntilDrained { max_cycles: cycles }) = cfg.run;
    let mut best = f64::INFINITY;
    let mut connections = 0;
    let mut probe: Option<FabricProbe> = None;
    for _ in 0..reps {
        let w = build_fabric_workload(cfg, &spec);
        connections = w.len();
        let mut fabric = build_fabric(cfg, &spec, w);
        let t0 = Instant::now();
        let out = fabric.run_parallel(cfg.warmup_cycles, cycles, workers, true);
        best = best.min(t0.elapsed().as_secs_f64());
        let p = (fabric.summary(), fabric.rng_fingerprints(), out);
        match &probe {
            Some(prev) => assert_eq!(prev, &p, "fabric run not deterministic across reps"),
            None => probe = Some(p),
        }
    }
    (best, connections, probe.expect("at least one rep"))
}

/// Single-router reference throughput (simulated cycles/sec) used to
/// drift-normalize the trajectory clause: the single-router step is
/// untouched by fabric work, so its speed ratio between this run and
/// the baseline's recorded value measures pure host drift.
///
/// The run length is fixed (not tied to the fabric's cycle budget):
/// a single router simulates hundreds of kilocycles per second, so the
/// fabric's quick-mode budget would finish in ~25 ms — short enough
/// that scheduler noise on a shared host swings the "drift" by 2x and
/// poisons the normalization.  250k cycles keeps each sample above a
/// quarter second.
fn measure_router_ref(warmup: u64, reps: usize) -> f64 {
    let cycles = 250_000u64;
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.6),
        warmup_cycles: warmup,
        run: RunLength::Cycles(cycles),
        ..Default::default()
    };
    let runner = Runner::new(warmup, StopCondition::Cycles(cycles));
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut router = build_router(&cfg, build_workload(&cfg));
        let t0 = Instant::now();
        runner.run_horizon(&mut router);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    cycles as f64 / best
}

/// The 1-worker fabric cycles/sec and reference cycles/sec recorded in a
/// previous report's fabric section, if present.
fn baseline_fabric(path: &PathBuf) -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let report = serde_json::parse_value(&text).ok()?;
    let fabric = report.get("fabric")?;
    let reference = match fabric.get("ref_router_cycles_per_sec") {
        Some(Value::F64(v)) => *v,
        _ => return None,
    };
    let rows = match fabric.get("rows") {
        Some(Value::Array(rows)) => rows,
        _ => return None,
    };
    for row in rows {
        if let (Some(Value::U64(1)), Some(Value::F64(cps))) =
            (row.get("workers"), row.get("cycles_per_sec"))
        {
            return Some((*cps, reference));
        }
    }
    None
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fidelity = fidelity_from_args();
    let merge_path = args
        .iter()
        .position(|a| a == "--merge")
        .map(|i| PathBuf::from(args.get(i + 1).expect("--merge needs a path")));
    let gate_baseline = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| PathBuf::from(args.get(i + 1).expect("--gate needs a baseline path")));

    line_section(fidelity);

    // --- Fabric scaling: 4x4 mesh, load 0.6, workers 1/2/8 ---------------
    let cfg = fabric_mesh(fidelity);
    let (RunLength::Cycles(cycles) | RunLength::UntilDrained { max_cycles: cycles }) = cfg.run;
    let reps = match fidelity {
        Fidelity::Quick => 2,
        Fidelity::Full => 3,
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "fabric scaling: {} · {} cycles · host has {host_cpus} CPU(s)",
        cfg.fabric.expect("scenario has fabric").topology.label(),
        cycles,
    );
    let worker_counts = [1usize, 2, 8];
    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut connections = 0;
    for &workers in &worker_counts {
        let (secs, conns, probe) = measure_fabric(&cfg, workers, reps);
        connections = conns;
        let cps = cycles as f64 / secs;
        println!(
            "  workers {workers}: {:>7.3}s  {:>9.0} cycles/s  ({} routers, {} connections)",
            secs, cps, probe.0.nodes, conns
        );
        results.push((workers, secs, cps, probe));
    }
    // Bit-identity across every measured worker count — the tentpole
    // contract.  A violation is a correctness bug, not a perf miss.
    let (_, _, _, ref base_probe) = results[0];
    for (workers, _, _, probe) in &results[1..] {
        assert_eq!(
            base_probe, probe,
            "fabric output diverged between 1 and {workers} workers"
        );
    }
    println!("  bit-identity: summaries, RNG fingerprints and outcomes agree across workers");
    let ref_cps = measure_router_ref(cfg.warmup_cycles, reps);
    println!("  reference single-router run: {ref_cps:>9.0} cycles/s");

    let w1_cps = results[0].2;
    for (workers, secs, cps, probe) in &results {
        rows.push(obj(vec![
            ("workers", Value::U64(*workers as u64)),
            ("secs", Value::F64(*secs)),
            ("cycles_per_sec", Value::F64(*cps)),
            ("speedup_vs_1_worker", Value::F64(cps / w1_cps)),
            ("executed_cycles", Value::U64(probe.2.executed)),
            ("skipped_cycles", Value::U64(probe.2.skipped)),
        ]));
    }
    let fabric_section = obj(vec![
        ("schema", Value::Str("mmr-fabric-report/1".to_string())),
        (
            "mode",
            Value::Str(
                match fidelity {
                    Fidelity::Quick => "quick",
                    Fidelity::Full => "full",
                }
                .to_string(),
            ),
        ),
        (
            "topology",
            Value::Str(cfg.fabric.expect("fabric").topology.label()),
        ),
        ("routers", Value::U64(results[0].3 .0.nodes as u64)),
        ("connections", Value::U64(connections as u64)),
        ("load", Value::F64(cfg.workload.target_load())),
        ("warmup_cycles", Value::U64(cfg.warmup_cycles)),
        ("run_cycles", Value::U64(cycles)),
        ("host_cpus", Value::U64(host_cpus as u64)),
        ("bit_identical", Value::Bool(true)),
        ("ref_router_cycles_per_sec", Value::F64(ref_cps)),
        ("rows", Value::Array(rows)),
    ]);

    // --- Persist: merge into a BENCH report or write standalone -----------
    match &merge_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let mut report = serde_json::parse_value(&text)
                .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
            match &mut report {
                Value::Object(fields) => {
                    fields.retain(|(k, _)| k != "fabric");
                    fields.push(("fabric".to_string(), fabric_section));
                }
                _ => panic!("{} is not a JSON object", path.display()),
            }
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            std::fs::write(path, json + "\n").expect("write merged report");
            println!("[fabric section merged into {}]", path.display());
        }
        None => {
            let path = results_dir().join("fabric_report.json");
            let json = serde_json::to_string_pretty(&fabric_section).expect("serializes");
            std::fs::write(&path, json + "\n").expect("write fabric report");
            println!("[written {}]", path.display());
        }
    }

    // --- Gate --------------------------------------------------------------
    let Some(baseline_path) = gate_baseline else {
        return;
    };
    let mut failed = false;

    // Worker-scaling clause, core-aware.  The 2.5x floor is a statement
    // about the sharded executor, which only multicore hardware can
    // witness; on fewer cores the measurable contract is that
    // oversubscription does not collapse throughput.
    let w8_cps = results
        .iter()
        .find(|(w, ..)| *w == 8)
        .map(|(_, _, cps, _)| *cps)
        .expect("8-worker row");
    let speedup8 = w8_cps / w1_cps;
    if host_cpus >= 8 {
        let floor = env_f64("MMR_FABRIC_GATE_SPEEDUP", 2.5);
        println!(
            "  gate: 8-worker speedup {speedup8:.2}x vs 1 worker (floor {floor:.1}x, \
             {host_cpus} CPUs)"
        );
        if speedup8 < floor {
            eprintln!(
                "error: 8-worker fabric throughput is {speedup8:.2}x the 1-worker run \
                 (gate requires >= {floor:.1}x on a {host_cpus}-CPU host)"
            );
            failed = true;
        }
    } else {
        let floor = env_f64("MMR_FABRIC_GATE_OVERSUB", 0.25);
        println!(
            "  gate: host has {host_cpus} CPU(s) (< 8) — 2.5x wall-clock scaling is not \
             measurable here; applying the oversubscription floor instead: \
             8-worker throughput {speedup8:.2}x of 1-worker (floor {floor:.2}x)"
        );
        if speedup8 < floor {
            eprintln!(
                "error: 8 workers on a {host_cpus}-CPU host retain only {speedup8:.2}x \
                 of 1-worker throughput (floor {floor:.2}x) — barrier/spawn overhead \
                 is collapsing the fabric"
            );
            failed = true;
        }
    }

    // Trajectory clause: 1-worker throughput vs the committed baseline,
    // drift-normalized by the single-router reference.
    let gate_pct = env_f64("MMR_FABRIC_GATE_PCT", 35.0);
    match baseline_fabric(&baseline_path) {
        Some((base_w1_cps, base_ref_cps)) => {
            // Downward-only: a slow host lowers the bar, a fast
            // reference run never raises it (see module docs).
            let drift = (ref_cps / base_ref_cps).min(1.0);
            let normalized = base_w1_cps * drift;
            let delta_pct = (1.0 - w1_cps / normalized) * 100.0;
            println!(
                "  gate: 1-worker fabric {w1_cps:.0} cycles/s vs baseline {base_w1_cps:.0} \
                 (host drift x{drift:.2} -> normalized {normalized:.0}; \
                 {delta_pct:+.1}% slower, limit +{gate_pct:.0}%)"
            );
            if w1_cps < normalized * (1.0 - gate_pct / 100.0) {
                eprintln!(
                    "error: 1-worker fabric throughput regressed {delta_pct:.1}% against \
                     baseline {} (limit {gate_pct:.0}%)",
                    baseline_path.display()
                );
                failed = true;
            }
        }
        None => println!(
            "  gate: baseline {} has no fabric section (pre-fabric report); \
             skipping the trajectory check",
            baseline_path.display()
        ),
    }

    if failed {
        std::process::exit(1);
    }
}
