//! Beyond-COA arbiter frontier: evaluate the Frontier claim subset over
//! the frontier-ablation ensemble and write `results/frontier.json`.
//!
//! The panel sweeps the Fig. 5 CBR workload over seven arbiters — COA,
//! WFA, iSLIP, the exact MWM oracle, its greedy ½-approximation, the
//! frame-based fair scheduler and the crosspoint-queued switch — and the
//! claims pin COA's distance from the optimality frontier
//! (`frontier.coa-within-factor-of-mwm` et al.).
//!
//! With `--gate` the exit status enforces the claims: 0 when every
//! Frontier claim passes at the ensemble median, 1 on any regression
//! (`scripts/ci.sh` runs this in quick fidelity).  Without `--gate` the
//! report is written but failures only warn, so exploratory full-
//! fidelity runs never abort mid-sweep.  `--list-claims` prints the
//! Frontier manifest without simulating.
//!
//! `MMR_FRONTIER_COA_MWM_MAX` overrides the COA-vs-MWM delay-ratio
//! tolerance (the `max_ratio` of `frontier.coa-within-factor-of-mwm`),
//! letting CI tighten the screw without a code change.

use mmr_bench::{banner, emit, fidelity_from_args, results_dir};
use mmr_core::conformance::{
    evaluate_all, frontier_claims, frontier_ensemble, Check, ConformanceReport, EnsembleOptions,
};
use mmr_core::saturation::ExperimentCache;
use mmr_core::scenarios::Fidelity;

fn main() {
    if std::env::args().any(|a| a == "--list-claims") {
        println!("{:<38} {:<9} claim", "id", "figure");
        println!("{}", "-".repeat(100));
        for c in frontier_claims() {
            println!("{:<38} {:<9} {}", c.id, c.figure.label(), c.description);
        }
        return;
    }
    let gate = std::env::args().any(|a| a == "--gate");
    let fidelity = fidelity_from_args();

    let mut claims = frontier_claims();
    if let Ok(tol) = std::env::var("MMR_FRONTIER_COA_MWM_MAX") {
        let tol: f64 = tol
            .parse()
            .expect("MMR_FRONTIER_COA_MWM_MAX must parse as f64");
        for c in &mut claims {
            if c.id == "frontier.coa-within-factor-of-mwm" {
                if let Check::AtMostRatio { max_ratio, .. } = &mut c.check {
                    *max_ratio = tol;
                }
            }
        }
    }

    let options = EnsembleOptions::new(fidelity);
    eprintln!(
        "running frontier ablation: 7 arbiters x 3 loads x {} seeds…",
        options.frontier_seeds
    );
    let mut cache = ExperimentCache::new();
    let ensemble = frontier_ensemble(options, &mut cache);
    let report = ConformanceReport {
        fidelity: match fidelity {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
        .to_string(),
        cbr_seeds: vec![],
        vbr_seeds: vec![],
        frontier_seeds: ensemble.frontier_seeds.clone(),
        claims: evaluate_all(&claims, &ensemble),
    };

    let mut out = banner(
        "Frontier",
        "COA vs the MWM oracle, greedy 1/2-approx, frame-fair and CQ arbiters",
        fidelity,
    );
    out.push_str(&report.render_text());
    let failed = report.failed();
    out.push_str(&format!(
        "\n{}/{} claims pass ({} simulations, {} cache hits)\n",
        report.claims.len() - failed.len(),
        report.claims.len(),
        cache.misses(),
        cache.hits(),
    ));
    emit("frontier.txt", &out);

    let json = serde_json::to_string(&report).expect("report serializes");
    let path = results_dir().join("frontier.json");
    std::fs::write(&path, &json).expect("write frontier.json");
    eprintln!("[written {}]", path.display());

    if !failed.is_empty() {
        eprintln!("frontier claims FAILED:");
        for c in &failed {
            eprintln!(
                "  {} [{}]: median {:.4} vs threshold {:.4} (margin {:+.4} {})",
                c.id, c.figure, c.median, c.threshold, c.margin, c.unit
            );
        }
        if gate {
            std::process::exit(1);
        }
    }
}
