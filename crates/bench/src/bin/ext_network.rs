//! Extension (§6 future work) — a line network of several MMRs.
//!
//! "This study must be further extended to a network composed of several
//! MMR's."  This experiment runs the CBR mix through 1–4 routers in
//! tandem with hop-by-hop credit flow control and compares COA vs WFA on
//! end-to-end delay.

use mmr_arbiter::priority::Siabp;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::report::TextTable;
use mmr_core::scenarios::Fidelity;
use mmr_router::config::RouterConfig;
use mmr_router::network::LineNetwork;
use mmr_sim::engine::{Runner, StopCondition};
use mmr_sim::rng::SimRng;
use mmr_traffic::admission::RoundConfig;
use mmr_traffic::connection::TrafficClass;
use mmr_traffic::workload::CbrMixBuilder;

fn run_net(
    stages: usize,
    load: f64,
    kind: ArbiterKind,
    cycles: u64,
    warmup: u64,
) -> (f64, f64, f64) {
    let cfg = RouterConfig::default();
    let mut rng = SimRng::seed_from_u64(0xB1ACA);
    let w = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
        .target_load(load)
        .build(&mut rng);
    let mut net = LineNetwork::new(cfg, w, stages, kind, Box::new(Siabp), 0xB1ACA);
    Runner::new(warmup, StopCondition::Cycles(cycles)).run(&mut net);
    let s = net.summary();
    let high = s
        .metrics
        .class(TrafficClass::CbrHigh)
        .map(|c| c.mean_delay_us)
        .unwrap_or(0.0);
    let util = s.stage_utilization.iter().copied().fold(0.0, f64::max);
    let tput = if s.generated_flits == 0 {
        1.0
    } else {
        s.delivered_flits as f64 / s.generated_flits as f64
    };
    (high, util, tput)
}

fn main() {
    let fidelity = fidelity_from_args();
    let (cycles, warmup, loads): (u64, u64, Vec<f64>) = match fidelity {
        Fidelity::Quick => (15_000, 1_000, vec![0.5, 0.8]),
        Fidelity::Full => (150_000, 10_000, vec![0.3, 0.5, 0.7, 0.8]),
    };
    let mut out = banner(
        "Extension",
        "line network of MMRs (end-to-end, CBR mix)",
        fidelity,
    );
    let mut table = TextTable::new(vec![
        "stages",
        "load(%)",
        "arbiter",
        "high-class delay(µs)",
        "max stage util(%)",
        "throughput",
    ]);
    for stages in [1usize, 2, 3, 4] {
        for &load in &loads {
            for kind in [ArbiterKind::Coa, ArbiterKind::Wfa] {
                let (delay, util, tput) = run_net(stages, load, kind, cycles, warmup);
                table.row(vec![
                    format!("{stages}"),
                    format!("{:.0}", load * 100.0),
                    kind.label().to_string(),
                    format!("{delay:.2}"),
                    format!("{:.1}", util * 100.0),
                    format!("{tput:.3}"),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "# expectation: delay grows ~linearly with hops below saturation;\n\
                  # COA's QoS advantage compounds across stages\n",
    );
    emit("ext_network.txt", &out);
}
