//! `mmr` — command-line front-end to the simulator.
//!
//! ```text
//! mmr run   [--load 0.7] [--arbiter coa|wfa|islip|pim|greedy|random]
//!           [--priority siabp|iabp|fifo|static] [--vbr sr|bb] [--gops 4]
//!           [--cycles 50000] [--warmup 5000] [--seed N] [--json]
//! mmr run   --config sim.json            # full SimConfig from JSON
//! mmr sweep [--loads 0.5,0.7,0.9] [--arbiters coa,wfa] [run flags]
//! mmr scenarios                          # list canned paper scenarios
//! ```

use mmr_arbiter::priority::PriorityKind;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;
use mmr_core::report::{render_xy_table, TextTable};
use mmr_core::sweep::{sweep, SweepSpec};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mmr <run|sweep|scenarios> [flags]\n\
         \n\
         run flags:\n\
           --config FILE          load a full SimConfig from JSON (other flags override)\n\
           --load F               target offered load fraction (default 0.7)\n\
           --arbiter NAME         coa|wfa|wfa-fix|wfa-l1|islip|pim|greedy|random|mwm|mwm-approx|frame-fair|cq (default coa)\n\
           --priority NAME        siabp|iabp|fifo|static (default siabp)\n\
           --vbr sr|bb            use MPEG-2 VBR with the given injection model\n\
           --gops N               GOPs per VBR connection (default 4)\n\
           --cycles N             flit cycles to run (default 50000; VBR runs until drained)\n\
           --warmup N             warm-up cycles (default 5000)\n\
           --seed N               master seed (default 0xB1ACA)\n\
           --json                 emit the result as JSON\n\
         \n\
         sweep flags (plus run flags):\n\
           --loads A,B,C          loads to visit (default 0.5,0.7,0.8,0.9)\n\
           --arbiters A,B         arbiters to compare (default coa,wfa)\n"
    );
    exit(2)
}

fn parse_arbiter(s: &str) -> ArbiterKind {
    match s {
        "coa" => ArbiterKind::Coa,
        "wfa" => ArbiterKind::Wfa,
        "wfa-fix" => ArbiterKind::WfaFixed,
        "wfa-l1" => ArbiterKind::WfaFirstLevel,
        "islip" => ArbiterKind::Islip { iterations: 2 },
        "pim" => ArbiterKind::Pim { iterations: 2 },
        "greedy" => ArbiterKind::GreedyPriority,
        "random" => ArbiterKind::Random,
        "mwm" => ArbiterKind::MwmExact,
        "mwm-approx" => ArbiterKind::MwmApprox,
        "frame-fair" => ArbiterKind::FrameFair {
            frame: mmr_arbiter::frame::DEFAULT_FRAME,
        },
        "cq" => ArbiterKind::CrosspointQueued {
            cap: mmr_arbiter::cq::DEFAULT_CAP,
        },
        other => {
            eprintln!("unknown arbiter '{other}'");
            usage()
        }
    }
}

fn parse_priority(s: &str) -> PriorityKind {
    match s {
        "siabp" => PriorityKind::Siabp,
        "iabp" => PriorityKind::Iabp,
        "fifo" => PriorityKind::Fifo,
        "static" => PriorityKind::Static,
        other => {
            eprintln!("unknown priority function '{other}'");
            usage()
        }
    }
}

/// Parse `--flag value` pairs plus bare `--json` style switches.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if matches!(name, "json") {
                switches.push(name.to_string());
                i += 1;
            } else if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                eprintln!("flag --{name} needs a value");
                usage()
            }
        } else {
            eprintln!("unexpected argument '{a}'");
            usage()
        }
    }
    (flags, switches)
}

fn config_from_flags(flags: &HashMap<String, String>) -> SimConfig {
    let mut cfg = if let Some(path) = flags.get("config") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("invalid config {path}: {e}");
            exit(1)
        })
    } else {
        SimConfig::default()
    };
    let parse_f64 = |s: &String| -> f64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("not a number: {s}");
            usage()
        })
    };
    let parse_u64 = |s: &String| -> u64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("not an integer: {s}");
            usage()
        })
    };
    if let Some(v) = flags.get("vbr") {
        let injection = match v.as_str() {
            "sr" => InjectionKind::SmoothRate,
            "bb" => InjectionKind::BackToBack,
            other => {
                eprintln!("--vbr takes sr or bb, not '{other}'");
                usage()
            }
        };
        let gops = flags.get("gops").map(&parse_u64).unwrap_or(4) as usize;
        cfg.workload = WorkloadSpec::Vbr {
            target_load: cfg.workload.target_load(),
            gops,
            injection,
            enforce_peak: false,
        };
        cfg.warmup_cycles = 0;
        cfg.run = RunLength::UntilDrained {
            max_cycles: mmr_core::scenarios::vbr_cycle_budget(gops),
        };
    }
    if let Some(v) = flags.get("load") {
        cfg.workload = cfg.workload.with_load(parse_f64(v));
    }
    if let Some(v) = flags.get("arbiter") {
        cfg.arbiter = parse_arbiter(v);
    }
    if let Some(v) = flags.get("priority") {
        cfg.priority = parse_priority(v);
    }
    if let Some(v) = flags.get("cycles") {
        cfg.run = RunLength::Cycles(parse_u64(v));
    }
    if let Some(v) = flags.get("warmup") {
        cfg.warmup_cycles = parse_u64(v);
    }
    if let Some(v) = flags.get("seed") {
        cfg.seed = parse_u64(v);
    }
    cfg
}

fn cmd_run(args: &[String]) {
    let (flags, switches) = parse_flags(args);
    let cfg = config_from_flags(&flags);
    let result = run_experiment(&cfg);
    if switches.iter().any(|s| s == "json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("result serializes")
        );
        return;
    }
    println!(
        "{} | {} | load {:.1}% ({} connections) | {} cycles",
        result.summary.arbiter,
        result.summary.priority_fn,
        result.achieved_load * 100.0,
        result.connections,
        result.executed_cycles
    );
    let mut t = TextTable::new(vec!["class", "generated", "delivered", "mean µs", "p99 µs"]);
    for c in &result.summary.metrics.classes {
        t.row(vec![
            c.class.label().to_string(),
            c.generated.to_string(),
            c.delivered.to_string(),
            format!("{:.2}", c.mean_delay_us),
            format!("{:.2}", c.p99_delay_us),
        ]);
    }
    println!("{}", t.render());
    if result.summary.metrics.frames_delivered > 0 {
        println!(
            "frames: {} delivered, mean delay {:.1} µs, mean jitter {:.2} µs",
            result.summary.metrics.frames_delivered,
            result.summary.metrics.mean_frame_delay_us,
            result.summary.metrics.mean_frame_jitter_us
        );
    }
    println!(
        "utilization {:.1}% | throughput {:.3} | fairness {:.3}",
        result.summary.crossbar_utilization * 100.0,
        result.summary.throughput_ratio(),
        result.summary.reservation_fairness
    );
}

fn cmd_sweep(args: &[String]) {
    let (flags, _) = parse_flags(args);
    let base = config_from_flags(&flags);
    let loads: Vec<f64> = flags
        .get("loads")
        .map(|s| {
            s.split(',')
                .map(|x| x.trim().parse().expect("load"))
                .collect()
        })
        .unwrap_or_else(|| vec![0.5, 0.7, 0.8, 0.9]);
    let arbiters: Vec<ArbiterKind> = flags
        .get("arbiters")
        .map(|s| s.split(',').map(|x| parse_arbiter(x.trim())).collect())
        .unwrap_or_else(|| vec![ArbiterKind::Coa, ArbiterKind::Wfa]);
    let spec = SweepSpec {
        seeds: vec![base.seed],
        base,
        loads,
        arbiters,
    };
    eprintln!("running {} points…", spec.point_count());
    let points = sweep(&spec);
    let is_vbr = matches!(spec.base.workload, WorkloadSpec::Vbr { .. });
    if is_vbr {
        print!(
            "{}",
            render_xy_table("frame delay", "mean frame delay (µs)", &points, |p| p
                .frame_delay_us())
        );
    } else {
        print!(
            "{}",
            render_xy_table(
                "high-class flit delay",
                "mean 55 Mbps-class delay (µs)",
                &points,
                |p| p.class_delay_us(mmr_traffic::connection::TrafficClass::CbrHigh)
            )
        );
    }
    print!(
        "{}",
        render_xy_table("utilization", "crossbar utilization (%)", &points, |p| {
            p.utilization() * 100.0
        })
    );
}

fn cmd_scenarios() {
    println!("canned paper scenarios (see mmr-core::scenarios and the mmr-bench binaries):");
    let mut t = TextTable::new(vec!["scenario", "binary", "paper artifact"]);
    for (s, b, p) in [
        ("CBR delay sweep", "fig5_cbr_delay", "Fig. 5 (a-c)"),
        ("MPEG-2 trace stats", "table1_mpeg_stats", "Table 1"),
        ("trace profile", "fig6_trace_profile", "Fig. 6"),
        ("injection models", "fig7_injection_models", "Fig. 7"),
        ("VBR utilization", "fig8_vbr_utilization", "Fig. 8"),
        ("VBR frame delay", "fig9_vbr_frame_delay", "Fig. 9"),
        ("frame jitter", "jitter_report", "§5.2"),
        ("hardware cost", "hw_cost_report", "§3.1 / §6"),
    ] {
        t.row(vec![s, b, p]);
    }
    println!("{}", t.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("scenarios") => cmd_scenarios(),
        _ => usage(),
    }
}
