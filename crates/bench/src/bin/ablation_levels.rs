//! Ablation — candidate levels k ∈ {1, 2, 4, 8}.
//!
//! §3 fixes k = 4 without justification; this sweep shows what depth buys:
//! with k = 1 the switch scheduler sees only one request per input and
//! cannot route around output conflicts; more levels recover matching
//! opportunities at the cost of selection-matrix hardware.

use mmr_arbiter::scheduler::ArbiterKind;
use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::report::TextTable;
use mmr_core::scenarios::Fidelity;
use mmr_core::sweep::{sweep, SweepSpec};
use mmr_router::config::RouterConfig;

fn main() {
    let fidelity = fidelity_from_args();
    let (warmup, cycles, loads): (u64, u64, Vec<f64>) = match fidelity {
        Fidelity::Quick => (1_000, 20_000, vec![0.5, 0.8]),
        Fidelity::Full => (10_000, 200_000, vec![0.5, 0.7, 0.8, 0.9]),
    };
    let mut out = banner("Ablation", "candidate levels k (COA, CBR mix)", fidelity);
    let mut table = TextTable::new(vec![
        "k",
        "load(%)",
        "utilization(%)",
        "high-class delay(µs)",
        "throughput",
    ]);
    for k in [1usize, 2, 4, 8] {
        let base = SimConfig {
            router: RouterConfig {
                candidate_levels: k,
                ..Default::default()
            },
            workload: WorkloadSpec::cbr(0.5),
            warmup_cycles: warmup,
            run: RunLength::Cycles(cycles),
            ..Default::default()
        };
        let spec = SweepSpec {
            base,
            loads: loads.clone(),
            arbiters: vec![ArbiterKind::Coa],
            seeds: vec![0xB1ACA],
        };
        for p in sweep(&spec) {
            table.row(vec![
                format!("{k}"),
                format!("{:.1}", p.achieved_load * 100.0),
                format!("{:.1}", p.utilization() * 100.0),
                format!(
                    "{:.2}",
                    p.class_delay_us(mmr_traffic::connection::TrafficClass::CbrHigh)
                ),
                format!("{:.3}", p.throughput_ratio()),
            ]);
        }
    }
    out.push_str(&table.render());
    emit("ablation_levels.txt", &out);
}
