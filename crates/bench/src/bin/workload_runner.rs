//! Declarative scenario-pack runner: sweep every `workloads/*.toml`
//! document across its declared load grid and gate its typed claims.
//!
//! For each pack the runner compiles the document onto the standard
//! sweep machinery, runs the grid through the experiment cache, writes
//! `results/workload_<name>.json` (the [`PackReport`]: claims + curves)
//! plus a text rendering, and re-runs the representative point (highest
//! load, first arbiter) with the observatory armed to produce
//! `results/workload_<name>.html` via the overview dashboard.
//!
//! Flags:
//! * `--list-packs` — parse and validate every pack, print a catalog,
//!   run no simulation (exit 1 on any malformed document);
//! * `--gate` — exit 1 when any pack claim fails its ensemble median;
//! * `--full` — paper-scale fidelity (`[run.full]`/`[sweep.full]`);
//! * `--pack <name>` — restrict to one pack.
//!
//! The pack directory is `workloads/` at the workspace root, or
//! `MMR_WORKLOADS_DIR` when set.

use mmr_bench::overview::{load_bench_trajectory, render_overview, validate_overview};
use mmr_bench::{banner, emit, fidelity_from_args, results_dir};
use mmr_core::config::TelemetrySpec;
use mmr_core::conformance::run_sweep_cached;
use mmr_core::experiment::{run_experiment, run_fabric_experiment};
use mmr_core::saturation::ExperimentCache;
use mmr_core::workload_lang::{CompiledPack, WorkloadSpec};
use std::path::{Path, PathBuf};

fn workloads_dir() -> PathBuf {
    std::env::var("MMR_WORKLOADS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads"))
}

/// Load every pack document (sorted by file name for stable output).
fn load_specs(only: Option<&str>) -> Vec<(String, WorkloadSpec)> {
    let dir = workloads_dir();
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("toml") | Some("json")
                )
            })
            .collect(),
        Err(e) => {
            eprintln!("workload_runner: cannot read {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    paths.sort();
    let mut specs = Vec::new();
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("workload_runner: cannot read {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        match WorkloadSpec::parse(&text).and_then(|s| s.validate().map(|_| s)) {
            Ok(spec) => {
                if only.map(|n| n == spec.meta.name).unwrap_or(true) {
                    specs.push((path.display().to_string(), spec));
                }
            }
            Err(e) => {
                eprintln!("workload_runner: {} is invalid: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    if specs.is_empty() {
        eprintln!(
            "workload_runner: no packs matched under {}",
            workloads_dir().display()
        );
        std::process::exit(1);
    }
    specs
}

/// Run a fabric pack: no claims, just per-config summaries.
fn run_fabric_pack(pack: &CompiledPack) -> String {
    let mut lines = Vec::new();
    for cfg in pack.sweep.configs() {
        let r = run_fabric_experiment(&cfg);
        lines.push(format!(
            "{{\"arbiter\": \"{}\", \"target_load\": {}, \"achieved_load\": {}, \
             \"connections\": {}, \"drained\": {}}}",
            cfg.arbiter.label(),
            cfg.workload.target_load(),
            r.achieved_load,
            r.connections,
            r.drained
        ));
    }
    format!(
        "{{\"pack\": \"{}\", \"fabric\": true, \"points\": [{}]}}\n",
        pack.name,
        lines.join(", ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only = args
        .iter()
        .position(|a| a == "--pack")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str());
    let fidelity = fidelity_from_args();
    let gate = args.iter().any(|a| a == "--gate");

    if args.iter().any(|a| a == "--list-packs") {
        let specs = load_specs(only);
        println!(
            "{:<16} {:>6} {:>7} {:>6}  description",
            "pack", "loads", "claims", "seeds"
        );
        println!("{}", "-".repeat(88));
        for (_, spec) in &specs {
            println!(
                "{:<16} {:>6} {:>7} {:>6}  {}",
                spec.meta.name,
                spec.loads(fidelity).len(),
                spec.claim.as_ref().map(|c| c.len()).unwrap_or(0),
                spec.seed_count(fidelity),
                spec.meta.description
            );
        }
        return;
    }

    let specs = load_specs(only);
    let mut cache = ExperimentCache::new();
    let mut any_failed = false;

    for (path, spec) in &specs {
        let pack = match spec.compile(fidelity) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("workload_runner: {path} does not compile: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "running pack {}: {} loads x {} arbiters x {} seeds…",
            pack.name,
            pack.sweep.loads.len(),
            pack.sweep.arbiters.len(),
            pack.sweep.seeds.len()
        );

        if pack.fabric {
            let json = run_fabric_pack(&pack);
            let json_path = results_dir().join(format!("workload_{}.json", pack.name));
            std::fs::write(&json_path, &json).expect("write fabric pack json");
            eprintln!("[written {}]", json_path.display());
            continue;
        }

        let points = run_sweep_cached(&pack.sweep, &mut cache, None);
        let report = pack.evaluate(&points, fidelity);

        let mut out = banner(&format!("Pack {}", pack.name), &pack.description, fidelity);
        out.push_str(&report.render_text());
        let failed = report.failed();
        out.push_str(&format!(
            "\n{}/{} claims pass\n",
            report.claims.len() - failed.len(),
            report.claims.len()
        ));
        emit(&format!("workload_{}.txt", pack.name), &out);

        let json = serde_json::to_string(&report).expect("pack report serializes");
        let json_path = results_dir().join(format!("workload_{}.json", pack.name));
        std::fs::write(&json_path, &json).expect("write pack report json");
        eprintln!("[written {}]", json_path.display());

        // Overview dashboard for the representative point: highest load,
        // first arbiter, base seed, observatory armed.
        let peak = pack
            .sweep
            .loads
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let mut rep = pack.sweep.base.with_load(peak);
        rep.arbiter = pack.sweep.arbiters[0];
        rep.telemetry = Some(TelemetrySpec::default());
        let result = run_experiment(&rep);
        let scenario = format!("{} @ load {peak}", pack.name);
        let bench = load_bench_trajectory(&results_dir());
        match render_overview(&scenario, &result, &bench) {
            Some(html) => {
                if let Err(e) = validate_overview(&html) {
                    eprintln!("workload_runner: {} overview invalid: {e}", pack.name);
                    std::process::exit(1);
                }
                let html_path = results_dir().join(format!("workload_{}.html", pack.name));
                std::fs::write(&html_path, &html).expect("write pack overview");
                eprintln!("[written {}]", html_path.display());
            }
            None => {
                eprintln!(
                    "workload_runner: {} produced no observatory data",
                    pack.name
                );
                std::process::exit(1);
            }
        }

        if !failed.is_empty() {
            any_failed = true;
            eprintln!("pack {} FAILED:", pack.name);
            for c in &failed {
                eprintln!(
                    "  {}: median {:.4} vs threshold {:.4} (margin {:+.4} {})",
                    c.id, c.median, c.threshold, c.margin, c.unit
                );
            }
        }
    }

    eprintln!(
        "workload_runner: {} packs, {} simulations, {} cache hits",
        specs.len(),
        cache.misses(),
        cache.hits()
    );
    if gate && any_failed {
        std::process::exit(1);
    }
}
