//! QoS under fault injection — the chaos sweep (DESIGN.md §10).
//!
//! Sweeps fault-rate multipliers over a CBR-plus-best-effort workload
//! with a mid-run fault window and reports, per rate: what was injected,
//! what the detection/recovery machinery did about it, and what the QoS
//! classes experienced.  The claim under test: guaranteed connections
//! hold their delay bounds as fault rates climb, while best-effort
//! traffic absorbs the loss.

use mmr_bench::{banner, emit, fidelity_from_args};
use mmr_core::scenarios::chaos;
use mmr_core::sweep::run_all;
use mmr_router::fault::FaultReport;
use mmr_traffic::connection::TrafficClass;
use serde::Serialize;

/// One machine-readable sweep point for `chaos_report.json`.
#[derive(Serialize)]
struct ChaosPoint {
    factor: f64,
    faults: FaultReport,
    qos_violations: u64,
    throughput_ratio: f64,
    cbr_high_p99_delay_us: f64,
    best_effort_p99_delay_us: f64,
}

fn main() {
    let fidelity = fidelity_from_args();
    let spec = chaos(fidelity);
    let configs = spec.configs();
    eprintln!("running chaos sweep: {} fault rates…", configs.len());
    let results = run_all(&configs, None);

    let mut out = banner(
        "Chaos",
        "QoS under deterministic fault injection, by fault-rate multiplier",
        fidelity,
    );
    out.push_str(&format!(
        "{:>6}  {:>7}  {:>5}  {:>5}  {:>7}  {:>6}  {:>5}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
        "rate",
        "events",
        "corr",
        "drop",
        "resync",
        "stall",
        "quar",
        "qos-viol",
        "cbrH-delay",
        "cbrH-p99",
        "be-delay",
        "be-p99",
        "thru-ratio",
    ));
    out.push_str(&"-".repeat(120));
    out.push('\n');
    for (result, &factor) in results.iter().zip(&spec.factors) {
        let s = &result.summary;
        let f = &s.faults;
        let delay = |class: TrafficClass| {
            s.metrics
                .class(class)
                .map(|c| format!("{:10.2}", c.mean_delay_us))
                .unwrap_or_else(|| format!("{:>10}", "-"))
        };
        let p99 = |class: TrafficClass| {
            s.metrics
                .class(class)
                .map(|c| format!("{:10.2}", c.p99_delay_us))
                .unwrap_or_else(|| format!("{:>10}", "-"))
        };
        out.push_str(&format!(
            "{:>6.1}  {:>7}  {:>5}  {:>5}  {:>7}  {:>6}  {:>5}  {:>8}  {}  {}  {}  {}  {:>10.4}\n",
            factor,
            f.events_fired,
            f.corrupted_flits,
            f.dropped_flits,
            f.credit_resyncs,
            f.stall_cycles,
            f.quarantined_connections,
            s.metrics.qos_violations,
            delay(TrafficClass::CbrHigh),
            p99(TrafficClass::CbrHigh),
            delay(TrafficClass::BestEffort),
            p99(TrafficClass::BestEffort),
            s.throughput_ratio(),
        ));
    }
    out.push_str(
        "\n# rate      fault-rate multiplier (0 = fault-free baseline)\n\
         # events    fault-plan events fired during the window\n\
         # corr      flits caught by the ingress checksum (discarded, credit returned)\n\
         # drop      flits lost silently (link drops + phantom-credit guard)\n\
         # resync    credit-watchdog resynchronizations\n\
         # stall     output-port x cycle units stalled\n\
         # quar      connections quarantined for contract violation\n\
         # qos-viol  deliveries past the delay bound (all classes, incl. best-effort)\n\
         # delays    mean flit delay (us): guaranteed CBR-high vs best-effort\n\
         # p99       99th-percentile flit delay (us), from the per-class\n\
         #           log-bucketed delay histograms\n\
         # expectation: cbrH-delay stays near the baseline while drops and\n\
         # best-effort delay absorb the damage (DESIGN.md s10)\n",
    );
    emit("chaos_report.txt", &out);

    // Machine-readable fault reports alongside the table.
    let json: Vec<ChaosPoint> = results
        .iter()
        .zip(&spec.factors)
        .map(|(r, &factor)| ChaosPoint {
            factor,
            faults: r.summary.faults,
            qos_violations: r.summary.metrics.qos_violations,
            throughput_ratio: r.summary.throughput_ratio(),
            cbr_high_p99_delay_us: r
                .summary
                .metrics
                .class(TrafficClass::CbrHigh)
                .map(|c| c.p99_delay_us)
                .unwrap_or(0.0),
            best_effort_p99_delay_us: r
                .summary
                .metrics
                .class(TrafficClass::BestEffort)
                .map(|c| c.p99_delay_us)
                .unwrap_or(0.0),
        })
        .collect();
    emit(
        "chaos_report.json",
        &serde_json::to_string_pretty(&json).unwrap_or_default(),
    );
}
