//! # mmr-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index) plus ablations; micro-benchmarks for the arbitration and
//! priority kernels live under `benches/` and run on the self-contained
//! [`harness`] module (no external benchmark framework).  The
//! `bench_report` binary aggregates the kernel numbers into
//! `results/BENCH_<n>.json` for trajectory tracking across revisions.
//!
//! Every binary accepts `--full` for paper-scale runs (minutes) and
//! defaults to a quick mode (seconds) that preserves the shapes.  Results
//! are printed and also written under `results/`.

pub mod harness;
pub mod overview;

use mmr_core::scenarios::Fidelity;
use std::path::{Path, PathBuf};

/// Parse the common CLI convention: `--full` selects paper-scale runs.
pub fn fidelity_from_args() -> Fidelity {
    if std::env::args().any(|a| a == "--full") {
        Fidelity::Full
    } else {
        Fidelity::Quick
    }
}

/// Directory where experiment outputs are written (`results/` under the
/// workspace root, or the current directory as a fallback).
pub fn results_dir() -> PathBuf {
    // The bench binaries run from the workspace; prefer a stable location
    // relative to the manifest so `cargo run -p mmr-bench` always lands in
    // the same place.
    let base = std::env::var("MMR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    std::fs::create_dir_all(&base).ok();
    base
}

/// Print a report section and append it to `results/<name>`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[written {}]", path.display());
    }
}

/// Standard banner identifying a figure reproduction.
pub fn banner(figure: &str, description: &str, fidelity: Fidelity) -> String {
    let mode = match fidelity {
        Fidelity::Quick => "quick (pass --full for paper-scale runs)",
        Fidelity::Full => "full",
    };
    format!(
        "==============================================================\n\
         {figure}: {description}\n\
         mode: {mode}\n\
         ==============================================================\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.exists());
    }

    #[test]
    fn banner_mentions_figure() {
        let b = banner("Fig. 5", "flit delay", Fidelity::Quick);
        assert!(b.contains("Fig. 5"));
        assert!(b.contains("--full"));
    }
}
