//! Criterion kernels: switch-scheduler matching throughput.
//!
//! The MMR must arbitrate once per flit cycle (826 ns); these benchmarks
//! measure how each algorithm's software model scales with port count and
//! contention, and back the hardware-cost comparison with wall-clock
//! numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_sim::rng::SimRng;
use std::hint::black_box;

/// Build a realistic candidate set: every input offers `levels`
/// candidates at random outputs with SIABP-like priorities.
fn candidate_set(ports: usize, levels: usize, seed: u64) -> CandidateSet {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut cs = CandidateSet::new(ports, levels);
    for input in 0..ports {
        let mut cands: Vec<Candidate> = (0..levels)
            .map(|vc| Candidate {
                input,
                vc,
                output: rng.index(ports),
                priority: Priority::new((1u64 << (4 + rng.index(12))) as f64),
            })
            .collect();
        cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
        cs.set_input(input, &cands);
    }
    cs
}

fn bench_arbiters(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_schedule");
    for ports in [4usize, 8, 16] {
        let cs = candidate_set(ports, 4, 42);
        for kind in ArbiterKind::all() {
            let mut sched = kind.instantiate(ports);
            let mut rng = SimRng::seed_from_u64(7);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{ports}x{ports}")),
                &cs,
                |b, cs| b.iter(|| black_box(sched.schedule(black_box(cs), &mut rng))),
            );
        }
    }
    group.finish();
}

fn bench_contention_profiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("coa_contention");
    // Hotspot: every input's level-1 candidate targets output 0 — the
    // worst case for COA's iterative recomputation.
    let ports = 4;
    let mut hotspot = CandidateSet::new(ports, 4);
    for input in 0..ports {
        let cands: Vec<Candidate> = (0..4)
            .map(|vc| Candidate {
                input,
                vc,
                output: if vc == 0 { 0 } else { vc },
                priority: Priority::new((1000 - vc as u64) as f64),
            })
            .collect();
        hotspot.set_input(input, &cands);
    }
    let uniform = candidate_set(ports, 4, 3);
    let mut coa = ArbiterKind::Coa.instantiate(ports);
    let mut rng = SimRng::seed_from_u64(1);
    group.bench_function("hotspot", |b| {
        b.iter(|| black_box(coa.schedule(black_box(&hotspot), &mut rng)))
    });
    group.bench_function("uniform", |b| {
        b.iter(|| black_box(coa.schedule(black_box(&uniform), &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_arbiters, bench_contention_profiles);
criterion_main!(benches);
