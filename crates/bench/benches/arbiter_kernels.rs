//! Kernel benchmarks: switch-scheduler matching throughput.
//!
//! The MMR must arbitrate once per flit cycle (826 ns); these benchmarks
//! measure how each algorithm's software model scales with port count and
//! contention, and back the hardware-cost comparison with wall-clock
//! numbers.  Run with `cargo bench -p mmr-bench --bench arbiter_kernels`
//! (pass `--quick` after `--` for a fast smoke pass).

use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_arbiter::matching::Matching;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_bench::harness::{bench_with, report_line};
use mmr_sim::rng::SimRng;
use std::hint::black_box;

/// Build a realistic candidate set: every input offers `levels`
/// candidates at random outputs with SIABP-like priorities.
fn candidate_set(ports: usize, levels: usize, seed: u64) -> CandidateSet {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut cs = CandidateSet::new(ports, levels);
    for input in 0..ports {
        let mut cands: Vec<Candidate> = (0..levels)
            .map(|vc| Candidate {
                input,
                vc,
                output: rng.index(ports),
                priority: Priority::new((1u64 << (4 + rng.index(12))) as f64),
            })
            .collect();
        cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
        cs.set_input(input, &cands);
    }
    cs
}

fn sampling() -> (usize, u128) {
    if std::env::args().any(|a| a == "--quick") {
        (3, 2_000_000)
    } else {
        (5, 20_000_000)
    }
}

fn bench_arbiters(samples: usize, target: u128) {
    println!("== arbiter_schedule ==");
    // 64 ports is the single-word port-set limit; 128 and 256 run the
    // two- and four-word monomorphizations.
    for ports in [4usize, 8, 16, 64, 128, 256] {
        let cs = candidate_set(ports, 4, 42);
        for kind in ArbiterKind::all() {
            let mut sched = kind.instantiate(ports);
            let mut rng = SimRng::seed_from_u64(7);
            let mut out = Matching::new(ports);
            let m = bench_with(
                || {
                    sched.schedule_into(black_box(&cs), &mut rng, &mut out);
                    black_box(&out);
                },
                samples,
                target,
            );
            println!(
                "{}",
                report_line(&format!("{}/{ports}x{ports}", kind.label()), &m)
            );
        }
    }
}

fn bench_contention_profiles(samples: usize, target: u128) {
    println!("== coa_contention ==");
    // Hotspot: every input's level-1 candidate targets output 0 — the
    // worst case for COA's conflict bookkeeping.
    let ports = 4;
    let mut hotspot = CandidateSet::new(ports, 4);
    for input in 0..ports {
        let cands: Vec<Candidate> = (0..4)
            .map(|vc| Candidate {
                input,
                vc,
                output: if vc == 0 { 0 } else { vc },
                priority: Priority::new((1000 - vc as u64) as f64),
            })
            .collect();
        hotspot.set_input(input, &cands);
    }
    let uniform = candidate_set(ports, 4, 3);
    let mut coa = ArbiterKind::Coa.instantiate(ports);
    let mut rng = SimRng::seed_from_u64(1);
    let mut out = Matching::new(ports);
    for (name, cs) in [("hotspot", &hotspot), ("uniform", &uniform)] {
        let m = bench_with(
            || {
                coa.schedule_into(black_box(cs), &mut rng, &mut out);
                black_box(&out);
            },
            samples,
            target,
        );
        println!("{}", report_line(name, &m));
    }
}

fn main() {
    let (samples, target) = sampling();
    bench_arbiters(samples, target);
    bench_contention_profiles(samples, target);
}
