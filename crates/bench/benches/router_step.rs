//! Kernel benchmark: whole-router cycle throughput.
//!
//! Measures simulated flit cycles per second for the full pipeline
//! (sources → NIC → link scheduling → arbitration → crossbar) under the
//! CBR mix, COA vs WFA — the number that determines how long the figure
//! regenerations take.  Run with
//! `cargo bench -p mmr-bench --bench router_step` (pass `--quick` after
//! `--` for a fast smoke pass).

use mmr_arbiter::scheduler::ArbiterKind;
use mmr_bench::harness::bench_with;
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload};
use mmr_sim::engine::CycleModel;
use mmr_sim::time::FlitCycle;
use std::hint::black_box;

fn main() {
    let (samples, target) = if std::env::args().any(|a| a == "--quick") {
        (3, 2_000_000)
    } else {
        (5, 20_000_000)
    };
    println!("== router_cycles ==");
    for load in [0.5f64, 0.9] {
        for kind in [ArbiterKind::Coa, ArbiterKind::Wfa] {
            let cfg = SimConfig {
                workload: WorkloadSpec::cbr(load),
                arbiter: kind,
                run: RunLength::Cycles(u64::MAX),
                ..Default::default()
            };
            let mut router = build_router(&cfg, build_workload(&cfg));
            let mut t = 0u64;
            let m = bench_with(
                || {
                    router.step(FlitCycle(t), true);
                    t += 1;
                    black_box(t);
                },
                samples,
                target,
            );
            println!(
                "{:<28} {:>10.0} ns/cycle   {:>10.2} K cycles/s",
                format!("{}/load{:.0}", kind.label(), load * 100.0),
                m.ns_per_iter,
                m.per_second() / 1e3,
            );
        }
    }
}
