//! Criterion kernel: whole-router cycle throughput.
//!
//! Measures simulated flit cycles per second for the full pipeline
//! (sources → NIC → link scheduling → arbitration → crossbar) under the
//! CBR mix, COA vs WFA — the number that determines how long the figure
//! regenerations take.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload};
use mmr_sim::engine::CycleModel;
use mmr_sim::time::FlitCycle;
use std::hint::black_box;

fn bench_router_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_cycles");
    const BATCH: u64 = 1_000;
    group.throughput(Throughput::Elements(BATCH));
    for load in [0.5f64, 0.9] {
        for kind in [ArbiterKind::Coa, ArbiterKind::Wfa] {
            let cfg = SimConfig {
                workload: WorkloadSpec::cbr(load),
                arbiter: kind,
                run: RunLength::Cycles(u64::MAX),
                ..Default::default()
            };
            let mut router = build_router(&cfg, build_workload(&cfg));
            let mut t = 0u64;
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("load{:.0}", load * 100.0)),
                &(),
                |b, _| {
                    b.iter(|| {
                        for _ in 0..BATCH {
                            router.step(FlitCycle(t), true);
                            t += 1;
                        }
                        black_box(t)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_router_step);
criterion_main!(benches);
