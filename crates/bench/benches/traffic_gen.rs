//! Kernel benchmarks: traffic generation.
//!
//! Trace synthesis and workload construction run once per experiment
//! point; source emission runs on the hot path of every cycle.  Run with
//! `cargo bench -p mmr-bench --bench traffic_gen` (pass `--quick` after
//! `--` for a fast smoke pass).

use mmr_bench::harness::{bench_with, report_line};
use mmr_sim::rng::SimRng;
use mmr_sim::time::{RouterCycle, TimeBase};
use mmr_traffic::admission::RoundConfig;
use mmr_traffic::connection::ConnectionId;
use mmr_traffic::injection::InjectionModel;
use mmr_traffic::mpeg::{standard_sequences, MpegTrace};
use mmr_traffic::source::TrafficSource;
use mmr_traffic::vbr::VbrSource;
use mmr_traffic::workload::{CbrMixBuilder, VbrMixBuilder};
use std::hint::black_box;

fn bench_trace_generation(samples: usize, target: u128) {
    println!("== trace_generation ==");
    let params = standard_sequences();
    let tb = TimeBase::default();
    let mut rng = SimRng::seed_from_u64(1);
    let m = bench_with(
        || {
            black_box(MpegTrace::generate(&params[3], 4, &tb, &mut rng));
        },
        samples,
        target,
    );
    println!("{}", report_line("mpeg_trace_4gops", &m));
}

fn bench_workload_build(samples: usize, target: u128) {
    println!("== workload_build ==");
    let tb = TimeBase::default();
    for load in [0.5f64, 0.9] {
        let m = bench_with(
            || {
                let mut rng = SimRng::seed_from_u64(2);
                black_box(
                    CbrMixBuilder::new(4, tb, RoundConfig::default())
                        .target_load(load)
                        .build(&mut rng),
                );
            },
            samples,
            target,
        );
        println!("{}", report_line(&format!("cbr/{load}"), &m));
        let m = bench_with(
            || {
                let mut rng = SimRng::seed_from_u64(3);
                black_box(
                    VbrMixBuilder::new(4, tb, RoundConfig::default())
                        .target_load(load)
                        .gops(1)
                        .build(&mut rng),
                );
            },
            samples,
            target,
        );
        println!("{}", report_line(&format!("vbr/{load}"), &m));
    }
}

fn bench_source_emission(samples: usize, target: u128) {
    println!("== source_emission ==");
    let tb = TimeBase::default();
    let mut rng = SimRng::seed_from_u64(4);
    let trace = MpegTrace::generate(&standard_sequences()[4], 8, &tb, &mut rng);
    // Each iteration rebuilds a source and drains up to 512 flits; the
    // setup cost is part of the measured loop (dominated by emission).
    let m = bench_with(
        || {
            let mut src = VbrSource::new(
                ConnectionId(0),
                trace.clone(),
                InjectionModel::SmoothRate,
                RouterCycle(0),
                &tb,
            );
            let mut n = 0u32;
            while src.peek_next().is_some() && n < 512 {
                black_box(src.emit());
                n += 1;
            }
            black_box(n);
        },
        samples,
        target,
    );
    println!("{}", report_line("vbr_emit_frame_512", &m));
}

fn main() {
    let (samples, target) = if std::env::args().any(|a| a == "--quick") {
        (3, 2_000_000)
    } else {
        (5, 20_000_000)
    };
    bench_trace_generation(samples, target);
    bench_workload_build(samples, target);
    bench_source_emission(samples, target);
}
