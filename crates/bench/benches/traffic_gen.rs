//! Criterion kernels: traffic generation.
//!
//! Trace synthesis and workload construction run once per experiment
//! point; source emission runs on the hot path of every cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmr_sim::rng::SimRng;
use mmr_sim::time::{RouterCycle, TimeBase};
use mmr_traffic::admission::RoundConfig;
use mmr_traffic::connection::ConnectionId;
use mmr_traffic::injection::InjectionModel;
use mmr_traffic::mpeg::{standard_sequences, MpegTrace};
use mmr_traffic::source::TrafficSource;
use mmr_traffic::vbr::VbrSource;
use mmr_traffic::workload::{CbrMixBuilder, VbrMixBuilder};
use std::hint::black_box;

fn bench_trace_generation(c: &mut Criterion) {
    let params = standard_sequences();
    let tb = TimeBase::default();
    c.bench_function("mpeg_trace_4gops", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| black_box(MpegTrace::generate(&params[3], 4, &tb, &mut rng)))
    });
}

fn bench_workload_build(c: &mut Criterion) {
    let tb = TimeBase::default();
    let mut group = c.benchmark_group("workload_build");
    for load in [0.5f64, 0.9] {
        group.bench_with_input(BenchmarkId::new("cbr", format!("{load}")), &load, |b, &l| {
            b.iter(|| {
                let mut rng = SimRng::seed_from_u64(2);
                black_box(
                    CbrMixBuilder::new(4, tb, RoundConfig::default())
                        .target_load(l)
                        .build(&mut rng),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("vbr", format!("{load}")), &load, |b, &l| {
            b.iter(|| {
                let mut rng = SimRng::seed_from_u64(3);
                black_box(
                    VbrMixBuilder::new(4, tb, RoundConfig::default())
                        .target_load(l)
                        .gops(1)
                        .build(&mut rng),
                )
            })
        });
    }
    group.finish();
}

fn bench_source_emission(c: &mut Criterion) {
    let tb = TimeBase::default();
    let mut rng = SimRng::seed_from_u64(4);
    let trace = MpegTrace::generate(&standard_sequences()[4], 8, &tb, &mut rng);
    c.bench_function("vbr_emit_frame", |b| {
        b.iter_batched(
            || {
                VbrSource::new(
                    ConnectionId(0),
                    trace.clone(),
                    InjectionModel::SmoothRate,
                    RouterCycle(0),
                    &tb,
                )
            },
            |mut src| {
                let mut n = 0u32;
                while src.peek_next().is_some() && n < 512 {
                    black_box(src.emit());
                    n += 1;
                }
                n
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_trace_generation, bench_workload_build, bench_source_emission);
criterion_main!(benches);
