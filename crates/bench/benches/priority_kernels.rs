//! Kernel benchmarks: priority-function evaluation and candidate
//! selection.
//!
//! Link scheduling evaluates a priority per occupied VC per flit cycle;
//! these kernels measure the software cost of each function and of the
//! top-k selection over realistic VC counts.  Run with
//! `cargo bench -p mmr-bench --bench priority_kernels` (pass `--quick`
//! after `--` for a fast smoke pass).

use mmr_arbiter::candidate::CandidateSet;
use mmr_arbiter::priority::PriorityKind;
use mmr_bench::harness::{bench_with, report_line};
use mmr_router::link_scheduler::{LinkScheduler, VcQosInfo};
use mmr_router::vcmem::VcMemory;
use mmr_sim::rng::SimRng;
use mmr_sim::time::RouterCycle;
use mmr_traffic::connection::ConnectionId;
use mmr_traffic::flit::Flit;
use std::hint::black_box;

fn sampling() -> (usize, u128) {
    if std::env::args().any(|a| a == "--quick") {
        (3, 2_000_000)
    } else {
        (5, 20_000_000)
    }
}

fn bench_priority_functions(samples: usize, target: u128) {
    println!("== priority_eval ==");
    let inputs: Vec<(u64, f64, u64)> = (0..64)
        .map(|i| (1 + i * 11 % 727, 1443.0 + i as f64, i * i * 37))
        .collect();
    for kind in PriorityKind::all() {
        let f = kind.instantiate();
        let m = bench_with(
            || {
                let mut acc = 0.0;
                for &(slots, iat, waited) in &inputs {
                    acc += f
                        .priority(black_box(slots), black_box(iat), black_box(waited))
                        .0;
                }
                black_box(acc);
            },
            samples,
            target,
        );
        println!("{}", report_line(kind.label(), &m));
    }
}

fn bench_candidate_selection(samples: usize, target: u128) {
    println!("== link_select_topk ==");
    for vcs in [16usize, 64, 256] {
        let mut mem = VcMemory::new(vcs, 4, 4);
        let mut rng = SimRng::seed_from_u64(5);
        let qos: Vec<VcQosInfo> = (0..vcs)
            .map(|i| VcQosInfo {
                output: i % 4,
                reserved_slots: 1 + (i as u64 * 31) % 727,
                iat_rc: 1443.0,
            })
            .collect();
        // ~60% of VCs occupied, random entry times.
        for vc in 0..vcs {
            if rng.uniform() < 0.6 {
                mem.push(
                    vc,
                    Flit::cbr(ConnectionId(vc as u32), 0, RouterCycle(0)),
                    RouterCycle(rng.below(1_000_000)),
                );
            }
        }
        let mut ls = LinkScheduler::new(0, (0..vcs).collect());
        let siabp = PriorityKind::Siabp.instantiate();
        let mut cs = CandidateSet::new(4, 4);
        let m = bench_with(
            || {
                cs.clear();
                black_box(ls.select(&mem, &qos, siabp.as_ref(), RouterCycle(2_000_000), &mut cs));
            },
            samples,
            target,
        );
        println!("{}", report_line(&format!("{vcs} VCs"), &m));
    }
}

fn main() {
    let (samples, target) = sampling();
    bench_priority_functions(samples, target);
    bench_candidate_selection(samples, target);
}
