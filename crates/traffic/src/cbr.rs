//! Constant-bit-rate sources.
//!
//! A CBR connection of bandwidth `b` emits one flit every
//! `flit_bits / b` seconds.  The emission clock is kept in `f64` router
//! cycles so non-integer inter-arrival times (e.g. the 1.54 Mbps class)
//! accumulate without drift, then rounded per emission.

use crate::connection::ConnectionId;
use crate::flit::Flit;
use crate::source::TrafficSource;
use mmr_sim::time::{RouterCycle, TimeBase};
use mmr_sim::units::Bandwidth;

/// An infinite CBR flit source.
#[derive(Debug, Clone)]
pub struct CbrSource {
    connection: ConnectionId,
    iat_rc: f64,
    next_time: f64,
    seq: u64,
}

impl CbrSource {
    /// Create a source for `connection` at `bandwidth`, with the first flit
    /// at `phase` router cycles (connections are randomly phase-aligned so
    /// they do not emit in lock-step).
    pub fn new(
        connection: ConnectionId,
        bandwidth: Bandwidth,
        phase: RouterCycle,
        tb: &TimeBase,
    ) -> Self {
        let iat_rc = tb.flit_iat_router_cycles(bandwidth.as_bps());
        CbrSource {
            connection,
            iat_rc,
            next_time: phase.0 as f64,
            seq: 0,
        }
    }

    /// The source's inter-arrival time in router cycles.
    pub fn iat_router_cycles(&self) -> f64 {
        self.iat_rc
    }
}

impl TrafficSource for CbrSource {
    fn connection(&self) -> ConnectionId {
        self.connection
    }

    fn peek_next(&self) -> Option<RouterCycle> {
        Some(RouterCycle(self.next_time.round() as u64))
    }

    fn emit(&mut self) -> Flit {
        let t = RouterCycle(self.next_time.round() as u64);
        let flit = Flit::cbr(self.connection, self.seq, t);
        self.seq += 1;
        self.next_time += self.iat_rc;
        flit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_rate_matches_bandwidth() {
        let tb = TimeBase::default();
        let mut s = CbrSource::new(ConnectionId(0), Bandwidth::mbps(55.0), RouterCycle(0), &tb);
        // Drain one simulated second and count flits: expect b / flit_bits.
        let one_sec = tb.secs_to_router_cycles(1.0);
        let mut out = Vec::new();
        s.drain_until(one_sec, &mut out);
        let expected = 55e6 / 1024.0;
        let got = out.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.001,
            "expected ~{expected} flits, got {got}"
        );
    }

    #[test]
    fn no_drift_with_fractional_iat() {
        let tb = TimeBase::default();
        // 1.54 Mbps has a non-integer IAT in router cycles.
        let mut s = CbrSource::new(ConnectionId(1), Bandwidth::mbps(1.54), RouterCycle(0), &tb);
        let mut last = 0u64;
        for i in 1..=10_000 {
            let f = s.emit();
            assert!(f.generated_at.0 >= last);
            last = f.generated_at.0;
            assert_eq!(f.seq, (i - 1) as u64);
        }
        // After n emissions the clock should sit at n * iat (no drift).
        let expected = 10_000.0 * s.iat_router_cycles();
        assert!((last as f64 - (expected - s.iat_router_cycles())).abs() < 1.0);
    }

    #[test]
    fn phase_offsets_first_emission() {
        let tb = TimeBase::default();
        let s = CbrSource::new(
            ConnectionId(2),
            Bandwidth::kbps(64.0),
            RouterCycle(12345),
            &tb,
        );
        assert_eq!(s.peek_next(), Some(RouterCycle(12345)));
    }

    #[test]
    fn flits_tagged_with_connection() {
        let tb = TimeBase::default();
        let mut s = CbrSource::new(ConnectionId(9), Bandwidth::mbps(10.0), RouterCycle(0), &tb);
        assert_eq!(s.emit().connection, ConnectionId(9));
        assert_eq!(s.connection(), ConnectionId(9));
    }
}
