//! Multi-hop connection paths across a fabric of routers.
//!
//! The fabric extension (paper §6: "this study must be further extended
//! to a network composed of several MMRs") places admitted connections
//! onto a topology of routers.  This module holds the *pure routing
//! math* — deterministic, hardware-free, unit-testable on its own:
//!
//! * [`HostMap`] — the mapping between flat *host link* ids (what the
//!   admission layer sees as "input/output ports" of the fabric) and
//!   `(node, local host port)` pairs.
//! * [`mesh_route`] — dimension-order (X-then-Y) routes on 2D meshes
//!   and tori; tori take the shorter wrap direction per axis.
//! * [`ring_route`] — shortest-way routes on a ring (a 1D torus).
//!
//! Dimension-order routing is deterministic and deadlock-free on
//! meshes, which keeps the reserved-path model of Pipelined Circuit
//! Switching intact: the path a connection's routing probe reserves at
//! setup is a pure function of its endpoints.

/// One hop direction on a 2D grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Toward larger X.
    XPlus,
    /// Toward smaller X.
    XMinus,
    /// Toward larger Y.
    YPlus,
    /// Toward smaller Y.
    YMinus,
}

impl Dir {
    /// Stable port index of the direction (0..4) — fabrics map these to
    /// the first `degree` router ports.
    pub fn index(self) -> usize {
        match self {
            Dir::XPlus => 0,
            Dir::XMinus => 1,
            Dir::YPlus => 2,
            Dir::YMinus => 3,
        }
    }

    /// The direction a flit travelling `self` *arrives from* at the
    /// next node.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::XPlus => Dir::XMinus,
            Dir::XMinus => Dir::XPlus,
            Dir::YPlus => Dir::YMinus,
            Dir::YMinus => Dir::YPlus,
        }
    }
}

/// Flat host-link id ↔ `(node, host port slot)` mapping.
///
/// A fabric with `nodes` routers and `host_ports` host links per router
/// exposes `nodes * host_ports` injection (and ejection) links to the
/// admission layer; connection specs address them as plain port
/// numbers, exactly like the single-router workload builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostMap {
    /// Router count.
    pub nodes: usize,
    /// Host links per router.
    pub host_ports: usize,
}

impl HostMap {
    /// Total host links on one side (injection or ejection).
    pub fn host_links(&self) -> usize {
        self.nodes * self.host_ports
    }

    /// Router owning a host link.
    pub fn node_of(&self, link: usize) -> usize {
        link / self.host_ports
    }

    /// Host-port slot (0..host_ports) of a host link at its router.
    pub fn slot_of(&self, link: usize) -> usize {
        link % self.host_ports
    }
}

/// Steps along one axis: direction flag (`true` = plus) and hop count.
fn axis_steps(len: usize, from: usize, to: usize, wrap: bool) -> (bool, usize) {
    if !wrap {
        if to >= from {
            (true, to - from)
        } else {
            (false, from - to)
        }
    } else {
        let fwd = (to + len - from) % len;
        let bwd = (from + len - to) % len;
        // Tie breaks toward plus so routes stay a pure function of the
        // endpoints.
        if fwd <= bwd {
            (true, fwd)
        } else {
            (false, bwd)
        }
    }
}

/// Dimension-order route on an `x` by `y` grid from node `src` to node
/// `dst` (row-major ids: `node = gy * x + gx`).  All X hops precede all
/// Y hops; `wrap` enables torus wrap-around links with shorter-way
/// selection per axis.  An empty route means `src == dst`.
pub fn mesh_route(x: usize, y: usize, src: usize, dst: usize, wrap: bool) -> Vec<Dir> {
    assert!(x >= 1 && y >= 1, "degenerate grid");
    assert!(src < x * y && dst < x * y, "node id out of range");
    let (sx, sy) = (src % x, src / x);
    let (dx, dy) = (dst % x, dst / x);
    let (xplus, xn) = axis_steps(x, sx, dx, wrap);
    let (yplus, yn) = axis_steps(y, sy, dy, wrap);
    let mut route = Vec::with_capacity(xn + yn);
    for _ in 0..xn {
        route.push(if xplus { Dir::XPlus } else { Dir::XMinus });
    }
    for _ in 0..yn {
        route.push(if yplus { Dir::YPlus } else { Dir::YMinus });
    }
    route
}

/// Shortest-way route on an `n`-node ring — a 1D torus, so `XPlus` is
/// the forward (increasing id) direction and ties break forward.
pub fn ring_route(n: usize, src: usize, dst: usize) -> Vec<Dir> {
    mesh_route(n, 1, src, dst, true)
}

/// Walk a route from `src`, yielding each node visited after a hop.
/// Used by the fabric to materialize per-hop state and by tests to
/// check routes land where they claim.
pub fn walk(x: usize, y: usize, src: usize, route: &[Dir]) -> Vec<usize> {
    let mut out = Vec::with_capacity(route.len());
    let (mut gx, mut gy) = (src % x, src / x);
    for d in route {
        match d {
            Dir::XPlus => gx = (gx + 1) % x,
            Dir::XMinus => gx = (gx + x - 1) % x,
            Dir::YPlus => gy = (gy + 1) % y,
            Dir::YMinus => gy = (gy + y - 1) % y,
        }
        out.push(gy * x + gx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_are_dimension_ordered() {
        let r = mesh_route(4, 4, 0, 15, false);
        assert_eq!(r.len(), 6);
        let first_y = r.iter().position(|d| matches!(d, Dir::YPlus | Dir::YMinus));
        if let Some(i) = first_y {
            assert!(
                r[i..].iter().all(|d| matches!(d, Dir::YPlus | Dir::YMinus)),
                "X hop after a Y hop in {r:?}"
            );
        }
    }

    #[test]
    fn mesh_routes_terminate_at_destination() {
        for src in 0..16 {
            for dst in 0..16 {
                let r = mesh_route(4, 4, src, dst, false);
                let end = walk(4, 4, src, &r).last().copied().unwrap_or(src);
                assert_eq!(end, dst, "route {src}->{dst}");
                assert_eq!(r.is_empty(), src == dst);
            }
        }
    }

    #[test]
    fn torus_takes_the_shorter_wrap() {
        // 0 -> 3 on a 4-wide torus row: one XMinus hop, not three XPlus.
        let r = mesh_route(4, 1, 0, 3, true);
        assert_eq!(r, vec![Dir::XMinus]);
        // Tie (distance 2 both ways) breaks toward plus.
        let r = mesh_route(4, 1, 0, 2, true);
        assert_eq!(r, vec![Dir::XPlus, Dir::XPlus]);
        for src in 0..12 {
            for dst in 0..12 {
                let r = mesh_route(4, 3, src, dst, true);
                let end = walk(4, 3, src, &r).last().copied().unwrap_or(src);
                assert_eq!(end, dst, "torus route {src}->{dst}");
            }
        }
    }

    #[test]
    fn ring_routes_are_shortest() {
        for src in 0..5 {
            for dst in 0..5 {
                let r = ring_route(5, src, dst);
                assert!(r.len() <= 2, "ring-of-5 route longer than floor(5/2)");
                let end = walk(5, 1, src, &r).last().copied().unwrap_or(src);
                assert_eq!(end, dst);
            }
        }
    }

    #[test]
    fn host_map_round_trips() {
        let hm = HostMap {
            nodes: 6,
            host_ports: 2,
        };
        assert_eq!(hm.host_links(), 12);
        for link in 0..hm.host_links() {
            let (n, s) = (hm.node_of(link), hm.slot_of(link));
            assert!(n < 6 && s < 2);
            assert_eq!(n * 2 + s, link);
        }
    }
}
