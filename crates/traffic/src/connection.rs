//! Connection descriptors.
//!
//! The MMR is connection-oriented for multimedia traffic: a routing probe
//! reserves link bandwidth and buffer space end to end (Pipelined Circuit
//! Switching), so by the time flits flow, each connection has a fixed
//! input port, output port, and a bandwidth reservation expressed in
//! flit-cycle slots per round.  Those reservations are exactly what the
//! SIABP priority function biases on.

use mmr_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Dense connection identifier, unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnectionId(pub u32);

impl ConnectionId {
    /// Index into per-connection arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Reporting class of a connection; Fig. 5 plots each CBR class separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// 64 Kbps-style low-bandwidth CBR (audio).
    CbrLow,
    /// 1.54 Mbps-style medium CBR (T1 video conferencing).
    CbrMedium,
    /// 55 Mbps-style high CBR (uncompressed-quality video).
    CbrHigh,
    /// MPEG-2 VBR video.
    Vbr,
    /// Best-effort (no reservation); used by extension experiments.
    BestEffort,
}

impl TrafficClass {
    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::CbrLow => "cbr-low",
            TrafficClass::CbrMedium => "cbr-med",
            TrafficClass::CbrHigh => "cbr-high",
            TrafficClass::Vbr => "vbr",
            TrafficClass::BestEffort => "best-effort",
        }
    }
}

/// QoS requirements carried by the connection-setup probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Average (permanent) bandwidth requirement.
    pub avg: Bandwidth,
    /// Peak bandwidth; equals `avg` for CBR.
    pub peak: Bandwidth,
}

impl QosSpec {
    /// CBR spec: peak = average.
    pub fn cbr(bw: Bandwidth) -> Self {
        QosSpec { avg: bw, peak: bw }
    }

    /// VBR spec with distinct average and peak rates.
    pub fn vbr(avg: Bandwidth, peak: Bandwidth) -> Self {
        QosSpec { avg, peak }
    }
}

/// What kind of source feeds the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionKind {
    /// Constant bit rate.
    Cbr,
    /// MPEG-2 variable bit rate; the index selects the sequence parameters
    /// used to synthesize its trace.
    Vbr {
        /// Index into the sequence-parameter table.
        sequence: usize,
    },
}

/// A fully set-up connection, ready for flit transport.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionSpec {
    /// Identifier; also the VC index allocation key.
    pub id: ConnectionId,
    /// Input physical port (NIC) the connection enters on.
    pub input: usize,
    /// Output physical port it leaves on.
    pub output: usize,
    /// Reporting class.
    pub class: TrafficClass,
    /// QoS requirements.
    pub qos: QosSpec,
    /// Source kind.
    pub kind: ConnectionKind,
    /// Flit-cycle slots per round reserved to service the *average*
    /// bandwidth; this integer is the SIABP initial priority (§3.1).
    pub reserved_slots: u64,
}

impl ConnectionSpec {
    /// Inter-arrival time of this connection's flits at its average rate,
    /// in router cycles — the denominator of the IABP priority function.
    pub fn iat_router_cycles(&self, tb: &mmr_sim::time::TimeBase) -> f64 {
        tb.flit_iat_router_cycles(self.qos.avg.as_bps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_sim::time::TimeBase;

    #[test]
    fn cbr_qos_peak_equals_avg() {
        let q = QosSpec::cbr(Bandwidth::mbps(1.54));
        assert_eq!(q.avg, q.peak);
    }

    #[test]
    fn class_labels_are_distinct() {
        let labels = [
            TrafficClass::CbrLow,
            TrafficClass::CbrMedium,
            TrafficClass::CbrHigh,
            TrafficClass::Vbr,
            TrafficClass::BestEffort,
        ]
        .map(TrafficClass::label);
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn iat_tracks_average_bandwidth() {
        let spec = ConnectionSpec {
            id: ConnectionId(0),
            input: 0,
            output: 1,
            class: TrafficClass::CbrHigh,
            qos: QosSpec::cbr(Bandwidth::mbps(55.0)),
            kind: ConnectionKind::Cbr,
            reserved_slots: 727,
        };
        let tb = TimeBase::default();
        let iat = spec.iat_router_cycles(&tb);
        assert!((iat - 1443.0).abs() < 5.0);
    }
}
