//! Connection Admission Control (paper §2, "Connection Set up").
//!
//! Link and switch-port bandwidth is split into flit cycles grouped into
//! rounds; the number of flit cycles per round is an integer multiple of
//! the number of virtual channels per link.  A connection reserves an
//! integer number of flit-cycle *slots* per round:
//!
//! * a **CBR** connection is accepted iff the slots allocated on each link
//!   it uses do not exceed the round length;
//! * a **VBR** connection is accepted iff (a) the *average* (permanent)
//!   slots on the link fit in a round, and (b) the total *peak* slots fit
//!   in `round length × concurrency factor`.
//!
//! The concurrency factor trades QoS strength against the number of VBR
//! connections serviced concurrently.

use mmr_sim::time::TimeBase;
use mmr_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Round (bandwidth frame) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundConfig {
    /// Flit cycles (slots) per round.
    pub cycles_per_round: u64,
    /// VBR concurrency factor (≥ 1.0).
    pub concurrency_factor: f64,
}

impl Default for RoundConfig {
    fn default() -> Self {
        // 16384 slots on a 1.24 Gbps link gives ~75.7 Kbps slot
        // granularity, fine enough to carry a 64 Kbps connection in one
        // slot without gross over-reservation.
        RoundConfig {
            cycles_per_round: 16_384,
            concurrency_factor: 2.0,
        }
    }
}

impl RoundConfig {
    /// Bandwidth of one slot on a link described by `tb`.
    pub fn slot_bandwidth(&self, tb: &TimeBase) -> Bandwidth {
        Bandwidth::bps(tb.link_bits_per_sec / self.cycles_per_round as f64)
    }

    /// Slots needed to carry `bw` (ceiling, minimum 1 for positive rates).
    pub fn slots_for(&self, bw: Bandwidth, tb: &TimeBase) -> u64 {
        if bw.as_bps() <= 0.0 {
            return 0;
        }
        let slot = self.slot_bandwidth(tb).as_bps();
        (bw.as_bps() / slot).ceil() as u64
    }

    /// Check the "integer multiple of the number of virtual channels"
    /// structural constraint from §2.
    pub fn is_multiple_of(&self, virtual_channels: u64) -> bool {
        virtual_channels > 0 && self.cycles_per_round.is_multiple_of(virtual_channels)
    }
}

/// Reason a connection was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// Average-bandwidth slots exceed the round on the input link.
    InputAverageExceeded,
    /// Average-bandwidth slots exceed the round on the output link.
    OutputAverageExceeded,
    /// Peak slots exceed round × concurrency factor on the input link.
    InputPeakExceeded,
    /// Peak slots exceed round × concurrency factor on the output link.
    OutputPeakExceeded,
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            AdmissionError::InputAverageExceeded => "input link average bandwidth exhausted",
            AdmissionError::OutputAverageExceeded => "output link average bandwidth exhausted",
            AdmissionError::InputPeakExceeded => "input link peak bandwidth exhausted",
            AdmissionError::OutputPeakExceeded => "output link peak bandwidth exhausted",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AdmissionError {}

/// Per-link slot ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LinkLedger {
    avg_slots: u64,
    peak_slots: u64,
}

/// Admission controller for one router: a ledger per input link and per
/// output link.
///
/// ```
/// use mmr_sim::{time::TimeBase, units::Bandwidth};
/// use mmr_traffic::admission::{AdmissionControl, RoundConfig};
///
/// let mut cac = AdmissionControl::new(4, RoundConfig::default(), TimeBase::default());
/// let video = Bandwidth::mbps(55.0);
/// let slots = cac.admit(0, 2, video, video).expect("plenty of room");
/// assert_eq!(slots, 727); // slots per round; also the SIABP initial priority
/// assert!(cac.input_load(0) > 0.04);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionControl {
    round: RoundConfig,
    tb: TimeBase,
    inputs: Vec<LinkLedger>,
    outputs: Vec<LinkLedger>,
}

impl AdmissionControl {
    /// Controller for a router with `ports` input and output links.
    pub fn new(ports: usize, round: RoundConfig, tb: TimeBase) -> Self {
        AdmissionControl {
            round,
            tb,
            inputs: vec![LinkLedger::default(); ports],
            outputs: vec![LinkLedger::default(); ports],
        }
    }

    /// The round configuration in force.
    pub fn round(&self) -> RoundConfig {
        self.round
    }

    /// Slots a connection of the given average bandwidth reserves —
    /// exposed because this integer is also the SIABP initial priority.
    pub fn reserved_slots(&self, avg: Bandwidth) -> u64 {
        self.round.slots_for(avg, &self.tb)
    }

    fn check_link(
        ledger: &LinkLedger,
        avg_req: u64,
        peak_req: u64,
        round: &RoundConfig,
        input: bool,
    ) -> Result<(), AdmissionError> {
        if ledger.avg_slots + avg_req > round.cycles_per_round {
            return Err(if input {
                AdmissionError::InputAverageExceeded
            } else {
                AdmissionError::OutputAverageExceeded
            });
        }
        let peak_cap = (round.cycles_per_round as f64 * round.concurrency_factor) as u64;
        if ledger.peak_slots + peak_req > peak_cap {
            return Err(if input {
                AdmissionError::InputPeakExceeded
            } else {
                AdmissionError::OutputPeakExceeded
            });
        }
        Ok(())
    }

    /// Try to admit a connection with the given QoS on `(input, output)`;
    /// on success the slots are reserved and the reserved average-slot
    /// count is returned.
    pub fn admit(
        &mut self,
        input: usize,
        output: usize,
        avg: Bandwidth,
        peak: Bandwidth,
    ) -> Result<u64, AdmissionError> {
        let avg_req = self.round.slots_for(avg, &self.tb);
        let peak_req = self.round.slots_for(peak, &self.tb);
        Self::check_link(&self.inputs[input], avg_req, peak_req, &self.round, true)?;
        Self::check_link(&self.outputs[output], avg_req, peak_req, &self.round, false)?;
        self.inputs[input].avg_slots += avg_req;
        self.inputs[input].peak_slots += peak_req;
        self.outputs[output].avg_slots += avg_req;
        self.outputs[output].peak_slots += peak_req;
        Ok(avg_req)
    }

    /// Would-admit check without reserving.
    pub fn can_admit(&self, input: usize, output: usize, avg: Bandwidth, peak: Bandwidth) -> bool {
        let avg_req = self.round.slots_for(avg, &self.tb);
        let peak_req = self.round.slots_for(peak, &self.tb);
        Self::check_link(&self.inputs[input], avg_req, peak_req, &self.round, true).is_ok()
            && Self::check_link(&self.outputs[output], avg_req, peak_req, &self.round, false)
                .is_ok()
    }

    /// Fraction of the round already reserved (average slots) on an input
    /// link.
    pub fn input_load(&self, input: usize) -> f64 {
        self.inputs[input].avg_slots as f64 / self.round.cycles_per_round as f64
    }

    /// Fraction of the round already reserved (average slots) on an output
    /// link.
    pub fn output_load(&self, output: usize) -> f64 {
        self.outputs[output].avg_slots as f64 / self.round.cycles_per_round as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cac() -> AdmissionControl {
        AdmissionControl::new(4, RoundConfig::default(), TimeBase::default())
    }

    #[test]
    fn slot_granularity() {
        let round = RoundConfig::default();
        let tb = TimeBase::default();
        let slot = round.slot_bandwidth(&tb);
        assert!((slot.as_bps() - 75683.6).abs() < 1.0, "{}", slot.as_bps());
        assert_eq!(round.slots_for(Bandwidth::kbps(64.0), &tb), 1);
        assert_eq!(round.slots_for(Bandwidth::mbps(1.54), &tb), 21);
        assert_eq!(round.slots_for(Bandwidth::mbps(55.0), &tb), 727);
        assert_eq!(round.slots_for(Bandwidth::bps(0.0), &tb), 0);
    }

    #[test]
    fn round_multiple_check() {
        let round = RoundConfig::default();
        assert!(round.is_multiple_of(64));
        assert!(round.is_multiple_of(128));
        assert!(!round.is_multiple_of(100));
        assert!(!round.is_multiple_of(0));
    }

    #[test]
    fn cbr_admits_up_to_full_round() {
        let mut c = cac();
        // 55 Mbps = 727 slots; 16384/727 = 22 connections fit on one link pair.
        let bw = Bandwidth::mbps(55.0);
        let mut admitted = 0;
        while c.admit(0, 0, bw, bw).is_ok() {
            admitted += 1;
        }
        assert_eq!(admitted, 22);
        assert!(c.input_load(0) > 0.97);
        // A tiny connection still fits in the remainder.
        assert!(c
            .admit(0, 0, Bandwidth::kbps(64.0), Bandwidth::kbps(64.0))
            .is_ok());
    }

    #[test]
    fn output_link_is_policed_independently() {
        let mut c = cac();
        let bw = Bandwidth::mbps(55.0);
        // Fill output 2 from input 0.
        for _ in 0..22 {
            c.admit(0, 2, bw, bw).unwrap();
        }
        // Input 0 is now also full; use a different input to isolate the
        // output check.
        let err = c.admit(1, 2, bw, bw).unwrap_err();
        assert_eq!(err, AdmissionError::OutputAverageExceeded);
        // Same input toward a different output succeeds.
        assert!(c.admit(1, 3, bw, bw).is_ok());
    }

    #[test]
    fn vbr_peak_test_uses_concurrency_factor() {
        let round = RoundConfig {
            cycles_per_round: 1000,
            concurrency_factor: 2.0,
        };
        let tb = TimeBase::default();
        let mut c = AdmissionControl::new(2, round, tb);
        let slot = round.slot_bandwidth(&tb).as_bps();
        // avg 100 slots, peak 600 slots per connection.
        let avg = Bandwidth::bps(100.0 * slot);
        let peak = Bandwidth::bps(600.0 * slot);
        assert!(c.admit(0, 0, avg, peak).is_ok());
        assert!(c.admit(0, 0, avg, peak).is_ok());
        assert!(c.admit(0, 0, avg, peak).is_ok()); // peak 1800 <= 2000
        let err = c.admit(0, 0, avg, peak).unwrap_err(); // peak 2400 > 2000
        assert_eq!(err, AdmissionError::InputPeakExceeded);
        // With a larger concurrency factor the same connection fits.
        let round2 = RoundConfig {
            cycles_per_round: 1000,
            concurrency_factor: 4.0,
        };
        let mut c2 = AdmissionControl::new(2, round2, tb);
        for _ in 0..6 {
            c2.admit(0, 0, avg, peak).unwrap();
        }
    }

    #[test]
    fn vbr_peak_boundary_exactly_at_capacity_admits_one_slot_over_rejects() {
        // The peak ledger's capacity is round × concurrency factor =
        // 1000 × 2.0 = 2000 slots.  Slot-multiple bandwidths make the
        // arithmetic exact: landing *on* the cap admits, one slot past
        // it rejects.
        let round = RoundConfig {
            cycles_per_round: 1000,
            concurrency_factor: 2.0,
        };
        let tb = TimeBase::default();
        let slot = round.slot_bandwidth(&tb).as_bps();
        let avg = Bandwidth::bps(10.0 * slot);

        // Exactly at capacity: 1999 + 1 = 2000 == cap.
        let mut c = AdmissionControl::new(2, round, tb);
        c.admit(0, 0, avg, Bandwidth::bps(1999.0 * slot)).unwrap();
        assert!(
            c.admit(0, 0, avg, Bandwidth::bps(1.0 * slot)).is_ok(),
            "peak exactly at round x concurrency must admit"
        );

        // One slot over: 1999 + 2 = 2001 > cap.
        let mut c = AdmissionControl::new(2, round, tb);
        c.admit(0, 0, avg, Bandwidth::bps(1999.0 * slot)).unwrap();
        assert_eq!(
            c.admit(0, 0, avg, Bandwidth::bps(2.0 * slot)).unwrap_err(),
            AdmissionError::InputPeakExceeded,
            "one slot past the peak cap must reject"
        );
        // The failed admit must not have dirtied any ledger: the
        // one-slot connection still fits afterwards.
        assert!(c.admit(0, 0, avg, Bandwidth::bps(1.0 * slot)).is_ok());

        // A fractional concurrency factor truncates: 1000 × 1.5 = 1500.
        let round = RoundConfig {
            cycles_per_round: 1000,
            concurrency_factor: 1.5,
        };
        let mut c = AdmissionControl::new(2, round, tb);
        assert!(c.admit(0, 0, avg, Bandwidth::bps(1500.0 * slot)).is_ok());
        let mut c = AdmissionControl::new(2, round, tb);
        assert_eq!(
            c.admit(0, 0, avg, Bandwidth::bps(1501.0 * slot))
                .unwrap_err(),
            AdmissionError::InputPeakExceeded
        );
    }

    #[test]
    fn mixed_class_slot_exhaustion_fills_the_round_exactly() {
        // The paper's CBR mix on one link pair: 22 × 55 Mbps (727 slots
        // each = 15,994), 18 × 1.54 Mbps (21 each = 378), and the
        // remaining 12 slots taken by 64 Kbps connections one slot at a
        // time — landing on precisely 16,384 reserved slots.
        let mut c = cac();
        for _ in 0..22 {
            c.admit(0, 0, Bandwidth::mbps(55.0), Bandwidth::mbps(55.0))
                .unwrap();
        }
        for _ in 0..18 {
            c.admit(0, 0, Bandwidth::mbps(1.54), Bandwidth::mbps(1.54))
                .unwrap();
        }
        let voice = Bandwidth::kbps(64.0);
        for _ in 0..12 {
            c.admit(0, 0, voice, voice).unwrap();
        }
        assert_eq!(c.input_load(0), 1.0, "round must be exactly full");
        assert_eq!(c.output_load(0), 1.0);
        // Every class is now refused, smallest first — and the medium
        // class reports the same exhaustion, not a peak error.
        assert_eq!(
            c.admit(0, 0, voice, voice).unwrap_err(),
            AdmissionError::InputAverageExceeded
        );
        assert_eq!(
            c.admit(0, 0, Bandwidth::mbps(1.54), Bandwidth::mbps(1.54))
                .unwrap_err(),
            AdmissionError::InputAverageExceeded
        );
        assert!(!c.can_admit(0, 0, voice, voice));
        // Other links are untouched by the full one.
        assert_eq!(c.input_load(1), 0.0);
        assert!(c.can_admit(1, 1, voice, voice));
    }

    #[test]
    fn can_admit_does_not_reserve() {
        let mut c = cac();
        let bw = Bandwidth::mbps(500.0);
        assert!(c.can_admit(0, 1, bw, bw));
        assert!(c.can_admit(0, 1, bw, bw));
        assert_eq!(c.input_load(0), 0.0);
        c.admit(0, 1, bw, bw).unwrap();
        assert!(c.input_load(0) > 0.0);
    }

    #[test]
    fn reserved_slots_matches_round_math() {
        let c = cac();
        assert_eq!(c.reserved_slots(Bandwidth::mbps(55.0)), 727);
        assert_eq!(c.reserved_slots(Bandwidth::kbps(64.0)), 1);
    }

    #[test]
    fn error_display_strings() {
        let e = AdmissionError::InputPeakExceeded;
        assert!(e.to_string().contains("peak"));
    }
}
