//! Injection calendars: the traffic side of the event-horizon contract.
//!
//! An [`InjectionCalendar`] caches, per connection, the router-cycle
//! timestamp of the source's next flit (CBR period ticks, MPEG-2 frame
//! boundaries, best-effort arrivals — whatever [`TrafficSource::peek_next`]
//! reports).  The router consults the cached value instead of making a
//! virtual `peek_next` call per source per cycle, and — when every queue
//! is empty — asks the calendar for the earliest upcoming injection to
//! bound how far the engine may fast-forward.
//!
//! The calendar is built once at admission time and updated in place after
//! each drain; no per-cycle or per-skip allocation.

use crate::source::TrafficSource;
use mmr_sim::time::RouterCycle;

/// Sentinel for "this source will never inject again".
pub const NEVER: u64 = u64::MAX;

/// Per-connection cache of the next injection time (router cycles).
#[derive(Debug, Clone)]
pub struct InjectionCalendar {
    next_rc: Vec<u64>,
    /// Lower bound on `min(next_rc)`, refreshed by [`Self::set_min_lb`]
    /// whenever the owner scans the full calendar.  Sound because source
    /// timestamps are monotone: [`Self::update`] can only move an entry
    /// later, so a previously exact minimum stays a valid lower bound.
    min_lb: u64,
}

impl InjectionCalendar {
    /// Build from one `peek_next` value per source, in connection order.
    pub fn from_peeks<I>(peeks: I) -> Self
    where
        I: IntoIterator<Item = Option<RouterCycle>>,
    {
        let next_rc: Vec<u64> = peeks
            .into_iter()
            .map(|p| p.map_or(NEVER, |t| t.0))
            .collect();
        let min_lb = next_rc.iter().copied().min().unwrap_or(NEVER);
        InjectionCalendar { next_rc, min_lb }
    }

    /// Build directly from a slice of boxed sources.
    pub fn from_sources(sources: &[Box<dyn TrafficSource + Send>]) -> Self {
        Self::from_peeks(sources.iter().map(|s| s.peek_next()))
    }

    /// Number of connections tracked.
    pub fn len(&self) -> usize {
        self.next_rc.len()
    }

    /// True when no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.next_rc.is_empty()
    }

    /// Cached next-injection router cycle for connection `i` ([`NEVER`]
    /// when exhausted).
    #[inline]
    pub fn next_rc(&self, i: usize) -> u64 {
        self.next_rc[i]
    }

    /// Refresh connection `i` after its source was drained.
    #[inline]
    pub fn update(&mut self, i: usize, peek: Option<RouterCycle>) {
        let rc = peek.map_or(NEVER, |t| t.0);
        debug_assert!(
            rc >= self.next_rc[i],
            "source {i} moved its next injection earlier ({rc} < {})",
            self.next_rc[i]
        );
        self.next_rc[i] = rc;
    }

    /// Earliest upcoming injection across all connections ([`NEVER`] when
    /// every source is exhausted).  O(connections) — meant for tests and
    /// cold paths; the hot paths use [`Self::min_lower_bound`].
    pub fn min_next_rc(&self) -> u64 {
        self.next_rc.iter().copied().min().unwrap_or(NEVER)
    }

    /// O(1) lower bound on [`Self::min_next_rc`].  `min_lb > now` proves
    /// no injection is due, so a per-cycle scan can be skipped outright;
    /// as a fast-forward horizon it may only be *too early* — exactly
    /// what the event-horizon contract permits (DESIGN.md §12).
    #[inline]
    pub fn min_lower_bound(&self) -> u64 {
        self.min_lb
    }

    /// Install the exact minimum recomputed during a full scan.
    #[inline]
    pub fn set_min_lb(&mut self, min: u64) {
        debug_assert!(min >= self.min_lb, "minimum moved backwards");
        self.min_lb = min;
    }

    /// True once every source is exhausted.
    pub fn all_exhausted(&self) -> bool {
        self.next_rc.iter().all(|&t| t == NEVER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peeks_and_updates() {
        let mut cal = InjectionCalendar::from_peeks(vec![
            Some(RouterCycle(640)),
            None,
            Some(RouterCycle(128)),
        ]);
        assert_eq!(cal.len(), 3);
        assert_eq!(cal.next_rc(0), 640);
        assert_eq!(cal.next_rc(1), NEVER);
        assert_eq!(cal.min_next_rc(), 128);
        assert!(!cal.all_exhausted());

        cal.update(2, Some(RouterCycle(700)));
        assert_eq!(cal.min_next_rc(), 640);
        // The O(1) bound lags behind until the owner refreshes it, but
        // never overshoots the true minimum.
        assert_eq!(cal.min_lower_bound(), 128);
        cal.set_min_lb(cal.min_next_rc());
        assert_eq!(cal.min_lower_bound(), 640);
        cal.update(0, None);
        cal.update(2, None);
        assert!(cal.all_exhausted());
        assert_eq!(cal.min_next_rc(), NEVER);
    }

    #[test]
    fn lower_bound_starts_exact() {
        let cal = InjectionCalendar::from_peeks(vec![Some(RouterCycle(9)), None]);
        assert_eq!(cal.min_lower_bound(), 9);
        let empty = InjectionCalendar::from_peeks(Vec::new());
        assert_eq!(empty.min_lower_bound(), NEVER);
    }

    #[test]
    fn empty_calendar_is_exhausted() {
        let cal = InjectionCalendar::from_peeks(Vec::new());
        assert!(cal.is_empty());
        assert!(cal.all_exhausted());
        assert_eq!(cal.min_next_rc(), NEVER);
    }
}
