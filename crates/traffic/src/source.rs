//! The traffic-source abstraction.
//!
//! A source is a pull-based generator: it exposes the timestamp of its next
//! flit, and the NIC drains every flit whose generation time has passed at
//! the end of each flit cycle.  Keeping sources pull-based lets the router
//! loop stay allocation-free and lets tests drive sources directly.

use crate::connection::ConnectionId;
use crate::flit::Flit;
use mmr_sim::time::RouterCycle;

/// A generator of timestamped flits for one connection.
pub trait TrafficSource {
    /// Connection this source feeds.
    fn connection(&self) -> ConnectionId;

    /// Generation time of the next flit, or `None` if the source is
    /// exhausted (finite traces).  Must be non-decreasing across calls.
    fn peek_next(&self) -> Option<RouterCycle>;

    /// Produce the next flit and advance.  Panics if exhausted.
    fn emit(&mut self) -> Flit;

    /// Total flits this source will ever produce, if finite.
    fn total_flits(&self) -> Option<u64> {
        None
    }

    /// Drain every flit generated at or before `now` into `out`; returns
    /// the number drained.  Provided for the NIC fill loop.
    fn drain_until(&mut self, now: RouterCycle, out: &mut Vec<Flit>) -> usize {
        let mut n = 0;
        while let Some(t) = self.peek_next() {
            if t > now {
                break;
            }
            out.push(self.emit());
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted source for testing the default `drain_until`.
    struct Scripted {
        times: Vec<u64>,
        pos: usize,
    }

    impl TrafficSource for Scripted {
        fn connection(&self) -> ConnectionId {
            ConnectionId(0)
        }
        fn peek_next(&self) -> Option<RouterCycle> {
            self.times.get(self.pos).map(|&t| RouterCycle(t))
        }
        fn emit(&mut self) -> Flit {
            let t = self.times[self.pos];
            self.pos += 1;
            Flit::cbr(ConnectionId(0), (self.pos - 1) as u64, RouterCycle(t))
        }
        fn total_flits(&self) -> Option<u64> {
            Some(self.times.len() as u64)
        }
    }

    #[test]
    fn drain_until_respects_timestamps() {
        let mut s = Scripted {
            times: vec![0, 10, 20, 30],
            pos: 0,
        };
        let mut out = Vec::new();
        assert_eq!(s.drain_until(RouterCycle(15), &mut out), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].generated_at, RouterCycle(10));
        assert_eq!(s.drain_until(RouterCycle(15), &mut out), 0);
        assert_eq!(s.drain_until(RouterCycle(100), &mut out), 2);
        assert_eq!(s.peek_next(), None);
    }
}
