//! The traffic-source abstraction.
//!
//! A source is a pull-based generator: it exposes the timestamp of its next
//! flit, and the NIC drains every flit whose generation time has passed at
//! the end of each flit cycle.  Keeping sources pull-based lets the router
//! loop stay allocation-free and lets tests drive sources directly.

use crate::connection::ConnectionId;
use crate::flit::Flit;
use mmr_sim::time::RouterCycle;

/// A generator of timestamped flits for one connection.
pub trait TrafficSource {
    /// Connection this source feeds.
    fn connection(&self) -> ConnectionId;

    /// Generation time of the next flit, or `None` if the source is
    /// exhausted (finite traces).  Must be non-decreasing across calls.
    fn peek_next(&self) -> Option<RouterCycle>;

    /// Produce the next flit and advance.  Panics if exhausted.
    fn emit(&mut self) -> Flit;

    /// Total flits this source will ever produce, if finite.
    fn total_flits(&self) -> Option<u64> {
        None
    }

    /// Drain every flit generated at or before `now` into `out`; returns
    /// the number drained.  Provided for the NIC fill loop.
    fn drain_until(&mut self, now: RouterCycle, out: &mut Vec<Flit>) -> usize {
        let mut n = 0;
        while let Some(t) = self.peek_next() {
            if t > now {
                break;
            }
            out.push(self.emit());
            n += 1;
        }
        n
    }
}

/// A wrapper that retires its inner source at a departure cycle: flits
/// whose generation time falls at or after `end` are never emitted, so
/// the source reads as exhausted from that point on (churn departures).
///
/// `peek_next` stays monotone because the inner source's times are
/// non-decreasing: once a peek crosses the cutoff every later peek does
/// too, and the wrapper reports `None` forever after.
pub struct ExpiringSource {
    inner: Box<dyn TrafficSource + Send>,
    end: RouterCycle,
}

impl ExpiringSource {
    /// Wrap `inner`, suppressing every flit generated at or after `end`.
    pub fn new(inner: Box<dyn TrafficSource + Send>, end: RouterCycle) -> Self {
        ExpiringSource { inner, end }
    }

    /// The departure cycle.
    pub fn end(&self) -> RouterCycle {
        self.end
    }
}

impl TrafficSource for ExpiringSource {
    fn connection(&self) -> ConnectionId {
        self.inner.connection()
    }

    fn peek_next(&self) -> Option<RouterCycle> {
        self.inner.peek_next().filter(|&t| t < self.end)
    }

    fn emit(&mut self) -> Flit {
        debug_assert!(self.peek_next().is_some(), "emit past departure");
        self.inner.emit()
    }

    fn total_flits(&self) -> Option<u64> {
        // The exact truncated count is unknown without draining the inner
        // source; report "unbounded" and let the departure show up
        // through `peek_next` exhaustion instead.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted source for testing the default `drain_until`.
    struct Scripted {
        times: Vec<u64>,
        pos: usize,
    }

    impl TrafficSource for Scripted {
        fn connection(&self) -> ConnectionId {
            ConnectionId(0)
        }
        fn peek_next(&self) -> Option<RouterCycle> {
            self.times.get(self.pos).map(|&t| RouterCycle(t))
        }
        fn emit(&mut self) -> Flit {
            let t = self.times[self.pos];
            self.pos += 1;
            Flit::cbr(ConnectionId(0), (self.pos - 1) as u64, RouterCycle(t))
        }
        fn total_flits(&self) -> Option<u64> {
            Some(self.times.len() as u64)
        }
    }

    #[test]
    fn drain_until_respects_timestamps() {
        let mut s = Scripted {
            times: vec![0, 10, 20, 30],
            pos: 0,
        };
        let mut out = Vec::new();
        assert_eq!(s.drain_until(RouterCycle(15), &mut out), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].generated_at, RouterCycle(10));
        assert_eq!(s.drain_until(RouterCycle(15), &mut out), 0);
        assert_eq!(s.drain_until(RouterCycle(100), &mut out), 2);
        assert_eq!(s.peek_next(), None);
    }

    #[test]
    fn expiring_source_retires_at_departure() {
        let s = Scripted {
            times: vec![0, 10, 20, 30],
            pos: 0,
        };
        let mut e = ExpiringSource::new(Box::new(s), RouterCycle(20));
        let mut out = Vec::new();
        // Only the flits strictly before the departure cycle emerge.
        assert_eq!(e.drain_until(RouterCycle(100), &mut out), 2);
        assert_eq!(out.last().unwrap().generated_at, RouterCycle(10));
        // From the cutoff on, the source reads as exhausted — forever.
        assert_eq!(e.peek_next(), None);
        assert_eq!(e.drain_until(RouterCycle(1_000), &mut out), 0);
        assert_eq!(e.total_flits(), None);
        assert_eq!(e.end(), RouterCycle(20));
    }
}
