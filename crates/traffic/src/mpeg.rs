//! MPEG-2 video traffic model.
//!
//! The paper's VBR workload replays frame sizes extracted from real MPEG-2
//! traces of seven well-known test sequences (Table 1).  The raw traces are
//! not available, so this module *synthesizes* statistically equivalent
//! traces (see DESIGN.md §3):
//!
//! * the GOP structure is the paper's `IBBPBBPBBPBBPBB` (15 frames: one I,
//!   four P, ten B) at one frame per 33 ms;
//! * each sequence has calibrated mean sizes per frame type with I ≫ P ≫ B,
//!   reproducing the within-GOP burst structure of Fig. 6;
//! * individual frame sizes get log-normal variation around the type mean,
//!   clamped to the sequence's min/max bounds — preserving the max/min/avg
//!   spread that Table 1 reports.
//!
//! Sizes are quantized to whole flits at generation time, because that is
//! the granularity every downstream component operates at.

use mmr_sim::rng::SimRng;
use mmr_sim::time::TimeBase;
use mmr_sim::units::{Bandwidth, DataSize};
use serde::{Deserialize, Serialize};

/// MPEG frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra-coded — self-contained, largest.
    I,
    /// Predictive — coded against the previous I/P frame.
    P,
    /// Bidirectional — coded against neighbours on both sides, smallest.
    B,
}

/// The paper's GOP pattern: `IBBPBBPBBPBBPBB`.
pub const GOP_PATTERN: [FrameType; 15] = [
    FrameType::I,
    FrameType::B,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::B,
];

/// Frame period: "Every 33 milliseconds, a frame must be injected" (§5.2).
pub const FRAME_TIME_SECS: f64 = 0.033;

/// Per-sequence statistical parameters for the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceParams {
    /// Sequence name as in Table 1.
    pub name: &'static str,
    /// Mean I-frame size in bits.
    pub mean_i_bits: f64,
    /// Mean P-frame size in bits.
    pub mean_p_bits: f64,
    /// Mean B-frame size in bits.
    pub mean_b_bits: f64,
    /// Sigma of the log-normal multiplier applied to each frame.
    pub sigma: f64,
    /// Hard lower clamp on any frame, in bits.
    pub min_bits: f64,
    /// Hard upper clamp on any frame, in bits.
    pub max_bits: f64,
}

impl SequenceParams {
    /// Mean size of a frame of the given type.
    pub fn mean_for(&self, ty: FrameType) -> f64 {
        match ty {
            FrameType::I => self.mean_i_bits,
            FrameType::P => self.mean_p_bits,
            FrameType::B => self.mean_b_bits,
        }
    }

    /// Average bits per frame over one GOP.
    pub fn mean_frame_bits(&self) -> f64 {
        let (mut i, mut p, mut b) = (0.0, 0.0, 0.0);
        for ty in GOP_PATTERN {
            match ty {
                FrameType::I => i += 1.0,
                FrameType::P => p += 1.0,
                FrameType::B => b += 1.0,
            }
        }
        (i * self.mean_i_bits + p * self.mean_p_bits + b * self.mean_b_bits)
            / GOP_PATTERN.len() as f64
    }

    /// Nominal average bandwidth of the sequence.
    pub fn mean_bandwidth(&self) -> Bandwidth {
        Bandwidth::bps(self.mean_frame_bits() / FRAME_TIME_SECS)
    }
}

/// The seven sequences of Table 1 with calibrated parameters.
///
/// The scanned paper's Table 1 numerals are unreadable; means are
/// calibrated so sequence average rates span ≈7–21 Mbps — high-quality
/// MPEG-2, matching the regime the MMR papers simulate — and so the
/// high-motion sequences (Flower Garden, Mobile Calendar) are the heaviest,
/// as in the published trace literature.
pub fn standard_sequences() -> Vec<SequenceParams> {
    fn seq(name: &'static str, i: f64, p: f64, b: f64) -> SequenceParams {
        SequenceParams {
            name,
            mean_i_bits: i,
            mean_p_bits: p,
            mean_b_bits: b,
            sigma: 0.18,
            min_bits: 0.45 * b,
            max_bits: 1.6 * i,
        }
    }
    vec![
        seq("Ayersroc", 800e3, 400e3, 160e3),
        seq("Hook", 750e3, 350e3, 140e3),
        seq("Martin", 900e3, 450e3, 170e3),
        seq("Flower Garden", 1500e3, 900e3, 450e3),
        seq("Mobile Calendar", 1600e3, 1000e3, 500e3),
        seq("Table Tennis", 1100e3, 600e3, 260e3),
        seq("Football", 1300e3, 800e3, 400e3),
    ]
}

/// One synthesized frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFrame {
    /// Frame type.
    pub ty: FrameType,
    /// Size in bits (pre-quantization).
    pub bits: u64,
    /// Size in whole flits.
    pub flits: u64,
}

/// A synthesized MPEG-2 trace: a frame-size sequence for some number of
/// GOPs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpegTrace {
    /// Name of the source sequence.
    pub name: String,
    /// Frames in display order.
    pub frames: Vec<TraceFrame>,
    /// Flit width used for quantization.
    pub flit_bits: u32,
}

/// Summary statistics of a trace, as reported in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Largest frame, bits.
    pub max_bits: u64,
    /// Smallest frame, bits.
    pub min_bits: u64,
    /// Mean frame size, bits.
    pub avg_bits: f64,
    /// Average bandwidth implied by the trace at one frame per 33 ms.
    pub avg_bandwidth: Bandwidth,
    /// Peak bandwidth: the largest frame delivered within one frame time.
    pub peak_bandwidth: Bandwidth,
}

impl MpegTrace {
    /// Synthesize a trace of `gops` GOPs from `params`, deterministically
    /// from `rng`.
    ///
    /// ```
    /// use mmr_sim::{rng::SimRng, time::TimeBase};
    /// use mmr_traffic::mpeg::{standard_sequences, MpegTrace};
    ///
    /// let params = &standard_sequences()[3]; // Flower Garden
    /// let trace = MpegTrace::generate(
    ///     params, 4, &TimeBase::default(), &mut SimRng::seed_from_u64(7));
    /// assert_eq!(trace.len(), 60); // 4 GOPs x 15 frames
    /// let stats = trace.stats();
    /// assert!(stats.avg_bandwidth.as_mbps() > 10.0);
    /// ```
    pub fn generate(params: &SequenceParams, gops: usize, tb: &TimeBase, rng: &mut SimRng) -> Self {
        assert!(gops > 0, "need at least one GOP");
        // A log-normal multiplier with unit mean: exp(N(-sigma^2/2, sigma)).
        let mu = -params.sigma * params.sigma / 2.0;
        let mut frames = Vec::with_capacity(gops * GOP_PATTERN.len());
        for _ in 0..gops {
            for ty in GOP_PATTERN {
                let mult = rng.log_normal(mu, params.sigma);
                let bits = (params.mean_for(ty) * mult)
                    .clamp(params.min_bits, params.max_bits)
                    .round() as u64;
                let flits = DataSize::bits(bits).flits(tb.flit_bits);
                frames.push(TraceFrame { ty, bits, flits });
            }
        }
        MpegTrace {
            name: params.name.to_string(),
            frames,
            flit_bits: tb.flit_bits,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the trace has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total payload in flits.
    pub fn total_flits(&self) -> u64 {
        self.frames.iter().map(|f| f.flits).sum()
    }

    /// Table-1 style statistics.
    pub fn stats(&self) -> TraceStats {
        assert!(!self.frames.is_empty());
        let max_bits = self.frames.iter().map(|f| f.bits).max().unwrap();
        let min_bits = self.frames.iter().map(|f| f.bits).min().unwrap();
        let total: u64 = self.frames.iter().map(|f| f.bits).sum();
        let avg_bits = total as f64 / self.frames.len() as f64;
        TraceStats {
            max_bits,
            min_bits,
            avg_bits,
            avg_bandwidth: Bandwidth::bps(avg_bits / FRAME_TIME_SECS),
            peak_bandwidth: Bandwidth::bps(max_bits as f64 / FRAME_TIME_SECS),
        }
    }

    /// Per-frame bit rate samples (bits of each frame / frame time), for
    /// Fig. 6 style profiles.
    pub fn rate_profile_mbps(&self) -> Vec<f64> {
        self.frames
            .iter()
            .map(|f| f.bits as f64 / FRAME_TIME_SECS / 1e6)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flower_trace(gops: usize) -> MpegTrace {
        let params = &standard_sequences()[3];
        let tb = TimeBase::default();
        let mut rng = SimRng::seed_from_u64(99);
        MpegTrace::generate(params, gops, &tb, &mut rng)
    }

    #[test]
    fn gop_pattern_has_paper_composition() {
        let i = GOP_PATTERN.iter().filter(|t| **t == FrameType::I).count();
        let p = GOP_PATTERN.iter().filter(|t| **t == FrameType::P).count();
        let b = GOP_PATTERN.iter().filter(|t| **t == FrameType::B).count();
        assert_eq!((i, p, b), (1, 4, 10));
        assert_eq!(GOP_PATTERN[0], FrameType::I);
    }

    #[test]
    fn trace_length_matches_gops() {
        let t = flower_trace(4);
        assert_eq!(t.len(), 60);
        assert!(!t.is_empty());
    }

    #[test]
    fn i_frames_dominate_b_frames() {
        let t = flower_trace(8);
        let avg = |ty: FrameType| {
            let xs: Vec<u64> = t
                .frames
                .iter()
                .filter(|f| f.ty == ty)
                .map(|f| f.bits)
                .collect();
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        };
        let (ai, ap, ab) = (avg(FrameType::I), avg(FrameType::P), avg(FrameType::B));
        assert!(ai > ap && ap > ab, "I={ai} P={ap} B={ab}");
        // The burst ratio that stresses the arbiter: I frames are ~3x B.
        assert!(ai / ab > 2.0);
    }

    #[test]
    fn frame_sizes_respect_clamps() {
        let params = &standard_sequences()[0];
        let t = {
            let tb = TimeBase::default();
            let mut rng = SimRng::seed_from_u64(7);
            MpegTrace::generate(params, 20, &tb, &mut rng)
        };
        for f in &t.frames {
            assert!(f.bits as f64 >= params.min_bits);
            assert!(f.bits as f64 <= params.max_bits);
            assert!(f.flits >= 1);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let t = flower_trace(4);
        let s = t.stats();
        assert!(s.min_bits <= s.avg_bits as u64 + 1);
        assert!(s.avg_bits <= s.max_bits as f64);
        // Flower Garden calibration targets ~19 Mbps average.
        let mbps = s.avg_bandwidth.as_mbps();
        assert!((10.0..30.0).contains(&mbps), "avg rate {mbps} Mbps");
        assert!(s.peak_bandwidth.as_bps() >= s.avg_bandwidth.as_bps());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = flower_trace(2);
        let b = flower_trace(2);
        assert_eq!(a, b);
    }

    #[test]
    fn sequences_span_rate_range() {
        let seqs = standard_sequences();
        assert_eq!(seqs.len(), 7);
        let rates: Vec<f64> = seqs.iter().map(|s| s.mean_bandwidth().as_mbps()).collect();
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        assert!(lo > 5.0 && hi < 25.0, "rates {rates:?}");
        assert!(hi / lo > 2.0, "sequences should differ in rate");
    }

    #[test]
    fn rate_profile_matches_frames() {
        let t = flower_trace(1);
        let prof = t.rate_profile_mbps();
        assert_eq!(prof.len(), 15);
        // The I-frame (index 0) is the per-GOP peak most of the time; at
        // minimum it must beat the B-frame average.
        let b_avg = prof[1..].iter().sum::<f64>() / 14.0;
        assert!(prof[0] > b_avg);
    }

    #[test]
    fn unit_mean_lognormal_preserves_long_run_average() {
        let params = &standard_sequences()[5];
        let tb = TimeBase::default();
        let mut rng = SimRng::seed_from_u64(1234);
        let t = MpegTrace::generate(params, 200, &tb, &mut rng);
        let measured = t.stats().avg_bits;
        let nominal = params.mean_frame_bits();
        let rel = (measured - nominal).abs() / nominal;
        assert!(
            rel < 0.05,
            "measured {measured}, nominal {nominal}, rel {rel}"
        );
    }
}
