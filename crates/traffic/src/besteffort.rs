//! Best-effort traffic.
//!
//! The MMR's stated goal (§1) is to "satisfy the QoS requirements of a
//! large number of multimedia connections *while allocating the remaining
//! bandwidth to best-effort traffic*": best-effort messages use Virtual
//! Cut-Through switching, make no reservation, and must scavenge whatever
//! the reserved classes leave over without disturbing them.
//!
//! This source models best-effort load as a Poisson stream of multi-flit
//! messages: message inter-arrival times are exponential (mean set by the
//! target load), message lengths are geometric-ish around a configurable
//! mean, and all flits of a message are injected back-to-back at message
//! arrival (the VCT abstraction — the message is cut through as one
//! unit).

use crate::connection::ConnectionId;
use crate::flit::Flit;
use crate::source::TrafficSource;
use mmr_sim::rng::SimRng;
use mmr_sim::time::{RouterCycle, TimeBase};
use mmr_sim::units::Bandwidth;

/// A Poisson best-effort message source.
#[derive(Debug, Clone)]
pub struct BestEffortSource {
    connection: ConnectionId,
    /// Mean router cycles between message arrivals.
    mean_gap_rc: f64,
    /// Mean message length in flits (≥ 1).
    mean_flits: f64,
    rng: SimRng,
    /// Next message arrival time.
    next_msg_rc: f64,
    /// Flits left in the message currently being injected.
    in_flight: u64,
    seq: u64,
}

impl BestEffortSource {
    /// A source offering `bandwidth` on average, as messages of
    /// `mean_flits` flits, starting around `phase`.
    pub fn new(
        connection: ConnectionId,
        bandwidth: Bandwidth,
        mean_flits: f64,
        phase: RouterCycle,
        tb: &TimeBase,
        rng: SimRng,
    ) -> Self {
        assert!(mean_flits >= 1.0);
        assert!(bandwidth.as_bps() > 0.0);
        // bandwidth = mean_flits x flit_bits / mean_gap_secs
        let mean_gap_secs = mean_flits * tb.flit_bits as f64 / bandwidth.as_bps();
        let mean_gap_rc = mean_gap_secs / tb.router_cycle_secs();
        let mut s = BestEffortSource {
            connection,
            mean_gap_rc,
            mean_flits,
            rng,
            next_msg_rc: phase.0 as f64,
            in_flight: 0,
            seq: 0,
        };
        // First arrival after a random exponential delay from the phase.
        s.next_msg_rc += s.rng.exponential(mean_gap_rc);
        s
    }

    /// Draw a message length: geometric with the configured mean.
    fn draw_length(&mut self) -> u64 {
        if self.mean_flits <= 1.0 {
            return 1;
        }
        // Geometric on {1, 2, …} with mean m: success prob 1/m.
        let p = 1.0 / self.mean_flits;
        let u = self.rng.uniform();
        (1.0 + (1.0 - u).ln() / (1.0 - p).ln()).floor().max(1.0) as u64
    }
}

impl TrafficSource for BestEffortSource {
    fn connection(&self) -> ConnectionId {
        self.connection
    }

    fn peek_next(&self) -> Option<RouterCycle> {
        Some(RouterCycle(self.next_msg_rc.round() as u64))
    }

    fn emit(&mut self) -> Flit {
        if self.in_flight == 0 {
            self.in_flight = self.draw_length();
        }
        let t = RouterCycle(self.next_msg_rc.round() as u64);
        let flit = Flit::cbr(self.connection, self.seq, t);
        self.seq += 1;
        self.in_flight -= 1;
        if self.in_flight == 0 {
            // Next message after an exponential gap from *this* message's
            // start (arrival process is Poisson on message starts).
            self.next_msg_rc += self.rng.exponential(self.mean_gap_rc);
        }
        // Flits of one message share the arrival timestamp: VCT injects
        // the whole message as a unit.
        flit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(bw_mbps: f64, mean_flits: f64, seed: u64) -> BestEffortSource {
        let tb = TimeBase::default();
        BestEffortSource::new(
            ConnectionId(0),
            Bandwidth::mbps(bw_mbps),
            mean_flits,
            RouterCycle(0),
            &tb,
            SimRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn long_run_rate_matches_bandwidth() {
        let tb = TimeBase::default();
        let mut s = source(50.0, 8.0, 1);
        let mut out = Vec::new();
        let one_sec = tb.secs_to_router_cycles(1.0);
        s.drain_until(one_sec, &mut out);
        let expected = 50e6 / 1024.0; // flits per second
        let got = out.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "expected ~{expected} flits, got {got}"
        );
    }

    #[test]
    fn messages_are_bursts_with_shared_timestamp() {
        let mut s = source(10.0, 16.0, 2);
        let mut lengths = Vec::new();
        let mut current = 1u64;
        let mut last_t = s.peek_next().unwrap();
        s.emit();
        for _ in 0..5_000 {
            let t = s.peek_next().unwrap();
            s.emit();
            if t == last_t {
                current += 1;
            } else {
                assert!(t > last_t, "message starts move forward");
                lengths.push(current);
                current = 1;
                last_t = t;
            }
        }
        let mean = lengths.iter().sum::<u64>() as f64 / lengths.len() as f64;
        assert!((mean - 16.0).abs() < 2.5, "mean message length {mean}");
        assert!(lengths.contains(&1), "geometric has short messages");
        assert!(
            lengths.iter().any(|&l| l > 24),
            "geometric has long messages"
        );
    }

    #[test]
    fn gaps_are_exponential_ish() {
        let mut s = source(10.0, 4.0, 3);
        let mut starts = Vec::new();
        let mut last = None;
        for _ in 0..20_000 {
            let t = s.peek_next().unwrap().0;
            s.emit();
            if last != Some(t) {
                starts.push(t as f64);
                last = Some(t);
            }
        }
        let gaps: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        // Exponential: std ≈ mean (coefficient of variation ≈ 1).
        let cv = var.sqrt() / mean;
        assert!((0.8..1.2).contains(&cv), "cv {cv}");
    }

    #[test]
    fn sequence_numbers_dense() {
        let mut s = source(5.0, 2.0, 4);
        for i in 0..100 {
            assert_eq!(s.emit().seq, i);
        }
    }
}
