//! VBR injection models (paper Fig. 7).
//!
//! Once a video frame of `n` flits is generated at a frame-time boundary,
//! two policies decide *when* the flits enter the NIC:
//!
//! * **Back-to-Back (BB)** — all flits are emitted at a common peak rate,
//!   then the source idles until the next frame boundary.  The peak rate is
//!   chosen so the largest frame of any connection fits within one frame
//!   time.
//! * **Smooth-Rate (SR)** — the frame's flits are spread evenly across the
//!   whole frame time (per-frame IAT = 33 ms / n).

use mmr_sim::time::TimeBase;
use mmr_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// How a frame's flits are spaced within the frame time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionModel {
    /// Emit at a fixed peak bandwidth, then idle (Fig. 7a).
    BackToBack {
        /// The common peak rate, shared by all connections.
        peak: Bandwidth,
    },
    /// Spread the frame's flits evenly over the frame time (Fig. 7b).
    SmoothRate,
}

impl InjectionModel {
    /// Back-to-Back with the peak sized so a frame of `max_frame_flits`
    /// fits in `frame_time_secs` exactly.
    pub fn back_to_back_for(max_frame_flits: u64, frame_time_secs: f64, tb: &TimeBase) -> Self {
        assert!(max_frame_flits > 0);
        let bits = max_frame_flits * tb.flit_bits as u64;
        InjectionModel::BackToBack {
            peak: Bandwidth::bps(bits as f64 / frame_time_secs),
        }
    }

    /// Inter-arrival time in router cycles between consecutive flits of a
    /// frame of `frame_flits` flits spanning `frame_time_rc` router cycles.
    pub fn iat_router_cycles(&self, frame_flits: u64, frame_time_rc: f64, tb: &TimeBase) -> f64 {
        assert!(frame_flits > 0);
        match *self {
            InjectionModel::BackToBack { peak } => tb.flit_iat_router_cycles(peak.as_bps()),
            InjectionModel::SmoothRate => frame_time_rc / frame_flits as f64,
        }
    }

    /// Short label for reports ("BB" / "SR").
    pub fn label(&self) -> &'static str {
        match self {
            InjectionModel::BackToBack { .. } => "BB",
            InjectionModel::SmoothRate => "SR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_peak_fits_largest_frame() {
        let tb = TimeBase::default();
        let model = InjectionModel::back_to_back_for(1200, 0.033, &tb);
        let InjectionModel::BackToBack { peak } = model else {
            panic!()
        };
        // 1200 flits * 1024 bits / 33 ms ≈ 37.2 Mbps
        assert!((peak.as_mbps() - 37.236).abs() < 0.1, "{}", peak.as_mbps());
        // At that peak, exactly the largest frame fits in one frame time.
        let frame_time_rc = tb.secs_to_router_cycles(0.033).0 as f64;
        let iat = model.iat_router_cycles(1200, frame_time_rc, &tb);
        let span = iat * 1200.0;
        assert!((span - frame_time_rc).abs() / frame_time_rc < 0.001);
    }

    #[test]
    fn bb_iat_independent_of_frame_size() {
        let tb = TimeBase::default();
        let model = InjectionModel::back_to_back_for(1000, 0.033, &tb);
        let ft = tb.secs_to_router_cycles(0.033).0 as f64;
        let iat_small = model.iat_router_cycles(10, ft, &tb);
        let iat_large = model.iat_router_cycles(1000, ft, &tb);
        assert_eq!(iat_small, iat_large);
    }

    #[test]
    fn sr_spreads_over_frame_time() {
        let tb = TimeBase::default();
        let ft = tb.secs_to_router_cycles(0.033).0 as f64;
        let model = InjectionModel::SmoothRate;
        // Small frames get large IATs, large frames small IATs; product is
        // always the frame time.
        for n in [1u64, 7, 100, 963] {
            let iat = model.iat_router_cycles(n, ft, &tb);
            assert!((iat * n as f64 - ft).abs() < 1e-6);
        }
    }

    #[test]
    fn sr_smoother_than_bb_for_small_frames() {
        let tb = TimeBase::default();
        let ft = tb.secs_to_router_cycles(0.033).0 as f64;
        let bb = InjectionModel::back_to_back_for(1000, 0.033, &tb);
        let sr = InjectionModel::SmoothRate;
        // A 100-flit frame: BB bursts it in a tenth of the frame time.
        assert!(bb.iat_router_cycles(100, ft, &tb) < sr.iat_router_cycles(100, ft, &tb));
    }

    #[test]
    fn labels() {
        let tb = TimeBase::default();
        assert_eq!(InjectionModel::SmoothRate.label(), "SR");
        assert_eq!(
            InjectionModel::back_to_back_for(1, 0.033, &tb).label(),
            "BB"
        );
    }
}
