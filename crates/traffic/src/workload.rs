//! Workload builders for the paper's experiments.
//!
//! §5 evaluates a single 4×4 MMR fed by per-input NICs.  Connections are
//! "a random mix" (CBR) or MPEG-2 streams (VBR), active for the whole
//! simulation, with uniformly random destinations.  These builders keep
//! admitting connections on every input link until the requested offered
//! load is reached, going through the [`AdmissionControl`] ledger so that
//! no link is ever booked beyond its round.

use crate::admission::{AdmissionControl, RoundConfig};
use crate::besteffort::BestEffortSource;
use crate::cbr::CbrSource;
use crate::connection::{ConnectionId, ConnectionKind, ConnectionSpec, QosSpec, TrafficClass};
use crate::injection::InjectionModel;
use crate::mpeg::{standard_sequences, MpegTrace, SequenceParams, FRAME_TIME_SECS};
use crate::source::TrafficSource;
use crate::vbr::VbrSource;
use mmr_sim::rng::SimRng;
use mmr_sim::time::{RouterCycle, TimeBase};
use mmr_sim::units::Bandwidth;

/// A boxed source, index-aligned with its `ConnectionSpec`.
pub type BoxedSource = Box<dyn TrafficSource + Send>;

/// Outcome counts from the connection-admission control (CAC) ledger
/// during workload construction.  Placement-policy skips (a class whose
/// bandwidth would overshoot the load target) are not admission attempts
/// and are not counted; best-effort connections reserve nothing and never
/// consult the CAC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdmissionTally {
    /// Admission requests the CAC accepted (slots reserved).
    pub accepted: u64,
    /// Admission requests the CAC rejected (no feasible reservation).
    pub rejected: u64,
}

impl AdmissionTally {
    /// Total admission requests presented to the CAC.
    pub fn attempted(&self) -> u64 {
        self.accepted + self.rejected
    }

    /// Fraction of requests rejected (0 when none were made).
    pub fn reject_rate(&self) -> f64 {
        if self.attempted() == 0 {
            0.0
        } else {
            self.rejected as f64 / self.attempted() as f64
        }
    }
}

/// The lifetime of one connection: its first emission cycle and, for
/// churn departures, the cycle from which it emits nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveWindow {
    /// First router cycle at which the connection may emit.
    pub start: RouterCycle,
    /// Departure cycle (`None` = active for the whole run).
    pub end: Option<RouterCycle>,
}

impl ActiveWindow {
    /// A window covering the whole run.
    pub fn always() -> Self {
        ActiveWindow {
            start: RouterCycle(0),
            end: None,
        }
    }

    /// True if the connection is active at `cycle`.
    pub fn contains(&self, cycle: u64) -> bool {
        self.start.0 <= cycle && self.end.map(|e| cycle < e.0).unwrap_or(true)
    }
}

/// An assembled workload: admitted connections plus their flit sources.
pub struct Workload {
    /// Admitted connections; `connections[i].id.idx() == i`.
    pub connections: Vec<ConnectionSpec>,
    /// Flit sources, one per connection, same order.
    pub sources: Vec<BoxedSource>,
    /// Per-connection activation/departure windows, same order (the
    /// paper's builders produce `always()`; mix builders with ramp or
    /// churn schedules record the real lifetimes here).
    pub windows: Vec<ActiveWindow>,
    /// Achieved offered load fraction per input link (average bandwidth /
    /// link bandwidth).
    pub per_input_load: Vec<f64>,
    /// CAC accept/reject counts from construction.
    pub admission: AdmissionTally,
}

impl Workload {
    /// Mean offered load across input links.
    pub fn mean_load(&self) -> f64 {
        if self.per_input_load.is_empty() {
            return 0.0;
        }
        self.per_input_load.iter().sum::<f64>() / self.per_input_load.len() as f64
    }

    /// Number of connections active at `cycle` per their declared
    /// windows.
    pub fn active_at(&self, cycle: u64) -> usize {
        self.windows.iter().filter(|w| w.contains(cycle)).count()
    }

    /// Number of connections.
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True if no connections were admitted.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Connections of a given class.
    pub fn by_class(&self, class: TrafficClass) -> impl Iterator<Item = &ConnectionSpec> {
        self.connections.iter().filter(move |c| c.class == class)
    }

    /// Append unreserved best-effort traffic on top of the admitted
    /// connections (paper §1: "allocating the remaining bandwidth to
    /// best-effort traffic").
    ///
    /// For each input port, one best-effort connection per output port is
    /// created (Virtual Cut-Through messages are routed per message; a
    /// per-(input, output) connection pair models that spread), together
    /// offering `per_link_load` of the link bandwidth as Poisson messages
    /// of `mean_flits` mean length.  Best-effort connections make **no**
    /// reservation: `reserved_slots == 0`, so the SIABP bias keeps them
    /// below every reserved class until they have aged.
    pub fn append_best_effort(
        &mut self,
        ports: usize,
        per_link_load: f64,
        mean_flits: f64,
        tb: &TimeBase,
        rng: &mut SimRng,
    ) {
        assert!((0.0..=1.0).contains(&per_link_load));
        if per_link_load == 0.0 {
            return;
        }
        let per_pair = Bandwidth::bps(per_link_load * tb.link_bits_per_sec / ports as f64);
        for input in 0..ports {
            for output in 0..ports {
                let id = ConnectionId(self.connections.len() as u32);
                let src_rng = rng.split(0xBE57 + id.0 as u64);
                let phase = RouterCycle(rng.below(100_000));
                self.connections.push(ConnectionSpec {
                    id,
                    input,
                    output,
                    class: TrafficClass::BestEffort,
                    qos: QosSpec::cbr(per_pair),
                    kind: ConnectionKind::Cbr,
                    reserved_slots: 0,
                });
                self.sources.push(Box::new(BestEffortSource::new(
                    id, per_pair, mean_flits, phase, tb, src_rng,
                )));
                self.windows.push(ActiveWindow::always());
            }
        }
    }
}

/// Maximum consecutive placement failures before a builder gives up on an
/// input link (the link is effectively full at that point).
const MAX_PLACEMENT_FAILURES: usize = 64;

/// Builder for the paper's CBR mixes (§5.1): random mixture of 64 Kbps,
/// 1.54 Mbps and 55 Mbps connections.
#[derive(Debug, Clone)]
pub struct CbrMixBuilder {
    ports: usize,
    tb: TimeBase,
    round: RoundConfig,
    target_load: f64,
    classes: Vec<(TrafficClass, Bandwidth, f64)>,
}

impl CbrMixBuilder {
    /// Builder for a router with `ports` links, using the paper's three
    /// classes with equal pick probability.
    pub fn new(ports: usize, tb: TimeBase, round: RoundConfig) -> Self {
        CbrMixBuilder {
            ports,
            tb,
            round,
            target_load: 0.5,
            classes: vec![
                (TrafficClass::CbrLow, Bandwidth::kbps(64.0), 1.0),
                (TrafficClass::CbrMedium, Bandwidth::mbps(1.54), 1.0),
                (TrafficClass::CbrHigh, Bandwidth::mbps(55.0), 1.0),
            ],
        }
    }

    /// Set the target offered load per input link (fraction of link
    /// bandwidth).
    pub fn target_load(mut self, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be a fraction");
        self.target_load = load;
        self
    }

    /// Replace the class mix: `(class, bandwidth, weight)` triples.
    pub fn classes(mut self, classes: Vec<(TrafficClass, Bandwidth, f64)>) -> Self {
        assert!(!classes.is_empty());
        self.classes = classes;
        self
    }

    fn pick_class(&self, rng: &mut SimRng) -> (TrafficClass, Bandwidth) {
        let total: f64 = self.classes.iter().map(|c| c.2).sum();
        let mut x = rng.uniform() * total;
        for &(class, bw, w) in &self.classes {
            if x < w {
                return (class, bw);
            }
            x -= w;
        }
        let last = self.classes.last().unwrap();
        (last.0, last.1)
    }

    /// Assemble the workload.
    pub fn build(&self, rng: &mut SimRng) -> Workload {
        let mut cac = AdmissionControl::new(self.ports, self.round, self.tb);
        let mut admission = AdmissionTally::default();
        let mut connections = Vec::new();
        let mut sources: Vec<BoxedSource> = Vec::new();
        for input in 0..self.ports {
            let mut failures = 0;
            while cac.input_load(input) < self.target_load && failures < MAX_PLACEMENT_FAILURES {
                let (class, bw) = self.pick_class(rng);
                // Do not overshoot the target by a whole connection: skip a
                // class whose bandwidth would push load far past the goal.
                let frac = bw.fraction_of(Bandwidth::bps(self.tb.link_bits_per_sec));
                if cac.input_load(input) + frac > self.target_load + frac * 0.5 {
                    failures += 1;
                    continue;
                }
                let output = rng.index(self.ports);
                match cac.admit(input, output, bw, bw) {
                    Ok(slots) => {
                        admission.accepted += 1;
                        failures = 0;
                        let id = ConnectionId(connections.len() as u32);
                        let iat = self.tb.flit_iat_router_cycles(bw.as_bps());
                        let phase = RouterCycle((rng.uniform() * iat) as u64);
                        connections.push(ConnectionSpec {
                            id,
                            input,
                            output,
                            class,
                            qos: QosSpec::cbr(bw),
                            kind: ConnectionKind::Cbr,
                            reserved_slots: slots,
                        });
                        sources.push(Box::new(CbrSource::new(id, bw, phase, &self.tb)));
                    }
                    Err(_) => {
                        admission.rejected += 1;
                        failures += 1;
                    }
                }
            }
        }
        let per_input_load = (0..self.ports).map(|i| cac.input_load(i)).collect();
        let windows = vec![ActiveWindow::always(); connections.len()];
        Workload {
            connections,
            sources,
            windows,
            per_input_load,
            admission,
        }
    }
}

/// Which injection model the VBR builder instantiates (the BB peak rate is
/// derived from the generated traces, so the builder owns the choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VbrInjection {
    /// Smooth-Rate.
    SmoothRate,
    /// Back-to-Back with the peak sized for the largest possible frame
    /// across the configured sequences.
    BackToBack,
}

/// Builder for the paper's VBR workloads (§5.2): MPEG-2 streams with
/// random sequence choice, random destinations, and random GOP alignment.
#[derive(Debug, Clone)]
pub struct VbrMixBuilder {
    ports: usize,
    tb: TimeBase,
    round: RoundConfig,
    target_load: f64,
    gops: usize,
    injection: VbrInjection,
    sequences: Vec<SequenceParams>,
    enforce_peak: bool,
}

impl VbrMixBuilder {
    /// Builder over the standard Table-1 sequences, Smooth-Rate injection,
    /// 4 GOPs per connection.
    pub fn new(ports: usize, tb: TimeBase, round: RoundConfig) -> Self {
        VbrMixBuilder {
            ports,
            tb,
            round,
            target_load: 0.5,
            gops: 4,
            injection: VbrInjection::SmoothRate,
            sequences: standard_sequences(),
            enforce_peak: false,
        }
    }

    /// Set the target generated load per input link.
    pub fn target_load(mut self, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load));
        self.target_load = load;
        self
    }

    /// Number of GOPs each connection transmits (paper: 4).
    pub fn gops(mut self, gops: usize) -> Self {
        assert!(gops > 0);
        self.gops = gops;
        self
    }

    /// Select the injection model.
    pub fn injection(mut self, injection: VbrInjection) -> Self {
        self.injection = injection;
        self
    }

    /// Replace the sequence table.
    pub fn sequences(mut self, sequences: Vec<SequenceParams>) -> Self {
        assert!(!sequences.is_empty());
        self.sequences = sequences;
        self
    }

    /// Enforce the peak-bandwidth admission test (§2).  Off by default for
    /// the load-sweep experiments, which deliberately drive the router past
    /// the region a conservative concurrency factor would admit; the
    /// `ablation_concurrency` experiment turns it on.
    pub fn enforce_peak(mut self, on: bool) -> Self {
        self.enforce_peak = on;
        self
    }

    /// The Back-to-Back peak rate implied by the configured sequences: the
    /// largest clamped frame must fit within one frame time.
    pub fn bb_peak(&self) -> Bandwidth {
        let max_bits = self
            .sequences
            .iter()
            .map(|s| s.max_bits)
            .fold(0.0f64, f64::max);
        Bandwidth::bps(max_bits / FRAME_TIME_SECS)
    }

    fn model(&self) -> InjectionModel {
        match self.injection {
            VbrInjection::SmoothRate => InjectionModel::SmoothRate,
            VbrInjection::BackToBack => {
                let max_bits = self
                    .sequences
                    .iter()
                    .map(|s| s.max_bits)
                    .fold(0.0f64, f64::max);
                let max_flits = (max_bits / self.tb.flit_bits as f64).ceil() as u64;
                InjectionModel::back_to_back_for(max_flits, FRAME_TIME_SECS, &self.tb)
            }
        }
    }

    /// Assemble the workload.
    pub fn build(&self, rng: &mut SimRng) -> Workload {
        let model = self.model();
        let mut cac = AdmissionControl::new(self.ports, self.round, self.tb);
        let mut admission = AdmissionTally::default();
        let mut connections = Vec::new();
        let mut sources: Vec<BoxedSource> = Vec::new();
        let gop_time_rc =
            crate::mpeg::GOP_PATTERN.len() as f64 * FRAME_TIME_SECS / self.tb.router_cycle_secs();
        for input in 0..self.ports {
            let mut failures = 0;
            while cac.input_load(input) < self.target_load && failures < MAX_PLACEMENT_FAILURES {
                let seq_idx = rng.index(self.sequences.len());
                let params = &self.sequences[seq_idx];
                let mut trace_rng = rng.split(connections.len() as u64 + 1);
                let trace = MpegTrace::generate(params, self.gops, &self.tb, &mut trace_rng);
                let stats = trace.stats();
                let avg = stats.avg_bandwidth;
                let peak = match self.injection {
                    VbrInjection::SmoothRate => stats.peak_bandwidth,
                    VbrInjection::BackToBack => self.bb_peak(),
                };
                let admit_peak = if self.enforce_peak { peak } else { avg };
                let frac = avg.fraction_of(Bandwidth::bps(self.tb.link_bits_per_sec));
                if cac.input_load(input) + frac > self.target_load + frac * 0.5 {
                    failures += 1;
                    continue;
                }
                let output = rng.index(self.ports);
                match cac.admit(input, output, avg, admit_peak) {
                    Ok(slots) => {
                        admission.accepted += 1;
                        failures = 0;
                        let id = ConnectionId(connections.len() as u32);
                        // "randomly aligned, that is, they start at a random
                        // time within a GOP time" (§5.2)
                        let start = RouterCycle((rng.uniform() * gop_time_rc) as u64);
                        connections.push(ConnectionSpec {
                            id,
                            input,
                            output,
                            class: TrafficClass::Vbr,
                            qos: QosSpec::vbr(avg, peak),
                            kind: ConnectionKind::Vbr { sequence: seq_idx },
                            reserved_slots: slots,
                        });
                        sources.push(Box::new(VbrSource::new(id, trace, model, start, &self.tb)));
                    }
                    Err(_) => {
                        admission.rejected += 1;
                        failures += 1;
                    }
                }
            }
        }
        let per_input_load = (0..self.ports).map(|i| cac.input_load(i)).collect();
        let windows = vec![ActiveWindow::always(); connections.len()];
        Workload {
            connections,
            sources,
            windows,
            per_input_load,
            admission,
        }
    }
}

/// Builder for declarative mixed workloads (the workload-language packs):
/// a weighted CBR class mix like [`CbrMixBuilder`], optionally with a
/// ramp schedule (connections activate in staged waves) and a churn
/// window (a fraction of the base connections departs mid-run while
/// replacement arrivals are admitted on top).
///
/// Ramp semantics: connection `i` in global admission order activates at
/// the first step `(at_cycle, fraction)` with `i < round(fraction · n)`,
/// so the number of active connections at each declared breakpoint is
/// exactly `round(fraction · n)` (clamped to `n`).  Churn departures pick
/// `round(departures · n)` base connections at evenly spaced indices and
/// retire them at evenly spaced cycles inside the window; arrivals admit
/// `round(arrivals · n)` extra connections through the CAC with start
/// cycles staggered across the window.
#[derive(Debug, Clone)]
pub struct MixWorkloadBuilder {
    ports: usize,
    tb: TimeBase,
    round: RoundConfig,
    target_load: f64,
    classes: Vec<(TrafficClass, Bandwidth, f64)>,
    /// `(at_cycle, cumulative_fraction)` steps, non-decreasing in both.
    ramp: Vec<(u64, f64)>,
    /// `(start, end, departures_fraction, arrivals_fraction)`.
    churn: Option<(u64, u64, f64, f64)>,
}

impl MixWorkloadBuilder {
    /// Builder with the paper's default three-class mix and no schedule.
    pub fn new(ports: usize, tb: TimeBase, round: RoundConfig) -> Self {
        MixWorkloadBuilder {
            ports,
            tb,
            round,
            target_load: 0.5,
            classes: vec![
                (TrafficClass::CbrLow, Bandwidth::kbps(64.0), 1.0),
                (TrafficClass::CbrMedium, Bandwidth::mbps(1.54), 1.0),
                (TrafficClass::CbrHigh, Bandwidth::mbps(55.0), 1.0),
            ],
            ramp: Vec::new(),
            churn: None,
        }
    }

    /// Set the target offered load per input link.
    pub fn target_load(mut self, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be a fraction");
        self.target_load = load;
        self
    }

    /// Replace the class mix: `(class, bandwidth, weight)` triples.
    pub fn classes(mut self, classes: Vec<(TrafficClass, Bandwidth, f64)>) -> Self {
        assert!(!classes.is_empty());
        self.classes = classes;
        self
    }

    /// Install a ramp schedule of `(at_cycle, cumulative_fraction)` steps.
    pub fn ramp(mut self, steps: Vec<(u64, f64)>) -> Self {
        self.ramp = steps;
        self
    }

    /// Install a churn window.
    pub fn churn(mut self, start: u64, end: u64, departures: f64, arrivals: f64) -> Self {
        assert!(end > start, "churn window must be non-empty");
        assert!((0.0..=1.0).contains(&departures));
        assert!(arrivals >= 0.0);
        self.churn = Some((start, end, departures, arrivals));
        self
    }

    /// Activation cycle of base connection `index` out of `total` under
    /// the configured ramp (cycle 0 when no ramp is set).
    pub fn activation_of(&self, total: usize, index: usize) -> u64 {
        for &(at, fraction) in &self.ramp {
            if index < ((fraction * total as f64).round() as usize).min(total) {
                return at;
            }
        }
        self.ramp.last().map(|s| s.0).unwrap_or(0)
    }

    fn pick_class(&self, rng: &mut SimRng) -> (TrafficClass, Bandwidth) {
        let total: f64 = self.classes.iter().map(|c| c.2).sum();
        let mut x = rng.uniform() * total;
        for &(class, bw, w) in &self.classes {
            if x < w {
                return (class, bw);
            }
            x -= w;
        }
        let last = self.classes.last().unwrap();
        (last.0, last.1)
    }

    #[allow(clippy::too_many_arguments)] // builder internals: three parallel output vecs
    fn push_connection(
        connections: &mut Vec<ConnectionSpec>,
        sources: &mut Vec<BoxedSource>,
        windows: &mut Vec<ActiveWindow>,
        tb: &TimeBase,
        rng: &mut SimRng,
        input: usize,
        output: usize,
        class: TrafficClass,
        bw: Bandwidth,
        slots: u64,
        window: ActiveWindow,
    ) {
        let id = ConnectionId(connections.len() as u32);
        let iat = tb.flit_iat_router_cycles(bw.as_bps());
        let phase = RouterCycle(window.start.0 + (rng.uniform() * iat) as u64);
        connections.push(ConnectionSpec {
            id,
            input,
            output,
            class,
            qos: QosSpec::cbr(bw),
            kind: ConnectionKind::Cbr,
            reserved_slots: slots,
        });
        let cbr: BoxedSource = Box::new(CbrSource::new(id, bw, phase, tb));
        match window.end {
            Some(end) => sources.push(Box::new(crate::source::ExpiringSource::new(cbr, end))),
            None => sources.push(cbr),
        }
        windows.push(window);
    }

    /// Assemble the workload.
    pub fn build(&self, rng: &mut SimRng) -> Workload {
        let mut cac = AdmissionControl::new(self.ports, self.round, self.tb);
        let mut admission = AdmissionTally::default();
        let mut connections = Vec::new();
        let mut sources: Vec<BoxedSource> = Vec::new();
        let mut windows = Vec::new();
        // Phase 1: admit the base mix exactly like `CbrMixBuilder`, but
        // defer source construction until the base population is known
        // (ramp activation depends on the final count).
        let mut base: Vec<(usize, usize, TrafficClass, Bandwidth, u64)> = Vec::new();
        for input in 0..self.ports {
            let mut failures = 0;
            while cac.input_load(input) < self.target_load && failures < MAX_PLACEMENT_FAILURES {
                let (class, bw) = self.pick_class(rng);
                let frac = bw.fraction_of(Bandwidth::bps(self.tb.link_bits_per_sec));
                if cac.input_load(input) + frac > self.target_load + frac * 0.5 {
                    failures += 1;
                    continue;
                }
                let output = rng.index(self.ports);
                match cac.admit(input, output, bw, bw) {
                    Ok(slots) => {
                        admission.accepted += 1;
                        failures = 0;
                        base.push((input, output, class, bw, slots));
                    }
                    Err(_) => {
                        admission.rejected += 1;
                        failures += 1;
                    }
                }
            }
        }
        let n = base.len();
        // Phase 2: departure plan — evenly spaced base indices retire at
        // evenly spaced cycles inside the churn window.
        let mut ends = vec![None; n];
        if let Some((start, end, departures, _)) = self.churn {
            let k = (departures * n as f64).round() as usize;
            let span = end - start;
            for i in 0..k.min(n) {
                let idx = (i * n) / k.max(1);
                let at = start + ((i as u64 + 1) * span) / (k as u64 + 1);
                ends[idx] = Some(RouterCycle(at.max(start + 1)));
            }
        }
        // Phase 3: materialize base connections with ramp/churn windows.
        for (i, &(input, output, class, bw, slots)) in base.iter().enumerate() {
            let start = RouterCycle(self.activation_of(n, i));
            // A connection must exist before it can depart.
            let end = ends[i].map(|e| RouterCycle(e.0.max(start.0 + 1)));
            Self::push_connection(
                &mut connections,
                &mut sources,
                &mut windows,
                &self.tb,
                rng,
                input,
                output,
                class,
                bw,
                slots,
                ActiveWindow { start, end },
            );
        }
        // Phase 4: churn arrivals — extra admissions on top of the base
        // target, starting at staggered cycles inside the window.
        if let Some((start, end, _, arrivals)) = self.churn {
            let m = (arrivals * n as f64).round() as usize;
            let span = end - start;
            let mut admitted = 0usize;
            let mut failures = 0;
            while admitted < m && failures < MAX_PLACEMENT_FAILURES {
                let (class, bw) = self.pick_class(rng);
                let input = rng.index(self.ports);
                let output = rng.index(self.ports);
                match cac.admit(input, output, bw, bw) {
                    Ok(slots) => {
                        admission.accepted += 1;
                        failures = 0;
                        let at = start + ((admitted as u64 + 1) * span) / (m as u64 + 1);
                        admitted += 1;
                        Self::push_connection(
                            &mut connections,
                            &mut sources,
                            &mut windows,
                            &self.tb,
                            rng,
                            input,
                            output,
                            class,
                            bw,
                            slots,
                            ActiveWindow {
                                start: RouterCycle(at),
                                end: None,
                            },
                        );
                    }
                    Err(_) => {
                        admission.rejected += 1;
                        failures += 1;
                    }
                }
            }
        }
        let per_input_load = (0..self.ports).map(|i| cac.input_load(i)).collect();
        Workload {
            connections,
            sources,
            windows,
            per_input_load,
            admission,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> TimeBase {
        TimeBase::default()
    }

    #[test]
    fn cbr_mix_hits_target_load() {
        let mut rng = SimRng::seed_from_u64(1);
        let w = CbrMixBuilder::new(4, tb(), RoundConfig::default())
            .target_load(0.7)
            .build(&mut rng);
        assert!(!w.is_empty());
        for (i, &load) in w.per_input_load.iter().enumerate() {
            assert!(
                (0.62..=0.78).contains(&load),
                "input {i} load {load} should be near 0.7"
            );
        }
        assert!((w.mean_load() - 0.7).abs() < 0.06);
    }

    #[test]
    fn cbr_mix_contains_all_classes() {
        let mut rng = SimRng::seed_from_u64(2);
        let w = CbrMixBuilder::new(4, tb(), RoundConfig::default())
            .target_load(0.8)
            .build(&mut rng);
        assert!(w.by_class(TrafficClass::CbrLow).count() > 0);
        assert!(w.by_class(TrafficClass::CbrMedium).count() > 0);
        assert!(w.by_class(TrafficClass::CbrHigh).count() > 0);
    }

    #[test]
    fn cbr_ids_are_dense_and_aligned() {
        let mut rng = SimRng::seed_from_u64(3);
        let w = CbrMixBuilder::new(2, tb(), RoundConfig::default())
            .target_load(0.4)
            .build(&mut rng);
        for (i, (spec, src)) in w.connections.iter().zip(&w.sources).enumerate() {
            assert_eq!(spec.id.idx(), i);
            assert_eq!(src.connection(), spec.id);
        }
    }

    #[test]
    fn cbr_destinations_within_ports() {
        let mut rng = SimRng::seed_from_u64(4);
        let w = CbrMixBuilder::new(4, tb(), RoundConfig::default())
            .target_load(0.6)
            .build(&mut rng);
        assert!(w.connections.iter().all(|c| c.output < 4 && c.input < 4));
        // Uniform destinations: every output is used at this load.
        let mut used = [false; 4];
        for c in &w.connections {
            used[c.output] = true;
        }
        assert!(used.iter().all(|&u| u));
    }

    #[test]
    fn cbr_reserved_slots_set() {
        let mut rng = SimRng::seed_from_u64(5);
        let w = CbrMixBuilder::new(2, tb(), RoundConfig::default())
            .target_load(0.3)
            .build(&mut rng);
        for c in &w.connections {
            assert!(c.reserved_slots >= 1);
            if c.class == TrafficClass::CbrHigh {
                assert_eq!(c.reserved_slots, 727);
            }
        }
    }

    #[test]
    fn vbr_mix_hits_target_load() {
        let mut rng = SimRng::seed_from_u64(6);
        let w = VbrMixBuilder::new(4, tb(), RoundConfig::default())
            .target_load(0.6)
            .gops(1)
            .build(&mut rng);
        assert!(!w.is_empty());
        assert!(
            (w.mean_load() - 0.6).abs() < 0.06,
            "mean load {}",
            w.mean_load()
        );
        assert!(w.connections.iter().all(|c| c.class == TrafficClass::Vbr));
    }

    #[test]
    fn vbr_sources_are_finite() {
        let mut rng = SimRng::seed_from_u64(7);
        let w = VbrMixBuilder::new(2, tb(), RoundConfig::default())
            .target_load(0.3)
            .gops(2)
            .build(&mut rng);
        for s in &w.sources {
            let total = s.total_flits().expect("VBR sources are finite");
            assert!(total > 0);
        }
    }

    #[test]
    fn vbr_bb_peak_covers_largest_frame() {
        let b = VbrMixBuilder::new(2, tb(), RoundConfig::default());
        let peak = b.bb_peak();
        let max_bits = standard_sequences()
            .iter()
            .map(|s| s.max_bits)
            .fold(0.0, f64::max);
        assert!((peak.as_bps() - max_bits / FRAME_TIME_SECS).abs() < 1.0);
    }

    #[test]
    fn vbr_enforce_peak_limits_admission() {
        let round = RoundConfig {
            cycles_per_round: 16_384,
            concurrency_factor: 1.5,
        };
        let mut rng_a = SimRng::seed_from_u64(8);
        let unconstrained = VbrMixBuilder::new(2, tb(), round)
            .target_load(0.8)
            .gops(1)
            .build(&mut rng_a);
        let mut rng_b = SimRng::seed_from_u64(8);
        let constrained = VbrMixBuilder::new(2, tb(), round)
            .target_load(0.8)
            .gops(1)
            .enforce_peak(true)
            .build(&mut rng_b);
        assert!(
            constrained.mean_load() < unconstrained.mean_load(),
            "peak test should limit admitted load: {} vs {}",
            constrained.mean_load(),
            unconstrained.mean_load()
        );
    }

    #[test]
    fn mix_builder_without_schedule_is_always_active() {
        let mut rng = SimRng::seed_from_u64(9);
        let w = MixWorkloadBuilder::new(4, tb(), RoundConfig::default())
            .target_load(0.6)
            .build(&mut rng);
        assert!(!w.is_empty());
        assert_eq!(w.windows.len(), w.connections.len());
        assert!(w.windows.iter().all(|&win| win == ActiveWindow::always()));
        assert_eq!(w.active_at(0), w.len());
        assert!((w.mean_load() - 0.6).abs() < 0.06);
    }

    #[test]
    fn mix_builder_ramp_counts_match_breakpoints() {
        let mut rng = SimRng::seed_from_u64(10);
        let steps = vec![(0u64, 0.25), (5_000u64, 0.5), (10_000u64, 1.0)];
        let w = MixWorkloadBuilder::new(4, tb(), RoundConfig::default())
            .target_load(0.7)
            .ramp(steps.clone())
            .build(&mut rng);
        let n = w.len();
        for &(at, fraction) in &steps {
            let expect = ((fraction * n as f64).round() as usize).min(n);
            assert_eq!(w.active_at(at), expect, "breakpoint at cycle {at}");
            if at > 0 {
                let before = steps
                    .iter()
                    .filter(|s| s.0 < at)
                    .map(|s| ((s.1 * n as f64).round() as usize).min(n))
                    .max()
                    .unwrap_or(0);
                assert_eq!(w.active_at(at - 1), before, "just before cycle {at}");
            }
        }
    }

    #[test]
    fn mix_builder_churn_departures_and_arrivals() {
        let mut rng = SimRng::seed_from_u64(11);
        let w = MixWorkloadBuilder::new(4, tb(), RoundConfig::default())
            .target_load(0.5)
            .churn(8_000, 16_000, 0.25, 0.25)
            .build(&mut rng);
        let departing = w.windows.iter().filter(|win| win.end.is_some()).count();
        let late_starts = w.windows.iter().filter(|win| win.start.0 > 0).count();
        assert!(departing > 0, "expected departures");
        assert!(late_starts > 0, "expected arrivals");
        for win in &w.windows {
            if let Some(end) = win.end {
                assert!(end.0 > win.start.0);
                assert!((8_000..=16_000).contains(&end.0));
            }
            if win.start.0 > 0 {
                assert!((8_000..=16_000).contains(&win.start.0));
            }
        }
        // Departures shrink the active population after the window.
        assert_eq!(w.active_at(20_000), w.len() - departing);
        // Departing sources stop emitting at their declared end.  A
        // `None` peek means the wrapper already reads as exhausted —
        // the source's first emission would land past its departure.
        for (win, src) in w.windows.iter().zip(&w.sources) {
            if let Some(end) = win.end {
                if let Some(next) = src.peek_next() {
                    assert!(next < end);
                }
            }
        }
    }

    #[test]
    fn mix_builder_is_deterministic() {
        let build = || {
            let mut rng = SimRng::seed_from_u64(12);
            MixWorkloadBuilder::new(4, tb(), RoundConfig::default())
                .target_load(0.6)
                .ramp(vec![(0, 0.5), (4_000, 1.0)])
                .churn(8_000, 12_000, 0.2, 0.1)
                .build(&mut rng)
        };
        let a = build();
        let b = build();
        assert_eq!(a.connections, b.connections);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.per_input_load, b.per_input_load);
        assert_eq!(a.admission, b.admission);
    }

    #[test]
    fn workload_is_deterministic() {
        let build = || {
            let mut rng = SimRng::seed_from_u64(42);
            CbrMixBuilder::new(4, tb(), RoundConfig::default())
                .target_load(0.5)
                .build(&mut rng)
        };
        let a = build();
        let b = build();
        assert_eq!(a.connections, b.connections);
        assert_eq!(a.per_input_load, b.per_input_load);
    }
}
