//! # mmr-traffic — traffic subsystem for the MMR reproduction
//!
//! Implements everything on the *source side* of Fig. 4 of the paper:
//!
//! * [`flit`] / [`connection`] — the flow-control unit and per-connection
//!   descriptors (QoS spec, reserved slots, input/output ports).
//! * [`cbr`] — constant-bit-rate sources for the paper's three CBR classes
//!   (64 Kbps / 1.54 Mbps / 55 Mbps).
//! * [`mpeg`] — the MPEG-2 video model: GOP structure `IBBPBBPBBPBBPBB`,
//!   per-sequence frame-size statistics, and a synthetic trace generator
//!   (the substitution for the paper's unavailable real traces, see
//!   DESIGN.md §3).
//! * [`injection`] — the Back-to-Back and Smooth-Rate injection models of
//!   Fig. 7.
//! * [`vbr`] — VBR sources that replay a trace through an injection model.
//! * [`besteffort`] — unreserved Poisson message traffic scavenging the
//!   residual bandwidth (the hybrid-switching goal of §1–2).
//! * [`path`] — multi-hop connection paths for the fabric extension:
//!   dimension-order mesh/torus routes, ring routes, and the host-link
//!   endpoint mapping (paper §6).
//! * [`admission`] — connection admission control: slot accounting per
//!   round for CBR, average + peak×concurrency-factor tests for VBR (§2
//!   "Connection Set up").
//! * [`calendar`] — per-connection next-injection caches backing the
//!   event-horizon engine's skip decisions (DESIGN.md §12).
//! * [`workload`] — builders that assemble admitted connection mixes hitting
//!   a target offered load, as used by every experiment in §5.

#![warn(missing_docs)]

pub mod admission;
pub mod besteffort;
pub mod calendar;
pub mod cbr;
pub mod connection;
pub mod flit;
pub mod injection;
pub mod mpeg;
pub mod path;
pub mod source;
pub mod vbr;
pub mod workload;

pub use admission::{AdmissionControl, AdmissionError, RoundConfig};
pub use besteffort::BestEffortSource;
pub use calendar::InjectionCalendar;
pub use cbr::CbrSource;
pub use connection::{ConnectionId, ConnectionKind, ConnectionSpec, QosSpec, TrafficClass};
pub use flit::{Flit, FrameRef};
pub use injection::InjectionModel;
pub use mpeg::{FrameType, MpegTrace, SequenceParams, GOP_PATTERN};
pub use source::TrafficSource;
pub use vbr::VbrSource;
pub use workload::{CbrMixBuilder, VbrMixBuilder, Workload};
