//! The flit — the MMR's flow-control unit.
//!
//! Flits are large (1024 bits by default) so arbitration and crossbar
//! reconfiguration are amortized; all buffering, flow control, and
//! scheduling operate on whole flits.

use crate::connection::ConnectionId;
use mmr_sim::time::RouterCycle;
use serde::{Deserialize, Serialize};

/// Position of a flit inside an application data unit (a video frame).
///
/// Only VBR flits carry a frame reference; the paper's frame-delay metric
/// (Fig. 9) is the delay of the *last* flit of each frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameRef {
    /// Zero-based frame index within the connection's trace.
    pub index: u32,
    /// True for the final flit of the frame.
    pub last: bool,
}

/// One flow-control unit travelling from a source, through the NIC and the
/// router, to an output link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning connection.
    pub connection: ConnectionId,
    /// Per-connection sequence number (0, 1, 2, …).
    pub seq: u64,
    /// Generation timestamp at the source, in router cycles.  Delay metrics
    /// are "since generation" (paper §5.1), so this is carried end to end.
    pub generated_at: RouterCycle,
    /// Frame bookkeeping for VBR flits; `None` for CBR.
    pub frame: Option<FrameRef>,
}

impl Flit {
    /// A CBR flit.
    pub fn cbr(connection: ConnectionId, seq: u64, generated_at: RouterCycle) -> Self {
        Flit {
            connection,
            seq,
            generated_at,
            frame: None,
        }
    }

    /// A VBR flit belonging to frame `index`; `last` marks the frame's
    /// final flit.
    pub fn vbr(
        connection: ConnectionId,
        seq: u64,
        generated_at: RouterCycle,
        index: u32,
        last: bool,
    ) -> Self {
        Flit {
            connection,
            seq,
            generated_at,
            frame: Some(FrameRef { index, last }),
        }
    }

    /// True if this flit closes a video frame.
    pub fn is_frame_end(&self) -> bool {
        self.frame.is_some_and(|f| f.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_flits_have_no_frame() {
        let f = Flit::cbr(ConnectionId(3), 7, RouterCycle(100));
        assert_eq!(f.frame, None);
        assert!(!f.is_frame_end());
        assert_eq!(f.seq, 7);
    }

    #[test]
    fn vbr_frame_end_detection() {
        let mid = Flit::vbr(ConnectionId(1), 0, RouterCycle(0), 4, false);
        let end = Flit::vbr(ConnectionId(1), 1, RouterCycle(0), 4, true);
        assert!(!mid.is_frame_end());
        assert!(end.is_frame_end());
        assert_eq!(end.frame.unwrap().index, 4);
    }
}
