//! The flit — the MMR's flow-control unit.
//!
//! Flits are large (1024 bits by default) so arbitration and crossbar
//! reconfiguration are amortized; all buffering, flow control, and
//! scheduling operate on whole flits.

use crate::connection::ConnectionId;
use mmr_sim::time::RouterCycle;
use serde::{Deserialize, Serialize};

/// Position of a flit inside an application data unit (a video frame).
///
/// Only VBR flits carry a frame reference; the paper's frame-delay metric
/// (Fig. 9) is the delay of the *last* flit of each frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameRef {
    /// Zero-based frame index within the connection's trace.
    pub index: u32,
    /// True for the final flit of the frame.
    pub last: bool,
}

/// One flow-control unit travelling from a source, through the NIC and the
/// router, to an output link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning connection.
    pub connection: ConnectionId,
    /// Per-connection sequence number (0, 1, 2, …).
    pub seq: u64,
    /// Generation timestamp at the source, in router cycles.  Delay metrics
    /// are "since generation" (paper §5.1), so this is carried end to end.
    pub generated_at: RouterCycle,
    /// Frame bookkeeping for VBR flits; `None` for CBR.
    pub frame: Option<FrameRef>,
    /// Header checksum, sealed at generation.  The router-ingress
    /// integrity check ([`Flit::integrity_ok`]) recomputes it to detect
    /// in-transit corruption injected by chaos experiments.
    pub crc: u16,
}

impl Flit {
    /// A CBR flit.
    pub fn cbr(connection: ConnectionId, seq: u64, generated_at: RouterCycle) -> Self {
        let mut f = Flit {
            connection,
            seq,
            generated_at,
            frame: None,
            crc: 0,
        };
        f.crc = f.compute_crc();
        f
    }

    /// A VBR flit belonging to frame `index`; `last` marks the frame's
    /// final flit.
    pub fn vbr(
        connection: ConnectionId,
        seq: u64,
        generated_at: RouterCycle,
        index: u32,
        last: bool,
    ) -> Self {
        let mut f = Flit {
            connection,
            seq,
            generated_at,
            frame: Some(FrameRef { index, last }),
            crc: 0,
        };
        f.crc = f.compute_crc();
        f
    }

    /// True if this flit closes a video frame.
    pub fn is_frame_end(&self) -> bool {
        self.frame.is_some_and(|f| f.last)
    }

    /// Header checksum over all non-CRC fields (a folded FNV-1a —
    /// standing in for the link-level CRC real hardware carries).
    fn compute_crc(&self) -> u16 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01B3);
        };
        mix(self.connection.0 as u64);
        mix(self.seq);
        mix(self.generated_at.0);
        match self.frame {
            Some(fr) => mix(((fr.index as u64) << 1) | fr.last as u64 | 1 << 40),
            None => mix(0),
        }
        (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16
    }

    /// True if the stored checksum matches the header fields.
    pub fn integrity_ok(&self) -> bool {
        self.crc == self.compute_crc()
    }

    /// Flip bits in transit (fault injection).  `salt` varies which bits
    /// flip; any value leaves the flit detectably corrupt.
    pub fn corrupt_in_transit(&mut self, salt: u16) {
        self.crc ^= salt | 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_flits_have_no_frame() {
        let f = Flit::cbr(ConnectionId(3), 7, RouterCycle(100));
        assert_eq!(f.frame, None);
        assert!(!f.is_frame_end());
        assert_eq!(f.seq, 7);
    }

    #[test]
    fn checksum_seals_at_construction_and_detects_corruption() {
        let mut f = Flit::vbr(ConnectionId(9), 3, RouterCycle(64), 2, true);
        assert!(f.integrity_ok());
        f.corrupt_in_transit(0);
        assert!(!f.integrity_ok(), "salt 0 must still flip at least one bit");
        let mut g = Flit::cbr(ConnectionId(1), 0, RouterCycle(0));
        g.corrupt_in_transit(0xBEEF);
        assert!(!g.integrity_ok());
        // Tampering with a header field without resealing is detected too.
        let mut h = Flit::cbr(ConnectionId(1), 0, RouterCycle(0));
        h.seq = 42;
        assert!(!h.integrity_ok());
    }

    #[test]
    fn vbr_frame_end_detection() {
        let mid = Flit::vbr(ConnectionId(1), 0, RouterCycle(0), 4, false);
        let end = Flit::vbr(ConnectionId(1), 1, RouterCycle(0), 4, true);
        assert!(!mid.is_frame_end());
        assert!(end.is_frame_end());
        assert_eq!(end.frame.unwrap().index, 4);
    }
}
