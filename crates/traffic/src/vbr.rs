//! VBR sources: an MPEG-2 trace replayed through an injection model.
//!
//! The source walks its trace frame by frame.  Frame `k` starts at
//! `start + k * frame_time`; its flits are emitted at times dictated by
//! the injection model and each flit's `generated_at` is its *emission*
//! time.  The paper measures frame delay as "the delay suffered by the
//! last flit from the frame, because in this way, the measure is
//! independent of the injection model used" (§5.2) — which requires the
//! per-flit clock to start at injection, not at the frame boundary.
//! Connections are randomly GOP-phase aligned via `start`.

use crate::connection::ConnectionId;
use crate::flit::Flit;
use crate::injection::InjectionModel;
use crate::mpeg::MpegTrace;
use crate::source::TrafficSource;
use mmr_sim::time::{RouterCycle, TimeBase};

/// A finite VBR flit source replaying one trace.
#[derive(Debug, Clone)]
pub struct VbrSource {
    connection: ConnectionId,
    trace: MpegTrace,
    model: InjectionModel,
    tb: TimeBase,
    frame_time_rc: f64,
    start_rc: f64,
    // cursor
    frame_idx: usize,
    flit_in_frame: u64,
    seq: u64,
    total: u64,
}

impl VbrSource {
    /// Create a source that starts its first frame at `start`.
    pub fn new(
        connection: ConnectionId,
        trace: MpegTrace,
        model: InjectionModel,
        start: RouterCycle,
        tb: &TimeBase,
    ) -> Self {
        assert!(!trace.is_empty(), "trace must contain frames");
        let frame_time_rc = crate::mpeg::FRAME_TIME_SECS / tb.router_cycle_secs();
        let total = trace.total_flits();
        VbrSource {
            connection,
            trace,
            model,
            tb: *tb,
            frame_time_rc,
            start_rc: start.0 as f64,
            frame_idx: 0,
            flit_in_frame: 0,
            seq: 0,
            total,
        }
    }

    /// The replayed trace.
    pub fn trace(&self) -> &MpegTrace {
        &self.trace
    }

    /// Emission time (f64 router cycles) of flit `j` of frame `k`.
    fn emission_time(&self, k: usize, j: u64) -> f64 {
        let frame = &self.trace.frames[k];
        let iat = self
            .model
            .iat_router_cycles(frame.flits, self.frame_time_rc, &self.tb);
        self.start_rc + k as f64 * self.frame_time_rc + j as f64 * iat
    }

    /// Start of frame `k`'s injection window (the frame-time boundary).
    pub fn frame_boundary(&self, k: usize) -> RouterCycle {
        RouterCycle((self.start_rc + k as f64 * self.frame_time_rc).round() as u64)
    }
}

impl TrafficSource for VbrSource {
    fn connection(&self) -> ConnectionId {
        self.connection
    }

    fn peek_next(&self) -> Option<RouterCycle> {
        if self.frame_idx >= self.trace.len() {
            return None;
        }
        Some(RouterCycle(
            self.emission_time(self.frame_idx, self.flit_in_frame)
                .round() as u64,
        ))
    }

    fn emit(&mut self) -> Flit {
        assert!(self.frame_idx < self.trace.len(), "source exhausted");
        let k = self.frame_idx;
        let frame_flits = self.trace.frames[k].flits;
        let last = self.flit_in_frame + 1 == frame_flits;
        let emitted = RouterCycle(self.emission_time(k, self.flit_in_frame).round() as u64);
        let flit = Flit::vbr(self.connection, self.seq, emitted, k as u32, last);
        self.seq += 1;
        self.flit_in_frame += 1;
        if last {
            self.frame_idx += 1;
            self.flit_in_frame = 0;
        }
        flit
    }

    fn total_flits(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpeg::{standard_sequences, FRAME_TIME_SECS};
    use mmr_sim::rng::SimRng;

    fn source(model: InjectionModel, start: u64) -> VbrSource {
        let tb = TimeBase::default();
        let mut rng = SimRng::seed_from_u64(5);
        let trace = MpegTrace::generate(&standard_sequences()[0], 2, &tb, &mut rng);
        VbrSource::new(ConnectionId(0), trace, model, RouterCycle(start), &tb)
    }

    fn drain_all(s: &mut VbrSource) -> Vec<Flit> {
        let mut out = Vec::new();
        while s.peek_next().is_some() {
            out.push(s.emit());
        }
        out
    }

    #[test]
    fn emits_exactly_trace_flits() {
        let mut s = source(InjectionModel::SmoothRate, 0);
        let expected = s.total_flits().unwrap();
        let flits = drain_all(&mut s);
        assert_eq!(flits.len() as u64, expected);
        // Sequence numbers are dense.
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
        }
    }

    #[test]
    fn one_last_flit_per_frame() {
        let mut s = source(InjectionModel::SmoothRate, 0);
        let n_frames = s.trace().len();
        let flits = drain_all(&mut s);
        let lasts = flits.iter().filter(|f| f.is_frame_end()).count();
        assert_eq!(lasts, n_frames);
        // Frame indices are non-decreasing and cover 0..n_frames.
        let max_idx = flits.iter().map(|f| f.frame.unwrap().index).max().unwrap();
        assert_eq!(max_idx as usize, n_frames - 1);
    }

    #[test]
    fn generation_timestamps_equal_emission_times() {
        // A flit's clock starts when the source injects it (§5.2's
        // injection-model-independent frame-delay definition).
        let mut s = source(InjectionModel::SmoothRate, 1000);
        while let Some(t) = s.peek_next() {
            let f = s.emit();
            assert_eq!(f.generated_at, t);
        }
    }

    #[test]
    fn frame_boundaries_are_spaced_by_frame_time() {
        let tb = TimeBase::default();
        let ft_rc = FRAME_TIME_SECS / tb.router_cycle_secs();
        let s = source(InjectionModel::SmoothRate, 1000);
        for k in 0..s.trace().len() {
            let expected = (1000.0 + k as f64 * ft_rc).round() as u64;
            assert_eq!(s.frame_boundary(k).0, expected);
        }
    }

    #[test]
    fn sr_emissions_stay_within_frame_time() {
        let tb = TimeBase::default();
        let ft_rc = FRAME_TIME_SECS / tb.router_cycle_secs();
        let mut s = source(InjectionModel::SmoothRate, 0);
        let mut emissions: Vec<(u32, u64)> = Vec::new(); // (frame, time)
        while let Some(t) = s.peek_next() {
            let f = s.emit();
            emissions.push((f.frame.unwrap().index, t.0));
        }
        for (frame, t) in emissions {
            let fstart = frame as f64 * ft_rc;
            assert!(
                (t as f64) >= fstart - 1.0 && (t as f64) < fstart + ft_rc + 1.0,
                "frame {frame} flit at {t} outside [{fstart}, {})",
                fstart + ft_rc
            );
        }
    }

    #[test]
    fn bb_bursts_then_idles() {
        let tb = TimeBase::default();
        // Peak sized for a much larger frame than any in the trace, so
        // bursts finish well before the frame time ends.
        let model = InjectionModel::back_to_back_for(5000, FRAME_TIME_SECS, &tb);
        let ft_rc = FRAME_TIME_SECS / tb.router_cycle_secs();
        let mut s = source(model, 0);
        let mut times_frame0 = Vec::new();
        while let Some(t) = s.peek_next() {
            let f = s.emit();
            if f.frame.unwrap().index == 0 {
                times_frame0.push(t.0);
            } else {
                break;
            }
        }
        let span = (times_frame0[times_frame0.len() - 1] - times_frame0[0]) as f64;
        assert!(
            span < 0.5 * ft_rc,
            "BB burst should finish early, span {span} of {ft_rc}"
        );
        // And the gaps are uniform (constant peak IAT).
        let gaps: Vec<u64> = times_frame0.windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (gaps.iter().min().unwrap(), gaps.iter().max().unwrap());
        assert!(max - min <= 1, "gaps {min}..{max}");
    }

    #[test]
    fn emission_times_are_monotone() {
        for model in [
            InjectionModel::SmoothRate,
            InjectionModel::back_to_back_for(2000, FRAME_TIME_SECS, &TimeBase::default()),
        ] {
            let mut s = source(model, 123);
            let mut last = 0;
            while let Some(t) = s.peek_next() {
                assert!(t.0 >= last, "time went backwards: {} < {last}", t.0);
                last = t.0;
                s.emit();
            }
        }
    }
}
