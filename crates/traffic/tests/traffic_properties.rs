//! Property-based tests for the traffic subsystem.

use mmr_sim::rng::SimRng;
use mmr_sim::time::{RouterCycle, TimeBase};
use mmr_sim::units::Bandwidth;
use mmr_traffic::admission::{AdmissionControl, RoundConfig};
use mmr_traffic::cbr::CbrSource;
use mmr_traffic::connection::ConnectionId;
use mmr_traffic::injection::InjectionModel;
use mmr_traffic::mpeg::{standard_sequences, MpegTrace, GOP_PATTERN};
use mmr_traffic::source::TrafficSource;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cbr_rate_matches_bandwidth(kbps in 64.0f64..100_000.0, phase in 0u64..1_000_000) {
        let tb = TimeBase::default();
        let bw = Bandwidth::kbps(kbps);
        let mut src = CbrSource::new(ConnectionId(0), bw, RouterCycle(phase), &tb);
        // Emit 500 flits; the span must equal 499 x IAT (within rounding).
        let first = src.peek_next().unwrap().0;
        let mut last = first;
        for _ in 0..500 {
            last = src.emit().generated_at.0;
        }
        let expected_span = 499.0 * tb.flit_iat_router_cycles(bw.as_bps());
        let span = (last - first) as f64;
        prop_assert!(
            (span - expected_span).abs() <= 500.0,
            "span {span} vs expected {expected_span}"
        );
    }

    #[test]
    fn cbr_timestamps_never_decrease(kbps in 64.0f64..1_000_000.0, seed in 0u64..100) {
        let tb = TimeBase::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let phase = RouterCycle(rng.below(10_000_000));
        let mut src = CbrSource::new(ConnectionId(0), Bandwidth::kbps(kbps), phase, &tb);
        let mut last = 0;
        for _ in 0..200 {
            let t = src.peek_next().unwrap().0;
            prop_assert!(t >= last);
            prop_assert_eq!(src.emit().generated_at.0, t);
            last = t;
        }
    }

    #[test]
    fn mpeg_traces_respect_bounds(seq_idx in 0usize..7, gops in 1usize..8, seed in 0u64..500) {
        let params = &standard_sequences()[seq_idx];
        let tb = TimeBase::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let trace = MpegTrace::generate(params, gops, &tb, &mut rng);
        prop_assert_eq!(trace.len(), gops * GOP_PATTERN.len());
        for f in &trace.frames {
            prop_assert!(f.bits as f64 >= params.min_bits);
            prop_assert!(f.bits as f64 <= params.max_bits);
            prop_assert!(f.flits >= 1);
            prop_assert!(f.flits * 1024 >= f.bits);
            prop_assert!((f.flits - 1) * 1024 < f.bits);
        }
        let s = trace.stats();
        prop_assert!(s.min_bits as f64 <= s.avg_bits && s.avg_bits <= s.max_bits as f64);
    }

    #[test]
    fn sr_injection_covers_frame_time(flits in 1u64..5_000) {
        let tb = TimeBase::default();
        let frame_rc = 0.033 / tb.router_cycle_secs();
        let iat = InjectionModel::SmoothRate.iat_router_cycles(flits, frame_rc, &tb);
        prop_assert!((iat * flits as f64 - frame_rc).abs() < 1e-6);
    }

    #[test]
    fn bb_peak_always_fits_its_design_frame(max_flits in 1u64..10_000) {
        let tb = TimeBase::default();
        let model = InjectionModel::back_to_back_for(max_flits, 0.033, &tb);
        let frame_rc = 0.033 / tb.router_cycle_secs();
        let iat = model.iat_router_cycles(max_flits, frame_rc, &tb);
        prop_assert!(iat * max_flits as f64 <= frame_rc * 1.0001);
    }

    #[test]
    fn admission_never_overbooks(
        requests in proptest::collection::vec(
            (0usize..4, 0usize..4, 10_000.0f64..200e6), 1..200),
    ) {
        let tb = TimeBase::default();
        let round = RoundConfig::default();
        let mut cac = AdmissionControl::new(4, round, tb);
        let mut booked_in = [0u64; 4];
        let mut booked_out = [0u64; 4];
        for (input, output, bps) in requests {
            let bw = Bandwidth::bps(bps);
            let slots = round.slots_for(bw, &tb);
            match cac.admit(input, output, bw, bw) {
                Ok(granted) => {
                    prop_assert_eq!(granted, slots);
                    booked_in[input] += slots;
                    booked_out[output] += slots;
                }
                Err(_) => {
                    // Rejection must be genuine: admitting would exceed a
                    // round on one side.
                    prop_assert!(
                        booked_in[input] + slots > round.cycles_per_round
                            || booked_out[output] + slots > round.cycles_per_round
                    );
                }
            }
            prop_assert!(booked_in.iter().all(|&b| b <= round.cycles_per_round));
            prop_assert!(booked_out.iter().all(|&b| b <= round.cycles_per_round));
        }
    }

    #[test]
    fn slots_cover_requested_bandwidth(bps in 1.0f64..1.24e9) {
        let tb = TimeBase::default();
        let round = RoundConfig::default();
        let slots = round.slots_for(Bandwidth::bps(bps), &tb);
        let slot_bw = round.slot_bandwidth(&tb).as_bps();
        prop_assert!(slots as f64 * slot_bw >= bps - 1e-6);
        prop_assert!((slots as f64 - 1.0) * slot_bw < bps);
    }
}
