//! Output links and delivery sinks.
//!
//! In the single-router configuration, flits leaving the crossbar traverse
//! the output link (one flit per flit cycle, guaranteed by the matching's
//! one-grant-per-output invariant) and are consumed by the destination
//! host.  This module accounts per-port delivery and hands flits to the
//! metrics collector.

use mmr_sim::time::RouterCycle;
use mmr_traffic::flit::Flit;

/// A delivered flit with its delivery timestamp.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// The flit.
    pub flit: Flit,
    /// Output port it left on.
    pub output: usize,
    /// Delivery time (router cycles): crossbar grant + crossing latency.
    pub delivered_at: RouterCycle,
}

impl Delivery {
    /// End-to-end delay since generation, in router cycles.
    pub fn delay(&self) -> RouterCycle {
        self.delivered_at.saturating_sub(self.flit.generated_at)
    }
}

/// Per-output-port delivery counters.
#[derive(Debug, Clone)]
pub struct OutputPorts {
    delivered: Vec<u64>,
}

impl OutputPorts {
    /// Counters for `ports` output links.
    pub fn new(ports: usize) -> Self {
        OutputPorts {
            delivered: vec![0; ports],
        }
    }

    /// Record one delivery.
    pub fn record(&mut self, output: usize) {
        self.delivered[output] += 1;
    }

    /// Flits delivered per port.
    pub fn per_port(&self) -> &[u64] {
        &self.delivered
    }

    /// Total flits delivered.
    pub fn total(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Reset counters.
    pub fn reset(&mut self) {
        self.delivered.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_traffic::connection::ConnectionId;

    #[test]
    fn delay_is_delivery_minus_generation() {
        let d = Delivery {
            flit: Flit::cbr(ConnectionId(0), 0, RouterCycle(100)),
            output: 1,
            delivered_at: RouterCycle(164),
        };
        assert_eq!(d.delay(), RouterCycle(64));
    }

    #[test]
    fn counters_accumulate_per_port() {
        let mut out = OutputPorts::new(3);
        out.record(0);
        out.record(2);
        out.record(2);
        assert_eq!(out.per_port(), &[1, 0, 2]);
        assert_eq!(out.total(), 3);
        out.reset();
        assert_eq!(out.total(), 0);
    }
}
