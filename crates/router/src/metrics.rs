//! Metrics collection: the paper's QoS measures.
//!
//! * **Flit delay since generation** (Fig. 5) — per traffic class.
//! * **Frame delay since generation** (Fig. 9) — the delay of the *last*
//!   flit of each video frame, independent of injection model.
//! * **Frame jitter** (§5.2) — delay variation between adjacent frames of
//!   the same connection.
//! * Throughput per class and aggregate (generated vs delivered flits).

use crate::output::Delivery;
use mmr_sim::stats::{JitterTracker, LogHistogram, Running};
use mmr_sim::time::TimeBase;
use mmr_traffic::connection::TrafficClass;
use serde::{Deserialize, Serialize};

/// Number of traffic classes (the length of [`ALL_CLASSES`]).
pub const CLASS_COUNT: usize = 5;

/// Dense index of `class` within [`ALL_CLASSES`].
pub fn class_index(class: TrafficClass) -> usize {
    match class {
        TrafficClass::CbrLow => 0,
        TrafficClass::CbrMedium => 1,
        TrafficClass::CbrHigh => 2,
        TrafficClass::Vbr => 3,
        TrafficClass::BestEffort => 4,
    }
}

/// All traffic classes in index order.
pub const ALL_CLASSES: [TrafficClass; CLASS_COUNT] = [
    TrafficClass::CbrLow,
    TrafficClass::CbrMedium,
    TrafficClass::CbrHigh,
    TrafficClass::Vbr,
    TrafficClass::BestEffort,
];

#[derive(Debug, Clone)]
struct ClassAccumulator {
    delay: Running,
    hist: LogHistogram,
    generated: u64,
    delivered: u64,
}

impl ClassAccumulator {
    fn new() -> Self {
        ClassAccumulator {
            delay: Running::new(),
            hist: LogHistogram::new(3),
            generated: 0,
            delivered: 0,
        }
    }
}

/// Live metrics accumulator owned by the router.
#[derive(Debug)]
pub struct MetricsCollector {
    tb: TimeBase,
    classes: Vec<ClassAccumulator>,
    frame_delay: Running,
    frame_hist: LogHistogram,
    frames_delivered: u64,
    jitter_per_conn: Vec<JitterTracker>,
    delivered_per_conn: Vec<u64>,
    delay_per_conn: Vec<Running>,
    /// Per-connection QoS delay bound (router cycles); deliveries slower
    /// than this count as violations.  `None` disables the accounting.
    delay_bound_rc: Option<u64>,
    violations_per_conn: Vec<u64>,
}

impl MetricsCollector {
    /// Collector for `connections` connections.
    pub fn new(connections: usize, tb: TimeBase) -> Self {
        MetricsCollector {
            tb,
            classes: (0..CLASS_COUNT).map(|_| ClassAccumulator::new()).collect(),
            frame_delay: Running::new(),
            frame_hist: LogHistogram::new(3),
            frames_delivered: 0,
            jitter_per_conn: (0..connections).map(|_| JitterTracker::new()).collect(),
            delivered_per_conn: vec![0; connections],
            delay_per_conn: (0..connections).map(|_| Running::new()).collect(),
            delay_bound_rc: None,
            violations_per_conn: vec![0; connections],
        }
    }

    /// Set (or clear) the per-connection QoS delay bound, in router
    /// cycles.  Survives [`MetricsCollector::reset`].
    pub fn set_delay_bound(&mut self, bound_rc: Option<u64>) {
        self.delay_bound_rc = bound_rc;
    }

    /// Record a generated flit.
    pub fn record_generated(&mut self, class: TrafficClass) {
        self.classes[class_index(class)].generated += 1;
    }

    /// Record a delivered flit (and, for frame-closing flits, the frame
    /// delay and jitter sample).
    pub fn record_delivery(&mut self, delivery: &Delivery, class: TrafficClass) {
        let delay_rc = delivery.delay().0;
        let acc = &mut self.classes[class_index(class)];
        acc.delivered += 1;
        acc.delay.push(delay_rc as f64);
        acc.hist.record(delay_rc);
        let conn_idx = delivery.flit.connection.idx();
        self.delivered_per_conn[conn_idx] += 1;
        self.delay_per_conn[conn_idx].push(delay_rc as f64);
        if self.delay_bound_rc.is_some_and(|b| delay_rc > b) {
            self.violations_per_conn[conn_idx] += 1;
        }
        if delivery.flit.is_frame_end() {
            self.frame_delay.push(delay_rc as f64);
            self.frame_hist.record(delay_rc);
            self.frames_delivered += 1;
            let conn = delivery.flit.connection.idx();
            self.jitter_per_conn[conn].record_delay(delay_rc as f64);
        }
    }

    /// Reset all statistics (start of measurement window).
    pub fn reset(&mut self) {
        let n = self.jitter_per_conn.len();
        let bound = self.delay_bound_rc;
        *self = MetricsCollector::new(n, self.tb);
        self.delay_bound_rc = bound;
    }

    /// Flits delivered per connection during measurement.
    pub fn delivered_per_connection(&self) -> &[u64] {
        &self.delivered_per_conn
    }

    /// Delay-bound violations per connection during measurement (all
    /// zero unless a bound was set with
    /// [`MetricsCollector::set_delay_bound`]).
    pub fn violations_per_connection(&self) -> &[u64] {
        &self.violations_per_conn
    }

    /// Mean delay per connection, in microseconds (`None` for connections
    /// that delivered nothing).
    pub fn mean_delay_per_connection_us(&self) -> Vec<Option<f64>> {
        self.delay_per_conn
            .iter()
            .map(|r| (r.count() > 0).then(|| r.mean() * self.tb.router_cycle_secs() * 1e6))
            .collect()
    }

    /// Jain's fairness index over per-connection throughput normalized by
    /// `weights` (e.g. reserved slots): `(Σ x)² / (n · Σ x²)` with
    /// `x_i = delivered_i / weight_i`.  1.0 = perfectly
    /// reservation-proportional service; → 1/n as service concentrates on
    /// one connection.  Connections with zero weight are skipped.
    pub fn jain_fairness(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.delivered_per_conn.len());
        let xs: Vec<f64> = self
            .delivered_per_conn
            .iter()
            .zip(weights)
            .filter(|(_, &w)| w > 0.0)
            .map(|(&d, &w)| d as f64 / w)
            .collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (xs.len() as f64 * sum_sq)
    }

    /// Snapshot the accumulated statistics.
    pub fn report(&self) -> MetricsReport {
        let to_us = |rc: f64| rc * self.tb.router_cycle_secs() * 1e6;
        let classes = ALL_CLASSES
            .iter()
            .zip(&self.classes)
            .filter(|(_, acc)| acc.generated > 0 || acc.delivered > 0)
            .map(|(&class, acc)| ClassStats {
                class,
                generated: acc.generated,
                delivered: acc.delivered,
                mean_delay_us: to_us(acc.delay.mean()),
                p99_delay_us: acc
                    .hist
                    .quantile(0.99)
                    .map(|v| to_us(v as f64))
                    .unwrap_or(0.0),
                max_delay_us: acc.delay.max().map(to_us).unwrap_or(0.0),
            })
            .collect();
        // Aggregate jitter over connections that produced samples.
        let mut jitter = Running::new();
        let mut jitter_hist = LogHistogram::new(3);
        for t in &self.jitter_per_conn {
            jitter.merge(t.stats());
            jitter_hist.merge(t.histogram());
        }
        MetricsReport {
            classes,
            qos_violations: self.violations_per_conn.iter().sum(),
            frames_delivered: self.frames_delivered,
            mean_frame_delay_us: to_us(self.frame_delay.mean()),
            max_frame_delay_us: self.frame_delay.max().map(to_us).unwrap_or(0.0),
            p99_frame_delay_us: self
                .frame_hist
                .quantile(0.99)
                .map(|v| to_us(v as f64))
                .unwrap_or(0.0),
            mean_frame_jitter_us: to_us(jitter.mean()),
            p99_frame_jitter_us: jitter_hist
                .quantile(0.99)
                .map(|v| to_us(v as f64))
                .unwrap_or(0.0),
            max_frame_jitter_us: jitter.max().map(to_us).unwrap_or(0.0),
        }
    }
}

/// Per-class delay/throughput statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Traffic class.
    pub class: TrafficClass,
    /// Flits generated during measurement.
    pub generated: u64,
    /// Flits delivered during measurement.
    pub delivered: u64,
    /// Mean flit delay since generation, microseconds.
    pub mean_delay_us: f64,
    /// 99th-percentile flit delay, microseconds.
    pub p99_delay_us: f64,
    /// Maximum flit delay, microseconds.
    pub max_delay_us: f64,
}

/// Snapshot of all QoS metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Per-class statistics (classes with traffic only).
    pub classes: Vec<ClassStats>,
    /// Deliveries that exceeded the configured QoS delay bound (0 when no
    /// bound is set; see [`MetricsCollector::set_delay_bound`]).
    pub qos_violations: u64,
    /// Video frames fully delivered.
    pub frames_delivered: u64,
    /// Mean frame delay since generation, microseconds.
    pub mean_frame_delay_us: f64,
    /// Maximum frame delay, microseconds.
    pub max_frame_delay_us: f64,
    /// 99th-percentile frame delay, microseconds.
    pub p99_frame_delay_us: f64,
    /// Mean frame jitter, microseconds.
    pub mean_frame_jitter_us: f64,
    /// 99th-percentile frame jitter, microseconds (histogram-backed).
    pub p99_frame_jitter_us: f64,
    /// Maximum frame jitter, microseconds.
    pub max_frame_jitter_us: f64,
}

impl MetricsReport {
    /// Statistics for one class, if present.
    pub fn class(&self, class: TrafficClass) -> Option<&ClassStats> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Delivered / generated across all classes (1.0 when the router kept
    /// up; < 1.0 when flits are still queued at measurement end).
    pub fn delivery_ratio(&self) -> f64 {
        let gen: u64 = self.classes.iter().map(|c| c.generated).sum();
        let del: u64 = self.classes.iter().map(|c| c.delivered).sum();
        if gen == 0 {
            1.0
        } else {
            del as f64 / gen as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_sim::time::RouterCycle;
    use mmr_traffic::connection::ConnectionId;
    use mmr_traffic::flit::Flit;

    fn delivery(conn: u32, gen: u64, del: u64, frame_end: Option<u32>) -> Delivery {
        let flit = match frame_end {
            Some(idx) => Flit::vbr(ConnectionId(conn), 0, RouterCycle(gen), idx, true),
            None => Flit::cbr(ConnectionId(conn), 0, RouterCycle(gen)),
        };
        Delivery {
            flit,
            output: 0,
            delivered_at: RouterCycle(del),
        }
    }

    #[test]
    fn per_class_separation() {
        let mut m = MetricsCollector::new(4, TimeBase::default());
        m.record_generated(TrafficClass::CbrLow);
        m.record_generated(TrafficClass::CbrHigh);
        m.record_delivery(&delivery(0, 0, 64, None), TrafficClass::CbrLow);
        m.record_delivery(&delivery(1, 0, 128, None), TrafficClass::CbrHigh);
        let r = m.report();
        assert_eq!(r.classes.len(), 2);
        let low = r.class(TrafficClass::CbrLow).unwrap();
        let high = r.class(TrafficClass::CbrHigh).unwrap();
        assert!((low.mean_delay_us - 0.8258).abs() < 0.01);
        assert!((high.mean_delay_us - 2.0 * low.mean_delay_us).abs() < 0.01);
        assert!(r.class(TrafficClass::Vbr).is_none());
    }

    #[test]
    fn frame_metrics_only_from_frame_ends() {
        let mut m = MetricsCollector::new(2, TimeBase::default());
        m.record_delivery(&delivery(0, 0, 100, None), TrafficClass::Vbr);
        assert_eq!(m.report().frames_delivered, 0);
        m.record_delivery(&delivery(0, 0, 100, Some(0)), TrafficClass::Vbr);
        m.record_delivery(&delivery(0, 50, 250, Some(1)), TrafficClass::Vbr);
        let r = m.report();
        assert_eq!(r.frames_delivered, 2);
        // Frame delays: 100 and 200 rc -> jitter sample |200 - 100| = 100.
        let us = |rc: f64| rc * TimeBase::default().router_cycle_secs() * 1e6;
        assert!((r.mean_frame_delay_us - us(150.0)).abs() < 1e-9);
        assert!((r.mean_frame_jitter_us - us(100.0)).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_per_connection() {
        let mut m = MetricsCollector::new(2, TimeBase::default());
        // Connection 0 delivers two frames with equal delay -> jitter 0.
        m.record_delivery(&delivery(0, 0, 100, Some(0)), TrafficClass::Vbr);
        m.record_delivery(&delivery(0, 10, 110, Some(1)), TrafficClass::Vbr);
        // Connection 1 delivers one frame -> no jitter sample.
        m.record_delivery(&delivery(1, 0, 999, Some(0)), TrafficClass::Vbr);
        let r = m.report();
        assert_eq!(
            r.mean_frame_jitter_us, 0.0,
            "cross-connection deltas must not leak"
        );
    }

    #[test]
    fn delivery_ratio() {
        let mut m = MetricsCollector::new(1, TimeBase::default());
        for _ in 0..10 {
            m.record_generated(TrafficClass::CbrLow);
        }
        for _ in 0..7 {
            m.record_delivery(&delivery(0, 0, 64, None), TrafficClass::CbrLow);
        }
        assert!((m.report().delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MetricsCollector::new(1, TimeBase::default());
        m.record_generated(TrafficClass::CbrLow);
        m.record_delivery(&delivery(0, 0, 64, Some(0)), TrafficClass::Vbr);
        m.reset();
        let r = m.report();
        assert!(r.classes.is_empty());
        assert_eq!(r.frames_delivered, 0);
    }

    #[test]
    fn per_connection_accounting() {
        let mut m = MetricsCollector::new(3, TimeBase::default());
        m.record_delivery(&delivery(0, 0, 64, None), TrafficClass::CbrLow);
        m.record_delivery(&delivery(0, 0, 128, None), TrafficClass::CbrLow);
        m.record_delivery(&delivery(2, 0, 64, None), TrafficClass::CbrHigh);
        assert_eq!(m.delivered_per_connection(), &[2, 0, 1]);
        let delays = m.mean_delay_per_connection_us();
        assert!(delays[0].unwrap() > 0.0);
        assert!(delays[1].is_none());
    }

    #[test]
    fn delay_bound_violations_counted_per_connection() {
        let mut m = MetricsCollector::new(2, TimeBase::default());
        m.set_delay_bound(Some(100));
        m.record_delivery(&delivery(0, 0, 64, None), TrafficClass::CbrLow); // within
        m.record_delivery(&delivery(0, 0, 150, None), TrafficClass::CbrLow); // violation
        m.record_delivery(&delivery(1, 0, 101, None), TrafficClass::CbrHigh); // violation
        assert_eq!(m.violations_per_connection(), &[1, 1]);
        assert_eq!(m.report().qos_violations, 2);
        // The bound survives a measurement reset.
        m.reset();
        assert_eq!(m.report().qos_violations, 0);
        m.record_delivery(&delivery(1, 0, 500, None), TrafficClass::CbrHigh);
        assert_eq!(m.report().qos_violations, 1);
    }

    #[test]
    fn no_bound_means_no_violations() {
        let mut m = MetricsCollector::new(1, TimeBase::default());
        m.record_delivery(&delivery(0, 0, 1_000_000, None), TrafficClass::CbrLow);
        assert_eq!(m.report().qos_violations, 0);
    }

    #[test]
    fn jain_index_bounds() {
        let mut m = MetricsCollector::new(4, TimeBase::default());
        // Proportional service: delivered_i == weight_i -> index 1.
        for (conn, n) in [(0u32, 1), (1, 2), (2, 3), (3, 4)] {
            for _ in 0..n {
                m.record_delivery(&delivery(conn, 0, 64, None), TrafficClass::CbrLow);
            }
        }
        let fair = m.jain_fairness(&[1.0, 2.0, 3.0, 4.0]);
        assert!(
            (fair - 1.0).abs() < 1e-12,
            "proportional -> 1.0, got {fair}"
        );
        // All service to one of four equal-weight connections -> 1/4.
        let skewed = m.jain_fairness(&[0.0, 0.0, 3.0, 0.0]);
        assert_eq!(skewed, 1.0, "single weighted connection is trivially fair");
        let mut m2 = MetricsCollector::new(4, TimeBase::default());
        for _ in 0..8 {
            m2.record_delivery(&delivery(0, 0, 64, None), TrafficClass::CbrLow);
        }
        let idx = m2.jain_fairness(&[1.0, 1.0, 1.0, 1.0]);
        assert!((idx - 0.25).abs() < 1e-12, "fully skewed -> 1/n, got {idx}");
    }

    #[test]
    fn jain_index_empty_is_one() {
        let m = MetricsCollector::new(2, TimeBase::default());
        assert_eq!(m.jain_fairness(&[1.0, 1.0]), 1.0);
        let m0 = MetricsCollector::new(0, TimeBase::default());
        assert_eq!(m0.jain_fairness(&[]), 1.0);
    }

    #[test]
    fn empty_report_is_sane() {
        let m = MetricsCollector::new(0, TimeBase::default());
        let r = m.report();
        assert_eq!(r.delivery_ratio(), 1.0);
        assert_eq!(r.mean_frame_delay_us, 0.0);
        assert_eq!(r.max_frame_jitter_us, 0.0);
    }
}
