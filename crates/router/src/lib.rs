//! # mmr-router — the Multimedia Router model
//!
//! A cycle-accurate model of the single-router configuration the paper
//! evaluates (Fig. 4): traffic sources feed per-connection **NIC** queues
//! (infinite — host memory backs them); a demand-driven round-robin link
//! controller forwards flits over the input link, gated by **credit-based
//! flow control**, into small per-connection **virtual-channel buffers**
//! inside the router; every flit cycle the **link scheduler** offers the
//! k highest-priority head flits per input to the **switch scheduler**,
//! and matched flits cross the multiplexed **crossbar** to their output
//! links synchronously.
//!
//! Module map:
//!
//! * [`config`] — router geometry and timing knobs.
//! * [`vcmem`] — the virtual-channel memory (bounded per-VC FIFOs with an
//!   interleaved-RAM-bank occupancy model, Fig. 2).
//! * [`credit`] — NIC-side credit counters.
//! * [`fault`] — deterministic fault injection (corruption, loss, stalls,
//!   rogue sources) and the matching recovery machinery: ingress
//!   checksums, a credit watchdog, and contract-policing quarantine.
//! * [`nic`] — per-connection infinite queues + demand-driven round-robin
//!   link controller.
//! * [`link_scheduler`] — candidate selection with pluggable priority
//!   biasing (SIABP et al.).
//! * [`crossbar`] — crossbar traversal and utilization accounting.
//! * [`output`] — output-link sinks and per-port delivery counters.
//! * [`metrics`] — per-class flit delay, frame delay/jitter, throughput.
//! * [`telemetry`] — opt-in observability: counters, per-stage cycle
//!   profiling, an arbitration flight recorder, and windowed per-class
//!   snapshots, all free when disarmed and deterministic when armed.
//! * [`router`] — [`router::MmrRouter`], the top-level
//!   [`mmr_sim::CycleModel`] tying the pipeline together.
//! * [`fabric`] — the sharded multi-router fabric (paper §6 future
//!   work): line/ring/mesh/torus topologies of MMRs with dimension-order
//!   routing, epoch-batched boundary exchange, and deterministic
//!   multi-worker execution.
//! * [`network`] — the original line-of-MMRs extension, now a thin
//!   wrapper over a line-topology [`fabric`].
//! * [`holfifo`] — the rejected single-FIFO-per-input design, reproducing
//!   Karol et al.'s 58.6 % HOL-blocking limit that motivates the MMR's
//!   per-connection virtual channels.

#![warn(missing_docs)]

pub mod config;
pub mod credit;
pub mod crossbar;
pub mod fabric;
pub mod fault;
pub mod holfifo;
pub mod link_scheduler;
pub mod metrics;
pub mod network;
pub mod nic;
pub mod observatory;
pub mod output;
pub mod router;
pub mod tdm;
pub mod telemetry;
pub mod vcmem;

pub use config::RouterConfig;
pub use fault::{FaultProfile, FaultReport};
pub use metrics::{ClassStats, MetricsCollector, MetricsReport};
pub use observatory::{Observatory, ObservatoryReport, SloSummary};
pub use router::MmrRouter;
pub use telemetry::{RouterTelemetry, TelemetryConfig, TelemetryReport};
