//! Credit-based flow control (paper §2, "Flow Control").
//!
//! The MMR avoids flit loss with per-connection credits: the NIC holds one
//! credit per free slot in the connection's router VC buffer, spends one
//! per flit forwarded, and regains one when a flit leaves the router
//! through the crossbar.  Credits returned in cycle *t* become usable in
//! cycle *t+1* (the return path is a single phit on a short link, well
//! under a flit cycle, but never zero).

/// NIC-side credit counters, one per connection.
#[derive(Debug, Clone)]
pub struct CreditBank {
    credits: Vec<u32>,
    pending: Vec<u32>,
    capacity: u32,
}

impl CreditBank {
    /// A bank for `connections` connections, each starting with `capacity`
    /// credits (the VC buffer depth).
    pub fn new(connections: usize, capacity: u32) -> Self {
        CreditBank {
            credits: vec![capacity; connections],
            pending: vec![0; connections],
            capacity,
        }
    }

    /// Credits currently available for `conn`.
    #[inline]
    pub fn available(&self, conn: usize) -> u32 {
        self.credits[conn]
    }

    /// True if `conn` can forward a flit.
    #[inline]
    pub fn has_credit(&self, conn: usize) -> bool {
        self.credits[conn] > 0
    }

    /// Spend one credit (flit forwarded NIC → router).  Panics if none —
    /// the link controller must check first.
    pub fn spend(&mut self, conn: usize) {
        assert!(
            self.credits[conn] > 0,
            "connection {conn}: credit underflow"
        );
        self.credits[conn] -= 1;
    }

    /// Queue one credit return (flit left the router).  Takes effect at
    /// the next [`CreditBank::apply_returns`].
    pub fn queue_return(&mut self, conn: usize) {
        self.pending[conn] += 1;
    }

    /// Apply all queued returns (end of cycle).
    pub fn apply_returns(&mut self) {
        for (c, p) in self.credits.iter_mut().zip(self.pending.iter_mut()) {
            *c += *p;
            assert!(
                *c <= self.capacity,
                "credit overflow: more returns than buffer slots"
            );
            *p = 0;
        }
    }

    /// Sum of available credits (diagnostic).
    pub fn total_available(&self) -> u32 {
        self.credits.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let b = CreditBank::new(3, 4);
        assert_eq!(b.available(0), 4);
        assert!(b.has_credit(2));
        assert_eq!(b.total_available(), 12);
    }

    #[test]
    fn spend_and_return_cycle() {
        let mut b = CreditBank::new(1, 2);
        b.spend(0);
        b.spend(0);
        assert!(!b.has_credit(0));
        b.queue_return(0);
        // Not visible until applied.
        assert!(!b.has_credit(0));
        b.apply_returns();
        assert_eq!(b.available(0), 1);
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn underflow_panics() {
        let mut b = CreditBank::new(1, 1);
        b.spend(0);
        b.spend(0);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn over_return_panics() {
        let mut b = CreditBank::new(1, 1);
        b.queue_return(0);
        b.apply_returns();
    }
}
