//! Credit-based flow control (paper §2, "Flow Control").
//!
//! The MMR avoids flit loss with per-connection credits: the NIC holds one
//! credit per free slot in the connection's router VC buffer, spends one
//! per flit forwarded, and regains one when a flit leaves the router
//! through the crossbar.  Credits returned in cycle *t* become usable in
//! cycle *t+1* (the return path is a single phit on a short link, well
//! under a flit cycle, but never zero).

/// NIC-side credit counters, one per connection.
#[derive(Debug, Clone)]
pub struct CreditBank {
    credits: Vec<u32>,
    pending: Vec<u32>,
    /// Connections with `pending > 0`, in first-return order, so
    /// applying returns touches only the connections that moved this
    /// cycle instead of scanning the whole bank.  Capacity is reserved
    /// up front (at most one entry per connection), so the per-cycle
    /// path never allocates.
    dirty: Vec<usize>,
    capacity: u32,
}

impl CreditBank {
    /// A bank for `connections` connections, each starting with `capacity`
    /// credits (the VC buffer depth).
    pub fn new(connections: usize, capacity: u32) -> Self {
        CreditBank {
            credits: vec![capacity; connections],
            pending: vec![0; connections],
            dirty: Vec::with_capacity(connections),
            capacity,
        }
    }

    /// Credits currently available for `conn`.
    #[inline]
    pub fn available(&self, conn: usize) -> u32 {
        self.credits[conn]
    }

    /// True if `conn` can forward a flit.
    #[inline]
    pub fn has_credit(&self, conn: usize) -> bool {
        self.credits[conn] > 0
    }

    /// Spend one credit (flit forwarded NIC → router).  Panics if none —
    /// the link controller must check first.
    pub fn spend(&mut self, conn: usize) {
        assert!(
            self.credits[conn] > 0,
            "connection {conn}: credit underflow"
        );
        self.credits[conn] -= 1;
    }

    /// Queue one credit return (flit left the router).  Takes effect at
    /// the next [`CreditBank::apply_returns`].
    pub fn queue_return(&mut self, conn: usize) {
        if self.pending[conn] == 0 {
            self.dirty.push(conn);
        }
        self.pending[conn] += 1;
    }

    /// Apply all queued returns (end of cycle).
    pub fn apply_returns(&mut self) {
        for i in 0..self.dirty.len() {
            let conn = self.dirty[i];
            self.credits[conn] += self.pending[conn];
            assert!(
                self.credits[conn] <= self.capacity,
                "credit overflow: more returns than buffer slots"
            );
            self.pending[conn] = 0;
        }
        self.dirty.clear();
    }

    /// Apply all queued returns, clamping each counter at capacity instead
    /// of panicking.  Returns the number of excess credits discarded.
    ///
    /// Under fault injection a duplicated credit return can push a counter
    /// past the buffer depth; a real link controller would saturate the
    /// counter exactly like this (the credit watchdog reconciles any
    /// remaining drift).  Without faults this is equivalent to
    /// [`CreditBank::apply_returns`].
    pub fn apply_returns_clamped(&mut self) -> u32 {
        let mut excess = 0;
        for i in 0..self.dirty.len() {
            let conn = self.dirty[i];
            let c = &mut self.credits[conn];
            *c += self.pending[conn];
            if *c > self.capacity {
                excess += *c - self.capacity;
                *c = self.capacity;
            }
            self.pending[conn] = 0;
        }
        self.dirty.clear();
        excess
    }

    /// Per-connection buffer depth (the credit budget).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// True if `conn`'s counters are consistent with `occupancy` flits
    /// resident in its VC buffer: available + pending + occupancy must
    /// equal the buffer depth.
    pub fn consistent(&self, conn: usize, occupancy: usize) -> bool {
        self.credits[conn] as usize + self.pending[conn] as usize + occupancy
            == self.capacity as usize
    }

    /// Force `conn`'s available-credit counter to `expected` (watchdog
    /// resynchronization after detected drift).  Returns the signed drift
    /// that was corrected (`expected - previous`).
    pub fn resync(&mut self, conn: usize, expected: u32) -> i64 {
        debug_assert!(expected <= self.capacity);
        let drift = expected as i64 - self.credits[conn] as i64;
        self.credits[conn] = expected;
        drift
    }

    /// True if every connection's available counter sits at full capacity
    /// (nothing spent, nothing pending).  With all buffers empty this is
    /// the state the credit watchdog would find consistent, so a credit
    /// audit can be skipped — the quiescence predicate the event-horizon
    /// engine uses to decide whether a future watchdog cycle matters.
    pub fn all_at_capacity(&self) -> bool {
        self.dirty.is_empty() && self.credits.iter().all(|&c| c == self.capacity)
    }

    /// Sum of available credits (diagnostic).
    pub fn total_available(&self) -> u32 {
        self.credits.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let b = CreditBank::new(3, 4);
        assert_eq!(b.available(0), 4);
        assert!(b.has_credit(2));
        assert_eq!(b.total_available(), 12);
    }

    #[test]
    fn spend_and_return_cycle() {
        let mut b = CreditBank::new(1, 2);
        b.spend(0);
        b.spend(0);
        assert!(!b.has_credit(0));
        b.queue_return(0);
        // Not visible until applied.
        assert!(!b.has_credit(0));
        b.apply_returns();
        assert_eq!(b.available(0), 1);
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn underflow_panics() {
        let mut b = CreditBank::new(1, 1);
        b.spend(0);
        b.spend(0);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn over_return_panics() {
        let mut b = CreditBank::new(1, 1);
        b.queue_return(0);
        b.apply_returns();
    }

    #[test]
    fn clamped_returns_discard_excess() {
        let mut b = CreditBank::new(2, 2);
        b.spend(0);
        b.queue_return(0);
        b.queue_return(0); // duplicated credit
        b.queue_return(1); // phantom: conn 1 never spent
        let excess = b.apply_returns_clamped();
        assert_eq!(excess, 2);
        assert_eq!(b.available(0), 2);
        assert_eq!(b.available(1), 2);
    }

    #[test]
    fn all_at_capacity_tracks_spends_and_returns() {
        let mut b = CreditBank::new(2, 2);
        assert!(b.all_at_capacity());
        b.spend(1);
        assert!(!b.all_at_capacity());
        b.queue_return(1);
        assert!(!b.all_at_capacity(), "pending returns are not yet usable");
        b.apply_returns();
        assert!(b.all_at_capacity());
    }

    #[test]
    fn consistency_and_resync() {
        let mut b = CreditBank::new(1, 4);
        b.spend(0);
        b.spend(0);
        // Two flits "in the buffer": consistent.
        assert!(b.consistent(0, 2));
        // One flit lost on the link: occupancy 1, counters stale.
        assert!(!b.consistent(0, 1));
        let drift = b.resync(0, 3);
        assert_eq!(drift, 1);
        assert!(b.consistent(0, 1));
        assert_eq!(b.available(0), 3);
    }
}
