//! The multiplexed crossbar.
//!
//! The MMR uses a crossbar with as many ports as physical channels; all
//! flits granted by the switch scheduler are forwarded synchronously in
//! one flit cycle, with arbitration overlapped with the previous
//! transmission (paper §2).  This model applies a [`Matching`] to the VC
//! memory and accounts utilization.

use crate::vcmem::{BufferedFlit, VcMemory};
use mmr_arbiter::matching::Matching;

/// A flit in flight to an output port.
#[derive(Debug, Clone, Copy)]
pub struct CrossedFlit {
    /// The buffered flit (with its router-entry time).
    pub buffered: BufferedFlit,
    /// Output port it was switched to.
    pub output: usize,
    /// VC (global connection index) it came from.
    pub vc: usize,
    /// Input port it came from.
    pub input: usize,
}

/// Crossbar model with utilization accounting.
///
/// Statistics are pure integers (grants / port-cycles) so that a span of
/// idle cycles can be accounted in bulk ([`Crossbar::record_idle_cycles`])
/// with a result bit-identical to recording them one at a time — a
/// requirement of the event-horizon engine's skip contract.
#[derive(Debug)]
pub struct Crossbar {
    ports: usize,
    grants_total: u64,
    cycles: u64,
    /// Count of cycles in which the crossbar moved at least one flit.
    busy_cycles: u64,
    /// Number of input ports whose selected VC changed since the previous
    /// cycle — each change requires reconfiguration/arbitration (§2).
    reconfigurations: u64,
    last_vc_per_input: Vec<Option<usize>>,
}

impl Crossbar {
    /// Crossbar for `ports` ports.
    pub fn new(ports: usize) -> Self {
        Crossbar {
            ports,
            grants_total: 0,
            cycles: 0,
            busy_cycles: 0,
            reconfigurations: 0,
            last_vc_per_input: vec![None; ports],
        }
    }

    /// Apply a matching: pop each granted VC's head flit and return the
    /// crossed flits.  `measuring` gates statistics.
    pub fn transfer(
        &mut self,
        matching: &Matching,
        mem: &mut VcMemory,
        measuring: bool,
        out: &mut Vec<CrossedFlit>,
    ) {
        out.clear();
        for grant in matching.grants() {
            let buffered = mem
                .pop(grant.vc)
                .expect("scheduler granted an empty VC — candidates out of sync");
            out.push(CrossedFlit {
                buffered,
                output: grant.output,
                vc: grant.vc,
                input: grant.input,
            });
            if self.last_vc_per_input[grant.input] != Some(grant.vc) {
                self.reconfigurations += 1;
                self.last_vc_per_input[grant.input] = Some(grant.vc);
            }
        }
        if measuring {
            self.cycles += 1;
            self.grants_total += matching.size() as u64;
            if matching.size() > 0 {
                self.busy_cycles += 1;
            }
        }
    }

    /// Account `n` measured cycles in which no flit crossed (no grants,
    /// not busy).  Bit-identical to `n` empty-matching [`transfer`]
    /// calls with `measuring = true`.
    ///
    /// [`transfer`]: Crossbar::transfer
    pub fn record_idle_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Mean utilization (granted ports / total ports) over measured cycles.
    pub fn mean_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.grants_total as f64 / (self.ports as f64 * self.cycles as f64)
        }
    }

    /// Total grants during measurement.
    pub fn grants(&self) -> u64 {
        self.grants_total
    }

    /// Measured cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Fraction of measured cycles with at least one transfer.
    pub fn busy_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Input-side VC switches observed (arbitration/reconfiguration
    /// events).
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Reset statistics (start of measurement).
    pub fn reset_stats(&mut self) {
        self.grants_total = 0;
        self.cycles = 0;
        self.busy_cycles = 0;
        self.reconfigurations = 0;
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_arbiter::matching::Grant;
    use mmr_sim::time::RouterCycle;
    use mmr_traffic::connection::ConnectionId;
    use mmr_traffic::flit::Flit;

    fn mem_with(vcs: usize) -> VcMemory {
        let mut m = VcMemory::new(vcs, 4, 2);
        for vc in 0..vcs {
            m.push(
                vc,
                Flit::cbr(ConnectionId(vc as u32), 0, RouterCycle(0)),
                RouterCycle(5),
            );
        }
        m
    }

    #[test]
    fn transfer_pops_granted_heads() {
        let mut xbar = Crossbar::new(4);
        let mut mem = mem_with(4);
        let mut m = Matching::new(4);
        m.add(Grant {
            input: 0,
            output: 2,
            vc: 0,
            level: 0,
        });
        m.add(Grant {
            input: 1,
            output: 3,
            vc: 1,
            level: 0,
        });
        let mut out = Vec::new();
        xbar.transfer(&m, &mut mem, true, &mut out);
        assert_eq!(out.len(), 2);
        assert!(mem.is_empty(0));
        assert!(mem.is_empty(1));
        assert_eq!(mem.len(2), 1, "ungranted VC untouched");
        assert_eq!(out[0].output, 2);
        assert_eq!(out[0].buffered.entered_at, RouterCycle(5));
    }

    #[test]
    fn utilization_accounted_only_when_measuring() {
        let mut xbar = Crossbar::new(4);
        let mut mem = mem_with(4);
        let mut m = Matching::new(4);
        m.add(Grant {
            input: 0,
            output: 0,
            vc: 0,
            level: 0,
        });
        let mut out = Vec::new();
        xbar.transfer(&m, &mut mem, false, &mut out);
        assert_eq!(xbar.cycles(), 0);
        assert_eq!(xbar.grants(), 0);
        let mut m2 = Matching::new(4);
        m2.add(Grant {
            input: 1,
            output: 1,
            vc: 1,
            level: 0,
        });
        xbar.transfer(&m2, &mut mem, true, &mut out);
        assert_eq!(xbar.cycles(), 1);
        assert_eq!(xbar.grants(), 1);
        assert_eq!(xbar.mean_utilization(), 0.25);
        assert_eq!(xbar.busy_fraction(), 1.0);
    }

    #[test]
    fn reconfigurations_count_vc_switches() {
        let mut xbar = Crossbar::new(2);
        let mut mem = VcMemory::new(2, 4, 1);
        for _ in 0..3 {
            mem.push(
                0,
                Flit::cbr(ConnectionId(0), 0, RouterCycle(0)),
                RouterCycle(0),
            );
        }
        mem.push(
            1,
            Flit::cbr(ConnectionId(1), 0, RouterCycle(0)),
            RouterCycle(0),
        );
        let mut out = Vec::new();
        let grant_vc = |vc: usize| {
            let mut m = Matching::new(2);
            m.add(Grant {
                input: 0,
                output: 0,
                vc,
                level: 0,
            });
            m
        };
        xbar.transfer(&grant_vc(0), &mut mem, true, &mut out); // first: reconfig
        xbar.transfer(&grant_vc(0), &mut mem, true, &mut out); // same vc: none
        xbar.transfer(&grant_vc(1), &mut mem, true, &mut out); // switch: reconfig
        assert_eq!(xbar.reconfigurations(), 2);
    }

    #[test]
    #[should_panic(expected = "empty VC")]
    fn granting_empty_vc_is_a_bug() {
        let mut xbar = Crossbar::new(2);
        let mut mem = VcMemory::new(2, 4, 1);
        let mut m = Matching::new(2);
        m.add(Grant {
            input: 0,
            output: 0,
            vc: 0,
            level: 0,
        });
        let mut out = Vec::new();
        xbar.transfer(&m, &mut mem, true, &mut out);
    }

    #[test]
    fn bulk_idle_accounting_equals_per_cycle() {
        // n empty measured transfers and one record_idle_cycles(n) must
        // land on bit-identical statistics — the skip contract.
        let grant = {
            let mut m = Matching::new(4);
            m.add(Grant {
                input: 0,
                output: 2,
                vc: 0,
                level: 0,
            });
            m
        };
        let empty = Matching::new(4);
        let mut out = Vec::new();

        let mut a = Crossbar::new(4);
        let mut mem_a = mem_with(4);
        a.transfer(&grant, &mut mem_a, true, &mut out);
        for _ in 0..7 {
            a.transfer(&empty, &mut mem_a, true, &mut out);
        }

        let mut b = Crossbar::new(4);
        let mut mem_b = mem_with(4);
        b.transfer(&grant, &mut mem_b, true, &mut out);
        b.record_idle_cycles(7);

        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.grants(), b.grants());
        assert_eq!(
            a.mean_utilization().to_bits(),
            b.mean_utilization().to_bits()
        );
        assert_eq!(a.busy_fraction().to_bits(), b.busy_fraction().to_bits());
    }

    #[test]
    fn reset_clears_stats() {
        let mut xbar = Crossbar::new(2);
        let mut mem = mem_with(2);
        let mut m = Matching::new(2);
        m.add(Grant {
            input: 0,
            output: 0,
            vc: 0,
            level: 0,
        });
        let mut out = Vec::new();
        xbar.transfer(&m, &mut mem, true, &mut out);
        xbar.reset_stats();
        assert_eq!(xbar.cycles(), 0);
        assert_eq!(xbar.mean_utilization(), 0.0);
    }
}
