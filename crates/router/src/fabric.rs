//! Sharded multi-router fabric: a parallel mesh/torus/ring/line of MMRs.
//!
//! The paper closes by noting the MMR "must be further extended to a
//! network composed of several MMRs"; this module is that extension at
//! scale.  A [`Topology`] instantiates N router nodes built from the
//! single-router components (VC memory, link schedulers, switch
//! scheduler, crossbar, credit banks), wires them with point-to-point
//! links, and places every admitted connection on a deterministic
//! dimension-order path ([`mmr_traffic::path`], the Pipelined Circuit
//! Switching reserved-path model).  Per-connection virtual channels
//! make the hop-by-hop credit chains self-waiting only, so the fabric
//! is deadlock-free even across torus wrap links.
//!
//! # Shard/epoch execution contract (DESIGN.md §17)
//!
//! Inter-node links carry flits *and* the matching upstream credits
//! with a latency of `link_latency` flit cycles.  A message sent at
//! cycle `t` is applied at its destination at cycle `t + link_latency`,
//! so any epoch of at most `link_latency` cycles can execute with **no
//! intra-epoch communication**: every message produced inside the epoch
//! is due at or after the epoch boundary.  Nodes are therefore fully
//! independent within an epoch, and the fabric runs them on worker
//! threads via the same deterministic chunked `split_at_mut` dispatch
//! as [`mmr_core` sweeps]: which worker steps which node is pure
//! scheduling, so the result is bit-identical for any worker count.
//!
//! Boundary exchange is double-buffered per directed link: the producer
//! appends to its outbox lane during the epoch, the main thread swaps
//! outbox/inbox vectors (pointer swaps, buffers reused — no steady-state
//! allocation) at the barrier, and the consumer drains its inboxes into
//! per-link pending queues at the next epoch start.  Message `due`
//! values are monotone per link, so application order is deterministic.
//!
//! The event-horizon engine extends to the fabric: each shard computes
//! its local `next_event` (backlog ⇒ next cycle; otherwise the earliest
//! of its injection calendar and in-flight message dues) and the fabric
//! fast-forwards to the minimum across shards plus any in-flight wire
//! messages.  Credits alone never gate the horizon: pending credit
//! returns are applied with a `due <= now` drain, which is
//! indistinguishable from eager application because a credit can only
//! be *observed* by an arbitration, and arbitrations only happen on
//! cycles with buffered flits — which the horizon never skips.

use crate::config::RouterConfig;
use crate::credit::CreditBank;
use crate::crossbar::{Crossbar, CrossedFlit};
use crate::link_scheduler::{LinkScheduler, VcQosInfo};
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::nic::Nic;
use crate::output::Delivery;
use crate::vcmem::VcMemory;
use mmr_arbiter::candidate::CandidateSet;
use mmr_arbiter::matching::Matching;
use mmr_arbiter::priority::{LinkPriority, PriorityKind};
use mmr_arbiter::scheduler::{ArbiterKind, SwitchScheduler};
use mmr_sim::engine::CycleModel;
use mmr_sim::rng::SimRng;
use mmr_sim::time::{FlitCycle, RouterCycle};
use mmr_traffic::connection::ConnectionSpec;
use mmr_traffic::flit::Flit;
use mmr_traffic::path::{mesh_route, Dir, HostMap};
use mmr_traffic::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Fabric topology: how many routers and how they are wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// `stages` routers in tandem, joined by `ports` parallel links per
    /// hop (the PR-era `LineNetwork`, now a degenerate fabric).
    Line {
        /// Router count.
        stages: usize,
    },
    /// A bidirectional ring.
    Ring {
        /// Router count (at least 2).
        nodes: usize,
    },
    /// A 2D mesh with dimension-order (X then Y) routing.
    Mesh {
        /// Grid width.
        x: usize,
        /// Grid height.
        y: usize,
    },
    /// A 2D torus (wrap-around mesh); routes take the shorter way
    /// around each axis.
    Torus {
        /// Grid width (at least 2).
        x: usize,
        /// Grid height (at least 2).
        y: usize,
    },
}

impl Topology {
    /// Number of router nodes.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Line { stages } => stages,
            Topology::Ring { nodes } => nodes,
            Topology::Mesh { x, y } | Topology::Torus { x, y } => x * y,
        }
    }

    /// Inter-node ports per router (0 for the line, whose hops use the
    /// full `ports`-wide bundle).
    fn degree(&self) -> usize {
        match self {
            Topology::Line { .. } => 0,
            Topology::Ring { .. } => 2,
            Topology::Mesh { .. } | Topology::Torus { .. } => 4,
        }
    }

    /// Crossbar ports per node.
    pub fn node_ports(&self, router_ports: usize, host_ports: usize) -> usize {
        match self {
            Topology::Line { .. } => router_ports,
            _ => self.degree() + host_ports,
        }
    }

    /// Port count the workload builder should target: the line keeps the
    /// single-router port space; other topologies expose one flat host
    /// link per `(node, host port)` pair.
    pub fn workload_ports(&self, router_ports: usize, host_ports: usize) -> usize {
        match self {
            Topology::Line { .. } => router_ports,
            _ => self.node_count() * host_ports,
        }
    }

    /// Short label for reports, e.g. `mesh-4x4`.
    pub fn label(&self) -> String {
        match *self {
            Topology::Line { stages } => format!("line-{stages}"),
            Topology::Ring { nodes } => format!("ring-{nodes}"),
            Topology::Mesh { x, y } => format!("mesh-{x}x{y}"),
            Topology::Torus { x, y } => format!("torus-{x}x{y}"),
        }
    }

    fn validate(&self) {
        match *self {
            Topology::Line { stages } => assert!(stages >= 1, "line needs at least one stage"),
            Topology::Ring { nodes } => assert!(nodes >= 2, "ring needs at least two nodes"),
            Topology::Mesh { x, y } => assert!(x >= 1 && y >= 1 && x * y >= 1, "empty mesh"),
            Topology::Torus { x, y } => {
                assert!(x >= 2 && y >= 2, "torus axes need >= 2 nodes (use Mesh)")
            }
        }
    }
}

/// Fabric geometry and timing knobs on top of the per-router
/// [`RouterConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Per-router configuration (buffer depths, timing, candidate
    /// levels; `ports` sizes the line bundle).
    pub router: RouterConfig,
    /// Topology to instantiate.
    pub topology: Topology,
    /// Inter-node link latency in flit cycles (>= 1).  Also the epoch
    /// length of the sharded executor: larger values amortize the
    /// per-epoch barrier, at the cost of modelling longer links.
    pub link_latency: u64,
    /// Host (injection/ejection) links per router for ring/mesh/torus
    /// topologies; ignored for the line.
    pub host_ports: usize,
}

impl FabricConfig {
    /// A fabric of `topology` with defaults: single-cycle links for the
    /// line (preserving `LineNetwork` timing), 4-cycle links otherwise,
    /// one host port per router.
    pub fn new(router: RouterConfig, topology: Topology) -> Self {
        FabricConfig {
            router,
            topology,
            link_latency: match topology {
                Topology::Line { .. } => 1,
                _ => 4,
            },
            host_ports: 1,
        }
    }
}

/// One message on a link's flit lane: due at `due`, landing in the
/// destination node's local VC `vc`.
#[derive(Debug, Clone, Copy)]
struct FlitWire {
    due: u64,
    vc: u32,
    flit: Flit,
}

/// One message on a link's credit lane, travelling upstream: frees one
/// buffer slot of the *sender* node's local VC `vc`.
#[derive(Debug, Clone, Copy)]
struct CredWire {
    due: u64,
    vc: u32,
}

#[derive(Clone, Copy)]
struct Timing {
    rc_per_flit: u64,
    crossing_rc: u64,
    link_latency: u64,
}

/// Where a local VC's flits go after crossing this node's crossbar.
#[derive(Debug, Clone, Copy)]
enum HopNext {
    /// Final hop: eject to the destination host.
    Deliver,
    /// Forward on the node-local `out` link, arriving in the next
    /// node's local VC `next_vc`.
    Forward { out: u32, next_vc: u32 },
}

/// Where this node returns a credit when a local VC's flit crosses.
#[derive(Debug, Clone, Copy)]
enum HopBack {
    /// First hop: the credit frees the injecting NIC's budget.
    Nic,
    /// The credit rides the node-local in-link `link` upstream, freeing
    /// the previous node's local VC `up_vc`.
    Wire { link: u32, up_vc: u32 },
}

#[derive(Debug, Clone, Copy)]
struct VcRoute {
    next: HopNext,
    back: HopBack,
}

struct NodeSource {
    conn: u32,
    nic: u32,
    slot: u32,
    src: Box<dyn mmr_traffic::source::TrafficSource + Send>,
}

struct NodeEvent {
    off: u32,
    kind: EventKind,
}

enum EventKind {
    Generated { conn: u32 },
    Delivered { delivery: Delivery },
}

/// One router node (shard unit) of the fabric.
struct FabricNode {
    mem: VcMemory,
    link_scheds: Vec<LinkScheduler>,
    qos: Vec<VcQosInfo>,
    priority_fn: Box<dyn LinkPriority>,
    arbiter: Box<dyn SwitchScheduler>,
    matching: Matching,
    crossbar: Crossbar,
    /// Free space of the *next-hop* VC buffer per local VC (unused for
    /// final-hop VCs, which eject without back-pressure).
    credits_down: CreditBank,
    candidates: CandidateSet,
    rng: SimRng,
    route: Vec<VcRoute>,
    nics: Vec<Nic>,
    nic_credits: CreditBank,
    sources: Vec<NodeSource>,
    out_count: usize,
    in_count: usize,
    drain_buf: Vec<Flit>,
    crossed_buf: Vec<CrossedFlit>,
    events: Vec<NodeEvent>,
    /// Local next-event horizon computed at epoch end (absolute cycle).
    horizon: u64,
}

impl FabricNode {
    /// Execute one cycle of this node.  `flit_out`/`cred_pend` are the
    /// node's out-link lanes (in node-local out-link order),
    /// `flit_pend`/`cred_out` its in-link lanes (node-local in-link
    /// order).  Mirrors the `LineNetwork` stage pipeline exactly at
    /// `link_latency == 1`.
    #[allow(clippy::too_many_arguments)]
    fn step_cycle(
        &mut self,
        u: u64,
        off: u32,
        measuring: bool,
        t: Timing,
        flit_out: &mut [Vec<FlitWire>],
        cred_pend: &mut [VecDeque<CredWire>],
        flit_pend: &mut [VecDeque<FlitWire>],
        cred_out: &mut [Vec<CredWire>],
    ) {
        let now_rc = RouterCycle(u * t.rc_per_flit);

        // 1. Credit arrivals become spendable before arbitration — a
        //    crossing at cycle c downstream frees the upstream slot at
        //    c + link_latency, matching the line network's next-cycle
        //    visibility at latency 1.  Drained with `due <= u` so a
        //    horizon skip that jumped past a credit-only cycle applies
        //    it here, unobservably (see module docs).
        for q in cred_pend.iter_mut() {
            while q.front().is_some_and(|m| m.due <= u) {
                let m = q.pop_front().expect("checked front");
                self.credits_down.queue_return(m.vc as usize);
            }
        }
        self.credits_down.apply_returns();

        // 2. Flit arrivals enter the VC memory, schedulable this cycle
        //    (their upstream crossing finished `link_latency` ago).
        for q in flit_pend.iter_mut() {
            while q.front().is_some_and(|m| m.due <= u) {
                let m = q.pop_front().expect("checked front");
                debug_assert_eq!(m.due, u, "flit message applied late");
                self.mem.push(m.vc as usize, m.flit, now_rc);
            }
        }

        // 3. Sources inject into the NIC queues.
        for s in self.sources.iter_mut() {
            self.drain_buf.clear();
            s.src.drain_until(now_rc, &mut self.drain_buf);
            for &flit in self.drain_buf.iter() {
                self.nics[s.nic as usize].enqueue(s.slot as usize, flit);
                self.events.push(NodeEvent {
                    off,
                    kind: EventKind::Generated { conn: s.conn },
                });
            }
        }

        // 4. Candidate selection: final-hop VCs eject freely; others
        //    need a downstream credit.
        self.candidates.clear();
        if self.mem.total_occupancy() > 0 {
            let route = &self.route;
            let credits = &self.credits_down;
            for ls in self.link_scheds.iter_mut() {
                ls.select_where(
                    &self.mem,
                    &self.qos,
                    self.priority_fn.as_ref(),
                    now_rc,
                    &mut self.candidates,
                    |vc| matches!(route[vc].next, HopNext::Deliver) || credits.has_credit(vc),
                );
            }
        }

        // 5. Switch scheduling.  An empty candidate set skips the kernel
        //    so quiescent cycles leave the RNG stream untouched — the
        //    property that makes executing a quiescent cycle identical
        //    to skipping it (DESIGN.md §12).
        if self.candidates.is_empty() {
            self.matching.clear();
        } else {
            self.arbiter
                .schedule_into(&self.candidates, &mut self.rng, &mut self.matching);
        }

        // 6. Crossbar traversal, then route each crossed flit: eject or
        //    forward on its reserved out-link, and return a credit
        //    upstream (to the NIC at the first hop, on the wire
        //    otherwise).
        let mut crossed = std::mem::take(&mut self.crossed_buf);
        self.crossbar
            .transfer(&self.matching, &mut self.mem, measuring, &mut crossed);
        for cf in &crossed {
            match self.route[cf.vc].next {
                HopNext::Deliver => {
                    self.events.push(NodeEvent {
                        off,
                        kind: EventKind::Delivered {
                            delivery: Delivery {
                                flit: cf.buffered.flit,
                                output: cf.output,
                                delivered_at: RouterCycle(now_rc.0 + t.crossing_rc),
                            },
                        },
                    });
                }
                HopNext::Forward { out, next_vc } => {
                    self.credits_down.spend(cf.vc);
                    flit_out[out as usize].push(FlitWire {
                        due: u + t.link_latency,
                        vc: next_vc,
                        flit: cf.buffered.flit,
                    });
                }
            }
            match self.route[cf.vc].back {
                HopBack::Nic => self.nic_credits.queue_return(cf.vc),
                HopBack::Wire { link, up_vc } => cred_out[link as usize].push(CredWire {
                    due: u + t.link_latency,
                    vc: up_vc,
                }),
            }
        }
        self.crossed_buf = crossed;

        // 7. NIC link controllers feed the first-hop VC buffers; pushes
        //    land with end-of-cycle arrival so they cannot be
        //    re-scheduled this cycle.
        let arrival = RouterCycle(now_rc.0 + t.rc_per_flit);
        for nic in self.nics.iter_mut() {
            let credits = &self.nic_credits;
            if let Some((vc, flit)) = nic.forward_one(|c| credits.has_credit(c)) {
                self.nic_credits.spend(vc);
                self.mem.push(vc, flit, arrival);
            }
        }

        // 8. NIC credit returns become visible next cycle.
        self.nic_credits.apply_returns();
    }

    fn backlog(&self) -> usize {
        self.nics.iter().map(Nic::total_depth).sum::<usize>() + self.mem.total_occupancy()
    }
}

/// Local next-event horizon of one node after executing cycle `now`:
/// any backlog means state can move next cycle; otherwise the earliest
/// of the injection calendars and pending in-flight flit dues.  Pending
/// credits never gate the horizon (module docs).
fn node_horizon(
    node: &FabricNode,
    flit_pend: &[VecDeque<FlitWire>],
    now: u64,
    rc_per_flit: u64,
) -> u64 {
    if node.backlog() > 0 {
        return now + 1;
    }
    let mut h = u64::MAX;
    for s in &node.sources {
        if let Some(rc) = s.src.peek_next() {
            h = h.min(rc.0.div_ceil(rc_per_flit).max(now + 1));
        }
    }
    for q in flit_pend {
        if let Some(m) = q.front() {
            h = h.min(m.due);
        }
    }
    h
}

/// Execute cycles `[a, b)` for one chunk of nodes.  The six mailbox
/// slices cover exactly the chunk's links: out-link-ordered
/// (`flit_out`, `cred_in`, `cred_pend`) and in-link-ordered (`flit_in`,
/// `cred_out`, `flit_pend`).  Runs identically inline (1 worker) or on
/// a scoped thread — node results depend only on `(a, b)` and prior
/// state, never on the chunking.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    nodes: &mut [FabricNode],
    flit_out: &mut [Vec<FlitWire>],
    cred_in: &mut [Vec<CredWire>],
    cred_pend: &mut [VecDeque<CredWire>],
    flit_in: &mut [Vec<FlitWire>],
    cred_out: &mut [Vec<CredWire>],
    flit_pend: &mut [VecDeque<FlitWire>],
    a: u64,
    b: u64,
    measuring: bool,
    t: Timing,
    compute_horizon: bool,
) {
    debug_assert!(b > a && b - a <= t.link_latency, "epoch exceeds lookahead");
    // Epoch start: drain the swapped-in inbox lanes into the pending
    // queues (capacity is retained on both sides — steady state is
    // allocation-free).
    let (mut o, mut i) = (0usize, 0usize);
    for node in nodes.iter() {
        for k in 0..node.in_count {
            flit_pend[i + k].extend(flit_in[i + k].drain(..));
        }
        for k in 0..node.out_count {
            cred_pend[o + k].extend(cred_in[o + k].drain(..));
        }
        o += node.out_count;
        i += node.in_count;
    }
    for u in a..b {
        let off = (u - a) as u32;
        let (mut o, mut i) = (0usize, 0usize);
        for node in nodes.iter_mut() {
            let (oc, ic) = (node.out_count, node.in_count);
            node.step_cycle(
                u,
                off,
                measuring,
                t,
                &mut flit_out[o..o + oc],
                &mut cred_pend[o..o + oc],
                &mut flit_pend[i..i + ic],
                &mut cred_out[i..i + ic],
            );
            o += oc;
            i += ic;
        }
    }
    if compute_horizon {
        let mut i = 0usize;
        for node in nodes.iter_mut() {
            node.horizon =
                node_horizon(node, &flit_pend[i..i + node.in_count], b - 1, t.rc_per_flit);
            i += node.in_count;
        }
    }
}

/// Outcome of a [`Fabric::run_parallel`] call; mirrors
/// [`mmr_sim::engine::RunOutcome`] (`executed` counts stepped plus
/// skipped cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricRunOutcome {
    /// Flit cycles advanced through (stepped plus skipped).
    pub executed: u64,
    /// Cycles that counted toward measurement (post-warm-up).
    pub measured: u64,
    /// Cycles fast-forwarded via the fabric-wide minimum horizon.
    pub skipped: u64,
}

/// A sharded multi-router fabric of MMRs.
pub struct Fabric {
    cfg: FabricConfig,
    specs: Vec<ConnectionSpec>,
    nodes: Vec<FabricNode>,
    /// Per link: (out slot, in slot) — the double-buffer swap map.
    link_slots: Vec<(usize, usize)>,
    /// Node -> first in slot; length `nodes + 1`.
    in_start: Vec<usize>,
    flit_out: Vec<Vec<FlitWire>>,
    flit_in: Vec<Vec<FlitWire>>,
    cred_out: Vec<Vec<CredWire>>,
    cred_in: Vec<Vec<CredWire>>,
    flit_pend: Vec<VecDeque<FlitWire>>,
    cred_pend: Vec<VecDeque<CredWire>>,
    metrics: MetricsCollector,
    cursors: Vec<usize>,
    /// Per connection: the out port taken at each hop.
    paths_out: Vec<Vec<usize>>,
    timing: Timing,
    generated_total: u64,
    delivered_total: u64,
}

impl Fabric {
    /// Build a fabric.  Connection specs address the topology's
    /// [`Topology::workload_ports`] flat port space; each connection is
    /// placed on its deterministic reserved path (dimension-order for
    /// mesh/torus, shorter-way for rings, seeded random bundle ports
    /// for line hops — matching the pre-fabric `LineNetwork`).
    pub fn new(
        cfg: FabricConfig,
        workload: Workload,
        arbiter_kind: ArbiterKind,
        priority: PriorityKind,
        seed: u64,
    ) -> Self {
        cfg.router.validate();
        cfg.topology.validate();
        assert!(cfg.link_latency >= 1, "links need at least one cycle");
        assert!(
            matches!(cfg.topology, Topology::Line { .. }) || cfg.host_ports >= 1,
            "ring/mesh/torus fabrics need at least one host port"
        );
        let Workload {
            connections: specs,
            sources,
            ..
        } = workload;
        let n = specs.len();
        let nnodes = cfg.topology.node_count();
        let degree = cfg.topology.degree();
        let node_ports = cfg.topology.node_ports(cfg.router.ports, cfg.host_ports);
        let workload_ports = cfg
            .topology
            .workload_ports(cfg.router.ports, cfg.host_ports);
        let hm = HostMap {
            nodes: nnodes,
            host_ports: cfg.host_ports,
        };

        // ---- Wiring: the directed link list of the topology. --------
        // (from node, from port) -> (to node, to port).
        let mut links: Vec<(usize, usize, usize, usize)> = Vec::new();
        match cfg.topology {
            Topology::Line { stages } => {
                for s in 0..stages.saturating_sub(1) {
                    for p in 0..node_ports {
                        links.push((s, p, s + 1, p));
                    }
                }
            }
            Topology::Ring { nodes } => {
                for i in 0..nodes {
                    let fwd = Dir::XPlus.index();
                    let bwd = Dir::XMinus.index();
                    links.push((i, fwd, (i + 1) % nodes, bwd));
                    links.push((i, bwd, (i + nodes - 1) % nodes, fwd));
                }
            }
            Topology::Mesh { x, y } | Topology::Torus { x, y } => {
                let wrap = matches!(cfg.topology, Topology::Torus { .. });
                for node in 0..x * y {
                    let (gx, gy) = (node % x, node / x);
                    let mut emit = |dir: Dir, exists: bool, to: usize| {
                        if exists {
                            links.push((node, dir.index(), to, dir.opposite().index()));
                        }
                    };
                    emit(Dir::XPlus, wrap || gx + 1 < x, gy * x + (gx + 1) % x);
                    emit(Dir::XMinus, wrap || gx > 0, gy * x + (gx + x - 1) % x);
                    emit(Dir::YPlus, wrap || gy + 1 < y, ((gy + 1) % y) * x + gx);
                    emit(Dir::YMinus, wrap || gy > 0, ((gy + y - 1) % y) * x + gx);
                }
            }
        }
        let nlinks = links.len();
        // Slot orderings: out slots contiguous per source node, in slots
        // contiguous per destination node, both port-ordered.
        let mut out_order: Vec<usize> = (0..nlinks).collect();
        out_order.sort_by_key(|&l| (links[l].0, links[l].1));
        let mut in_order: Vec<usize> = (0..nlinks).collect();
        in_order.sort_by_key(|&l| (links[l].2, links[l].3));
        let mut out_slot = vec![0usize; nlinks];
        let mut in_slot = vec![0usize; nlinks];
        for (slot, &l) in out_order.iter().enumerate() {
            out_slot[l] = slot;
        }
        for (slot, &l) in in_order.iter().enumerate() {
            in_slot[l] = slot;
        }
        let mut out_start = vec![0usize; nnodes + 1];
        let mut in_start = vec![0usize; nnodes + 1];
        for &(from, _, to, _) in &links {
            out_start[from + 1] += 1;
            in_start[to + 1] += 1;
        }
        for nd in 0..nnodes {
            out_start[nd + 1] += out_start[nd];
            in_start[nd + 1] += in_start[nd];
        }
        // Node-local lookup: out port -> local out-link index, in port
        // -> local in-link index.
        let mut out_of_port = vec![vec![u32::MAX; node_ports]; nnodes];
        let mut in_of_port = vec![vec![u32::MAX; node_ports]; nnodes];
        for (slot, &l) in out_order.iter().enumerate() {
            let (from, port, _, _) = links[l];
            out_of_port[from][port] = (slot - out_start[from]) as u32;
        }
        for (slot, &l) in in_order.iter().enumerate() {
            let (_, _, to, port) = links[l];
            in_of_port[to][port] = (slot - in_start[to]) as u32;
        }

        // ---- Reserved paths: per connection, (node, in port, out port)
        // per hop. -----------------------------------------------------
        let mut path_rng = SimRng::seed_from_u64(seed ^ 0x4C49_4E45);
        let mut hops: Vec<Vec<(usize, usize, usize)>> = Vec::with_capacity(n);
        for s in &specs {
            assert!(
                s.input < workload_ports && s.output < workload_ports,
                "spec port outside the fabric's workload port space"
            );
            let mut h: Vec<(usize, usize, usize)> = Vec::new();
            match cfg.topology {
                Topology::Line { stages } => {
                    // Same draw order as the pre-fabric LineNetwork, so
                    // reserved line paths are unchanged.
                    let mut inp = s.input;
                    for stage in 0..stages {
                        let out = if stage + 1 == stages {
                            s.output
                        } else {
                            path_rng.index(node_ports)
                        };
                        h.push((stage, inp, out));
                        inp = out;
                    }
                }
                Topology::Ring { .. } | Topology::Mesh { .. } | Topology::Torus { .. } => {
                    let (gx, gy, wrap) = match cfg.topology {
                        Topology::Ring { nodes } => (nodes, 1, true),
                        Topology::Mesh { x, y } => (x, y, false),
                        Topology::Torus { x, y } => (x, y, true),
                        Topology::Line { .. } => unreachable!(),
                    };
                    let src = hm.node_of(s.input);
                    let dst = hm.node_of(s.output);
                    let route = mesh_route(gx, gy, src, dst, wrap);
                    let mut node = src;
                    let mut inp = degree + hm.slot_of(s.input);
                    for d in &route {
                        h.push((node, inp, d.index()));
                        node = {
                            let (nx, ny) = (node % gx, node / gx);
                            match d {
                                Dir::XPlus => ny * gx + (nx + 1) % gx,
                                Dir::XMinus => ny * gx + (nx + gx - 1) % gx,
                                Dir::YPlus => ((ny + 1) % gy) * gx + nx,
                                Dir::YMinus => ((ny + gy - 1) % gy) * gx + nx,
                            }
                        };
                        inp = d.opposite().index();
                    }
                    h.push((node, inp, degree + hm.slot_of(s.output)));
                }
            }
            hops.push(h);
        }
        let paths_out: Vec<Vec<usize>> = hops
            .iter()
            .map(|h| h.iter().map(|&(_, _, out)| out).collect())
            .collect();

        // ---- Local VC spaces: connections traversing each node, in
        // global connection order. -------------------------------------
        let mut local_conns: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nnodes];
        let mut local_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (conn, h) in hops.iter().enumerate() {
            for (hi, &(node, _, _)) in h.iter().enumerate() {
                local_of[conn].push(local_conns[node].len() as u32);
                local_conns[node].push((conn, hi));
            }
        }

        // ---- Per-node construction. ----------------------------------
        let rc_per_flit = cfg.router.router_cycles_per_flit();
        let arb_base = SimRng::seed_from_u64(seed ^ 0x6E65_7477);
        let mut per_node_sources: Vec<Vec<NodeSource>> = (0..nnodes).map(|_| Vec::new()).collect();
        let mut nic_lists: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); node_ports]; nnodes];
        for (conn, src) in sources.into_iter().enumerate() {
            let (node, inp, _) = hops[conn][0];
            let local = local_of[conn][0] as usize;
            let slot = nic_lists[node][inp].len() as u32;
            nic_lists[node][inp].push(local);
            per_node_sources[node].push(NodeSource {
                conn: conn as u32,
                nic: inp as u32, // resolved to a dense NIC index below
                slot,
                src,
            });
        }

        let mut nodes = Vec::with_capacity(nnodes);
        for nd in 0..nnodes {
            let locals = &local_conns[nd];
            let nloc = locals.len();
            let mut by_input: Vec<Vec<usize>> = vec![Vec::new(); node_ports];
            let mut qos = Vec::with_capacity(nloc);
            let mut route = Vec::with_capacity(nloc);
            for (local, &(conn, hi)) in locals.iter().enumerate() {
                let (_, inp, out) = hops[conn][hi];
                by_input[inp].push(local);
                qos.push(VcQosInfo {
                    output: out,
                    reserved_slots: specs[conn].reserved_slots,
                    iat_rc: specs[conn].iat_router_cycles(&cfg.router.time),
                });
                let next = if hi + 1 == hops[conn].len() {
                    HopNext::Deliver
                } else {
                    HopNext::Forward {
                        out: out_of_port[nd][out],
                        next_vc: local_of[conn][hi + 1],
                    }
                };
                debug_assert!(
                    !matches!(next, HopNext::Forward { out: u32::MAX, .. }),
                    "route uses an unwired out port"
                );
                let back = if hi == 0 {
                    HopBack::Nic
                } else {
                    HopBack::Wire {
                        link: in_of_port[nd][inp],
                        up_vc: local_of[conn][hi - 1],
                    }
                };
                route.push(VcRoute { next, back });
            }
            // Dense NIC list: one NIC per ingress port that sources
            // connections here, in port order.
            let mut nics = Vec::new();
            let mut nic_of_port = vec![u32::MAX; node_ports];
            for (port, list) in nic_lists[nd].iter().enumerate() {
                if !list.is_empty() {
                    nic_of_port[port] = nics.len() as u32;
                    nics.push(Nic::new(list.clone()));
                }
            }
            let mut node_sources = std::mem::take(&mut per_node_sources[nd]);
            for s in &mut node_sources {
                s.nic = nic_of_port[s.nic as usize];
            }
            nodes.push(FabricNode {
                mem: VcMemory::new(nloc, cfg.router.vc_buffer_flits, cfg.router.vc_ram_banks),
                link_scheds: by_input
                    .iter()
                    .enumerate()
                    .map(|(p, conns)| LinkScheduler::new(p, conns.clone()))
                    .collect(),
                qos,
                priority_fn: priority.instantiate(),
                arbiter: arbiter_kind.instantiate(node_ports),
                matching: Matching::new(node_ports),
                crossbar: Crossbar::new(node_ports),
                credits_down: CreditBank::new(nloc, cfg.router.vc_buffer_flits as u32),
                candidates: CandidateSet::new(node_ports, cfg.router.candidate_levels),
                rng: arb_base.split(nd as u64),
                route,
                nics,
                nic_credits: CreditBank::new(nloc, cfg.router.vc_buffer_flits as u32),
                sources: node_sources,
                out_count: out_start[nd + 1] - out_start[nd],
                in_count: in_start[nd + 1] - in_start[nd],
                drain_buf: Vec::new(),
                crossed_buf: Vec::new(),
                events: Vec::new(),
                horizon: 0,
            });
        }

        Fabric {
            specs,
            nodes,
            link_slots: (0..nlinks).map(|l| (out_slot[l], in_slot[l])).collect(),
            in_start,
            flit_out: (0..nlinks).map(|_| Vec::new()).collect(),
            flit_in: (0..nlinks).map(|_| Vec::new()).collect(),
            cred_out: (0..nlinks).map(|_| Vec::new()).collect(),
            cred_in: (0..nlinks).map(|_| Vec::new()).collect(),
            flit_pend: (0..nlinks).map(|_| VecDeque::new()).collect(),
            cred_pend: (0..nlinks).map(|_| VecDeque::new()).collect(),
            metrics: MetricsCollector::new(n, cfg.router.time),
            cursors: vec![0; nnodes],
            paths_out,
            timing: Timing {
                rc_per_flit,
                crossing_rc: cfg.router.crossing_latency_flits * rc_per_flit,
                link_latency: cfg.link_latency,
            },
            generated_total: 0,
            delivered_total: 0,
            cfg,
        }
    }

    /// Fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Router count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Directed inter-node link count.
    pub fn link_count(&self) -> usize {
        self.link_slots.len()
    }

    /// Admitted connection count.
    pub fn connection_count(&self) -> usize {
        self.specs.len()
    }

    /// The reserved path of one connection: out port at each hop.
    pub fn path_of(&self, conn: usize) -> &[usize] {
        &self.paths_out[conn]
    }

    /// QoS metrics snapshot (end to end, across all hops).
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Mean crossbar utilization per node.
    pub fn node_utilizations(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .map(|nd| nd.crossbar.mean_utilization())
            .collect()
    }

    /// Flits buffered anywhere: NICs, VC memories, and in flight on
    /// links (pending queues and both mailbox lanes).
    pub fn backlog(&self) -> usize {
        self.nodes.iter().map(FabricNode::backlog).sum::<usize>()
            + self.flit_pend.iter().map(VecDeque::len).sum::<usize>()
            + self.flit_in.iter().map(Vec::len).sum::<usize>()
            + self.flit_out.iter().map(Vec::len).sum::<usize>()
    }

    /// True when sources are exhausted and nothing is buffered or in
    /// flight.
    pub fn drained(&self) -> bool {
        self.nodes
            .iter()
            .all(|nd| nd.sources.iter().all(|s| s.src.peek_next().is_none()))
            && self.backlog() == 0
    }

    /// Per-node arbitration-RNG fingerprints: the next raw draw of a
    /// clone of each node's RNG.  Bit-identical across worker counts
    /// and engine modes.
    pub fn rng_fingerprints(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|nd| nd.rng.clone().next_u64_raw())
            .collect()
    }

    /// Run summary.
    pub fn summary(&self) -> FabricSummary {
        let hop_total: usize = self.paths_out.iter().map(Vec::len).sum();
        FabricSummary {
            topology: self.cfg.topology.label(),
            nodes: self.nodes.len(),
            links: self.link_slots.len(),
            connections: self.specs.len(),
            mean_hops: hop_total as f64 / self.specs.len().max(1) as f64,
            metrics: self.metrics.report(),
            node_utilization: self.node_utilizations(),
            generated_flits: self.generated_total,
            delivered_flits: self.delivered_total,
            backlog_flits: self.backlog(),
        }
    }

    /// Swap the double-buffered mailbox lanes at an epoch barrier:
    /// outboxes become inboxes (pointer swaps; buffers are reused).
    fn swap_boxes(&mut self) {
        for &(o, i) in &self.link_slots {
            std::mem::swap(&mut self.flit_out[o], &mut self.flit_in[i]);
            std::mem::swap(&mut self.cred_out[i], &mut self.cred_in[o]);
        }
    }

    /// Commit per-node event buffers into the global metrics collector
    /// in deterministic (cycle offset, node, emission) order — the same
    /// order in sequential and parallel execution, so float
    /// accumulation is bit-identical.
    fn commit_events(&mut self, epoch_len: u64, measuring: bool) {
        self.cursors.clear();
        self.cursors.resize(self.nodes.len(), 0);
        for off in 0..epoch_len as u32 {
            for nd in 0..self.nodes.len() {
                let mut c = self.cursors[nd];
                let events = &self.nodes[nd].events;
                while c < events.len() && events[c].off == off {
                    match &events[c].kind {
                        EventKind::Generated { conn } => {
                            self.generated_total += 1;
                            if measuring {
                                self.metrics
                                    .record_generated(self.specs[*conn as usize].class);
                            }
                        }
                        EventKind::Delivered { delivery } => {
                            self.delivered_total += 1;
                            if measuring {
                                let class = self.specs[delivery.flit.connection.idx()].class;
                                self.metrics.record_delivery(delivery, class);
                            }
                        }
                    }
                    c += 1;
                }
                self.cursors[nd] = c;
            }
        }
        for (nd, node) in self.nodes.iter_mut().enumerate() {
            debug_assert_eq!(self.cursors[nd], node.events.len(), "uncommitted events");
            node.events.clear();
        }
    }

    /// Execute cycles `[a, b)` (one epoch, `b - a <= link_latency`)
    /// across `workers` threads, then commit events and swap mailboxes.
    fn advance_epoch(&mut self, a: u64, b: u64, measuring: bool, workers: usize, horizon: bool) {
        let nnodes = self.nodes.len();
        let w = workers.max(1).min(nnodes.max(1));
        let t = self.timing;
        if w <= 1 {
            run_chunk(
                &mut self.nodes,
                &mut self.flit_out,
                &mut self.cred_in,
                &mut self.cred_pend,
                &mut self.flit_in,
                &mut self.cred_out,
                &mut self.flit_pend,
                a,
                b,
                measuring,
                t,
                horizon,
            );
        } else {
            let base = nnodes / w;
            let rem = nnodes % w;
            std::thread::scope(|s| {
                let mut nodes = &mut self.nodes[..];
                let mut fo = &mut self.flit_out[..];
                let mut ci = &mut self.cred_in[..];
                let mut cp = &mut self.cred_pend[..];
                let mut fi = &mut self.flit_in[..];
                let mut co = &mut self.cred_out[..];
                let mut fp = &mut self.flit_pend[..];
                let mut main_chunk = None;
                for wi in 0..w {
                    let len = base + usize::from(wi < rem);
                    let (nch, nrest) = nodes.split_at_mut(len);
                    nodes = nrest;
                    let olen: usize = nch.iter().map(|nd| nd.out_count).sum();
                    let ilen: usize = nch.iter().map(|nd| nd.in_count).sum();
                    let (foc, forest) = fo.split_at_mut(olen);
                    fo = forest;
                    let (cic, cirest) = ci.split_at_mut(olen);
                    ci = cirest;
                    let (cpc, cprest) = cp.split_at_mut(olen);
                    cp = cprest;
                    let (fic, firest) = fi.split_at_mut(ilen);
                    fi = firest;
                    let (coc, corest) = co.split_at_mut(ilen);
                    co = corest;
                    let (fpc, fprest) = fp.split_at_mut(ilen);
                    fp = fprest;
                    let chunk = (nch, foc, cic, cpc, fic, coc, fpc);
                    if wi == 0 {
                        // The main thread works its own chunk instead of
                        // idling at the barrier.
                        main_chunk = Some(chunk);
                    } else {
                        s.spawn(move || {
                            let (nch, foc, cic, cpc, fic, coc, fpc) = chunk;
                            run_chunk(
                                nch, foc, cic, cpc, fic, coc, fpc, a, b, measuring, t, horizon,
                            );
                        });
                    }
                }
                if let Some((nch, foc, cic, cpc, fic, coc, fpc)) = main_chunk {
                    run_chunk(
                        nch, foc, cic, cpc, fic, coc, fpc, a, b, measuring, t, horizon,
                    );
                }
            });
        }
        self.commit_events(b - a, measuring);
        self.swap_boxes();
    }

    /// Fabric-wide horizon after an epoch ending at cycle `last`:
    /// minimum of the per-node horizons computed at epoch end and the
    /// dues of wire messages swapped into the inboxes.
    fn horizon_after_epoch(&self) -> u64 {
        let mut h = u64::MAX;
        for node in &self.nodes {
            h = h.min(node.horizon);
        }
        for b in &self.flit_in {
            for m in b {
                h = h.min(m.due);
            }
        }
        h
    }

    /// Bulk-advance `n` quiescent cycles (all-node idle accounting).
    fn skip_cycles(&mut self, n: u64, measuring: bool) {
        if measuring {
            for node in &mut self.nodes {
                node.crossbar.record_idle_cycles(n);
            }
        }
    }

    /// Run `bound` flit cycles (with `warmup` of them as warm-up) on
    /// `workers` threads, batching execution into epochs of
    /// `link_latency` cycles.  With `horizon` set, the fabric
    /// fast-forwards quiescent gaps to the minimum cross-shard horizon
    /// between epochs.  The final fabric state is bit-identical to
    /// [`mmr_sim::engine::Runner`] driving [`CycleModel::step`] for the
    /// same `warmup`/`bound`, for every worker count — only the
    /// `skipped`/`executed` split in the outcome may differ from the
    /// runner's (epochs skip at coarser grain).
    pub fn run_parallel(
        &mut self,
        warmup: u64,
        bound: u64,
        workers: usize,
        horizon: bool,
    ) -> FabricRunOutcome {
        let e = self.timing.link_latency.max(1);
        let mut t = 0u64;
        let mut executed = 0u64;
        let mut measured = 0u64;
        let mut skipped = 0u64;
        while t < bound {
            if t == warmup {
                self.on_measurement_start(FlitCycle(t));
            }
            let measuring = t >= warmup;
            let mut b = (t + e).min(bound);
            if t < warmup {
                b = b.min(warmup);
            }
            self.advance_epoch(t, b, measuring, workers, horizon);
            executed += b - t;
            if measuring {
                measured += b - t;
            }
            t = b;
            if horizon && t < bound {
                let mut target = self.horizon_after_epoch().max(t).min(bound);
                if t < warmup {
                    // Never skip across the measurement boundary.
                    target = target.min(warmup);
                }
                if target > t {
                    let gap = target - t;
                    let gap_measuring = t >= warmup;
                    self.skip_cycles(gap, gap_measuring);
                    executed += gap;
                    skipped += gap;
                    if gap_measuring {
                        measured += gap;
                    }
                    t = target;
                }
            }
        }
        FabricRunOutcome {
            executed,
            measured,
            skipped,
        }
    }
}

impl CycleModel for Fabric {
    fn step(&mut self, now: FlitCycle, measuring: bool) {
        // One cycle is a degenerate epoch through the same machinery the
        // parallel path uses — there is a single algorithm, not two.
        self.advance_epoch(now.0, now.0 + 1, measuring, 1, false);
    }

    fn on_measurement_start(&mut self, _now: FlitCycle) {
        self.metrics.reset();
        for node in &mut self.nodes {
            node.crossbar.reset_stats();
        }
        self.generated_total = 0;
        self.delivered_total = 0;
    }

    fn is_done(&self, _now: FlitCycle) -> bool {
        self.drained()
    }

    fn next_event(&self, now: FlitCycle) -> FlitCycle {
        let mut h = u64::MAX;
        for (nd, node) in self.nodes.iter().enumerate() {
            let pend = &self.flit_pend[self.in_start[nd]..self.in_start[nd + 1]];
            h = h.min(node_horizon(node, pend, now.0, self.timing.rc_per_flit));
            if h == now.0 + 1 {
                return FlitCycle(h);
            }
        }
        for b in &self.flit_in {
            for m in b {
                h = h.min(m.due);
            }
        }
        FlitCycle(h.max(now.0 + 1))
    }

    fn skip_quiescent(&mut self, _from: FlitCycle, n: u64, measuring: bool) {
        self.skip_cycles(n, measuring);
    }
}

/// Aggregate results of a fabric run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSummary {
    /// Topology label (e.g. `mesh-4x4`).
    pub topology: String,
    /// Router count.
    pub nodes: usize,
    /// Directed inter-node link count.
    pub links: usize,
    /// Admitted connections.
    pub connections: usize,
    /// Mean reserved-path length in hops.
    pub mean_hops: f64,
    /// End-to-end QoS metrics.
    pub metrics: MetricsReport,
    /// Mean crossbar utilization per node.
    pub node_utilization: Vec<f64>,
    /// Flits generated.
    pub generated_flits: u64,
    /// Flits delivered end to end.
    pub delivered_flits: u64,
    /// Flits buffered or in flight at snapshot.
    pub backlog_flits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_sim::engine::{Runner, StopCondition};
    use mmr_traffic::admission::RoundConfig;
    use mmr_traffic::workload::CbrMixBuilder;

    fn fabric(topology: Topology, load: f64, seed: u64) -> Fabric {
        let router = RouterConfig::default();
        let cfg = FabricConfig::new(router, topology);
        let ports = topology.workload_ports(router.ports, cfg.host_ports);
        let mut rng = SimRng::seed_from_u64(seed);
        let w = CbrMixBuilder::new(ports, router.time, RoundConfig::default())
            .target_load(load)
            .build(&mut rng);
        Fabric::new(cfg, w, ArbiterKind::Coa, PriorityKind::Siabp, seed)
    }

    #[test]
    fn mesh_fabric_delivers_and_keeps_pace() {
        let mut f = fabric(Topology::Mesh { x: 3, y: 3 }, 0.3, 1);
        assert_eq!(f.node_count(), 9);
        Runner::new(500, StopCondition::Cycles(6_000)).run(&mut f);
        let s = f.summary();
        assert!(s.delivered_flits > 0, "mesh delivered nothing");
        assert!(s.mean_hops > 1.0, "mesh paths must be multi-hop");
        assert!(
            s.backlog_flits < 60,
            "mesh backlog {} at low load",
            s.backlog_flits
        );
    }

    #[test]
    fn torus_and_ring_fabrics_deliver() {
        for topo in [Topology::Torus { x: 3, y: 3 }, Topology::Ring { nodes: 5 }] {
            let mut f = fabric(topo, 0.25, 2);
            Runner::new(500, StopCondition::Cycles(6_000)).run(&mut f);
            let s = f.summary();
            assert!(s.delivered_flits > 0, "{} delivered nothing", s.topology);
        }
    }

    #[test]
    fn torus_wrap_shortens_paths() {
        let mesh = fabric(Topology::Mesh { x: 4, y: 4 }, 0.2, 3).summary();
        let torus = fabric(Topology::Torus { x: 4, y: 4 }, 0.2, 3).summary();
        assert!(
            torus.mean_hops < mesh.mean_hops,
            "torus {} vs mesh {}",
            torus.mean_hops,
            mesh.mean_hops
        );
    }

    #[test]
    fn worker_counts_are_bit_identical() {
        let run = |workers: usize| {
            let mut f = fabric(Topology::Mesh { x: 3, y: 3 }, 0.4, 7);
            let outcome = f.run_parallel(400, 4_000, workers, false);
            (f.summary(), f.rng_fingerprints(), outcome)
        };
        let (s1, r1, o1) = run(1);
        for w in [2, 4, 8] {
            let (sw, rw, ow) = run(w);
            assert_eq!(s1, sw, "summary diverged at {w} workers");
            assert_eq!(r1, rw, "RNG stream diverged at {w} workers");
            assert_eq!(o1, ow);
        }
    }

    #[test]
    fn parallel_runner_matches_sequential_cycle_model() {
        let seq = {
            let mut f = fabric(Topology::Mesh { x: 3, y: 3 }, 0.35, 9);
            Runner::new(300, StopCondition::Cycles(3_000)).run(&mut f);
            (f.summary(), f.rng_fingerprints())
        };
        for (workers, horizon) in [(1, false), (2, true), (3, false)] {
            let mut f = fabric(Topology::Mesh { x: 3, y: 3 }, 0.35, 9);
            f.run_parallel(300, 3_000, workers, horizon);
            assert_eq!(
                seq,
                (f.summary(), f.rng_fingerprints()),
                "run_parallel({workers}, horizon={horizon}) diverged from Runner::run"
            );
        }
    }

    #[test]
    fn horizon_engine_matches_naive_on_the_fabric() {
        for &load in &[0.05, 0.3] {
            let run = |horizon: bool| {
                let mut f = fabric(Topology::Mesh { x: 3, y: 3 }, load, 11);
                let runner = Runner::new(300, StopCondition::Cycles(3_000));
                let o = if horizon {
                    runner.run_horizon(&mut f)
                } else {
                    runner.run(&mut f)
                };
                (f.summary(), f.rng_fingerprints(), o.executed)
            };
            assert_eq!(run(true), run(false), "engines diverged at load {load}");
        }
    }

    #[test]
    fn line_fabric_matches_line_semantics() {
        // One-stage line: every connection takes exactly one hop and the
        // reserved path is the spec output.
        let f = fabric(Topology::Line { stages: 1 }, 0.3, 4);
        for conn in 0..f.connection_count() {
            assert_eq!(f.path_of(conn).len(), 1);
            assert_eq!(f.path_of(conn)[0], f.specs[conn].output);
        }
        let mut f = fabric(Topology::Line { stages: 3 }, 0.3, 4);
        assert_eq!(f.link_count(), 2 * RouterConfig::default().ports);
        Runner::new(300, StopCondition::Cycles(4_000)).run(&mut f);
        assert!(f.summary().delivered_flits > 0);
    }
}
