//! Multi-router extension (paper §6 future work): a line of MMRs.
//!
//! "In order to assess the conclusions obtained, this study must be further
//! extended to a network composed of several MMRs."  This module used to
//! hold a bespoke sequential line-of-routers model; it is now a thin
//! wrapper over the topology-general [`fabric`](crate::fabric) with a
//! [`Topology::Line`] description — one network model, not two.  Each
//! connection enters stage 0 through a NIC, follows a fixed per-stage
//! output-port path (Pipelined Circuit Switching reserves the path at
//! setup, with the same seeded draws as the pre-fabric model), and is
//! consumed after the last stage; credit-based flow control runs hop by
//! hop over single-cycle links, so a flit advances at most one hop per
//! flit cycle — exactly the behaviour of independent routers on short
//! links.
//!
//! The wrapper keeps the historical [`NetworkSummary`] shape and — via
//! the fabric — inherits multi-worker execution and the event-horizon
//! engine for free.

use crate::config::RouterConfig;
use crate::fabric::{Fabric, FabricConfig, Topology};
use crate::metrics::MetricsReport;
use mmr_arbiter::priority::PriorityKind;
use mmr_arbiter::scheduler::ArbiterKind;
use mmr_sim::engine::CycleModel;
use mmr_sim::time::FlitCycle;
use mmr_traffic::workload::Workload;
use serde::{Deserialize, Serialize};

/// A tandem network of MMRs: a line-topology [`Fabric`].
pub struct LineNetwork {
    fabric: Fabric,
}

impl LineNetwork {
    /// Build a line of `stages` routers.  Stage-0 input ports come from
    /// the workload specs; the output port at the last stage is the
    /// spec's `output`; intermediate output ports are chosen uniformly at
    /// random (the path a routing probe would have reserved).
    pub fn new(
        cfg: RouterConfig,
        workload: Workload,
        stages: usize,
        arbiter_kind: ArbiterKind,
        priority: PriorityKind,
        seed: u64,
    ) -> Self {
        let fabric_cfg = FabricConfig::new(cfg, Topology::Line { stages });
        LineNetwork {
            fabric: Fabric::new(fabric_cfg, workload, arbiter_kind, priority, seed),
        }
    }

    /// The underlying fabric (e.g. for [`Fabric::run_parallel`] or RNG
    /// fingerprinting).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable access to the underlying fabric.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// Number of router stages.
    pub fn stage_count(&self) -> usize {
        self.fabric.node_count()
    }

    /// The reserved path of one connection: output port at each stage.
    pub fn path_of(&self, conn: usize) -> &[usize] {
        self.fabric.path_of(conn)
    }

    /// QoS metrics snapshot (end-to-end, across all stages).
    pub fn metrics_report(&self) -> MetricsReport {
        self.fabric.metrics_report()
    }

    /// Mean crossbar utilization per stage.
    pub fn stage_utilizations(&self) -> Vec<f64> {
        self.fabric.node_utilizations()
    }

    /// Flits buffered anywhere in the network.
    pub fn backlog(&self) -> usize {
        self.fabric.backlog()
    }

    /// True when sources are exhausted and all buffers empty.
    pub fn drained(&self) -> bool {
        self.fabric.drained()
    }

    /// Run summary.
    pub fn summary(&self) -> NetworkSummary {
        let s = self.fabric.summary();
        NetworkSummary {
            stages: s.nodes,
            metrics: s.metrics,
            stage_utilization: s.node_utilization,
            generated_flits: s.generated_flits,
            delivered_flits: s.delivered_flits,
            backlog_flits: s.backlog_flits,
        }
    }
}

impl CycleModel for LineNetwork {
    fn step(&mut self, now: FlitCycle, measuring: bool) {
        self.fabric.step(now, measuring);
    }

    fn on_measurement_start(&mut self, now: FlitCycle) {
        self.fabric.on_measurement_start(now);
    }

    fn is_done(&self, now: FlitCycle) -> bool {
        self.fabric.is_done(now)
    }

    fn next_event(&self, now: FlitCycle) -> FlitCycle {
        self.fabric.next_event(now)
    }

    fn skip_quiescent(&mut self, from: FlitCycle, n: u64, measuring: bool) {
        self.fabric.skip_quiescent(from, n, measuring);
    }
}

/// Aggregate results of a line-network run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Router stages traversed by every connection.
    pub stages: usize,
    /// End-to-end QoS metrics.
    pub metrics: MetricsReport,
    /// Mean crossbar utilization per stage.
    pub stage_utilization: Vec<f64>,
    /// Flits generated.
    pub generated_flits: u64,
    /// Flits delivered end to end.
    pub delivered_flits: u64,
    /// Flits still buffered at snapshot.
    pub backlog_flits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_sim::engine::{Runner, StopCondition};
    use mmr_sim::rng::SimRng;
    use mmr_traffic::admission::RoundConfig;
    use mmr_traffic::workload::CbrMixBuilder;

    fn network(stages: usize, load: f64, seed: u64) -> LineNetwork {
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let w = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(load)
            .build(&mut rng);
        LineNetwork::new(cfg, w, stages, ArbiterKind::Coa, PriorityKind::Siabp, seed)
    }

    #[test]
    fn one_stage_behaves_like_single_router() {
        let mut net = network(1, 0.3, 1);
        Runner::new(200, StopCondition::Cycles(3_000)).run(&mut net);
        let s = net.summary();
        assert!(s.delivered_flits > 0);
        assert!(s.backlog_flits < 20);
    }

    #[test]
    fn three_stages_deliver_with_higher_latency() {
        let run = |stages| {
            let mut net = network(stages, 0.3, 2);
            Runner::new(500, StopCondition::Cycles(8_000)).run(&mut net);
            net.summary()
        };
        let one = run(1);
        let three = run(3);
        assert!(three.delivered_flits > 0);
        let d1 = one
            .metrics
            .classes
            .iter()
            .map(|c| c.mean_delay_us)
            .fold(0.0, f64::max);
        let d3 = three
            .metrics
            .classes
            .iter()
            .map(|c| c.mean_delay_us)
            .fold(0.0, f64::max);
        assert!(d3 > d1, "3-hop delay {d3} must exceed 1-hop {d1}");
        assert_eq!(three.stage_utilization.len(), 3);
    }

    #[test]
    fn backlog_drains_at_low_load() {
        let mut net = network(2, 0.2, 3);
        // Sources are infinite (CBR), so run fixed cycles then verify the
        // network kept pace.
        Runner::new(500, StopCondition::Cycles(6_000)).run(&mut net);
        assert!(net.backlog() < 30, "backlog {}", net.backlog());
        assert!(!net.drained(), "CBR sources never exhaust");
    }

    #[test]
    fn all_stages_carry_traffic() {
        let mut net = network(3, 0.4, 4);
        Runner::new(500, StopCondition::Cycles(6_000)).run(&mut net);
        for (i, u) in net.stage_utilizations().iter().enumerate() {
            assert!(*u > 0.1, "stage {i} utilization {u}");
        }
    }

    #[test]
    fn line_network_horizon_engine_agrees() {
        let run = |horizon: bool| {
            let mut net = network(2, 0.15, 5);
            let runner = Runner::new(300, StopCondition::Cycles(5_000));
            let o = if horizon {
                runner.run_horizon(&mut net)
            } else {
                runner.run(&mut net)
            };
            (net.summary(), o.executed)
        };
        assert_eq!(run(true), run(false));
    }
}
