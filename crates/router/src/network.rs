//! Multi-router extension (paper §6 future work): a line of MMRs.
//!
//! "In order to assess the conclusions obtained, this study must be further
//! extended to a network composed of several MMRs."  This module builds the
//! simplest such network — `S` routers in tandem — reusing the single-router
//! components: each connection enters stage 0 through a NIC, follows a fixed
//! per-stage output-port path (Pipelined Circuit Switching reserves the path
//! at setup), and is consumed after the last stage.  Credit-based flow
//! control runs hop by hop: a head flit may only be offered to stage *s*'s
//! crossbar when the connection's VC buffer at stage *s+1* has space.
//!
//! All stages arbitrate concurrently from pre-cycle state, so a flit
//! advances at most one hop per flit cycle — exactly the behaviour of
//! independent routers on short links.

use crate::config::RouterConfig;
use crate::credit::CreditBank;
use crate::crossbar::{Crossbar, CrossedFlit};
use crate::link_scheduler::{LinkScheduler, VcQosInfo};
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::nic::Nic;
use crate::output::Delivery;
use crate::vcmem::VcMemory;
use mmr_arbiter::candidate::CandidateSet;
use mmr_arbiter::priority::LinkPriority;
use mmr_arbiter::scheduler::{ArbiterKind, SwitchScheduler};
use mmr_sim::engine::CycleModel;
use mmr_sim::rng::SimRng;
use mmr_sim::time::{FlitCycle, RouterCycle};
use mmr_traffic::connection::ConnectionSpec;
use mmr_traffic::flit::Flit;
use mmr_traffic::workload::Workload;
use serde::{Deserialize, Serialize};

/// One router stage of the line.
struct Stage {
    mem: VcMemory,
    link_scheds: Vec<LinkScheduler>,
    qos: Vec<VcQosInfo>,
    arbiter: Box<dyn SwitchScheduler>,
    crossbar: Crossbar,
    /// Credits for the *next* stage's VC buffers (unused at the last
    /// stage, where the hosts consume flits immediately).
    credits_down: CreditBank,
    candidates: CandidateSet,
}

/// A tandem network of MMRs.
pub struct LineNetwork {
    cfg: RouterConfig,
    priority_fn: Box<dyn LinkPriority>,
    specs: Vec<ConnectionSpec>,
    /// Per connection, the output port taken at each stage.
    paths: Vec<Vec<usize>>,
    sources: Vec<Box<dyn mmr_traffic::source::TrafficSource + Send>>,
    nic_slot: Vec<(usize, usize)>,
    nics: Vec<Nic>,
    nic_credits: CreditBank,
    stages: Vec<Stage>,
    metrics: MetricsCollector,
    rng: SimRng,
    rc_per_flit: u64,
    crossing_rc: u64,
    drain_buf: Vec<Flit>,
    crossed_buf: Vec<CrossedFlit>,
    generated_total: u64,
    delivered_total: u64,
}

impl LineNetwork {
    /// Build a line of `stages` routers.  Stage-0 input ports come from
    /// the workload specs; the output port at the last stage is the
    /// spec's `output`; intermediate output ports are chosen uniformly at
    /// random (the path a routing probe would have reserved).
    pub fn new(
        cfg: RouterConfig,
        workload: Workload,
        stages: usize,
        arbiter_kind: ArbiterKind,
        priority_fn: Box<dyn LinkPriority>,
        seed: u64,
    ) -> Self {
        assert!(stages >= 1, "need at least one stage");
        cfg.validate();
        let Workload {
            connections: specs,
            sources,
            ..
        } = workload;
        let n = specs.len();
        let mut rng = SimRng::seed_from_u64(seed ^ 0x4C49_4E45);

        // Reserve a path per connection: ports at stage boundaries.
        let mut paths: Vec<Vec<usize>> = Vec::with_capacity(n);
        for s in &specs {
            let mut p = Vec::with_capacity(stages);
            for stage in 0..stages {
                if stage + 1 == stages {
                    p.push(s.output);
                } else {
                    p.push(rng.index(cfg.ports));
                }
            }
            paths.push(p);
        }

        // Input port of each connection at each stage: stage 0 uses the
        // spec input; stage s+1 uses the output port at stage s.
        let input_at = |conn: usize, stage: usize| -> usize {
            if stage == 0 {
                specs[conn].input
            } else {
                paths[conn][stage - 1]
            }
        };

        let mut stage_vec = Vec::with_capacity(stages);
        for stage in 0..stages {
            let mut by_input: Vec<Vec<usize>> = vec![Vec::new(); cfg.ports];
            for conn in 0..n {
                by_input[input_at(conn, stage)].push(conn);
            }
            let link_scheds = by_input
                .iter()
                .enumerate()
                .map(|(p, conns)| LinkScheduler::new(p, conns.clone()))
                .collect();
            let qos = (0..n)
                .map(|conn| VcQosInfo {
                    output: paths[conn][stage],
                    reserved_slots: specs[conn].reserved_slots,
                    iat_rc: specs[conn].iat_router_cycles(&cfg.time),
                })
                .collect();
            stage_vec.push(Stage {
                mem: VcMemory::new(n, cfg.vc_buffer_flits, cfg.vc_ram_banks),
                link_scheds,
                qos,
                arbiter: arbiter_kind.instantiate(cfg.ports),
                crossbar: Crossbar::new(cfg.ports),
                credits_down: CreditBank::new(n, cfg.vc_buffer_flits as u32),
                candidates: CandidateSet::new(cfg.ports, cfg.candidate_levels),
            });
        }

        let mut by_input: Vec<Vec<usize>> = vec![Vec::new(); cfg.ports];
        for s in &specs {
            by_input[s.input].push(s.id.idx());
        }
        let mut nic_slot = vec![(0usize, 0usize); n];
        for (port, conns) in by_input.iter().enumerate() {
            for (local, &conn) in conns.iter().enumerate() {
                nic_slot[conn] = (port, local);
            }
        }
        let rc_per_flit = cfg.router_cycles_per_flit();
        LineNetwork {
            specs,
            paths,
            sources,
            nic_slot,
            nics: by_input.iter().map(|c| Nic::new(c.clone())).collect(),
            nic_credits: CreditBank::new(n, cfg.vc_buffer_flits as u32),
            stages: stage_vec,
            metrics: MetricsCollector::new(n, cfg.time),
            rng: SimRng::seed_from_u64(seed ^ 0x6E65_7477),
            rc_per_flit,
            crossing_rc: cfg.crossing_latency_flits * rc_per_flit,
            drain_buf: Vec::new(),
            crossed_buf: Vec::new(),
            generated_total: 0,
            delivered_total: 0,
            priority_fn,
            cfg,
        }
    }

    /// Number of router stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The reserved path of one connection: output port at each stage.
    pub fn path_of(&self, conn: usize) -> &[usize] {
        &self.paths[conn]
    }

    /// QoS metrics snapshot (end-to-end, across all stages).
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Mean crossbar utilization per stage.
    pub fn stage_utilizations(&self) -> Vec<f64> {
        self.stages
            .iter()
            .map(|s| s.crossbar.mean_utilization())
            .collect()
    }

    /// Flits buffered anywhere in the network.
    pub fn backlog(&self) -> usize {
        self.nics.iter().map(Nic::total_depth).sum::<usize>()
            + self
                .stages
                .iter()
                .map(|s| s.mem.total_occupancy())
                .sum::<usize>()
    }

    /// True when sources are exhausted and all buffers empty.
    pub fn drained(&self) -> bool {
        self.sources.iter().all(|s| s.peek_next().is_none()) && self.backlog() == 0
    }

    /// Run summary.
    pub fn summary(&self) -> NetworkSummary {
        NetworkSummary {
            stages: self.stages.len(),
            metrics: self.metrics.report(),
            stage_utilization: self.stage_utilizations(),
            generated_flits: self.generated_total,
            delivered_flits: self.delivered_total,
            backlog_flits: self.backlog(),
        }
    }
}

impl CycleModel for LineNetwork {
    fn step(&mut self, now: FlitCycle, measuring: bool) {
        let now_rc = RouterCycle(now.0 * self.rc_per_flit);
        let last = self.stages.len() - 1;

        // 1. Sources -> NICs.
        for i in 0..self.sources.len() {
            self.drain_buf.clear();
            self.sources[i].drain_until(now_rc, &mut self.drain_buf);
            let (port, local) = self.nic_slot[i];
            let class = self.specs[i].class;
            for &flit in self.drain_buf.iter() {
                self.nics[port].enqueue(local, flit);
                self.generated_total += 1;
                if measuring {
                    self.metrics.record_generated(class);
                }
            }
        }

        // 2. Every stage arbitrates from pre-cycle state.
        let mut matchings = Vec::with_capacity(self.stages.len());
        for (si, stage) in self.stages.iter_mut().enumerate() {
            stage.candidates.clear();
            let gate_credits = si < last;
            let credits = &stage.credits_down;
            for ls in &mut stage.link_scheds {
                ls.select_where(
                    &stage.mem,
                    &stage.qos,
                    self.priority_fn.as_ref(),
                    now_rc,
                    &mut stage.candidates,
                    |vc| !gate_credits || credits.has_credit(vc),
                );
            }
            let m = stage.arbiter.schedule(&stage.candidates, &mut self.rng);
            matchings.push(m);
        }

        // 3. Apply transfers stage by stage (pushes land with end-of-cycle
        //    arrival times, so they cannot be re-scheduled this cycle).
        let arrival = RouterCycle(now_rc.0 + self.rc_per_flit);
        #[allow(clippy::needless_range_loop)] // stage index addresses si+1 too
        for si in 0..self.stages.len() {
            let mut crossed = std::mem::take(&mut self.crossed_buf);
            {
                let stage = &mut self.stages[si];
                stage
                    .crossbar
                    .transfer(&matchings[si], &mut stage.mem, measuring, &mut crossed);
            }
            for cf in &crossed {
                if si == last {
                    // Delivered to the destination host.
                    self.delivered_total += 1;
                    let delivery = Delivery {
                        flit: cf.buffered.flit,
                        output: cf.output,
                        delivered_at: RouterCycle(now_rc.0 + self.crossing_rc),
                    };
                    if measuring {
                        self.metrics
                            .record_delivery(&delivery, self.specs[cf.vc].class);
                    }
                } else {
                    // Advance to the next stage; consumes a downstream
                    // credit (checked at candidate selection).
                    self.stages[si].credits_down.spend(cf.vc);
                    self.stages[si + 1]
                        .mem
                        .push(cf.vc, cf.buffered.flit, arrival);
                }
                // Return a credit upstream: to the NIC for stage 0, to the
                // previous stage otherwise.
                if si == 0 {
                    self.nic_credits.queue_return(cf.vc);
                } else {
                    self.stages[si - 1].credits_down.queue_return(cf.vc);
                }
            }
            self.crossed_buf = crossed;
        }

        // 4. NIC link controllers feed stage 0.
        for nic in &mut self.nics {
            let credits = &self.nic_credits;
            if let Some((conn, flit)) = nic.forward_one(|c| credits.has_credit(c)) {
                self.nic_credits.spend(conn);
                self.stages[0].mem.push(conn, flit, arrival);
            }
        }

        // 5. Credit returns become visible next cycle.
        self.nic_credits.apply_returns();
        for stage in &mut self.stages {
            stage.credits_down.apply_returns();
        }
    }

    fn on_measurement_start(&mut self, _now: FlitCycle) {
        let n = self.specs.len();
        self.metrics = MetricsCollector::new(n, self.cfg.time);
        for stage in &mut self.stages {
            stage.crossbar.reset_stats();
        }
        self.generated_total = 0;
        self.delivered_total = 0;
    }

    fn is_done(&self, _now: FlitCycle) -> bool {
        self.drained()
    }
}

/// Aggregate results of a line-network run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Router stages traversed by every connection.
    pub stages: usize,
    /// End-to-end QoS metrics.
    pub metrics: MetricsReport,
    /// Mean crossbar utilization per stage.
    pub stage_utilization: Vec<f64>,
    /// Flits generated.
    pub generated_flits: u64,
    /// Flits delivered end to end.
    pub delivered_flits: u64,
    /// Flits still buffered at snapshot.
    pub backlog_flits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_arbiter::priority::Siabp;
    use mmr_sim::engine::{Runner, StopCondition};
    use mmr_traffic::admission::RoundConfig;
    use mmr_traffic::workload::CbrMixBuilder;

    fn network(stages: usize, load: f64, seed: u64) -> LineNetwork {
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let w = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(load)
            .build(&mut rng);
        LineNetwork::new(cfg, w, stages, ArbiterKind::Coa, Box::new(Siabp), seed)
    }

    #[test]
    fn one_stage_behaves_like_single_router() {
        let mut net = network(1, 0.3, 1);
        Runner::new(200, StopCondition::Cycles(3_000)).run(&mut net);
        let s = net.summary();
        assert!(s.delivered_flits > 0);
        assert!(s.backlog_flits < 20);
    }

    #[test]
    fn three_stages_deliver_with_higher_latency() {
        let run = |stages| {
            let mut net = network(stages, 0.3, 2);
            Runner::new(500, StopCondition::Cycles(8_000)).run(&mut net);
            net.summary()
        };
        let one = run(1);
        let three = run(3);
        assert!(three.delivered_flits > 0);
        let d1 = one
            .metrics
            .classes
            .iter()
            .map(|c| c.mean_delay_us)
            .fold(0.0, f64::max);
        let d3 = three
            .metrics
            .classes
            .iter()
            .map(|c| c.mean_delay_us)
            .fold(0.0, f64::max);
        assert!(d3 > d1, "3-hop delay {d3} must exceed 1-hop {d1}");
        assert_eq!(three.stage_utilization.len(), 3);
    }

    #[test]
    fn backlog_drains_at_low_load() {
        let mut net = network(2, 0.2, 3);
        // Sources are infinite (CBR), so run fixed cycles then verify the
        // network kept pace.
        Runner::new(500, StopCondition::Cycles(6_000)).run(&mut net);
        assert!(net.backlog() < 30, "backlog {}", net.backlog());
        assert!(!net.drained(), "CBR sources never exhaust");
    }

    #[test]
    fn all_stages_carry_traffic() {
        let mut net = network(3, 0.4, 4);
        Runner::new(500, StopCondition::Cycles(6_000)).run(&mut net);
        for (i, u) in net.stage_utilizations().iter().enumerate() {
            assert!(*u > 0.1, "stage {i} utilization {u}");
        }
    }
}
