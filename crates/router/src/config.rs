//! Router configuration.

use mmr_sim::time::TimeBase;
use mmr_traffic::admission::RoundConfig;
use serde::{Deserialize, Serialize};

/// How each input link selects its candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkPolicy {
    /// Dynamic biased-priority selection (the MMR's design, §3.1).
    Priority,
    /// Static TDM slot table derived from the reservations (§2's round
    /// structure made literal); see [`crate::tdm`].
    SlotTable {
        /// Re-offer idle and unreserved slots to backlogged VCs.
        backfill: bool,
        /// Table entries representing one round.
        table_len: usize,
    },
}

/// Geometry and timing of one MMR.
///
/// Defaults reproduce the paper's evaluation setup: a 4×4 router with
/// four candidate levels, a few flits of buffering per virtual channel,
/// 1.24 Gbps 16-bit links and 1024-bit flits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Physical input/output ports.
    pub ports: usize,
    /// Candidate levels k offered per input to the switch scheduler.
    pub candidate_levels: usize,
    /// Per-virtual-channel buffer capacity, in flits ("a few flits").
    pub vc_buffer_flits: usize,
    /// Link/flit timing.
    pub time: TimeBase,
    /// Bandwidth-round configuration (slot accounting).
    pub round: RoundConfig,
    /// Flit cycles a flit spends crossing the router + output link after
    /// being granted (phit-pipelined, so throughput is unaffected).
    pub crossing_latency_flits: u64,
    /// Number of interleaved RAM banks forming each VC memory (Fig. 2).
    pub vc_ram_banks: usize,
    /// Link-scheduling policy.
    pub link_policy: LinkPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            ports: 4,
            candidate_levels: 4,
            vc_buffer_flits: 4,
            time: TimeBase::default(),
            round: RoundConfig::default(),
            crossing_latency_flits: 1,
            vc_ram_banks: 4,
            link_policy: LinkPolicy::Priority,
        }
    }
}

impl RouterConfig {
    /// Validate internal consistency; panics with a descriptive message on
    /// nonsense configurations.
    pub fn validate(&self) {
        assert!(self.ports > 0, "router needs at least one port");
        assert!(
            self.ports <= mmr_arbiter::candidate::MAX_PORTS,
            "router has {} ports but the scheduling kernels support at most \
             {} (four 64-bit port-set words)",
            self.ports,
            mmr_arbiter::candidate::MAX_PORTS
        );
        assert!(
            self.candidate_levels > 0,
            "need at least one candidate level"
        );
        assert!(
            self.vc_buffer_flits > 0,
            "VC buffers need capacity for one flit"
        );
        assert!(self.vc_ram_banks > 0, "VC memory needs at least one bank");
        assert!(self.round.cycles_per_round > 0, "round must contain slots");
        if let LinkPolicy::SlotTable { table_len, .. } = self.link_policy {
            assert!(table_len > 0, "slot table needs entries");
        }
    }

    /// Router cycles per flit cycle, from the time base.
    pub fn router_cycles_per_flit(&self) -> u64 {
        self.time.router_cycles_per_flit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = RouterConfig::default();
        c.validate();
        assert_eq!(c.ports, 4);
        assert_eq!(c.candidate_levels, 4);
        assert_eq!(c.vc_buffer_flits, 4);
        assert_eq!(c.router_cycles_per_flit(), 64);
    }

    #[test]
    #[should_panic(expected = "candidate level")]
    fn zero_levels_rejected() {
        RouterConfig {
            candidate_levels: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        RouterConfig {
            ports: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn wide_port_counts_accepted_up_to_the_kernel_limit() {
        for ports in [64, 65, 128, 256] {
            RouterConfig {
                ports,
                ..Default::default()
            }
            .validate();
        }
    }

    #[test]
    #[should_panic(expected = "at most 256")]
    fn oversized_router_rejected() {
        RouterConfig {
            ports: 257,
            ..Default::default()
        }
        .validate();
    }
}
