//! The top-level single-router model (paper Fig. 4).
//!
//! Wires sources → NICs → credit-gated input links → VC memory → link
//! scheduler → switch scheduler → crossbar → output sinks, advancing in
//! lock-step one flit cycle at a time.  Within a cycle:
//!
//! 1. sources deposit newly generated flits into their NIC queues;
//! 2. each input's link scheduler offers its k best head flits;
//! 3. the switch scheduler computes a conflict-free matching;
//! 4. matched flits cross the crossbar, are delivered, and queue credit
//!    returns;
//! 5. each NIC forwards at most one credit-holding flit onto its input
//!    link (arriving at the router at the end of the cycle);
//! 6. credit returns are applied (usable next cycle).
//!
//! Steps 2–3 observe the VC state from before step 5, so a flit needs one
//! full cycle on the link before it can compete for the crossbar, and a
//! returned credit takes effect the following cycle — matching the paper's
//! short-link, one-phit-credit timing.

use crate::config::{LinkPolicy, RouterConfig};
use crate::credit::CreditBank;
use crate::crossbar::{Crossbar, CrossedFlit};
use crate::fault::{FaultProfile, FaultReport, FaultState, LinkFate};
use crate::link_scheduler::{LinkScheduler, VcQosInfo};
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::nic::Nic;
use crate::output::{Delivery, OutputPorts};
use crate::tdm::TdmLinkScheduler;
use crate::telemetry::{RouterTelemetry, TelemetryConfig, TelemetryReport};
use crate::vcmem::VcMemory;
use mmr_arbiter::candidate::CandidateSet;
use mmr_arbiter::matching::Matching;
use mmr_arbiter::priority::LinkPriority;
use mmr_arbiter::scheduler::SwitchScheduler;
use mmr_sim::engine::CycleModel;
use mmr_sim::rng::SimRng;
use mmr_sim::time::{FlitCycle, RouterCycle};
use mmr_traffic::calendar::{self, InjectionCalendar};
use mmr_traffic::connection::ConnectionSpec;
use mmr_traffic::flit::Flit;
use mmr_traffic::workload::Workload;
use serde::{Deserialize, Serialize};

/// A link scheduler of either policy (see [`LinkPolicy`]).
enum AnyLinkScheduler {
    Priority(LinkScheduler),
    Tdm(TdmLinkScheduler),
}

impl AnyLinkScheduler {
    fn select(
        &mut self,
        mem: &crate::vcmem::VcMemory,
        qos: &[VcQosInfo],
        priority_fn: &dyn LinkPriority,
        now: RouterCycle,
        cs: &mut mmr_arbiter::candidate::CandidateSet,
    ) -> usize {
        match self {
            AnyLinkScheduler::Priority(ls) => ls.select(mem, qos, priority_fn, now, cs),
            AnyLinkScheduler::Tdm(ts) => ts.select(mem, qos, priority_fn, now, cs),
        }
    }

    fn select_where<F: Fn(usize) -> bool>(
        &mut self,
        mem: &crate::vcmem::VcMemory,
        qos: &[VcQosInfo],
        priority_fn: &dyn LinkPriority,
        now: RouterCycle,
        cs: &mut mmr_arbiter::candidate::CandidateSet,
        eligible: F,
    ) -> usize {
        match self {
            AnyLinkScheduler::Priority(ls) => {
                ls.select_where(mem, qos, priority_fn, now, cs, eligible)
            }
            AnyLinkScheduler::Tdm(ts) => ts.select_where(mem, qos, priority_fn, now, cs, eligible),
        }
    }
}

/// The Multimedia Router with its NICs and traffic sources.
pub struct MmrRouter {
    cfg: RouterConfig,
    specs: Vec<ConnectionSpec>,
    sources: Vec<Box<dyn mmr_traffic::source::TrafficSource + Send>>,
    /// Per-connection next-injection cache, built once at admission time
    /// and refreshed after each drain; backs both the per-cycle drain
    /// fast path and the event-horizon quiescence predicate.
    calendar: InjectionCalendar,
    /// When false, stage 1 polls every source every cycle (the
    /// pre-calendar behaviour).  Bench-only baseline emulation: results
    /// are bit-identical either way, only the cost differs.
    calendar_fast_path: bool,
    /// Per connection: (input port, local index within that NIC).
    nic_slot: Vec<(usize, usize)>,
    nics: Vec<Nic>,
    credits: CreditBank,
    mem: VcMemory,
    link_scheds: Vec<AnyLinkScheduler>,
    qos: Vec<VcQosInfo>,
    priority_fn: Box<dyn LinkPriority>,
    arbiter: Box<dyn SwitchScheduler>,
    crossbar: Crossbar,
    outputs: OutputPorts,
    metrics: MetricsCollector,
    candidates: CandidateSet,
    matching: Matching,
    crossed: Vec<CrossedFlit>,
    drain_buf: Vec<Flit>,
    rng: SimRng,
    rc_per_flit: u64,
    crossing_rc: u64,
    generated_total: u64,
    delivered_total: u64,
    /// Flit cycle at which every finite source had been exhausted, if
    /// that has happened (the end of the generation window).
    generation_ended_at: Option<u64>,
    /// Flits delivered while sources were still generating.
    delivered_in_window: u64,
    /// Fault injection + detection/recovery; inert unless a plan is
    /// installed with [`MmrRouter::set_faults`].
    faults: FaultState,
    /// Observability hooks; the disarmed default costs one branch per
    /// probe point (see [`MmrRouter::set_telemetry`]).
    telemetry: RouterTelemetry,
}

impl MmrRouter {
    /// Build a router running `workload` under the given switch scheduler
    /// and link-priority function.  `seed` drives only arbitration
    /// tie-breaks (workload randomness is fixed at build time).
    pub fn new(
        cfg: RouterConfig,
        workload: Workload,
        arbiter: Box<dyn SwitchScheduler>,
        priority_fn: Box<dyn LinkPriority>,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let Workload {
            connections: specs,
            sources,
            ..
        } = workload;
        let n_conns = specs.len();
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id.idx(), i, "connection ids must be dense");
            assert!(
                s.input < cfg.ports && s.output < cfg.ports,
                "ports out of range"
            );
        }

        // Group connections by input port.
        let mut by_input: Vec<Vec<usize>> = vec![Vec::new(); cfg.ports];
        for s in &specs {
            by_input[s.input].push(s.id.idx());
        }
        let mut nic_slot = vec![(0usize, 0usize); n_conns];
        for (port, conns) in by_input.iter().enumerate() {
            for (local, &conn) in conns.iter().enumerate() {
                nic_slot[conn] = (port, local);
            }
        }
        let nics: Vec<Nic> = by_input.iter().map(|c| Nic::new(c.clone())).collect();
        let link_scheds: Vec<AnyLinkScheduler> = by_input
            .iter()
            .enumerate()
            .map(|(p, conns)| match cfg.link_policy {
                LinkPolicy::Priority => {
                    AnyLinkScheduler::Priority(LinkScheduler::new(p, conns.clone()))
                }
                LinkPolicy::SlotTable {
                    backfill,
                    table_len,
                } => {
                    let reservations: Vec<(usize, u64)> = conns
                        .iter()
                        .map(|&c| (c, specs[c].reserved_slots))
                        .collect();
                    AnyLinkScheduler::Tdm(TdmLinkScheduler::new(
                        p,
                        reservations,
                        cfg.round.cycles_per_round,
                        table_len,
                        backfill,
                    ))
                }
            })
            .collect();
        let qos: Vec<VcQosInfo> = specs
            .iter()
            .map(|s| VcQosInfo {
                output: s.output,
                reserved_slots: s.reserved_slots,
                iat_rc: s.iat_router_cycles(&cfg.time),
            })
            .collect();

        let rc_per_flit = cfg.router_cycles_per_flit();
        let calendar = InjectionCalendar::from_sources(&sources);
        MmrRouter {
            specs,
            sources,
            calendar,
            calendar_fast_path: true,
            nic_slot,
            nics,
            credits: CreditBank::new(n_conns, cfg.vc_buffer_flits as u32),
            mem: VcMemory::new(n_conns, cfg.vc_buffer_flits, cfg.vc_ram_banks),
            link_scheds,
            qos,
            priority_fn,
            arbiter,
            crossbar: Crossbar::new(cfg.ports),
            outputs: OutputPorts::new(cfg.ports),
            metrics: MetricsCollector::new(n_conns, cfg.time),
            candidates: CandidateSet::new(cfg.ports, cfg.candidate_levels),
            matching: Matching::new(cfg.ports),
            crossed: Vec::with_capacity(cfg.ports),
            drain_buf: Vec::new(),
            rng: SimRng::seed_from_u64(seed ^ 0x4D4D_5221),
            rc_per_flit,
            crossing_rc: cfg.crossing_latency_flits * rc_per_flit,
            generated_total: 0,
            delivered_total: 0,
            generation_ended_at: None,
            delivered_in_window: 0,
            faults: FaultState::inactive(cfg.ports, n_conns),
            telemetry: RouterTelemetry::disabled(),
            cfg,
        }
    }

    /// Arm telemetry per `cfg` and the arbiter's work-count probe.  All
    /// buffers are sized here; the per-cycle path stays allocation-free.
    /// Reports stay bit-deterministic unless `cfg.wall_clock` opts into
    /// real stage timing.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        let classes: Vec<_> = self.specs.iter().map(|s| s.class).collect();
        self.telemetry = RouterTelemetry::armed(cfg, &classes);
        self.arbiter.set_probe_enabled(true);
    }

    /// Telemetry state (disarmed by default).
    pub fn telemetry(&self) -> &RouterTelemetry {
        &self.telemetry
    }

    /// Mutable telemetry state (e.g. to reach the flight recorder).
    pub fn telemetry_mut(&mut self) -> &mut RouterTelemetry {
        &mut self.telemetry
    }

    /// Snapshot everything telemetry observed, including the arbitration
    /// kernel's work counters.
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.telemetry.report(self.arbiter.kernel_stats())
    }

    /// Append a Prometheus text exposition of the live telemetry state
    /// (counters, stage profile, kernel probe, observatory histograms)
    /// to `out`.  Histogram values are exposed in seconds.  Performs no
    /// heap allocation once `out` has grown to its working size, so a
    /// scrape loop can reuse one buffer.
    pub fn prometheus_into(&self, out: &mut String) {
        self.telemetry.write_prometheus(
            out,
            &self.arbiter.kernel_stats(),
            self.cfg.time.router_cycle_secs(),
        );
    }

    /// Toggle the calendar-backed stage-1 drain fast path (on by
    /// default).  Turning it off restores the pre-calendar behaviour —
    /// every source polled every cycle — and is bit-identical to the
    /// fast path by construction (an empty drain is a no-op); the bench
    /// harness uses it to measure the naive-loop baseline the
    /// event-horizon engine is compared against.
    pub fn set_calendar_fast_path(&mut self, enabled: bool) {
        self.calendar_fast_path = enabled;
    }

    /// Fingerprint of the arbiter RNG's stream position: equal
    /// fingerprints mean the two routers consumed identical draw
    /// sequences.  Used by determinism tests to prove telemetry never
    /// touches the RNG.
    pub fn rng_fingerprint(&self) -> u64 {
        self.rng.clone().next_u64_raw()
    }

    /// Install a fault plan and recovery profile (chaos experiments).
    ///
    /// Per-connection contract rates for the rogue-source policing are
    /// derived from the admitted QoS parameters; the profile's delay
    /// bound (flit cycles) is handed to the metrics collector so QoS
    /// violations are counted per connection.
    pub fn set_faults(&mut self, plan: mmr_sim::fault::FaultPlan, profile: FaultProfile) {
        let window_rc = (profile.rate_window * self.rc_per_flit) as f64;
        let contract: Vec<f64> = self
            .qos
            .iter()
            .map(|q| {
                if q.iat_rc > 0.0 {
                    window_rc / q.iat_rc
                } else {
                    0.0
                }
            })
            .collect();
        let guaranteed: Vec<bool> = self.qos.iter().map(|q| q.reserved_slots > 0).collect();
        self.metrics.set_delay_bound(
            profile
                .delay_bound_flit_cycles
                .map(|b| b * self.rc_per_flit),
        );
        self.faults.install(plan, profile, contract, guaranteed);
    }

    /// Fault-subsystem counters (all zero when no plan is installed).
    pub fn fault_report(&self) -> FaultReport {
        self.faults.report()
    }

    /// Per-connection quarantine flags.
    pub fn quarantined(&self) -> &[bool] {
        self.faults.quarantined()
    }

    /// True if every connection's NIC credit counters agree with its VC
    /// occupancy (call between cycles; the watchdog restores this after
    /// credit-path faults).
    pub fn credits_consistent(&self) -> bool {
        (0..self.specs.len()).all(|c| self.credits.consistent(c, self.mem.len(c)))
    }

    /// Delay-bound violations per connection in the current measurement
    /// window (all zero unless a fault profile set a bound).
    pub fn violations_per_connection(&self) -> &[u64] {
        self.metrics.violations_per_connection()
    }

    /// Flits delivered per connection in the current measurement window.
    pub fn delivered_per_connection(&self) -> &[u64] {
        self.metrics.delivered_per_connection()
    }

    /// Router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Connection specs (index = connection id).
    pub fn connections(&self) -> &[ConnectionSpec] {
        &self.specs
    }

    /// Live metrics snapshot.
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Jain fairness of delivered throughput normalized by reservations
    /// (best-effort connections, with zero reservation, are excluded).
    pub fn reservation_fairness(&self) -> f64 {
        let weights: Vec<f64> = self.specs.iter().map(|s| s.reserved_slots as f64).collect();
        self.metrics.jain_fairness(&weights)
    }

    /// Aggregate run summary.
    pub fn summary(&self) -> RouterSummary {
        RouterSummary {
            arbiter: self.arbiter.name().to_string(),
            priority_fn: self.priority_fn.name().to_string(),
            reservation_fairness: self.reservation_fairness(),
            metrics: self.metrics.report(),
            crossbar_utilization: self.crossbar.mean_utilization(),
            crossbar_busy_fraction: self.crossbar.busy_fraction(),
            reconfigurations: self.crossbar.reconfigurations(),
            measured_cycles: self.crossbar.cycles(),
            generated_flits: self.generated_total,
            delivered_flits: self.delivered_total,
            delivered_per_output: self.outputs.per_port().to_vec(),
            peak_nic_depth: self.nics.iter().map(Nic::peak_depth).max().unwrap_or(0),
            peak_vc_occupancy: self.mem.peak_occupancy(),
            backlog_flits: self.backlog(),
            generation_window_cycles: self.generation_ended_at,
            delivered_in_window: self.delivered_in_window,
            faults: self.faults.report(),
        }
    }

    /// Flits currently buffered anywhere (NICs + VC memory).
    pub fn backlog(&self) -> usize {
        self.nics.iter().map(Nic::total_depth).sum::<usize>() + self.mem.total_occupancy()
    }

    /// True when all finite sources are exhausted and every buffer is
    /// empty.
    pub fn drained(&self) -> bool {
        self.calendar.all_exhausted() && self.backlog() == 0
    }
}

impl CycleModel for MmrRouter {
    fn step(&mut self, now: FlitCycle, measuring: bool) {
        let now_rc = RouterCycle(now.0 * self.rc_per_flit);

        // 0. Fault events due this cycle fire before anything moves.
        let faults_active = self.faults.is_active();
        if faults_active {
            self.faults.begin_cycle(now.0);
            for conn in self.faults.take_pending_dups() {
                // A phantom credit return materializes on the return path.
                self.credits.queue_return(conn);
            }
        }

        // 1. Source generation into NIC queues.  The calendar's O(1)
        // lower bound proves most cycles have nothing due, so the whole
        // per-source scan is skipped; when a scan does run it refreshes
        // the bound to the exact minimum in the same pass.
        let t_gen = self.telemetry.stage_begin();
        let mut gen_count = 0u64;
        if !self.calendar_fast_path || self.calendar.min_lower_bound() <= now_rc.0 {
            let mut new_min = calendar::NEVER;
            for i in 0..self.sources.len() {
                let mut next = self.calendar.next_rc(i);
                let due = next <= now_rc.0;
                if due || !self.calendar_fast_path {
                    self.drain_buf.clear();
                    self.sources[i].drain_until(now_rc, &mut self.drain_buf);
                    if due || !self.drain_buf.is_empty() {
                        // An empty legacy-path drain cannot have moved
                        // the source, so the cached entry stays fresh.
                        self.calendar.update(i, self.sources[i].peek_next());
                        next = self.calendar.next_rc(i);
                    }
                    let (port, local) = self.nic_slot[i];
                    let class = self.specs[i].class;
                    for &flit in self.drain_buf.iter() {
                        self.nics[port].enqueue(local, flit);
                        self.generated_total += 1;
                        gen_count += 1;
                        self.telemetry.on_generated(class);
                        if measuring {
                            self.metrics.record_generated(class);
                        }
                        if faults_active {
                            self.faults.note_generated(i);
                        }
                    }
                }
                new_min = new_min.min(next);
            }
            self.calendar.set_min_lb(new_min);
        }
        // 1b. Rogue sources inject beyond their admitted contract; the
        // rate meter sees the excess and may quarantine the connection.
        if faults_active {
            for i in 0..self.specs.len() {
                if let Some((seq0, n)) = self.faults.rogue_take(i, now.0) {
                    let (port, local) = self.nic_slot[i];
                    let class = self.specs[i].class;
                    for k in 0..n as u64 {
                        let flit = Flit::cbr(self.specs[i].id, seq0 + k, now_rc);
                        self.nics[port].enqueue(local, flit);
                        self.generated_total += 1;
                        gen_count += 1;
                        self.telemetry.on_generated(class);
                        if measuring {
                            self.metrics.record_generated(class);
                        }
                        self.faults.note_generated(i);
                    }
                }
            }
            self.faults.poll_contracts(now.0);
            for idx in 0..self.faults.newly_quarantined().len() {
                // Degradation policy: the violator loses its reservation,
                // so the link schedulers treat it as best-effort and its
                // slots return to the best-effort pool.
                let conn = self.faults.newly_quarantined()[idx];
                self.qos[conn].reserved_slots = 0;
                self.telemetry.on_quarantine(now.0, conn);
            }
            self.faults.clear_newly_quarantined();
        }
        self.telemetry.end_source_gen(t_gen, gen_count);

        // 2. Link scheduling: candidate selection per input.  VCs routed
        // to a stalled output are ineligible — offering them would waste
        // crossbar grants on a port that cannot accept.
        let t_ls = self.telemetry.stage_begin();
        self.candidates.clear();
        let mem = &self.mem;
        let qos = &self.qos;
        let priority_fn = self.priority_fn.as_ref();
        let mut cand_count = 0u64;
        if mem.total_occupancy() == 0 {
            // No buffered flit anywhere: no scheduler can offer a
            // candidate, so skip the per-VC scans.  Only the TDM table
            // cursors carry per-call state — advance them exactly as an
            // empty `select` would have.
            for ls in &mut self.link_scheds {
                if let AnyLinkScheduler::Tdm(ts) = ls {
                    ts.advance_cursor(1);
                }
            }
        } else if faults_active && self.faults.any_stall(now.0) {
            let faults = &self.faults;
            for ls in &mut self.link_scheds {
                cand_count +=
                    ls.select_where(mem, qos, priority_fn, now_rc, &mut self.candidates, |vc| {
                        !faults.output_stalled(qos[vc].output, now.0)
                    }) as u64;
            }
        } else {
            for ls in &mut self.link_scheds {
                cand_count += ls.select(mem, qos, priority_fn, now_rc, &mut self.candidates) as u64;
            }
        }
        self.telemetry.end_link_schedule(t_ls, cand_count);

        // 3. Switch scheduling, into the reusable matching buffer — the
        // arbiters' `schedule_into` and their struct scratch keep the
        // whole step allocation-free in steady state.
        let t_arb = self.telemetry.stage_begin();
        if self.candidates.is_empty() {
            // Nothing to arbitrate.  Skipping the kernel call (rather
            // than handing it an empty set) guarantees an idle cycle
            // leaves the RNG stream and kernel probes untouched — the
            // property that makes executing a quiescent cycle identical
            // to skipping it (DESIGN.md §12).
            self.matching.clear();
        } else {
            self.arbiter
                .schedule_into(&self.candidates, &mut self.rng, &mut self.matching);
        }
        self.telemetry
            .end_arbitration(t_arb, self.matching.size() as u64);
        if self.telemetry.is_enabled() {
            // Trace grants, and inputs that offered a head candidate but
            // went unmatched (VC stalled for at least this cycle).
            for g in self.matching.grants() {
                self.telemetry.on_grant(now.0, g.input, g.output, g.vc);
            }
            for input in 0..self.cfg.ports {
                if !self.matching.input_matched(input) {
                    if let Some(c) = self.candidates.get(input, 0) {
                        self.telemetry.on_vc_stall(now.0, input, c.output, c.vc);
                    }
                }
            }
        }

        // 4. Crossbar traversal + delivery + credit returns.
        let t_xbar = self.telemetry.stage_begin();
        let mut crossed = std::mem::take(&mut self.crossed);
        self.crossbar
            .transfer(&self.matching, &mut self.mem, measuring, &mut crossed);
        self.telemetry.end_crossbar(t_xbar, crossed.len() as u64);
        let t_dlv = self.telemetry.stage_begin();
        let mut returns_queued = 0u64;
        for cf in &crossed {
            self.outputs.record(cf.output);
            self.delivered_total += 1;
            if self.generation_ended_at.is_none() {
                self.delivered_in_window += 1;
            }
            let delivery = Delivery {
                flit: cf.buffered.flit,
                output: cf.output,
                delivered_at: RouterCycle(now_rc.0 + self.crossing_rc),
            };
            if measuring {
                self.metrics
                    .record_delivery(&delivery, self.specs[cf.vc].class);
            }
            self.telemetry.on_delivered(
                self.specs[cf.vc].class,
                cf.vc,
                delivery.delay().0,
                delivery.delivered_at.0 - cf.buffered.entered_at.0,
            );
            if faults_active && self.faults.steal_return(cf.vc) {
                // Credit return lost on the return path: the NIC's
                // counter drifts low until the watchdog resynchronizes.
            } else {
                self.credits.queue_return(cf.vc);
                returns_queued += 1;
            }
        }
        self.telemetry.end_delivery(t_dlv, crossed.len() as u64);
        self.crossed = crossed;

        // 5. NIC link controllers forward one flit per input link.
        let t_fwd = self.telemetry.stage_begin();
        let mut forwarded = 0u64;
        let arrival = RouterCycle(now_rc.0 + self.rc_per_flit);
        for (input, nic) in self.nics.iter_mut().enumerate() {
            if nic.is_empty() {
                continue; // nothing queued: skip the round-robin scan
            }
            let credits = &self.credits;
            let Some((conn, mut flit)) = nic.forward_one(|c| credits.has_credit(c)) else {
                continue;
            };
            self.credits.spend(conn);
            forwarded += 1;
            self.telemetry.on_credit_consumed(now.0, conn);
            if faults_active {
                if self.faults.on_link_flit(input, &mut flit) == LinkFate::Dropped {
                    // Silent loss: the spent credit vanishes with the
                    // flit; only the watchdog can recover it.
                    continue;
                }
                if !flit.integrity_ok() {
                    // Ingress checksum catch: discard the damaged flit
                    // and return its credit immediately (the buffer slot
                    // was never consumed).
                    self.faults.note_corrupt_detected();
                    self.telemetry.on_fault_detected(now.0, 0);
                    self.credits.queue_return(conn);
                    returns_queued += 1;
                    continue;
                }
                if self.mem.free_space(conn) == 0 {
                    // Phantom-credit guard: a duplicated credit let the
                    // NIC send into a full buffer.  Discarding the flit
                    // without a credit return annihilates the phantom.
                    self.faults.note_phantom_drop();
                    self.telemetry.on_fault_detected(now.0, 1);
                    continue;
                }
            }
            self.mem.push(conn, flit, arrival);
        }
        self.telemetry.end_nic_forward(t_fwd, forwarded);

        // 6. Credit returns become visible next cycle.  Under fault
        // injection the counters saturate instead of panicking, and the
        // watchdog periodically audits them against VC occupancy.
        let t_cr = self.telemetry.stage_begin();
        if faults_active {
            let excess = self.credits.apply_returns_clamped();
            if excess > 0 {
                self.faults.note_excess_credits(excess);
            }
            if self.faults.watchdog_due(now.0) {
                for conn in 0..self.specs.len() {
                    let occupancy = self.mem.len(conn);
                    if !self.credits.consistent(conn, occupancy) {
                        let expected = self.credits.capacity() - occupancy as u32;
                        self.credits.resync(conn, expected);
                        self.faults.note_resync();
                        self.telemetry.on_fault_detected(now.0, 2);
                    }
                }
            }
        } else {
            self.credits.apply_returns();
        }
        self.telemetry.end_credit_return(t_cr, returns_queued);

        // Track the end of the generation window (finite workloads only).
        // The O(1) bound reaches NEVER on exactly the cycle the last
        // source drains (that drain's scan refreshes it), so this is
        // equivalent to the O(n) `all_exhausted` scan.
        if self.generation_ended_at.is_none() && self.calendar.min_lower_bound() == calendar::NEVER
        {
            self.generation_ended_at = Some(now.0 + 1);
        }

        // Close the telemetry cycle (gauges + snapshot-window roll); the
        // backlog scan runs only when armed.
        if self.telemetry.is_enabled() {
            let backlog = self.backlog() as u64;
            self.telemetry.end_cycle(now.0, backlog);
        }
    }

    fn on_measurement_start(&mut self, _now: FlitCycle) {
        self.metrics.reset();
        self.crossbar.reset_stats();
        self.outputs.reset();
        self.generated_total = 0;
        self.delivered_total = 0;
        self.delivered_in_window = 0;
        self.generation_ended_at = None;
        self.faults.reset_stats();
    }

    fn is_done(&self, _now: FlitCycle) -> bool {
        self.drained()
    }

    fn next_event(&self, now: FlitCycle) -> FlitCycle {
        // Any buffered flit means credits, queues and metrics can move
        // next cycle: no skipping.
        if self.backlog() > 0 {
            return FlitCycle(now.0 + 1);
        }
        // Quiescent.  The next state change is the earliest of: the next
        // injection (calendar), the next armed fault activity, and — if
        // credit counters drifted under faults — the next watchdog audit
        // (its resync must execute on the same cycle as in the naive
        // loop).
        // The calendar bound may be stale-early; waking up on it is safe
        // (the stepped cycle scans, finds nothing due, and refreshes the
        // bound, so the next skip is exact).
        let mut horizon = match self.calendar.min_lower_bound() {
            calendar::NEVER => u64::MAX,
            rc => rc.div_ceil(self.rc_per_flit),
        };
        if self.faults.is_active() {
            horizon = horizon.min(self.faults.horizon(now.0));
            let period = self.faults.profile().watchdog_period;
            if period > 0 && !self.credits.all_at_capacity() {
                horizon = horizon.min((now.0 / period + 1) * period);
            }
        }
        FlitCycle(horizon.max(now.0 + 1))
    }

    fn skip_quiescent(&mut self, from: FlitCycle, n: u64, measuring: bool) {
        // Reproduce exactly what `n` executed quiescent steps would have
        // left behind: measured-cycle counts, TDM table phase, and
        // telemetry epochs.  Everything else (queues, credits, RNG,
        // metrics) provably cannot move while quiescent.
        if measuring {
            self.crossbar.record_idle_cycles(n);
        }
        for ls in &mut self.link_scheds {
            if let AnyLinkScheduler::Tdm(ts) = ls {
                ts.advance_cursor(n);
            }
        }
        if self.telemetry.is_enabled() {
            self.telemetry.skip_quiescent(from.0, n);
        }
    }
}

/// Aggregate results of one router run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterSummary {
    /// Switch-scheduler name.
    pub arbiter: String,
    /// Link-priority function name.
    pub priority_fn: String,
    /// Jain fairness of throughput normalized by reservations (1.0 =
    /// service proportional to reserved slots).
    pub reservation_fairness: f64,
    /// QoS metrics.
    pub metrics: MetricsReport,
    /// Mean crossbar utilization over measured cycles.
    pub crossbar_utilization: f64,
    /// Fraction of measured cycles with ≥1 transfer.
    pub crossbar_busy_fraction: f64,
    /// Input VC switches (arbitration/reconfiguration events).
    pub reconfigurations: u64,
    /// Cycles counted toward statistics.
    pub measured_cycles: u64,
    /// Flits generated (whole run, reset at measurement start).
    pub generated_flits: u64,
    /// Flits delivered (whole run, reset at measurement start).
    pub delivered_flits: u64,
    /// Deliveries per output port.
    pub delivered_per_output: Vec<u64>,
    /// High-water mark of any NIC's total queue depth.
    pub peak_nic_depth: usize,
    /// High-water mark of total VC-memory occupancy.
    pub peak_vc_occupancy: usize,
    /// Flits still buffered at snapshot time.
    pub backlog_flits: usize,
    /// Flit cycle (from run start) at which all finite sources were
    /// exhausted; `None` while any source can still generate.
    pub generation_window_cycles: Option<u64>,
    /// Flits delivered during the generation window.
    pub delivered_in_window: u64,
    /// Fault-subsystem counters (all zero when no faults were injected).
    pub faults: FaultReport,
}

impl RouterSummary {
    /// Delivered throughput as a fraction of generated traffic.
    pub fn throughput_ratio(&self) -> f64 {
        if self.generated_flits == 0 {
            1.0
        } else {
            self.delivered_flits as f64 / self.generated_flits as f64
        }
    }

    /// Crossbar utilization measured over the *generation window* only:
    /// flits delivered while sources were active / (ports × window).
    /// Deliveries that slip past the window — the backlog a saturated
    /// scheduler accumulates — do not count, which is what makes this the
    /// Fig. 8 metric: it degrades exactly where QoS does.  Falls back to
    /// the whole-run utilization for infinite workloads.
    pub fn generation_window_utilization(&self) -> f64 {
        let ports = self.delivered_per_output.len().max(1) as f64;
        match self.generation_window_cycles {
            Some(window) if window > 0 => self.delivered_in_window as f64 / (ports * window as f64),
            _ => self.crossbar_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_arbiter::priority::Siabp;
    use mmr_arbiter::scheduler::ArbiterKind;
    use mmr_sim::engine::{Runner, StopCondition};
    use mmr_sim::units::Bandwidth;
    use mmr_traffic::admission::RoundConfig;
    use mmr_traffic::connection::TrafficClass;
    use mmr_traffic::workload::CbrMixBuilder;

    fn small_cbr_router(load: f64, kind: ArbiterKind, seed: u64) -> MmrRouter {
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let w = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(load)
            .build(&mut rng);
        MmrRouter::new(cfg, w, kind.instantiate(4), Box::new(Siabp), seed)
    }

    #[test]
    fn low_load_delivers_everything_quickly() {
        let mut r = small_cbr_router(0.3, ArbiterKind::Coa, 1);
        let out = Runner::new(500, StopCondition::Cycles(5_000)).run(&mut r);
        assert_eq!(out.executed, 5_000);
        let s = r.summary();
        assert!(s.generated_flits > 0, "sources must generate");
        // At 30% load the router keeps up: backlog stays tiny.
        assert!(
            s.backlog_flits < 20,
            "backlog {} too large for 30% load",
            s.backlog_flits
        );
        let ratio = s.throughput_ratio();
        assert!(ratio > 0.99, "throughput ratio {ratio}");
        // Mean delay should be a few flit cycles (µs scale).
        let m = s.metrics.class(TrafficClass::CbrHigh).unwrap();
        assert!(m.mean_delay_us < 20.0, "mean delay {} µs", m.mean_delay_us);
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let mut r = small_cbr_router(0.5, ArbiterKind::Coa, 2);
        Runner::new(1_000, StopCondition::Cycles(10_000)).run(&mut r);
        let s = r.summary();
        // Crossbar utilization ≈ offered load (each flit crosses once).
        assert!(
            (s.crossbar_utilization - 0.5).abs() < 0.08,
            "utilization {} vs load 0.5",
            s.crossbar_utilization
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = small_cbr_router(0.6, ArbiterKind::Coa, seed);
            Runner::new(200, StopCondition::Cycles(3_000)).run(&mut r);
            r.summary()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_arbiters_share_workload() {
        // Same seed -> identical workload; arbiters may differ in results
        // but both must deliver traffic without violating invariants.
        for kind in [
            ArbiterKind::Coa,
            ArbiterKind::Wfa,
            ArbiterKind::Islip { iterations: 2 },
        ] {
            let mut r = small_cbr_router(0.5, kind, 3);
            Runner::new(200, StopCondition::Cycles(3_000)).run(&mut r);
            let s = r.summary();
            assert!(s.delivered_flits > 0, "{} delivered nothing", s.arbiter);
            assert!(s.peak_vc_occupancy <= r.connections().len() * 4);
        }
    }

    #[test]
    fn flit_delay_floor_is_two_flit_cycles() {
        // NIC link (1 cycle) + crossbar/output (1 cycle) is the minimum
        // path; no delivery may undercut it.
        let mut r = small_cbr_router(0.2, ArbiterKind::Coa, 4);
        Runner::new(100, StopCondition::Cycles(2_000)).run(&mut r);
        let s = r.summary();
        let flit_us = 1024.0 / 1.24e9 * 1e6;
        for c in &s.metrics.classes {
            if c.delivered > 0 {
                // mean >= 2 flit cycles minus rounding slack
                assert!(
                    c.mean_delay_us >= 2.0 * flit_us * 0.9,
                    "{:?} mean {} µs under floor",
                    c.class,
                    c.mean_delay_us
                );
            }
        }
    }

    #[test]
    fn generation_window_tracked_for_finite_workloads() {
        use mmr_traffic::workload::VbrMixBuilder;
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(21);
        let w = VbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(0.3)
            .gops(1)
            .build(&mut rng);
        let mut r = MmrRouter::new(cfg, w, ArbiterKind::Coa.instantiate(4), Box::new(Siabp), 21);
        let out = Runner::new(0, StopCondition::ModelDoneOrCycles(3_000_000)).run(&mut r);
        assert!(out.model_finished);
        let s = r.summary();
        let window = s
            .generation_window_cycles
            .expect("finite sources must close the window");
        assert!(window > 0 && window <= out.executed);
        assert!(s.delivered_in_window <= s.delivered_flits);
        // At 30% load nearly everything is delivered inside the window.
        assert!(s.delivered_in_window as f64 / s.delivered_flits as f64 > 0.99);
        let wu = s.generation_window_utilization();
        assert!(wu > 0.0 && wu <= 1.0, "window utilization {wu}");
    }

    #[test]
    fn infinite_workload_window_falls_back_to_run_utilization() {
        let mut r = small_cbr_router(0.4, ArbiterKind::Coa, 6);
        Runner::new(100, StopCondition::Cycles(2_000)).run(&mut r);
        let s = r.summary();
        assert_eq!(s.generation_window_cycles, None);
        assert_eq!(s.generation_window_utilization(), s.crossbar_utilization);
    }

    #[test]
    fn empty_workload_router_is_trivially_done() {
        let cfg = RouterConfig::default();
        let w = Workload {
            connections: vec![],
            sources: vec![],
            windows: vec![],
            per_input_load: vec![0.0; 4],
            admission: Default::default(),
        };
        let mut r = MmrRouter::new(cfg, w, ArbiterKind::Coa.instantiate(4), Box::new(Siabp), 0);
        assert!(r.drained());
        let out = Runner::new(0, StopCondition::ModelDoneOrCycles(100)).run(&mut r);
        assert!(out.model_finished);
        assert_eq!(r.summary().generated_flits, 0);
    }

    #[test]
    fn faults_are_detected_and_credits_recover() {
        use crate::fault::FaultProfile;
        use mmr_sim::fault::{FaultEvent, FaultKind, FaultPlan};
        let mut r = small_cbr_router(0.5, ArbiterKind::Coa, 11);
        let conns = r.connections().len();
        let mut events = Vec::new();
        for c in 0..conns.min(8) {
            events.push(FaultEvent {
                at: 100 + c as u64 * 7,
                kind: FaultKind::DropCredit { conn: c },
            });
            events.push(FaultEvent {
                at: 130 + c as u64 * 7,
                kind: FaultKind::DuplicateCredit { conn: c },
            });
        }
        for input in 0..4 {
            events.push(FaultEvent {
                at: 200 + input as u64,
                kind: FaultKind::CorruptFlit { input },
            });
            events.push(FaultEvent {
                at: 300 + input as u64,
                kind: FaultKind::DropFlit { input },
            });
        }
        r.set_faults(FaultPlan::from_events(events), FaultProfile::default());
        Runner::new(0, StopCondition::Cycles(3_000)).run(&mut r);
        let rep = r.fault_report();
        assert!(rep.events_fired > 0);
        assert_eq!(rep.corrupted_flits, 4, "every corruption must be caught");
        assert!(rep.dropped_flits >= 4);
        assert!(rep.credits_lost > 0);
        assert!(rep.credit_resyncs > 0, "watchdog must fix the drift");
        assert!(
            r.credits_consistent(),
            "credits must be consistent after recovery"
        );
        // The router keeps delivering traffic through the faults.
        assert!(r.summary().delivered_flits > 0);
    }

    #[test]
    fn stalled_output_receives_nothing_during_the_stall() {
        use crate::fault::FaultProfile;
        use mmr_sim::fault::{FaultEvent, FaultKind, FaultPlan};
        let mut r = small_cbr_router(0.6, ArbiterKind::Coa, 12);
        r.set_faults(
            FaultPlan::from_events(vec![FaultEvent {
                at: 500,
                kind: FaultKind::StallOutput {
                    output: 2,
                    flit_cycles: 200,
                },
            }]),
            FaultProfile::default(),
        );
        let mut during_stall = 0;
        let mut after_stall = 0;
        for t in 0..1_500u64 {
            let prev = r.summary().delivered_per_output[2];
            r.step(FlitCycle(t), true);
            let delta = r.summary().delivered_per_output[2] - prev;
            if (500..700).contains(&t) {
                during_stall += delta;
            } else if t >= 700 {
                after_stall += delta;
            }
        }
        assert_eq!(r.fault_report().stall_cycles, 200);
        assert_eq!(during_stall, 0, "stalled port must accept nothing");
        assert!(after_stall > 0, "port must resume after the stall");
        assert!(r.summary().delivered_flits > 0);
    }

    #[test]
    fn rogue_source_is_quarantined_and_loses_priority() {
        use crate::fault::FaultProfile;
        use mmr_sim::fault::{FaultEvent, FaultKind, FaultPlan};
        let mut r = small_cbr_router(0.5, ArbiterKind::Coa, 13);
        let victim = 0usize;
        r.set_faults(
            FaultPlan::from_events(vec![FaultEvent {
                at: 100,
                kind: FaultKind::RogueSource {
                    conn: victim,
                    flit_cycles: 3_000,
                    extra_flits_per_cycle: 2,
                },
            }]),
            FaultProfile {
                rate_window: 512,
                ..Default::default()
            },
        );
        Runner::new(0, StopCondition::Cycles(4_000)).run(&mut r);
        let rep = r.fault_report();
        assert!(rep.rogue_flits > 1_000);
        assert_eq!(rep.quarantined_connections, 1);
        assert!(r.quarantined()[victim]);
        for (c, q) in r.quarantined().iter().enumerate() {
            assert_eq!(*q, c == victim, "only the violator is quarantined");
        }
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use crate::fault::FaultProfile;
        use mmr_sim::fault::FaultPlanConfig;
        let run = || {
            let mut r = small_cbr_router(0.6, ArbiterKind::Wfa, 17);
            let cfg = FaultPlanConfig {
                window_start: 200,
                window_len: 2_000,
                ..Default::default()
            };
            let conns = r.connections().len();
            let plan = cfg.generate(4, conns, &mut SimRng::seed_from_u64(99));
            r.set_faults(plan, FaultProfile::default());
            Runner::new(0, StopCondition::Cycles(4_000)).run(&mut r);
            r.summary()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical seed + plan must replay bit-for-bit");
        assert!(a.faults.events_fired > 0);
    }

    #[test]
    fn single_connection_end_to_end() {
        // One 55 Mbps connection 0 -> 2: every flit arrives, in order,
        // with constant low delay.
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(9);
        let w = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .classes(vec![(TrafficClass::CbrHigh, Bandwidth::mbps(55.0), 1.0)])
            .target_load(0.05)
            .build(&mut rng);
        let n = w.len();
        assert!(n >= 1);
        let mut r = MmrRouter::new(cfg, w, ArbiterKind::Coa.instantiate(4), Box::new(Siabp), 9);
        Runner::new(0, StopCondition::Cycles(20_000)).run(&mut r);
        let s = r.summary();
        let m = s.metrics.class(TrafficClass::CbrHigh).unwrap();
        assert!(m.delivered > 500);
        // Uncontended: delay pinned at the 2-flit-cycle floor.
        let flit_us = 1024.0 / 1.24e9 * 1e6;
        assert!(
            m.mean_delay_us < 3.0 * flit_us,
            "uncontended delay {} µs",
            m.mean_delay_us
        );
    }
}
