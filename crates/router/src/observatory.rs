//! The QoS observatory: distribution-grade telemetry for one router.
//!
//! The paper's argument is distributional — Figs. 5/9 compare average
//! *and worst-case* delay per traffic class — so scalar counters are not
//! enough.  The observatory records three [`LogHistogram`] channels per
//! traffic class (end-to-end delay, inter-flit jitter, VC-queue
//! residency) plus a per-connection delay histogram, and tracks SLO
//! compliance against a configurable delay bound:
//!
//! * **Delay-bound violations** — deliveries of guaranteed-class flits
//!   (CBR/VBR; best-effort carries no bound) later than
//!   `delay_bound_rc`, counted per class, per connection, and per
//!   telemetry window.
//! * **Best-effort starvation** — telemetry windows in which best-effort
//!   flits were generated but none were delivered, accumulated in
//!   windows and cycles.
//!
//! Everything is sized at arm time; the per-delivery path touches only
//! pre-allocated buffers (histogram slot adds and a few compares), so the
//! observatory inherits the telemetry substrate's contract: free when
//! off, allocation-free and perturbation-free when armed.

use crate::metrics::{class_index, ALL_CLASSES, CLASS_COUNT};
use mmr_sim::stats::LogHistogram;
use mmr_traffic::connection::TrafficClass;
use serde::{Deserialize, Serialize};

/// Sentinel for "no previous delay recorded on this connection".
const NO_DELAY: u64 = u64::MAX;

/// Distribution channels and SLO counters for one traffic class, as
/// reported.  Histogram values are router cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassObservation {
    /// The traffic class.
    pub class: TrafficClass,
    /// End-to-end delay (generation to delivery), router cycles.
    pub delay: LogHistogram,
    /// Absolute delay difference between consecutive deliveries of the
    /// same connection, router cycles.
    pub jitter: LogHistogram,
    /// VC-queue residency (router entry to crossbar exit), router cycles.
    pub residency: LogHistogram,
    /// Deliveries that broke the delay bound (always 0 for best-effort).
    pub slo_violations: u64,
}

/// Per-connection delay summary, distilled from the connection's delay
/// histogram at report time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionObservation {
    /// Global connection index.
    pub connection: u32,
    /// The connection's traffic class.
    pub class: TrafficClass,
    /// Flits delivered.
    pub delivered: u64,
    /// Exact mean delay, router cycles.
    pub mean_delay_rc: f64,
    /// Median delay (bucket midpoint), router cycles.
    pub p50_delay_rc: u64,
    /// 99th-percentile delay (bucket midpoint), router cycles.
    pub p99_delay_rc: u64,
    /// Worst delay, router cycles (exact).
    pub max_delay_rc: u64,
    /// Deliveries that broke the delay bound.
    pub slo_violations: u64,
}

/// Aggregate SLO figures for a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSummary {
    /// The armed delay bound in router cycles (0 = tracking disabled).
    pub delay_bound_rc: u64,
    /// Total delay-bound violations across guaranteed classes.
    pub violations_total: u64,
    /// Telemetry windows in which best-effort generated flits but
    /// delivered none.
    pub best_effort_starved_windows: u64,
    /// Cycles spent inside those starved windows.
    pub best_effort_starved_cycles: u64,
    /// Telemetry windows the observatory has seen close.
    pub windows_observed: u64,
}

/// Everything the observatory saw, in serializable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservatoryReport {
    /// Per-class channels, in [`ALL_CLASSES`] order.
    pub classes: Vec<ClassObservation>,
    /// Per-connection summaries for connections that delivered at least
    /// one flit, in connection order.
    pub connections: Vec<ConnectionObservation>,
    /// Aggregate SLO figures.
    pub slo: SloSummary,
}

/// Live observatory state owned by a [`crate::telemetry::RouterTelemetry`].
#[derive(Debug)]
pub struct Observatory {
    enabled: bool,
    delay_bound_rc: u64,
    // Per-class channels, indexed by `class_index`.
    class_delay: Vec<LogHistogram>,
    class_jitter: Vec<LogHistogram>,
    class_residency: Vec<LogHistogram>,
    class_violations: [u64; CLASS_COUNT],
    // Per-connection state, indexed by global connection index.
    conn_class: Vec<TrafficClass>,
    conn_delay: Vec<LogHistogram>,
    conn_last_delay: Vec<u64>,
    conn_violations: Vec<u64>,
    // SLO window tracking.
    be_starved_windows: u64,
    be_starved_cycles: u64,
    windows_observed: u64,
}

impl Observatory {
    /// The disarmed default: every hook is a single branch.
    pub fn disabled() -> Self {
        Observatory {
            enabled: false,
            delay_bound_rc: 0,
            class_delay: Vec::new(),
            class_jitter: Vec::new(),
            class_residency: Vec::new(),
            class_violations: [0; CLASS_COUNT],
            conn_class: Vec::new(),
            conn_delay: Vec::new(),
            conn_last_delay: Vec::new(),
            conn_violations: Vec::new(),
            be_starved_windows: 0,
            be_starved_cycles: 0,
            windows_observed: 0,
        }
    }

    /// Arm for `conn_classes.len()` connections.  Every buffer — one
    /// histogram per class channel, one per connection — is allocated
    /// here; the record path never allocates.
    pub fn armed(delay_bound_rc: u64, conn_classes: &[TrafficClass]) -> Self {
        let n = conn_classes.len();
        Observatory {
            enabled: true,
            delay_bound_rc,
            class_delay: (0..CLASS_COUNT).map(|_| LogHistogram::default()).collect(),
            class_jitter: (0..CLASS_COUNT).map(|_| LogHistogram::default()).collect(),
            class_residency: (0..CLASS_COUNT).map(|_| LogHistogram::default()).collect(),
            class_violations: [0; CLASS_COUNT],
            conn_class: conn_classes.to_vec(),
            conn_delay: (0..n).map(|_| LogHistogram::default()).collect(),
            conn_last_delay: vec![NO_DELAY; n],
            conn_violations: vec![0; n],
            be_starved_windows: 0,
            be_starved_cycles: 0,
            windows_observed: 0,
        }
    }

    /// Whether the hooks record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The armed delay bound (router cycles).
    pub fn delay_bound_rc(&self) -> u64 {
        self.delay_bound_rc
    }

    /// Record one delivery.  Returns `true` when it violated the delay
    /// bound (guaranteed classes only), so the caller can account it in
    /// the current telemetry window.
    #[inline]
    pub fn on_delivered(
        &mut self,
        conn: usize,
        class: TrafficClass,
        delay_rc: u64,
        residency_rc: u64,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        let i = class_index(class);
        self.class_delay[i].record(delay_rc);
        self.class_residency[i].record(residency_rc);
        self.conn_delay[conn].record(delay_rc);
        let last = self.conn_last_delay[conn];
        if last != NO_DELAY {
            self.class_jitter[i].record(delay_rc.abs_diff(last));
        }
        self.conn_last_delay[conn] = delay_rc;
        let violated = self.delay_bound_rc > 0
            && class != TrafficClass::BestEffort
            && delay_rc > self.delay_bound_rc;
        if violated {
            self.class_violations[i] += 1;
            self.conn_violations[conn] += 1;
        }
        violated
    }

    /// A telemetry window closed with the given best-effort per-window
    /// throughput.  `window_cycles` is the window length in flit cycles.
    #[inline]
    pub fn on_window_close(&mut self, be_generated: u64, be_delivered: u64, window_cycles: u64) {
        if !self.enabled {
            return;
        }
        self.windows_observed += 1;
        if be_generated > 0 && be_delivered == 0 {
            self.be_starved_windows += 1;
            self.be_starved_cycles += window_cycles;
        }
    }

    /// Per-class delay histogram (router cycles).
    pub fn class_delay(&self, class: TrafficClass) -> &LogHistogram {
        &self.class_delay[class_index(class)]
    }

    /// Per-class jitter histogram (router cycles).
    pub fn class_jitter(&self, class: TrafficClass) -> &LogHistogram {
        &self.class_jitter[class_index(class)]
    }

    /// Per-class queue-residency histogram (router cycles).
    pub fn class_residency(&self, class: TrafficClass) -> &LogHistogram {
        &self.class_residency[class_index(class)]
    }

    /// Delay-bound violations recorded for `class`.
    pub fn class_violations(&self, class: TrafficClass) -> u64 {
        self.class_violations[class_index(class)]
    }

    /// Aggregate SLO figures so far.
    pub fn slo_summary(&self) -> SloSummary {
        SloSummary {
            delay_bound_rc: self.delay_bound_rc,
            violations_total: self.class_violations.iter().sum(),
            best_effort_starved_windows: self.be_starved_windows,
            best_effort_starved_cycles: self.be_starved_cycles,
            windows_observed: self.windows_observed,
        }
    }

    /// Snapshot everything observed.  Allocates — report-time only.
    /// `None` when disarmed.
    pub fn report(&self) -> Option<ObservatoryReport> {
        if !self.enabled {
            return None;
        }
        let classes = ALL_CLASSES
            .iter()
            .map(|&class| {
                let i = class_index(class);
                ClassObservation {
                    class,
                    delay: self.class_delay[i].clone(),
                    jitter: self.class_jitter[i].clone(),
                    residency: self.class_residency[i].clone(),
                    slo_violations: self.class_violations[i],
                }
            })
            .collect();
        let connections = self
            .conn_delay
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_empty())
            .map(|(conn, h)| ConnectionObservation {
                connection: conn as u32,
                class: self.conn_class[conn],
                delivered: h.count(),
                mean_delay_rc: h.mean(),
                p50_delay_rc: h.quantile(0.5).unwrap_or(0),
                p99_delay_rc: h.quantile(0.99).unwrap_or(0),
                max_delay_rc: h.max(),
                slo_violations: self.conn_violations[conn],
            })
            .collect();
        Some(ObservatoryReport {
            classes,
            connections,
            slo: self.slo_summary(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: TrafficClass = TrafficClass::CbrHigh;

    #[test]
    fn disabled_observatory_records_nothing() {
        let mut o = Observatory::disabled();
        assert!(!o.on_delivered(0, C, 10_000, 5));
        o.on_window_close(5, 0, 100);
        assert!(o.report().is_none());
    }

    #[test]
    fn delay_jitter_and_residency_channels_fill() {
        let mut o = Observatory::armed(0, &[C, TrafficClass::BestEffort]);
        o.on_delivered(0, C, 100, 40);
        o.on_delivered(0, C, 130, 45);
        o.on_delivered(1, TrafficClass::BestEffort, 900, 800);
        let rep = o.report().unwrap();
        let high = rep.classes.iter().find(|c| c.class == C).unwrap();
        assert_eq!(high.delay.count(), 2);
        assert_eq!(high.residency.count(), 2);
        assert_eq!(
            high.jitter.count(),
            1,
            "second delivery yields one jitter sample"
        );
        assert_eq!(high.jitter.max(), 30);
        assert_eq!(rep.connections.len(), 2);
        assert_eq!(rep.connections[0].delivered, 2);
        assert_eq!(rep.connections[0].max_delay_rc, 130);
    }

    #[test]
    fn jitter_chains_are_per_connection() {
        // Two connections of the same class interleaved: jitter must
        // compare each delivery with the same connection's previous one,
        // not the class's.
        let mut o = Observatory::armed(0, &[C, C]);
        o.on_delivered(0, C, 100, 0);
        o.on_delivered(1, C, 500, 0);
        o.on_delivered(0, C, 110, 0);
        o.on_delivered(1, C, 480, 0);
        let rep = o.report().unwrap();
        let high = rep.classes.iter().find(|c| c.class == C).unwrap();
        assert_eq!(high.jitter.count(), 2);
        assert_eq!(high.jitter.max(), 20, "chains are |110-100| and |480-500|");
    }

    #[test]
    fn delay_bound_violations_spare_best_effort() {
        let mut o = Observatory::armed(200, &[C, TrafficClass::BestEffort]);
        assert!(!o.on_delivered(0, C, 200, 0), "at the bound is compliant");
        assert!(o.on_delivered(0, C, 201, 0));
        assert!(
            !o.on_delivered(1, TrafficClass::BestEffort, 10_000, 0),
            "best-effort carries no delay bound"
        );
        let slo = o.slo_summary();
        assert_eq!(slo.violations_total, 1);
        let rep = o.report().unwrap();
        assert_eq!(rep.connections[0].slo_violations, 1);
        assert_eq!(rep.connections[1].slo_violations, 0);
    }

    #[test]
    fn best_effort_starvation_counts_windows_and_cycles() {
        let mut o = Observatory::armed(0, &[TrafficClass::BestEffort]);
        o.on_window_close(10, 0, 1000); // starved
        o.on_window_close(10, 3, 1000); // served
        o.on_window_close(0, 0, 1000); // idle — not starved
        let slo = o.slo_summary();
        assert_eq!(slo.windows_observed, 3);
        assert_eq!(slo.best_effort_starved_windows, 1);
        assert_eq!(slo.best_effort_starved_cycles, 1000);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut o = Observatory::armed(500, &[C, TrafficClass::Vbr]);
        o.on_delivered(0, C, 100, 10);
        o.on_delivered(0, C, 900, 12);
        o.on_delivered(1, TrafficClass::Vbr, 300, 200);
        o.on_window_close(0, 0, 1000);
        let rep = o.report().unwrap();
        let json = serde_json::to_string(&rep).unwrap();
        let back: ObservatoryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
    }
}
