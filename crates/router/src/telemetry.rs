//! Router-side telemetry: wiring the `mmr_sim::telemetry` substrate into
//! the `MmrRouter` pipeline.
//!
//! A [`RouterTelemetry`] bundles the four observability pieces for one
//! router instance:
//!
//! * a counter [`Registry`] (grants, stalls, credits, faults …);
//! * a [`StageProfiler`] bracketing every stage of `MmrRouter::step`
//!   (source generation, link scheduling, arbitration, crossbar
//!   traversal, delivery, NIC forwarding, credit return);
//! * a [`FlightRecorder`] ring of binary [`TraceEvent`]s (grants, VC
//!   stalls, credit consumption, fault detections, quarantines);
//! * periodic per-class window accumulators feeding a report of
//!   occupancy/throughput/delay snapshots.
//!
//! The disabled default costs one well-predicted branch per hook; the
//! armed path allocates nothing per cycle (all buffers are pre-sized).
//! Timing uses the injected [`Clock`] — the deterministic `NullClock`
//! unless [`TelemetryConfig::wall_clock`] opts into real time — so arming
//! telemetry can never perturb simulation results, only observe them.

use crate::metrics::{class_index, ALL_CLASSES, CLASS_COUNT};
use crate::observatory::{Observatory, ObservatoryReport};
use mmr_arbiter::scheduler::KernelStats;
use mmr_sim::telemetry::{
    expose, Clock, CounterId, CounterSample, FlightRecorder, MonotonicClock, NullClock, Registry,
    SnapshotRing, StageId, StageProfiler, StageSample, TraceEvent,
};
use mmr_traffic::connection::TrafficClass;
use serde::{Deserialize, Serialize};

/// How a router's telemetry should be armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Flight-recorder capacity in events (0 disables tracing).
    pub trace_capacity: usize,
    /// Flit cycles per snapshot window (0 disables windowing).
    pub snapshot_interval: u64,
    /// Maximum retained windows; later windows are counted as dropped.
    pub max_snapshots: usize,
    /// Measure stage wall time with a real monotonic clock.  Off by
    /// default: the `NullClock` keeps reports bit-deterministic.
    pub wall_clock: bool,
    /// Arm the QoS observatory: per-class and per-connection histograms
    /// for delay/jitter/queue residency plus SLO tracking.
    pub observatory: bool,
    /// Delay SLO bound in router cycles, applied to guaranteed classes
    /// (CBR/VBR; best-effort is exempt).  0 disables violation counting.
    /// The default (4096 rc) sits a few multiples above the Fig. 5 mean
    /// delays at 0.7 load, so violations flag genuine tail excursions.
    pub slo_delay_bound_rc: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 4096,
            snapshot_interval: 1000,
            max_snapshots: 512,
            wall_clock: false,
            observatory: true,
            slo_delay_bound_rc: 4096,
        }
    }
}

/// Pipeline stages of `MmrRouter::step`, in execution order.
struct StageIds {
    source_gen: StageId,
    link_schedule: StageId,
    arbitration: StageId,
    crossbar: StageId,
    delivery: StageId,
    nic_forward: StageId,
    credit_return: StageId,
}

impl StageIds {
    fn register(p: &mut StageProfiler) -> Self {
        StageIds {
            source_gen: p.stage("source-gen"),
            link_schedule: p.stage("link-schedule"),
            arbitration: p.stage("arbitration"),
            crossbar: p.stage("crossbar"),
            delivery: p.stage("delivery"),
            nic_forward: p.stage("nic-forward"),
            credit_return: p.stage("credit-return"),
        }
    }
}

/// Registry slots for the router's counters.
struct CounterIds {
    cycles: CounterId,
    grants: CounterId,
    vc_stalls: CounterId,
    credits_consumed: CounterId,
    credits_returned: CounterId,
    faults_detected: CounterId,
    quarantines: CounterId,
    backlog_peak: CounterId,
}

impl CounterIds {
    fn register(r: &mut Registry) -> Self {
        CounterIds {
            cycles: r.register("cycles"),
            grants: r.register("grants_issued"),
            vc_stalls: r.register("vc_stalls"),
            credits_consumed: r.register("credits_consumed"),
            credits_returned: r.register("credits_returned"),
            faults_detected: r.register("faults_detected"),
            quarantines: r.register("connections_quarantined"),
            backlog_peak: r.register("backlog_peak_flits"),
        }
    }
}

/// Per-window accumulator (lives in pre-sized buffers — must stay `Copy`
/// and fixed-size; converted to the `Vec`-based [`WindowSnapshot`] only
/// at report time).
#[derive(Debug, Clone, Copy)]
struct WindowAccum {
    index: u64,
    start_cycle: u64,
    end_cycle: u64,
    generated: [u64; CLASS_COUNT],
    delivered: [u64; CLASS_COUNT],
    delay_sum_rc: [u64; CLASS_COUNT],
    slo_violations: [u64; CLASS_COUNT],
    grants: u64,
    vc_stalls: u64,
    backlog_end: u64,
}

impl WindowAccum {
    fn fresh(index: u64, start_cycle: u64) -> Self {
        WindowAccum {
            index,
            start_cycle,
            end_cycle: start_cycle,
            generated: [0; CLASS_COUNT],
            delivered: [0; CLASS_COUNT],
            delay_sum_rc: [0; CLASS_COUNT],
            slo_violations: [0; CLASS_COUNT],
            grants: 0,
            vc_stalls: 0,
            backlog_end: 0,
        }
    }

    fn snapshot(&self) -> WindowSnapshot {
        WindowSnapshot {
            index: self.index,
            start_cycle: self.start_cycle,
            end_cycle: self.end_cycle,
            grants: self.grants,
            vc_stalls: self.vc_stalls,
            backlog_end: self.backlog_end,
            classes: ALL_CLASSES
                .iter()
                .map(|&class| {
                    let i = class_index(class);
                    WindowClass {
                        class,
                        generated: self.generated[i],
                        delivered: self.delivered[i],
                        mean_delay_rc: if self.delivered[i] == 0 {
                            0.0
                        } else {
                            self.delay_sum_rc[i] as f64 / self.delivered[i] as f64
                        },
                        slo_violations: self.slo_violations[i],
                    }
                })
                .collect(),
        }
    }
}

/// One traffic class inside a [`WindowSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowClass {
    /// The traffic class.
    pub class: TrafficClass,
    /// Flits generated in the window.
    pub generated: u64,
    /// Flits delivered in the window.
    pub delivered: u64,
    /// Mean delivery delay in router cycles (0 when nothing delivered).
    pub mean_delay_rc: f64,
    /// Deliveries in the window that broke the observatory's delay bound
    /// (0 when the observatory is disarmed).
    pub slo_violations: u64,
}

/// One closed snapshot window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Zero-based window number.
    pub index: u64,
    /// First flit cycle of the window.
    pub start_cycle: u64,
    /// Last flit cycle of the window (inclusive).
    pub end_cycle: u64,
    /// Crossbar grants issued during the window.
    pub grants: u64,
    /// Cycles × inputs where a head flit waited but the input went
    /// unmatched.
    pub vc_stalls: u64,
    /// Flits buffered (NICs + VC memory) at the end of the window.
    pub backlog_end: u64,
    /// Per-class throughput and delay for the window.
    pub classes: Vec<WindowClass>,
}

/// Everything telemetry observed over a run, in serializable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Counter registry dump in registration order.
    pub counters: Vec<CounterSample>,
    /// Per-stage profiler dump in pipeline order.
    pub stages: Vec<StageSample>,
    /// Arbitration-kernel work counters (all zero for schedulers without
    /// a probe).
    pub kernel: KernelStats,
    /// Closed snapshot windows in order.
    pub windows: Vec<WindowSnapshot>,
    /// Windows lost to the snapshot-buffer cap.
    pub windows_dropped: u64,
    /// Trace events the flight recorder saw (including overwritten ones).
    pub trace_events_recorded: u64,
    /// Trace events still in the ring.
    pub trace_events_retained: u64,
    /// QoS observatory snapshot (`None` when the observatory is
    /// disarmed).
    pub observatory: Option<ObservatoryReport>,
}

impl TelemetryReport {
    /// Render this report as a Prometheus text exposition.  `scale`
    /// converts router cycles to the exposed unit — pass the time base's
    /// `router_cycle_secs()` to expose seconds.  Produces the same
    /// families as [`RouterTelemetry::write_prometheus`], but from the
    /// owned snapshot (usable after the router is gone).
    pub fn write_prometheus(&self, out: &mut String, scale: f64) {
        expose::write_counters(
            out,
            "mmr",
            self.counters.iter().map(|c| (c.name.as_str(), c.value)),
        );
        expose::write_stages(
            out,
            "mmr",
            self.stages
                .iter()
                .map(|s| (s.name.as_str(), s.calls, s.work, s.wall_ns)),
        );
        write_kernel_prometheus(out, &self.kernel);
        if let Some(obs) = &self.observatory {
            write_observatory_prometheus(
                out,
                scale,
                obs.slo.delay_bound_rc,
                obs.slo.violations_total,
                obs.slo.best_effort_starved_windows,
                obs.slo.best_effort_starved_cycles,
                obs.slo.windows_observed,
                obs.classes
                    .iter()
                    .map(|c| (c.class, &c.delay, &c.jitter, &c.residency, c.slo_violations)),
            );
        }
    }
}

/// Arbitration-kernel counter families.
fn write_kernel_prometheus(out: &mut String, kernel: &KernelStats) {
    expose::write_counters(
        out,
        "mmr_kernel",
        [
            ("matchings", kernel.matchings),
            ("grants", kernel.grants),
            ("candidates_examined", kernel.candidates_examined),
            ("conflicts_retired", kernel.conflicts_retired),
            ("iterations", kernel.iterations),
        ]
        .into_iter(),
    );
}

/// Observatory families: per-class histograms and SLO counters.  Shared
/// between the live writer (borrowing the [`Observatory`]) and the
/// report writer (borrowing an [`ObservatoryReport`]).
#[allow(clippy::too_many_arguments)]
fn write_observatory_prometheus<'a>(
    out: &mut String,
    scale: f64,
    delay_bound_rc: u64,
    violations_total: u64,
    starved_windows: u64,
    starved_cycles: u64,
    windows_observed: u64,
    classes: impl Iterator<
            Item = (
                TrafficClass,
                &'a mmr_sim::stats::LogHistogram,
                &'a mmr_sim::stats::LogHistogram,
                &'a mmr_sim::stats::LogHistogram,
                u64,
            ),
        > + Clone,
) {
    expose::write_header(
        out,
        "mmr_delay_seconds",
        "End-to-end flit delay per traffic class.",
        "histogram",
    );
    for (class, delay, _, _, _) in classes.clone() {
        expose::write_histogram(
            out,
            "mmr_delay_seconds",
            &[("class", class.label())],
            delay,
            scale,
        );
    }
    expose::write_header(
        out,
        "mmr_jitter_seconds",
        "Delay difference between consecutive deliveries of a connection.",
        "histogram",
    );
    for (class, _, jitter, _, _) in classes.clone() {
        expose::write_histogram(
            out,
            "mmr_jitter_seconds",
            &[("class", class.label())],
            jitter,
            scale,
        );
    }
    expose::write_header(
        out,
        "mmr_residency_seconds",
        "VC-queue residency (router entry to crossbar exit).",
        "histogram",
    );
    for (class, _, _, residency, _) in classes.clone() {
        expose::write_histogram(
            out,
            "mmr_residency_seconds",
            &[("class", class.label())],
            residency,
            scale,
        );
    }
    expose::write_header(
        out,
        "mmr_slo_violations_total",
        "Deliveries that broke the delay bound, per class.",
        "counter",
    );
    for (class, _, _, _, violations) in classes {
        expose::write_sample(
            out,
            "mmr_slo_violations_total",
            &[("class", class.label())],
            violations,
        );
    }
    expose::write_header(
        out,
        "mmr_slo_delay_bound_seconds",
        "The armed delay bound (0 = violation counting disabled).",
        "gauge",
    );
    expose::write_sample_f64(
        out,
        "mmr_slo_delay_bound_seconds",
        &[],
        delay_bound_rc as f64 * scale,
    );
    expose::write_counters(
        out,
        "mmr_slo",
        [
            ("violations_all_classes", violations_total),
            ("best_effort_starved_windows", starved_windows),
            ("best_effort_starved_cycles", starved_cycles),
            ("windows_observed", windows_observed),
        ]
        .into_iter(),
    );
}

/// Telemetry state owned by one `MmrRouter`.
///
/// All hooks early-return when disabled; the armed path touches only
/// pre-sized buffers.
#[derive(Debug)]
pub struct RouterTelemetry {
    enabled: bool,
    registry: Registry,
    counters: CounterIds,
    profiler: StageProfiler,
    stages: StageIds,
    recorder: FlightRecorder,
    windows: SnapshotRing<WindowAccum>,
    current: WindowAccum,
    interval: u64,
    observatory: Observatory,
}

impl std::fmt::Debug for CounterIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CounterIds")
    }
}

impl std::fmt::Debug for StageIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StageIds")
    }
}

impl RouterTelemetry {
    /// The default, disarmed state: every hook is a single branch.
    pub fn disabled() -> Self {
        let mut registry = Registry::disabled();
        let counters = CounterIds::register(&mut registry);
        let mut profiler = StageProfiler::disabled();
        let stages = StageIds::register(&mut profiler);
        RouterTelemetry {
            enabled: false,
            registry,
            counters,
            profiler,
            stages,
            recorder: FlightRecorder::disabled(),
            windows: SnapshotRing::with_capacity(0),
            current: WindowAccum::fresh(0, 0),
            interval: 0,
            observatory: Observatory::disabled(),
        }
    }

    /// An armed instance per `cfg` observing the given per-connection
    /// traffic classes.  All buffers are sized here; the per-cycle path
    /// never allocates.
    pub fn armed(cfg: TelemetryConfig, conn_classes: &[TrafficClass]) -> Self {
        let mut registry = Registry::new();
        let counters = CounterIds::register(&mut registry);
        let clock: Box<dyn Clock> = if cfg.wall_clock {
            Box::new(MonotonicClock::new())
        } else {
            Box::new(NullClock)
        };
        let mut profiler = StageProfiler::new(clock);
        let stages = StageIds::register(&mut profiler);
        RouterTelemetry {
            enabled: true,
            registry,
            counters,
            profiler,
            stages,
            recorder: FlightRecorder::new(cfg.trace_capacity),
            windows: SnapshotRing::with_capacity(cfg.max_snapshots),
            current: WindowAccum::fresh(0, 0),
            interval: cfg.snapshot_interval,
            observatory: if cfg.observatory {
                Observatory::armed(cfg.slo_delay_bound_rc, conn_classes)
            } else {
                Observatory::disabled()
            },
        }
    }

    /// The QoS observatory (disarmed unless the config asked for it).
    pub fn observatory(&self) -> &Observatory {
        &self.observatory
    }

    /// Whether the hooks record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The flight recorder (for dumping traces).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Mutable flight recorder (for dump-on-panic plumbing).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    // ---- step() hooks ----------------------------------------------------

    /// Timestamp for a stage about to run (0 when disarmed).
    #[inline]
    pub(crate) fn stage_begin(&self) -> u64 {
        self.profiler.begin()
    }

    #[inline]
    fn stage_end(&mut self, stage: StageId, t0: u64, work: u64) {
        if self.enabled {
            self.profiler.end(stage, t0, work);
        }
    }

    #[inline]
    pub(crate) fn end_source_gen(&mut self, t0: u64, flits: u64) {
        let s = self.stages.source_gen;
        self.stage_end(s, t0, flits);
    }

    #[inline]
    pub(crate) fn end_link_schedule(&mut self, t0: u64, candidates: u64) {
        let s = self.stages.link_schedule;
        self.stage_end(s, t0, candidates);
    }

    #[inline]
    pub(crate) fn end_arbitration(&mut self, t0: u64, grants: u64) {
        let s = self.stages.arbitration;
        self.stage_end(s, t0, grants);
    }

    #[inline]
    pub(crate) fn end_crossbar(&mut self, t0: u64, crossed: u64) {
        let s = self.stages.crossbar;
        self.stage_end(s, t0, crossed);
    }

    #[inline]
    pub(crate) fn end_delivery(&mut self, t0: u64, delivered: u64) {
        let s = self.stages.delivery;
        self.stage_end(s, t0, delivered);
    }

    #[inline]
    pub(crate) fn end_nic_forward(&mut self, t0: u64, forwarded: u64) {
        let s = self.stages.nic_forward;
        self.stage_end(s, t0, forwarded);
    }

    #[inline]
    pub(crate) fn end_credit_return(&mut self, t0: u64, returns: u64) {
        let s = self.stages.credit_return;
        self.stage_end(s, t0, returns);
        self.registry.add(self.counters.credits_returned, returns);
    }

    /// A crossbar grant was issued this cycle.
    #[inline]
    pub(crate) fn on_grant(&mut self, cycle: u64, input: usize, output: usize, vc: usize) {
        if !self.enabled {
            return;
        }
        self.registry.incr(self.counters.grants);
        self.current.grants += 1;
        self.recorder
            .record(TraceEvent::grant(cycle, input, output, vc));
    }

    /// An input had a head flit to offer but went unmatched.
    #[inline]
    pub(crate) fn on_vc_stall(&mut self, cycle: u64, input: usize, output: usize, vc: usize) {
        if !self.enabled {
            return;
        }
        self.registry.incr(self.counters.vc_stalls);
        self.current.vc_stalls += 1;
        self.recorder
            .record(TraceEvent::vc_stalled(cycle, input, output, vc));
    }

    /// A NIC spent a credit forwarding a flit onto its input link.
    #[inline]
    pub(crate) fn on_credit_consumed(&mut self, cycle: u64, conn: usize) {
        if !self.enabled {
            return;
        }
        self.registry.incr(self.counters.credits_consumed);
        self.recorder
            .record(TraceEvent::credit_consumed(cycle, conn));
    }

    /// A fault was caught (`detector`: 0 = ingress checksum, 1 =
    /// phantom-credit guard, 2 = watchdog resync).
    #[inline]
    pub(crate) fn on_fault_detected(&mut self, cycle: u64, detector: u32) {
        if !self.enabled {
            return;
        }
        self.registry.incr(self.counters.faults_detected);
        self.recorder
            .record(TraceEvent::fault_detected(cycle, detector));
    }

    /// A connection was quarantined by contract policing.
    #[inline]
    pub(crate) fn on_quarantine(&mut self, cycle: u64, conn: usize) {
        if !self.enabled {
            return;
        }
        self.registry.incr(self.counters.quarantines);
        self.recorder.record(TraceEvent::quarantined(cycle, conn));
    }

    /// A flit entered the system (source generation).
    #[inline]
    pub(crate) fn on_generated(&mut self, class: TrafficClass) {
        if !self.enabled {
            return;
        }
        self.current.generated[class_index(class)] += 1;
    }

    /// A flit on connection `conn` was delivered after `delay_rc` router
    /// cycles, having sat `residency_rc` router cycles in the VC queue.
    #[inline]
    pub(crate) fn on_delivered(
        &mut self,
        class: TrafficClass,
        conn: usize,
        delay_rc: u64,
        residency_rc: u64,
    ) {
        if !self.enabled {
            return;
        }
        let i = class_index(class);
        self.current.delivered[i] += 1;
        self.current.delay_sum_rc[i] += delay_rc;
        if self
            .observatory
            .on_delivered(conn, class, delay_rc, residency_rc)
        {
            self.current.slo_violations[i] += 1;
        }
    }

    /// Close the current snapshot window ending at `cycle` and open the
    /// next one.  Shared by [`RouterTelemetry::end_cycle`] and the bulk
    /// quiescent skip so both account the window to the observatory's
    /// SLO tracker identically.
    #[inline]
    fn close_window(&mut self, cycle: u64, backlog_end: u64) {
        self.current.end_cycle = cycle;
        self.current.backlog_end = backlog_end;
        let closed = self.current;
        let be = class_index(TrafficClass::BestEffort);
        self.observatory.on_window_close(
            closed.generated[be],
            closed.delivered[be],
            closed.end_cycle - closed.start_cycle + 1,
        );
        self.windows.push(closed);
        self.current = WindowAccum::fresh(closed.index + 1, cycle + 1);
    }

    /// Close the cycle: update gauges and roll the snapshot window when
    /// its interval elapses.
    #[inline]
    pub(crate) fn end_cycle(&mut self, cycle: u64, backlog: u64) {
        if !self.enabled {
            return;
        }
        self.registry.incr(self.counters.cycles);
        if backlog > self.registry.get(self.counters.backlog_peak) {
            self.registry.set_gauge(self.counters.backlog_peak, backlog);
        }
        self.current.end_cycle = cycle;
        if self.interval > 0 && (cycle + 1).is_multiple_of(self.interval) {
            self.close_window(cycle, backlog);
        }
    }

    /// Bulk-advance across `n` skipped quiescent cycles starting at
    /// `from`: bit-identical to calling every per-cycle hook with
    /// zero-work arguments and [`RouterTelemetry::end_cycle`] with zero
    /// backlog for each cycle, but in O(windows crossed) instead of O(n).
    ///
    /// Quiescent cycles record no grants/stalls/credits and cannot raise
    /// the backlog-peak gauge (backlog is zero), so only the cycle
    /// counter, the per-stage call counts and the snapshot-window clock
    /// move.
    pub(crate) fn skip_quiescent(&mut self, from: u64, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        self.registry.add(self.counters.cycles, n);
        self.profiler.add_idle_calls(n);
        let last = from + n - 1;
        if self.interval > 0 {
            // Window boundaries inside the gap: cycles c with
            // (c + 1) % interval == 0 — close each exactly as end_cycle
            // would, with an empty-system backlog.
            let mut c = (from + 1).div_ceil(self.interval) * self.interval - 1;
            while c <= last {
                self.close_window(c, 0);
                c += self.interval;
            }
        }
        if last >= self.current.start_cycle {
            self.current.end_cycle = last;
        }
    }

    // ---- reporting -------------------------------------------------------

    /// Snapshot everything observed so far.  `kernel` comes from the
    /// scheduler's probe.  Allocates — report-time only.
    pub fn report(&self, kernel: KernelStats) -> TelemetryReport {
        TelemetryReport {
            counters: self.registry.samples(),
            stages: self.profiler.samples(),
            kernel,
            windows: self
                .windows
                .as_slice()
                .iter()
                .map(|w| w.snapshot())
                .collect(),
            windows_dropped: self.windows.dropped(),
            trace_events_recorded: self.recorder.recorded(),
            trace_events_retained: self.recorder.len() as u64,
            observatory: self.observatory.report(),
        }
    }

    /// Render the live state as a Prometheus text exposition without
    /// allocating (given a warm `out` buffer): counters, stages and
    /// histograms are walked through their non-allocating iterators.
    /// `kernel` comes from the scheduler's probe; `scale` converts router
    /// cycles to the exposed unit (pass `router_cycle_secs()` for
    /// seconds).  Emits the same families as
    /// [`TelemetryReport::write_prometheus`].
    pub fn write_prometheus(&self, out: &mut String, kernel: &KernelStats, scale: f64) {
        expose::write_counters(out, "mmr", self.registry.iter());
        expose::write_stages(out, "mmr", self.profiler.iter());
        write_kernel_prometheus(out, kernel);
        if self.observatory.is_enabled() {
            let slo = self.observatory.slo_summary();
            write_observatory_prometheus(
                out,
                scale,
                slo.delay_bound_rc,
                slo.violations_total,
                slo.best_effort_starved_windows,
                slo.best_effort_starved_cycles,
                slo.windows_observed,
                ALL_CLASSES.iter().map(|&class| {
                    (
                        class,
                        self.observatory.class_delay(class),
                        self.observatory.class_jitter(class),
                        self.observatory.class_residency(class),
                        self.observatory.class_violations(class),
                    )
                }),
            );
        }
    }
}

impl Default for RouterTelemetry {
    fn default() -> Self {
        RouterTelemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_record_nothing() {
        let mut t = RouterTelemetry::disabled();
        t.on_grant(1, 0, 1, 2);
        t.on_generated(TrafficClass::Vbr);
        t.on_delivered(TrafficClass::Vbr, 0, 10, 4);
        t.end_cycle(0, 5);
        let rep = t.report(KernelStats::default());
        assert!(rep.counters.iter().all(|c| c.value == 0));
        assert!(rep.windows.is_empty());
        assert_eq!(rep.trace_events_recorded, 0);
        assert!(rep.observatory.is_none());
    }

    #[test]
    fn windows_roll_on_interval() {
        let mut t = RouterTelemetry::armed(
            TelemetryConfig {
                snapshot_interval: 10,
                ..Default::default()
            },
            &[TrafficClass::CbrHigh],
        );
        for cycle in 0..25u64 {
            t.on_grant(cycle, 0, 1, 0);
            t.on_generated(TrafficClass::CbrHigh);
            t.on_delivered(TrafficClass::CbrHigh, 0, 4, 2);
            t.end_cycle(cycle, 3);
        }
        let rep = t.report(KernelStats::default());
        assert_eq!(rep.windows.len(), 2, "cycles 0..19 close two windows");
        let w0 = &rep.windows[0];
        assert_eq!(w0.start_cycle, 0);
        assert_eq!(w0.end_cycle, 9);
        assert_eq!(w0.grants, 10);
        assert_eq!(w0.backlog_end, 3);
        let high = w0
            .classes
            .iter()
            .find(|c| c.class == TrafficClass::CbrHigh)
            .unwrap();
        assert_eq!(high.generated, 10);
        assert_eq!(high.delivered, 10);
        assert!((high.mean_delay_rc - 4.0).abs() < 1e-12);
        assert_eq!(rep.windows[1].start_cycle, 10);
    }

    /// Everything one executed quiescent cycle does to telemetry.
    fn run_idle_cycle(t: &mut RouterTelemetry, cycle: u64) {
        let t0 = t.stage_begin();
        t.end_source_gen(t0, 0);
        let t0 = t.stage_begin();
        t.end_link_schedule(t0, 0);
        let t0 = t.stage_begin();
        t.end_arbitration(t0, 0);
        let t0 = t.stage_begin();
        t.end_crossbar(t0, 0);
        let t0 = t.stage_begin();
        t.end_delivery(t0, 0);
        let t0 = t.stage_begin();
        t.end_nic_forward(t0, 0);
        let t0 = t.stage_begin();
        t.end_credit_return(t0, 0);
        t.end_cycle(cycle, 0);
    }

    #[test]
    fn bulk_skip_equals_executed_idle_cycles() {
        // A mid-window skip crossing several window boundaries must leave
        // the report bit-identical to stepping every idle cycle.
        let mk = || {
            RouterTelemetry::armed(
                TelemetryConfig {
                    snapshot_interval: 10,
                    ..Default::default()
                },
                &[TrafficClass::CbrHigh],
            )
        };
        let mut stepped = mk();
        let mut skipped = mk();
        for t in [&mut stepped, &mut skipped] {
            for cycle in 0..4u64 {
                t.on_grant(cycle, 0, 1, 0);
                t.on_generated(TrafficClass::CbrHigh);
                t.on_delivered(TrafficClass::CbrHigh, 0, 3, 1);
                t.end_cycle(cycle, 2);
            }
        }
        for cycle in 4..38u64 {
            run_idle_cycle(&mut stepped, cycle);
        }
        skipped.skip_quiescent(4, 34);
        for t in [&mut stepped, &mut skipped] {
            for cycle in 38..42u64 {
                t.on_grant(cycle, 1, 0, 2);
                t.end_cycle(cycle, 1);
            }
        }
        let a = stepped.report(KernelStats::default());
        let b = skipped.report(KernelStats::default());
        assert_eq!(a, b);
        assert_eq!(a.windows.len(), 4, "cycles 0..39 close four windows");
    }

    #[test]
    fn counters_and_trace_accumulate() {
        let mut t = RouterTelemetry::armed(TelemetryConfig::default(), &[]);
        t.on_grant(5, 1, 2, 3);
        t.on_vc_stall(5, 0, 2, 1);
        t.on_credit_consumed(6, 9);
        t.on_fault_detected(7, 2);
        t.on_quarantine(8, 4);
        let rep = t.report(KernelStats::default());
        let get = |name: &str| {
            rep.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap()
        };
        assert_eq!(get("grants_issued"), 1);
        assert_eq!(get("vc_stalls"), 1);
        assert_eq!(get("credits_consumed"), 1);
        assert_eq!(get("faults_detected"), 1);
        assert_eq!(get("connections_quarantined"), 1);
        assert_eq!(rep.trace_events_recorded, 5);
        assert_eq!(rep.trace_events_retained, 5);
    }

    #[test]
    fn observatory_violations_land_in_windows() {
        let mut t = RouterTelemetry::armed(
            TelemetryConfig {
                snapshot_interval: 10,
                slo_delay_bound_rc: 100,
                ..Default::default()
            },
            &[TrafficClass::CbrHigh, TrafficClass::BestEffort],
        );
        for cycle in 0..10u64 {
            t.on_generated(TrafficClass::BestEffort);
            // One compliant and one violating delivery, plus starving BE.
            t.on_delivered(TrafficClass::CbrHigh, 0, 50, 10);
            t.on_delivered(TrafficClass::CbrHigh, 0, 500, 10);
            t.end_cycle(cycle, 1);
        }
        let rep = t.report(KernelStats::default());
        let w = &rep.windows[0];
        let high = w
            .classes
            .iter()
            .find(|c| c.class == TrafficClass::CbrHigh)
            .unwrap();
        assert_eq!(high.slo_violations, 10);
        let obs = rep.observatory.expect("observatory armed by default");
        assert_eq!(obs.slo.violations_total, 10);
        assert_eq!(obs.slo.best_effort_starved_windows, 1);
        assert_eq!(obs.slo.best_effort_starved_cycles, 10);
        assert_eq!(obs.slo.windows_observed, 1);
        let high_obs = obs
            .classes
            .iter()
            .find(|c| c.class == TrafficClass::CbrHigh)
            .unwrap();
        assert_eq!(high_obs.delay.count(), 20);
        assert_eq!(high_obs.residency.count(), 20);
        assert_eq!(high_obs.jitter.count(), 19);
    }

    #[test]
    fn observatory_opt_out_leaves_reports_bare() {
        let mut t = RouterTelemetry::armed(
            TelemetryConfig {
                observatory: false,
                ..Default::default()
            },
            &[TrafficClass::Vbr],
        );
        t.on_delivered(TrafficClass::Vbr, 0, 10_000, 5);
        let rep = t.report(KernelStats::default());
        assert!(rep.observatory.is_none());
    }

    #[test]
    fn live_and_report_prometheus_expositions_agree() {
        let mut t = RouterTelemetry::armed(
            TelemetryConfig {
                snapshot_interval: 10,
                slo_delay_bound_rc: 100,
                ..Default::default()
            },
            &[TrafficClass::CbrHigh, TrafficClass::BestEffort],
        );
        for cycle in 0..30u64 {
            t.on_generated(TrafficClass::CbrHigh);
            t.on_delivered(TrafficClass::CbrHigh, 0, 40 + cycle * 7, 9);
            t.on_delivered(TrafficClass::BestEffort, 1, 300, 250);
            t.end_cycle(cycle, 2);
        }
        let kernel = KernelStats {
            matchings: 30,
            grants: 60,
            candidates_examined: 90,
            conflicts_retired: 10,
            iterations: 30,
        };
        let scale = 1e-6;
        let mut live = String::new();
        t.write_prometheus(&mut live, &kernel, scale);
        let mut from_report = String::new();
        t.report(kernel).write_prometheus(&mut from_report, scale);
        assert_eq!(live, from_report, "both writers emit identical expositions");
        let stats =
            mmr_sim::telemetry::validate_exposition(&live).expect("generated exposition validates");
        assert!(stats.families > 10);
        assert!(live.contains("mmr_delay_seconds_bucket{class=\"cbr-high\""));
        assert!(live.contains("mmr_slo_violations_total{class=\"cbr-high\"}"));
    }
}
