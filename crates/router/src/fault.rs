//! Fault injection and graceful degradation (chaos experiments).
//!
//! [`FaultState`] consumes a deterministic [`FaultPlan`] and turns its
//! events into concrete pipeline damage — corrupted/lost flits on input
//! links, lost or duplicated credit returns, stalled output ports, and
//! rogue sources violating their admitted contracts.  The matching
//! *recovery* mechanisms live here too:
//!
//! * **checksum discard** — the router ingress verifies every flit's
//!   header CRC ([`mmr_traffic::flit::Flit::integrity_ok`]); corrupted
//!   flits are discarded and their credit returned immediately;
//! * **credit watchdog** — every `watchdog_period` flit cycles the
//!   NIC-side credit counters are audited against actual VC occupancy and
//!   resynchronized on drift (covering silent link drops and phantom
//!   credits);
//! * **contract policing + quarantine** — per-connection generation rates
//!   are metered over `rate_window`; a guaranteed connection exceeding
//!   `rogue_threshold ×` its admitted rate is *quarantined*: its
//!   reservation is zeroed so the link schedulers treat it as
//!   best-effort, returning its slots to the best-effort pool while the
//!   remaining guaranteed connections keep their bounds.
//!
//! Everything is sized at install time and mutated in place, so a router
//! with the fault subsystem compiled in — but no faults scheduled — stays
//! allocation-free in steady state.

use mmr_sim::fault::{FaultKind, FaultPlan};
use serde::{Deserialize, Serialize};

/// Detection/recovery policy knobs (the counterpart of the fault
/// schedule: how hard the router fights back).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Credit-audit period in flit cycles (0 disables the watchdog).
    pub watchdog_period: u64,
    /// Quarantine contract-violating connections (demote to best-effort).
    pub quarantine: bool,
    /// Observed/admitted generation-rate ratio that triggers quarantine.
    pub rogue_threshold: f64,
    /// Rate-metering window in flit cycles.
    pub rate_window: u64,
    /// Per-connection QoS delay bound in flit cycles; deliveries slower
    /// than this count as QoS violations in the metrics.
    pub delay_bound_flit_cycles: Option<u64>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            watchdog_period: 64,
            quarantine: true,
            rogue_threshold: 1.5,
            rate_window: 2_048,
            delay_bound_flit_cycles: None,
        }
    }
}

/// What the fault subsystem saw and did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Plan events consumed.
    pub events_fired: u64,
    /// Flits caught by the ingress checksum check and discarded.
    pub corrupted_flits: u64,
    /// Flits lost outright (silent link drops + phantom-credit guard).
    pub dropped_flits: u64,
    /// Credit returns lost on the return path.
    pub credits_lost: u64,
    /// Spurious duplicate credit returns injected.
    pub credits_duplicated: u64,
    /// Excess credits discarded by counter saturation.
    pub excess_credits_discarded: u64,
    /// Watchdog resynchronizations (one per drifted connection fixed).
    pub credit_resyncs: u64,
    /// Output-port × cycle units spent stalled.
    pub stall_cycles: u64,
    /// Extra flits injected by rogue sources.
    pub rogue_flits: u64,
    /// Connections currently quarantined (demoted to best-effort).
    pub quarantined_connections: u64,
}

impl FaultReport {
    /// Flits that never reached their output (corrupted + dropped).
    pub fn lost_flits(&self) -> u64 {
        self.corrupted_flits + self.dropped_flits
    }
}

/// What happened to a flit crossing the input link this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Arrived untouched.
    Clean,
    /// Arrived with flipped bits (ingress checksum must catch it).
    Corrupted,
    /// Never arrived; the spent credit is gone with it.
    Dropped,
}

/// Runtime fault-injection and recovery state owned by the router.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    profile: FaultProfile,
    cursor: usize,
    /// Per output: first flit cycle at which the port accepts again.
    stall_until: Vec<u64>,
    max_stall_until: u64,
    /// Per input: corruptions/drops waiting for the next forwarded flit.
    pending_corrupt: Vec<u32>,
    pending_drop: Vec<u32>,
    /// Per connection: credit returns to steal / duplicates to inject.
    steal_returns: Vec<u32>,
    pending_dup: Vec<usize>,
    /// Per connection: rogue-source episode state.
    rogue_until: Vec<u64>,
    max_rogue_until: u64,
    rogue_burst: Vec<u32>,
    rogue_seq: Vec<u64>,
    /// Per connection: quarantine flag and rate metering.
    quarantined: Vec<bool>,
    gen_in_window: Vec<u32>,
    /// Admitted flits per rate window, per connection (∞-free contract).
    contract_per_window: Vec<f64>,
    guaranteed: Vec<bool>,
    window_started: u64,
    newly_quarantined: Vec<usize>,
    salt: u16,
    report: FaultReport,
}

/// Sequence-number base for rogue-injected flits, far above any admitted
/// source's range so injected traffic is distinguishable in traces.
const ROGUE_SEQ_BASE: u64 = 1 << 48;

impl FaultState {
    /// An inactive subsystem (empty plan) for `ports` ports and `conns`
    /// connections.
    pub fn inactive(ports: usize, conns: usize) -> Self {
        FaultState {
            plan: FaultPlan::empty(),
            profile: FaultProfile::default(),
            cursor: 0,
            stall_until: vec![0; ports],
            max_stall_until: 0,
            pending_corrupt: vec![0; ports],
            pending_drop: vec![0; ports],
            steal_returns: vec![0; conns],
            pending_dup: Vec::with_capacity(conns.max(4)),
            rogue_until: vec![0; conns],
            max_rogue_until: 0,
            rogue_burst: vec![0; conns],
            rogue_seq: vec![ROGUE_SEQ_BASE; conns],
            quarantined: vec![false; conns],
            gen_in_window: vec![0; conns],
            contract_per_window: vec![0.0; conns],
            guaranteed: vec![false; conns],
            window_started: 0,
            newly_quarantined: Vec::with_capacity(conns.max(1)),
            salt: 0x9E37,
            report: FaultReport::default(),
        }
    }

    /// Install a plan and profile; `contract_per_window[c]` is connection
    /// `c`'s admitted flit count per `profile.rate_window`, and
    /// `guaranteed[c]` marks connections with a bandwidth reservation.
    pub fn install(
        &mut self,
        plan: FaultPlan,
        profile: FaultProfile,
        contract_per_window: Vec<f64>,
        guaranteed: Vec<bool>,
    ) {
        debug_assert_eq!(contract_per_window.len(), self.steal_returns.len());
        self.plan = plan;
        self.profile = profile;
        self.cursor = 0;
        self.contract_per_window = contract_per_window;
        self.guaranteed = guaranteed;
        self.window_started = 0;
    }

    /// True if any fault events are scheduled (fault machinery engaged).
    pub fn is_active(&self) -> bool {
        !self.plan.is_empty()
    }

    /// The installed profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Accumulated counters (quarantine count refreshed live).
    pub fn report(&self) -> FaultReport {
        FaultReport {
            quarantined_connections: self.quarantined.iter().filter(|q| **q).count() as u64,
            ..self.report
        }
    }

    /// Reset counters at measurement start (quarantine and pending fault
    /// state persist — they are system state, not statistics).
    pub fn reset_stats(&mut self) {
        self.report = FaultReport::default();
    }

    /// Consume all events due at `now` (flit cycles) and account stalled
    /// ports.  Call once at the top of each router step.
    pub fn begin_cycle(&mut self, now: u64) {
        let events = self.plan.events();
        while self.cursor < events.len() && events[self.cursor].at <= now {
            let ev = events[self.cursor];
            self.cursor += 1;
            self.report.events_fired += 1;
            match ev.kind {
                FaultKind::CorruptFlit { input } => self.pending_corrupt[input] += 1,
                FaultKind::DropFlit { input } => self.pending_drop[input] += 1,
                FaultKind::DropCredit { conn } => self.steal_returns[conn] += 1,
                FaultKind::DuplicateCredit { conn } => {
                    self.pending_dup.push(conn);
                    self.report.credits_duplicated += 1;
                }
                FaultKind::StallOutput {
                    output,
                    flit_cycles,
                } => {
                    let until = (now + flit_cycles).max(self.stall_until[output]);
                    self.stall_until[output] = until;
                    self.max_stall_until = self.max_stall_until.max(until);
                }
                FaultKind::RogueSource {
                    conn,
                    flit_cycles,
                    extra_flits_per_cycle,
                } => {
                    self.rogue_until[conn] = (now + flit_cycles).max(self.rogue_until[conn]);
                    self.max_rogue_until = self.max_rogue_until.max(self.rogue_until[conn]);
                    self.rogue_burst[conn] = self.rogue_burst[conn].max(extra_flits_per_cycle);
                }
            }
        }
        if self.max_stall_until > now {
            self.report.stall_cycles +=
                self.stall_until.iter().filter(|&&u| u > now).count() as u64;
        }
    }

    /// Drain duplicate-credit injections queued by `begin_cycle`.
    pub fn take_pending_dups(&mut self) -> std::vec::Drain<'_, usize> {
        self.pending_dup.drain(..)
    }

    /// True if `output` refuses flits this cycle.
    #[inline]
    pub fn output_stalled(&self, output: usize, now: u64) -> bool {
        self.stall_until[output] > now
    }

    /// True if any output is stalled this cycle (fast path gate).
    #[inline]
    pub fn any_stall(&self, now: u64) -> bool {
        self.max_stall_until > now
    }

    /// Apply link damage to a flit forwarded on `input`; mutates the flit
    /// in place on corruption.
    pub fn on_link_flit(&mut self, input: usize, flit: &mut mmr_traffic::flit::Flit) -> LinkFate {
        if self.pending_drop[input] > 0 {
            self.pending_drop[input] -= 1;
            self.report.dropped_flits += 1;
            return LinkFate::Dropped;
        }
        if self.pending_corrupt[input] > 0 {
            self.pending_corrupt[input] -= 1;
            flit.corrupt_in_transit(self.salt);
            // Roll the salt so repeated corruptions flip different bits.
            self.salt = self.salt.rotate_left(3) ^ 0x5DEE;
            return LinkFate::Corrupted;
        }
        LinkFate::Clean
    }

    /// Record an ingress-checksum catch (flit discarded, credit returned).
    pub fn note_corrupt_detected(&mut self) {
        self.report.corrupted_flits += 1;
    }

    /// Record a phantom-credit guard drop (flit arrived on a duplicated
    /// credit with no buffer slot free; discarding it without returning a
    /// credit annihilates the phantom).
    pub fn note_phantom_drop(&mut self) {
        self.report.dropped_flits += 1;
    }

    /// Steal `conn`'s next credit return if a loss is pending.
    pub fn steal_return(&mut self, conn: usize) -> bool {
        if self.steal_returns[conn] > 0 {
            self.steal_returns[conn] -= 1;
            self.report.credits_lost += 1;
            true
        } else {
            false
        }
    }

    /// Record credits discarded by counter saturation.
    pub fn note_excess_credits(&mut self, n: u32) {
        self.report.excess_credits_discarded += n as u64;
    }

    /// Record a watchdog resynchronization.
    pub fn note_resync(&mut self) {
        self.report.credit_resyncs += 1;
    }

    /// True when the credit watchdog should audit this cycle.
    #[inline]
    pub fn watchdog_due(&self, now: u64) -> bool {
        self.is_active()
            && self.profile.watchdog_period > 0
            && now.is_multiple_of(self.profile.watchdog_period)
    }

    /// Rogue extra flits for `conn` this cycle, with the next sequence
    /// number to stamp on them; advances the counter.
    pub fn rogue_take(&mut self, conn: usize, now: u64) -> Option<(u64, u32)> {
        if self.rogue_until[conn] > now && self.rogue_burst[conn] > 0 {
            let n = self.rogue_burst[conn];
            let seq = self.rogue_seq[conn];
            self.rogue_seq[conn] += n as u64;
            self.report.rogue_flits += n as u64;
            Some((seq, n))
        } else {
            None
        }
    }

    /// Meter one generated flit for contract policing.
    #[inline]
    pub fn note_generated(&mut self, conn: usize) {
        self.gen_in_window[conn] += 1;
    }

    /// Roll the rate-metering window if due; connections exceeding their
    /// contract are flagged and queued in
    /// [`FaultState::newly_quarantined`].
    pub fn poll_contracts(&mut self, now: u64) {
        if !self.profile.quarantine || self.profile.rate_window == 0 {
            return;
        }
        if now < self.window_started + self.profile.rate_window {
            return;
        }
        for conn in 0..self.gen_in_window.len() {
            let observed = self.gen_in_window[conn] as f64;
            let allowed = self.profile.rogue_threshold * self.contract_per_window[conn] + 2.0;
            if self.guaranteed[conn] && !self.quarantined[conn] && observed > allowed {
                self.quarantined[conn] = true;
                self.newly_quarantined.push(conn);
            }
            self.gen_in_window[conn] = 0;
        }
        self.window_started = now;
    }

    /// Earliest future flit cycle at which the fault subsystem can change
    /// state, given that cycle `now` has just executed (and its events
    /// were consumed by [`FaultState::begin_cycle`]).  `u64::MAX` means
    /// "never" — no plan, or everything already fired and settled.
    ///
    /// The horizon contract allows a too-early answer but never a
    /// too-late one, so every per-cycle behaviour pins it at `now + 1`:
    /// active stalls accrue `stall_cycles` each cycle and active rogue
    /// episodes inject flits each cycle.  Otherwise the next state change
    /// is the next armed plan event or the next contract-window roll
    /// (whose `window_started = now` side effect re-phases all later
    /// rolls, so the roll cycle itself must execute).
    pub fn horizon(&self, now: u64) -> u64 {
        if !self.is_active() {
            return u64::MAX;
        }
        if self.max_stall_until > now || self.max_rogue_until > now {
            return now + 1;
        }
        let mut h = match self.plan.events().get(self.cursor) {
            Some(ev) => ev.at,
            None => u64::MAX,
        };
        if self.profile.quarantine && self.profile.rate_window > 0 {
            h = h.min(self.window_started + self.profile.rate_window);
        }
        h.max(now + 1)
    }

    /// Connections quarantined since the last
    /// [`FaultState::clear_newly_quarantined`] — the router must demote
    /// their reservations.
    pub fn newly_quarantined(&self) -> &[usize] {
        &self.newly_quarantined
    }

    /// Acknowledge processed quarantine decisions.
    pub fn clear_newly_quarantined(&mut self) {
        self.newly_quarantined.clear();
    }

    /// Per-connection quarantine flags.
    pub fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_sim::fault::FaultEvent;
    use mmr_sim::time::RouterCycle;
    use mmr_traffic::connection::ConnectionId;
    use mmr_traffic::flit::Flit;

    fn state_with(events: Vec<FaultEvent>) -> FaultState {
        let mut fs = FaultState::inactive(4, 8);
        fs.install(
            FaultPlan::from_events(events),
            FaultProfile::default(),
            vec![10.0; 8],
            vec![true; 8],
        );
        fs
    }

    #[test]
    fn events_fire_once_at_their_cycle() {
        let mut fs = state_with(vec![
            FaultEvent {
                at: 5,
                kind: FaultKind::CorruptFlit { input: 2 },
            },
            FaultEvent {
                at: 5,
                kind: FaultKind::DropFlit { input: 1 },
            },
            FaultEvent {
                at: 9,
                kind: FaultKind::DropCredit { conn: 3 },
            },
        ]);
        fs.begin_cycle(4);
        assert_eq!(fs.report().events_fired, 0);
        fs.begin_cycle(5);
        assert_eq!(fs.report().events_fired, 2);
        let mut f = Flit::cbr(ConnectionId(0), 0, RouterCycle(0));
        assert_eq!(fs.on_link_flit(1, &mut f), LinkFate::Dropped);
        assert_eq!(fs.on_link_flit(2, &mut f), LinkFate::Corrupted);
        assert!(!f.integrity_ok());
        assert_eq!(fs.on_link_flit(2, &mut f), LinkFate::Clean);
        fs.begin_cycle(9);
        assert!(fs.steal_return(3));
        assert!(!fs.steal_return(3));
    }

    #[test]
    fn stalls_expire_and_are_accounted() {
        let mut fs = state_with(vec![FaultEvent {
            at: 10,
            kind: FaultKind::StallOutput {
                output: 1,
                flit_cycles: 3,
            },
        }]);
        fs.begin_cycle(10);
        assert!(fs.output_stalled(1, 10));
        assert!(fs.any_stall(10));
        assert!(!fs.output_stalled(0, 10));
        assert!(!fs.output_stalled(1, 13));
        assert!(!fs.any_stall(13));
        assert_eq!(fs.report().stall_cycles, 1);
    }

    #[test]
    fn rogue_episode_injects_then_stops() {
        let mut fs = state_with(vec![FaultEvent {
            at: 0,
            kind: FaultKind::RogueSource {
                conn: 2,
                flit_cycles: 2,
                extra_flits_per_cycle: 3,
            },
        }]);
        fs.begin_cycle(0);
        let (seq0, n0) = fs.rogue_take(2, 0).unwrap();
        assert_eq!((seq0, n0), (ROGUE_SEQ_BASE, 3));
        let (seq1, _) = fs.rogue_take(2, 1).unwrap();
        assert_eq!(seq1, ROGUE_SEQ_BASE + 3);
        assert!(fs.rogue_take(2, 2).is_none(), "episode over");
        assert!(fs.rogue_take(1, 0).is_none(), "other conns untouched");
        assert_eq!(fs.report().rogue_flits, 6);
    }

    #[test]
    fn contract_policing_quarantines_violators_once() {
        let mut fs = FaultState::inactive(4, 2);
        fs.install(
            FaultPlan::from_events(vec![FaultEvent {
                at: 0,
                kind: FaultKind::DropCredit { conn: 0 },
            }]),
            FaultProfile {
                rate_window: 10,
                rogue_threshold: 1.5,
                ..Default::default()
            },
            vec![4.0, 4.0],
            vec![true, true],
        );
        // Connection 0 generates 20 flits in a 10-cycle window (contract
        // allows 1.5*4+2 = 8); connection 1 stays within contract.
        for _ in 0..20 {
            fs.note_generated(0);
        }
        for _ in 0..5 {
            fs.note_generated(1);
        }
        fs.poll_contracts(10);
        assert_eq!(fs.newly_quarantined(), &[0]);
        assert_eq!(fs.quarantined(), &[true, false]);
        assert_eq!(fs.report().quarantined_connections, 1);
        fs.clear_newly_quarantined();
        // Already-quarantined connections are not re-flagged.
        for _ in 0..20 {
            fs.note_generated(0);
        }
        fs.poll_contracts(20);
        assert!(fs.newly_quarantined().is_empty());
    }

    #[test]
    fn horizon_tracks_events_stalls_and_window_rolls() {
        let fs = FaultState::inactive(4, 4);
        assert_eq!(fs.horizon(0), u64::MAX, "no plan, nothing to wait for");

        // Default profile: quarantine on, rate_window 2048, window at 0.
        let mut fs = state_with(vec![
            FaultEvent {
                at: 50,
                kind: FaultKind::StallOutput {
                    output: 1,
                    flit_cycles: 3,
                },
            },
            FaultEvent {
                at: 100,
                kind: FaultKind::DropCredit { conn: 0 },
            },
        ]);
        fs.begin_cycle(0);
        assert_eq!(fs.horizon(0), 50, "next armed event");
        fs.begin_cycle(50);
        assert_eq!(fs.horizon(50), 51, "active stall accrues per cycle");
        for t in 51..=53 {
            fs.begin_cycle(t);
        }
        assert_eq!(fs.horizon(53), 100, "stall expired; next event");
        fs.begin_cycle(100);
        assert_eq!(fs.horizon(100), 2048, "contract-window roll is next");
    }

    #[test]
    fn horizon_pins_active_rogue_episodes() {
        let mut fs = state_with(vec![FaultEvent {
            at: 10,
            kind: FaultKind::RogueSource {
                conn: 1,
                flit_cycles: 5,
                extra_flits_per_cycle: 2,
            },
        }]);
        fs.begin_cycle(10);
        assert_eq!(fs.horizon(10), 11, "rogue injects every cycle");
        assert_eq!(fs.horizon(14), 15);
        assert_eq!(fs.horizon(15), 2048, "episode over; window roll next");
    }

    #[test]
    fn inactive_state_is_inert() {
        let mut fs = FaultState::inactive(4, 4);
        assert!(!fs.is_active());
        fs.begin_cycle(0);
        let mut f = Flit::cbr(ConnectionId(0), 0, RouterCycle(0));
        assert_eq!(fs.on_link_flit(0, &mut f), LinkFate::Clean);
        assert!(f.integrity_ok());
        assert!(!fs.watchdog_due(0));
        assert_eq!(fs.report(), FaultReport::default());
    }
}
