//! Head-of-line blocking demonstration (paper §2, "Input Buffers").
//!
//! The MMR gives every connection its own virtual channel "thus avoiding
//! HOL-blocking", citing Karol, Hluchyj & Morgan's classic result: an
//! input-queued switch with a single FIFO per input saturates at
//! **2 − √2 ≈ 58.6 %** throughput under uniform traffic, because a blocked
//! head flit strands every flit queued behind it.
//!
//! This module is a deliberately minimal model of that *rejected* design —
//! one FIFO per input, no virtual channels — so the repository can
//! regenerate the number that motivates the MMR's VC memory.

use mmr_sim::rng::SimRng;
use std::collections::VecDeque;

/// A single-FIFO-per-input crossbar switch under Bernoulli uniform
/// traffic.
#[derive(Debug)]
pub struct FifoSwitch {
    ports: usize,
    queues: Vec<VecDeque<usize>>, // destination of each queued cell
    rng: SimRng,
    delivered: u64,
    generated: u64,
    cycles: u64,
}

impl FifoSwitch {
    /// A switch with `ports` inputs/outputs.
    pub fn new(ports: usize, seed: u64) -> Self {
        assert!(ports > 0);
        FifoSwitch {
            ports,
            queues: (0..ports).map(|_| VecDeque::new()).collect(),
            rng: SimRng::seed_from_u64(seed),
            delivered: 0,
            generated: 0,
            cycles: 0,
        }
    }

    /// Advance one cell time at offered load `p` (per input, uniform
    /// random destinations): arrivals, then head-of-line arbitration
    /// (random among contenders — Karol's model), then service.
    #[allow(clippy::needless_range_loop)] // per-port indexing
    pub fn step(&mut self, p: f64) {
        // Arrivals.
        for input in 0..self.ports {
            if self.rng.uniform() < p {
                let dest = self.rng.index(self.ports);
                self.queues[input].push_back(dest);
                self.generated += 1;
            }
        }
        // HOL arbitration: only the head cell of each FIFO may compete.
        let mut contenders: Vec<Vec<usize>> = vec![Vec::new(); self.ports];
        for input in 0..self.ports {
            if let Some(&dest) = self.queues[input].front() {
                contenders[dest].push(input);
            }
        }
        for dest in 0..self.ports {
            if contenders[dest].is_empty() {
                continue;
            }
            let winner = *self.rng.choose(&contenders[dest]);
            self.queues[winner].pop_front();
            self.delivered += 1;
        }
        self.cycles += 1;
    }

    /// Run `cycles` cell times at offered load `p`.
    pub fn run(&mut self, p: f64, cycles: u64) {
        for _ in 0..cycles {
            self.step(p);
        }
    }

    /// Delivered cells per input per cycle — the carried throughput.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.delivered as f64 / (self.cycles as f64 * self.ports as f64)
    }

    /// Total cells still queued.
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Karol et al.'s asymptotic FIFO saturation throughput.
    pub const KAROL_LIMIT: f64 = 0.5857864376269049; // 2 - sqrt(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_limit_carries_offered_load() {
        let mut sw = FifoSwitch::new(8, 1);
        sw.run(0.4, 200_000);
        let t = sw.throughput();
        assert!((t - 0.4).abs() < 0.01, "throughput {t} at load 0.4");
        assert!(
            sw.backlog() < 200,
            "backlog {} should be bounded",
            sw.backlog()
        );
    }

    #[test]
    fn saturates_near_karol_limit() {
        // Offer full load: carried throughput must cap near 2 - sqrt(2).
        // (The exact limit is asymptotic in N; finite N saturates a bit
        // higher — ~0.62-0.66 for N in the 4-16 range.)
        let mut sw = FifoSwitch::new(16, 2);
        sw.run(1.0, 300_000);
        let t = sw.throughput();
        assert!(
            (FifoSwitch::KAROL_LIMIT - 0.02..0.66).contains(&t),
            "FIFO switch throughput {t} should sit near the 58.6% HOL limit"
        );
    }

    #[test]
    fn larger_switches_approach_the_asymptote_from_above() {
        let run = |ports| {
            let mut sw = FifoSwitch::new(ports, 3);
            sw.run(1.0, 200_000);
            sw.throughput()
        };
        let small = run(4);
        let large = run(32);
        assert!(
            large < small,
            "HOL throughput must shrink with N: N=4 -> {small}, N=32 -> {large}"
        );
        assert!(
            (large - FifoSwitch::KAROL_LIMIT).abs() < 0.02,
            "N=32 throughput {large}"
        );
    }

    #[test]
    fn conservation() {
        let mut sw = FifoSwitch::new(4, 4);
        sw.run(0.9, 50_000);
        assert_eq!(sw.generated, sw.delivered + sw.backlog() as u64);
    }
}
