//! Link scheduling: candidate selection (paper §3.1).
//!
//! Each flit cycle, every input link selects the k virtual channels whose
//! head flits carry the highest biased priorities and offers them to the
//! switch scheduler as its candidate vector.  The priority function is
//! pluggable ([`mmr_arbiter::priority`]); SIABP is the MMR's default.

use crate::vcmem::VcMemory;
use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_arbiter::priority::LinkPriority;
use mmr_sim::time::RouterCycle;

/// Static per-connection inputs to the priority function.
#[derive(Debug, Clone, Copy)]
pub struct VcQosInfo {
    /// Output port the connection is routed to (fixed at setup).
    pub output: usize,
    /// Reserved slots per round (SIABP initial priority).
    pub reserved_slots: u64,
    /// Flit inter-arrival time at the connection's average rate, in
    /// router cycles (IABP denominator).
    pub iat_rc: f64,
}

/// Selects the top-k candidates for one input link.
///
/// `vcs` lists the (global) VC indices homed on this input; the scratch
/// buffer keeps selection allocation-free across cycles.
#[derive(Debug)]
pub struct LinkScheduler {
    input: usize,
    vcs: Vec<usize>,
    scratch: Vec<(Priority, usize)>,
}

impl LinkScheduler {
    /// Scheduler for `input`, serving the given VC indices.
    pub fn new(input: usize, vcs: Vec<usize>) -> Self {
        let cap = vcs.len();
        LinkScheduler {
            input,
            vcs,
            scratch: Vec::with_capacity(cap),
        }
    }

    /// VCs homed on this input.
    pub fn vcs(&self) -> &[usize] {
        &self.vcs
    }

    /// Compute this input's candidate vector and install it into `cs`.
    ///
    /// `qos` is indexed by global VC id.  Returns the number of candidates
    /// offered (0 ≤ n ≤ levels).
    pub fn select(
        &mut self,
        mem: &VcMemory,
        qos: &[VcQosInfo],
        priority_fn: &dyn LinkPriority,
        now: RouterCycle,
        cs: &mut CandidateSet,
    ) -> usize {
        self.select_where(mem, qos, priority_fn, now, cs, |_| true)
    }

    /// Like [`LinkScheduler::select`], but only VCs for which `eligible`
    /// returns true may become candidates.  Multi-hop configurations use
    /// this to gate on downstream credits: a head flit with no space at
    /// the next router must not be offered to the crossbar.
    pub fn select_where<F: Fn(usize) -> bool>(
        &mut self,
        mem: &VcMemory,
        qos: &[VcQosInfo],
        priority_fn: &dyn LinkPriority,
        now: RouterCycle,
        cs: &mut CandidateSet,
        eligible: F,
    ) -> usize {
        let levels = cs.levels();
        self.scratch.clear();
        for &vc in &self.vcs {
            if !eligible(vc) {
                continue;
            }
            let Some(head) = mem.head(vc) else { continue };
            let waited = now.saturating_sub(head.entered_at).0;
            let info = &qos[vc];
            let p = priority_fn.priority(info.reserved_slots, info.iat_rc, waited);
            self.scratch.push((p, vc));
        }
        // Partial selection: only the top `levels` need ordering.  For the
        // candidate counts in play (k = 4, tens–hundreds of VCs) a
        // select_nth + sort of the head is the cheapest exact method.
        let n = self.scratch.len().min(levels);
        if n == 0 {
            return 0;
        }
        if self.scratch.len() > levels {
            // Descending by priority: nth element with reversed comparator.
            self.scratch.select_nth_unstable_by(levels - 1, |a, b| {
                b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1))
            });
            self.scratch.truncate(levels);
        }
        self.scratch
            .sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for &(p, vc) in self.scratch.iter().take(n) {
            let ok = cs.push(Candidate {
                input: self.input,
                vc,
                output: qos[vc].output,
                priority: p,
            });
            debug_assert!(ok, "candidate set level overflow");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_arbiter::priority::{Fifo, Siabp};
    use mmr_traffic::connection::ConnectionId;
    use mmr_traffic::flit::Flit;

    fn setup(vcs: usize) -> (VcMemory, Vec<VcQosInfo>) {
        let mem = VcMemory::new(vcs, 4, 2);
        let qos = (0..vcs)
            .map(|i| VcQosInfo {
                output: i % 4,
                reserved_slots: 1 + i as u64,
                iat_rc: 1000.0,
            })
            .collect();
        (mem, qos)
    }

    fn push(mem: &mut VcMemory, vc: usize, entered: u64) {
        mem.push(
            vc,
            Flit::cbr(ConnectionId(vc as u32), 0, RouterCycle(0)),
            RouterCycle(entered),
        );
    }

    #[test]
    fn empty_vcs_offer_nothing() {
        let (mem, qos) = setup(6);
        let mut ls = LinkScheduler::new(0, (0..6).collect());
        let mut cs = CandidateSet::new(4, 4);
        let n = ls.select(&mem, &qos, &Siabp, RouterCycle(100), &mut cs);
        assert_eq!(n, 0);
        assert!(cs.is_empty());
    }

    #[test]
    fn selects_highest_priorities_in_order() {
        let (mut mem, qos) = setup(6);
        // All enter at t=0; SIABP priority grows with reserved_slots, so
        // VC 5 (slots 6) ranks first.
        for vc in 0..6 {
            push(&mut mem, vc, 0);
        }
        let mut ls = LinkScheduler::new(0, (0..6).collect());
        let mut cs = CandidateSet::new(4, 2);
        let n = ls.select(&mem, &qos, &Siabp, RouterCycle(64), &mut cs);
        assert_eq!(n, 2);
        assert_eq!(cs.get(0, 0).unwrap().vc, 5);
        assert_eq!(cs.get(0, 1).unwrap().vc, 4);
    }

    #[test]
    fn waiting_raises_priority() {
        let (mut mem, qos) = setup(2);
        // VC 0 has a smaller reservation but has waited far longer.
        push(&mut mem, 0, 0);
        push(&mut mem, 1, 1_048_000);
        let mut ls = LinkScheduler::new(0, vec![0, 1]);
        let mut cs = CandidateSet::new(4, 2);
        ls.select(&mem, &qos, &Siabp, RouterCycle(1_048_576), &mut cs);
        assert_eq!(
            cs.get(0, 0).unwrap().vc,
            0,
            "long-waiting flit must outrank"
        );
    }

    #[test]
    fn fifo_policy_orders_by_age() {
        let (mut mem, qos) = setup(3);
        push(&mut mem, 0, 300);
        push(&mut mem, 1, 100);
        push(&mut mem, 2, 200);
        let mut ls = LinkScheduler::new(0, vec![0, 1, 2]);
        let mut cs = CandidateSet::new(4, 3);
        ls.select(&mem, &qos, &Fifo, RouterCycle(1000), &mut cs);
        let order: Vec<usize> = (0..3).map(|l| cs.get(0, l).unwrap().vc).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn candidates_carry_routing_and_input() {
        let (mut mem, qos) = setup(5);
        push(&mut mem, 3, 0);
        let mut ls = LinkScheduler::new(2, vec![3]);
        let mut cs = CandidateSet::new(4, 4);
        ls.select(&mem, &qos, &Siabp, RouterCycle(64), &mut cs);
        let c = cs.get(2, 0).unwrap();
        assert_eq!(c.input, 2);
        assert_eq!(c.vc, 3);
        assert_eq!(c.output, 3);
    }

    #[test]
    fn truncates_to_level_count() {
        let (mut mem, qos) = setup(10);
        for vc in 0..10 {
            push(&mut mem, vc, 0);
        }
        let mut ls = LinkScheduler::new(0, (0..10).collect());
        let mut cs = CandidateSet::new(4, 4);
        let n = ls.select(&mem, &qos, &Siabp, RouterCycle(64), &mut cs);
        assert_eq!(n, 4);
        assert_eq!(cs.len(), 4);
        // The four largest reservations (VCs 9, 8, 7, 6) are the four
        // candidates.
        let vcs: Vec<usize> = (0..4).map(|l| cs.get(0, l).unwrap().vc).collect();
        assert_eq!(vcs, vec![9, 8, 7, 6]);
    }
}
