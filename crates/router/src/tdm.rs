//! TDM slot-table link scheduling — the static alternative to biased
//! priorities.
//!
//! §2 splits link bandwidth into flit-cycle slots grouped into rounds and
//! reserves an integer number of slots per connection.  The most literal
//! implementation of that contract is a **time-division table**: a
//! precomputed round-robin table with one entry per slot, each naming the
//! connection that owns it.  This module implements that design so the
//! ablation harness can quantify what the MMR's *dynamic* SIABP scheduler
//! buys over the static table:
//!
//! * **pure TDM** — a slot whose owner has nothing to send is wasted
//!   (disastrous for bursty VBR);
//! * **TDM + backfill** — idle slots are re-offered to the
//!   highest-priority backlogged VCs, recovering work-conservation while
//!   keeping the table's jitter guarantees for the slot owners.
//!
//! Reservations are spread across the table with even striding (the same
//! idea as weighted round-robin smoothing), so a connection with `n`
//! table entries is served at nearly constant spacing.

use crate::link_scheduler::VcQosInfo;
use crate::vcmem::VcMemory;
use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_arbiter::priority::LinkPriority;
use mmr_sim::time::RouterCycle;

/// Build a slot table of `table_len` entries for the given
/// `(vc, reserved_slots)` pairs, where reservations are fractions of
/// `cycles_per_round`.  Entries are spread with even striding; collisions
/// probe linearly.  Returns `None` entries for unreserved capacity.
pub fn build_slot_table(
    reservations: &[(usize, u64)],
    cycles_per_round: u64,
    table_len: usize,
) -> Vec<Option<usize>> {
    assert!(table_len > 0 && cycles_per_round > 0);
    let mut table: Vec<Option<usize>> = vec![None; table_len];
    // Largest reservations first so they get the most even spread.
    let mut sorted: Vec<(usize, u64)> = reservations.to_vec();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (vc, slots) in sorted {
        if slots == 0 {
            continue; // best-effort: no reservation, no table entries
        }
        let entries = ((slots as f64 / cycles_per_round as f64) * table_len as f64)
            .round()
            .max(1.0) as usize;
        let stride = table_len as f64 / entries as f64;
        for j in 0..entries {
            let ideal = (j as f64 * stride) as usize % table_len;
            // Linear probe for a free slot.
            let mut pos = ideal;
            let mut tried = 0;
            while table[pos].is_some() && tried < table_len {
                pos = (pos + 1) % table_len;
                tried += 1;
            }
            if tried == table_len {
                return table; // table full: remaining reservations spill
            }
            table[pos] = Some(vc);
        }
    }
    table
}

/// A per-input TDM link scheduler.
#[derive(Debug)]
pub struct TdmLinkScheduler {
    input: usize,
    table: Vec<Option<usize>>,
    cursor: usize,
    backfill: bool,
    vcs: Vec<usize>,
    scratch: Vec<(Priority, usize)>,
}

impl TdmLinkScheduler {
    /// Build the scheduler for `input` over the VCs homed there.
    ///
    /// `reservations` pairs each VC with its reserved slots per round;
    /// `table_len` entries represent one round.  With `backfill`, slots
    /// whose owner is idle (and every unreserved slot) are re-offered to
    /// backlogged VCs by priority.
    pub fn new(
        input: usize,
        reservations: Vec<(usize, u64)>,
        cycles_per_round: u64,
        table_len: usize,
        backfill: bool,
    ) -> Self {
        let table = build_slot_table(&reservations, cycles_per_round, table_len);
        let vcs = reservations.iter().map(|&(vc, _)| vc).collect();
        TdmLinkScheduler {
            input,
            table,
            cursor: 0,
            backfill,
            vcs,
            scratch: Vec::new(),
        }
    }

    /// The slot table (for tests/inspection).
    pub fn table(&self) -> &[Option<usize>] {
        &self.table
    }

    /// Advance the table cursor by `n` slots without offering anything —
    /// the bulk form of `n` [`select`](TdmLinkScheduler::select) calls on
    /// an empty VC memory.  The event-horizon engine uses this to keep
    /// the table phase identical to a cycle-by-cycle run across skipped
    /// quiescent cycles (the cursor moves once per cycle, owner idle or
    /// not).
    pub fn advance_cursor(&mut self, n: u64) {
        self.cursor = (self.cursor + (n % self.table.len() as u64) as usize) % self.table.len();
    }

    /// Offer candidates for this cycle and advance the table cursor.
    pub fn select(
        &mut self,
        mem: &VcMemory,
        qos: &[VcQosInfo],
        priority_fn: &dyn LinkPriority,
        now: RouterCycle,
        cs: &mut CandidateSet,
    ) -> usize {
        self.select_where(mem, qos, priority_fn, now, cs, |_| true)
    }

    /// Like [`TdmLinkScheduler::select`], but only VCs for which
    /// `eligible` returns true may become candidates (owner included) —
    /// used to exclude connections routed to a stalled output port.  The
    /// table cursor advances regardless: a stalled owner's slot is lost,
    /// exactly as the contract's time-division semantics dictate.
    pub fn select_where<F: Fn(usize) -> bool>(
        &mut self,
        mem: &VcMemory,
        qos: &[VcQosInfo],
        priority_fn: &dyn LinkPriority,
        now: RouterCycle,
        cs: &mut CandidateSet,
        eligible: F,
    ) -> usize {
        let levels = cs.levels();
        let owner = self.table[self.cursor];
        self.cursor = (self.cursor + 1) % self.table.len();
        let mut offered = 0;

        // The slot owner, if backlogged, is the level-1 candidate with an
        // above-everything priority: its slot is contractually its own.
        let mut owner_offered = None;
        if let Some(vc) = owner {
            if eligible(vc) && mem.head(vc).is_some() {
                let ok = cs.push(Candidate {
                    input: self.input,
                    vc,
                    output: qos[vc].output,
                    priority: Priority::new(f64::MAX / 4.0),
                });
                debug_assert!(ok);
                offered += 1;
                owner_offered = Some(vc);
            }
        }
        if !self.backfill {
            return offered;
        }
        // Backfill the remaining levels by dynamic priority.
        self.scratch.clear();
        for &vc in &self.vcs {
            if Some(vc) == owner_offered || !eligible(vc) {
                continue;
            }
            let Some(head) = mem.head(vc) else { continue };
            let waited = now.saturating_sub(head.entered_at).0;
            let p = priority_fn.priority(qos[vc].reserved_slots, qos[vc].iat_rc, waited);
            self.scratch.push((p, vc));
        }
        let want = levels - offered;
        if self.scratch.len() > want {
            self.scratch
                .select_nth_unstable_by(want.saturating_sub(1), |a, b| {
                    b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1))
                });
            self.scratch.truncate(want);
        }
        self.scratch
            .sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for &(p, vc) in self.scratch.iter() {
            let ok = cs.push(Candidate {
                input: self.input,
                vc,
                output: qos[vc].output,
                priority: p,
            });
            debug_assert!(ok);
            offered += 1;
        }
        offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_arbiter::priority::Siabp;
    use mmr_traffic::connection::ConnectionId;
    use mmr_traffic::flit::Flit;

    fn count(table: &[Option<usize>], vc: usize) -> usize {
        table.iter().filter(|e| **e == Some(vc)).count()
    }

    #[test]
    fn table_entries_proportional_to_reservations() {
        // vc 0: 727/16384 (~4.4%), vc 1: 21/16384, vc 2: 1/16384
        let table = build_slot_table(&[(0, 727), (1, 21), (2, 1)], 16_384, 256);
        assert_eq!(count(&table, 0), 11); // 727/16384*256 = 11.36 -> 11
        assert_eq!(count(&table, 1), 1);
        assert_eq!(count(&table, 2), 1);
        // The rest of the table is unreserved.
        assert_eq!(table.iter().flatten().count(), 13);
    }

    #[test]
    fn zero_reservation_gets_no_entries() {
        let table = build_slot_table(&[(0, 0), (1, 100)], 1000, 64);
        assert_eq!(count(&table, 0), 0);
        assert!(count(&table, 1) > 0);
    }

    #[test]
    fn entries_are_spread_not_clumped() {
        let table = build_slot_table(&[(0, 8_192)], 16_384, 256);
        // 50% reservation -> 128 entries; max gap between consecutive
        // entries should be small (even striding).
        let positions: Vec<usize> = table
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 128);
        let mut max_gap = 0;
        for w in positions.windows(2) {
            max_gap = max_gap.max(w[1] - w[0]);
        }
        max_gap = max_gap.max(table.len() - positions.last().unwrap() + positions[0]);
        assert!(max_gap <= 4, "max gap {max_gap} for a 50% reservation");
    }

    #[test]
    fn full_table_probing_terminates() {
        // Over-subscribed: reservations sum past the table; must not hang.
        let table = build_slot_table(&[(0, 900), (1, 900)], 1000, 16);
        assert_eq!(table.iter().flatten().count(), 16);
    }

    fn setup() -> (VcMemory, Vec<VcQosInfo>) {
        let mem = VcMemory::new(3, 4, 1);
        let qos = (0..3)
            .map(|i| VcQosInfo {
                output: i,
                reserved_slots: 100,
                iat_rc: 1000.0,
            })
            .collect();
        (mem, qos)
    }

    fn push(mem: &mut VcMemory, vc: usize) {
        mem.push(
            vc,
            Flit::cbr(ConnectionId(vc as u32), 0, RouterCycle(0)),
            RouterCycle(0),
        );
    }

    #[test]
    fn owner_gets_its_slot() {
        let (mut mem, qos) = setup();
        push(&mut mem, 1);
        // Tiny table: slot 0 owned by vc 1.
        let mut tdm = TdmLinkScheduler::new(0, vec![(1, 500)], 1000, 2, false);
        assert_eq!(tdm.table()[0], Some(1));
        let mut cs = CandidateSet::new(4, 4);
        let n = tdm.select(&mem, &qos, &Siabp, RouterCycle(64), &mut cs);
        assert_eq!(n, 1);
        assert_eq!(cs.get(0, 0).unwrap().vc, 1);
    }

    #[test]
    fn pure_tdm_wastes_idle_slots() {
        let (mut mem, qos) = setup();
        push(&mut mem, 2); // vc 2 backlogged but owns nothing
        let mut tdm = TdmLinkScheduler::new(0, vec![(1, 500), (2, 0)], 1000, 2, false);
        let mut cs = CandidateSet::new(4, 4);
        // vc 1 idle: its slot produces no candidate; vc 2 is not offered.
        let n = tdm.select(&mem, &qos, &Siabp, RouterCycle(64), &mut cs);
        assert_eq!(n, 0, "pure TDM must waste the idle owner's slot");
    }

    #[test]
    fn backfill_recovers_idle_slots() {
        let (mut mem, qos) = setup();
        push(&mut mem, 2);
        let mut tdm = TdmLinkScheduler::new(0, vec![(1, 500), (2, 0)], 1000, 2, true);
        let mut cs = CandidateSet::new(4, 4);
        let n = tdm.select(&mem, &qos, &Siabp, RouterCycle(64), &mut cs);
        assert_eq!(n, 1);
        assert_eq!(cs.get(0, 0).unwrap().vc, 2);
    }

    #[test]
    fn owner_outranks_backfill() {
        let (mut mem, qos) = setup();
        push(&mut mem, 0);
        push(&mut mem, 2);
        let mut tdm = TdmLinkScheduler::new(0, vec![(0, 500), (2, 0)], 1000, 1, true);
        let mut cs = CandidateSet::new(4, 2);
        let n = tdm.select(&mem, &qos, &Siabp, RouterCycle(1 << 30), &mut cs);
        assert_eq!(n, 2);
        // Level 1 is the slot owner despite vc 2's enormous aged priority.
        assert_eq!(cs.get(0, 0).unwrap().vc, 0);
        assert_eq!(cs.get(0, 1).unwrap().vc, 2);
        assert!(cs.get(0, 0).unwrap().priority > cs.get(0, 1).unwrap().priority);
    }

    #[test]
    fn bulk_cursor_advance_matches_idle_selects() {
        let (mem, qos) = setup(); // all VCs empty: selects offer nothing
        let mk = || TdmLinkScheduler::new(0, vec![(0, 500), (1, 500)], 1000, 3, true);
        let mut stepped = mk();
        let mut bulk = mk();
        for n in [1u64, 2, 3, 5, 700] {
            for _ in 0..n {
                let mut cs = CandidateSet::new(4, 1);
                stepped.select(&mem, &qos, &Siabp, RouterCycle(0), &mut cs);
            }
            bulk.advance_cursor(n);
            assert_eq!(stepped.cursor, bulk.cursor, "after advancing {n}");
        }
    }

    #[test]
    fn cursor_wraps_round_robin() {
        let (mut mem, qos) = setup();
        push(&mut mem, 0);
        push(&mut mem, 0);
        push(&mut mem, 1);
        push(&mut mem, 1);
        let mut tdm = TdmLinkScheduler::new(0, vec![(0, 500), (1, 500)], 1000, 2, false);
        let owners: Vec<usize> = (0..4)
            .map(|_| {
                let mut cs = CandidateSet::new(4, 1);
                tdm.select(&mem, &qos, &Siabp, RouterCycle(0), &mut cs);
                cs.get(0, 0).unwrap().vc
            })
            .collect();
        // Alternating service per the table, wrapping.
        assert_eq!(owners[0], owners[2]);
        assert_eq!(owners[1], owners[3]);
        assert_ne!(owners[0], owners[1]);
    }
}
