//! Virtual-channel memory (paper Fig. 2).
//!
//! The MMR provides one virtual channel per connection to avoid
//! head-of-line blocking, and implements the large resulting buffer pool
//! as interleaved RAM modules.  This model keeps a bounded FIFO per VC,
//! tracks when each flit entered the router (the SIABP delay counter), and
//! keeps per-bank occupancy statistics mirroring the interleaving scheme.

use mmr_sim::time::RouterCycle;
use mmr_traffic::flit::Flit;
use std::collections::VecDeque;

/// A flit resident in a VC buffer, with its router-arrival time.
#[derive(Debug, Clone, Copy)]
pub struct BufferedFlit {
    /// The flit.
    pub flit: Flit,
    /// When it entered this VC queue (router cycles); SIABP's queuing
    /// delay counter is `now - entered_at`.
    pub entered_at: RouterCycle,
}

/// The router's virtual-channel memory: one bounded FIFO per connection.
#[derive(Debug)]
pub struct VcMemory {
    queues: Vec<VecDeque<BufferedFlit>>,
    capacity: usize,
    banks: usize,
    /// High-water mark of total occupancy, for reports.
    peak_occupancy: usize,
    occupancy: usize,
}

impl VcMemory {
    /// Memory for `vcs` virtual channels of `capacity` flits each, spread
    /// over `banks` interleaved RAM modules.
    pub fn new(vcs: usize, capacity: usize, banks: usize) -> Self {
        assert!(capacity > 0 && banks > 0);
        VcMemory {
            queues: (0..vcs)
                .map(|_| VecDeque::with_capacity(capacity))
                .collect(),
            capacity,
            banks,
            peak_occupancy: 0,
            occupancy: 0,
        }
    }

    /// Number of virtual channels.
    pub fn vcs(&self) -> usize {
        self.queues.len()
    }

    /// Per-VC capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free space in `vc`'s buffer.
    pub fn free_space(&self, vc: usize) -> usize {
        self.capacity - self.queues[vc].len()
    }

    /// Occupancy of `vc`.
    pub fn len(&self, vc: usize) -> usize {
        self.queues[vc].len()
    }

    /// True if `vc` holds no flits.
    pub fn is_empty(&self, vc: usize) -> bool {
        self.queues[vc].is_empty()
    }

    /// Head flit of `vc`, if any.
    pub fn head(&self, vc: usize) -> Option<&BufferedFlit> {
        self.queues[vc].front()
    }

    /// Append a flit to `vc`.  Panics if the buffer is full — the credit
    /// protocol must make overflow impossible, so this is a hard invariant.
    pub fn push(&mut self, vc: usize, flit: Flit, now: RouterCycle) {
        assert!(
            self.queues[vc].len() < self.capacity,
            "VC {vc} overflow: credit protocol violated"
        );
        self.queues[vc].push_back(BufferedFlit {
            flit,
            entered_at: now,
        });
        self.occupancy += 1;
        if self.occupancy > self.peak_occupancy {
            self.peak_occupancy = self.occupancy;
        }
    }

    /// Remove and return the head flit of `vc`.
    pub fn pop(&mut self, vc: usize) -> Option<BufferedFlit> {
        let f = self.queues[vc].pop_front();
        if f.is_some() {
            self.occupancy -= 1;
        }
        f
    }

    /// Total flits resident across all VCs.
    pub fn total_occupancy(&self) -> usize {
        self.occupancy
    }

    /// High-water mark of total occupancy.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// RAM bank a VC's storage interleaves onto (Fig. 2's simple scheme:
    /// modulo interleaving).
    pub fn bank_of(&self, vc: usize) -> usize {
        vc % self.banks
    }

    /// Current occupancy per bank.
    pub fn bank_occupancy(&self) -> Vec<usize> {
        let mut per_bank = vec![0; self.banks];
        for (vc, q) in self.queues.iter().enumerate() {
            per_bank[vc % self.banks] += q.len();
        }
        per_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_traffic::connection::ConnectionId;

    fn flit(conn: u32, seq: u64) -> Flit {
        Flit::cbr(ConnectionId(conn), seq, RouterCycle(0))
    }

    #[test]
    fn fifo_order_per_vc() {
        let mut m = VcMemory::new(2, 4, 2);
        m.push(0, flit(0, 0), RouterCycle(10));
        m.push(0, flit(0, 1), RouterCycle(20));
        assert_eq!(m.len(0), 2);
        assert_eq!(m.head(0).unwrap().flit.seq, 0);
        let popped = m.pop(0).unwrap();
        assert_eq!(popped.flit.seq, 0);
        assert_eq!(popped.entered_at, RouterCycle(10));
        assert_eq!(m.pop(0).unwrap().flit.seq, 1);
        assert!(m.pop(0).is_none());
        assert!(m.is_empty(0));
    }

    #[test]
    fn capacity_tracked() {
        let mut m = VcMemory::new(1, 2, 1);
        assert_eq!(m.free_space(0), 2);
        m.push(0, flit(0, 0), RouterCycle(0));
        assert_eq!(m.free_space(0), 1);
        m.push(0, flit(0, 1), RouterCycle(0));
        assert_eq!(m.free_space(0), 0);
    }

    #[test]
    #[should_panic(expected = "credit protocol violated")]
    fn overflow_panics() {
        let mut m = VcMemory::new(1, 1, 1);
        m.push(0, flit(0, 0), RouterCycle(0));
        m.push(0, flit(0, 1), RouterCycle(0));
    }

    #[test]
    fn occupancy_and_peak() {
        let mut m = VcMemory::new(3, 4, 2);
        m.push(0, flit(0, 0), RouterCycle(0));
        m.push(1, flit(1, 0), RouterCycle(0));
        m.push(2, flit(2, 0), RouterCycle(0));
        assert_eq!(m.total_occupancy(), 3);
        m.pop(0);
        m.pop(1);
        assert_eq!(m.total_occupancy(), 1);
        assert_eq!(m.peak_occupancy(), 3);
    }

    #[test]
    fn bank_interleaving() {
        let mut m = VcMemory::new(4, 4, 2);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(1), 1);
        assert_eq!(m.bank_of(2), 0);
        m.push(0, flit(0, 0), RouterCycle(0));
        m.push(2, flit(2, 0), RouterCycle(0));
        m.push(3, flit(3, 0), RouterCycle(0));
        assert_eq!(m.bank_occupancy(), vec![2, 1]);
    }
}
