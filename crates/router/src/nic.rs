//! The Network Interface Card model (paper Fig. 4 and §5).
//!
//! Each input link has a NIC holding one *infinite* queue per connection
//! (host main memory backs the NIC buffers, so they never overflow).  The
//! physical-link controller forwards at most one flit per flit cycle to
//! the router, choosing among connections that have **both a flit and a
//! credit** in demand-driven round-robin order.

use mmr_traffic::flit::Flit;
use std::collections::VecDeque;

/// One input port's NIC.
#[derive(Debug)]
pub struct Nic {
    /// Connection ids (global) homed on this NIC, in round-robin order.
    conns: Vec<usize>,
    /// Per-connection queues, indexed like `conns`.
    queues: Vec<VecDeque<Flit>>,
    /// Round-robin pointer into `conns`.
    rr: usize,
    /// High-water mark of total queued flits.
    peak_depth: usize,
    depth: usize,
}

impl Nic {
    /// Initial per-connection queue capacity.  The queues are elastic
    /// (host memory backs them), but pre-sizing keeps sub-saturation
    /// steady state free of `VecDeque` growth reallocations.
    const INITIAL_QUEUE_CAPACITY: usize = 64;

    /// A NIC serving the given (global) connection ids.
    pub fn new(conns: Vec<usize>) -> Self {
        let n = conns.len();
        Nic {
            conns,
            queues: (0..n)
                .map(|_| VecDeque::with_capacity(Self::INITIAL_QUEUE_CAPACITY))
                .collect(),
            rr: 0,
            peak_depth: 0,
            depth: 0,
        }
    }

    /// Connections homed here.
    pub fn connections(&self) -> &[usize] {
        &self.conns
    }

    /// Enqueue a generated flit for its connection.  `local` is the index
    /// of the connection within this NIC (see [`Nic::local_index`]).
    pub fn enqueue(&mut self, local: usize, flit: Flit) {
        self.queues[local].push_back(flit);
        self.depth += 1;
        if self.depth > self.peak_depth {
            self.peak_depth = self.depth;
        }
    }

    /// Map a global connection id to its local index, if homed here.
    pub fn local_index(&self, conn: usize) -> Option<usize> {
        self.conns.iter().position(|&c| c == conn)
    }

    /// Queued flits for local connection `local`.
    pub fn queue_len(&self, local: usize) -> usize {
        self.queues[local].len()
    }

    /// Total queued flits.
    pub fn total_depth(&self) -> usize {
        self.depth
    }

    /// High-water mark of total queued flits.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// True if no flits are queued.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// The link controller's decision: pick the next connection, in
    /// demand-driven round-robin order, that has a queued flit and passes
    /// `has_credit`; dequeue and return its head flit with the global
    /// connection id.  Returns `None` when nothing is eligible.
    pub fn forward_one<F>(&mut self, has_credit: F) -> Option<(usize, Flit)>
    where
        F: Fn(usize) -> bool,
    {
        let n = self.conns.len();
        if n == 0 {
            return None;
        }
        for off in 0..n {
            let local = (self.rr + off) % n;
            let conn = self.conns[local];
            if !self.queues[local].is_empty() && has_credit(conn) {
                let flit = self.queues[local].pop_front().expect("checked non-empty");
                self.depth -= 1;
                // Advance past the served connection.
                self.rr = (local + 1) % n;
                return Some((conn, flit));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_sim::time::RouterCycle;
    use mmr_traffic::connection::ConnectionId;

    fn flit(conn: u32, seq: u64) -> Flit {
        Flit::cbr(ConnectionId(conn), seq, RouterCycle(0))
    }

    fn nic3() -> Nic {
        Nic::new(vec![10, 11, 12])
    }

    #[test]
    fn round_robin_over_backlogged_connections() {
        let mut nic = nic3();
        for local in 0..3 {
            nic.enqueue(local, flit(10 + local as u32, 0));
            nic.enqueue(local, flit(10 + local as u32, 1));
        }
        let order: Vec<usize> = (0..6)
            .map(|_| nic.forward_one(|_| true).unwrap().0)
            .collect();
        assert_eq!(order, vec![10, 11, 12, 10, 11, 12]);
        assert!(nic.is_empty());
    }

    #[test]
    fn demand_driven_skips_empty_queues() {
        let mut nic = nic3();
        nic.enqueue(2, flit(12, 0));
        nic.enqueue(2, flit(12, 1));
        // Connections 10 and 11 have nothing; 12 gets back-to-back service.
        assert_eq!(nic.forward_one(|_| true).unwrap().0, 12);
        assert_eq!(nic.forward_one(|_| true).unwrap().0, 12);
        assert!(nic.forward_one(|_| true).is_none());
    }

    #[test]
    fn creditless_connections_are_skipped() {
        let mut nic = nic3();
        nic.enqueue(0, flit(10, 0));
        nic.enqueue(1, flit(11, 0));
        // Connection 10 has no credit: 11 must be served instead.
        let (conn, _) = nic.forward_one(|c| c != 10).unwrap();
        assert_eq!(conn, 11);
        // Now nothing eligible.
        assert!(nic.forward_one(|c| c != 10).is_none());
        assert_eq!(nic.queue_len(0), 1, "flit for 10 still queued");
    }

    #[test]
    fn fifo_within_connection() {
        let mut nic = nic3();
        nic.enqueue(0, flit(10, 0));
        nic.enqueue(0, flit(10, 1));
        assert_eq!(nic.forward_one(|_| true).unwrap().1.seq, 0);
        assert_eq!(nic.forward_one(|_| true).unwrap().1.seq, 1);
    }

    #[test]
    fn peak_depth_tracked() {
        let mut nic = nic3();
        for i in 0..5 {
            nic.enqueue(0, flit(10, i));
        }
        nic.forward_one(|_| true);
        nic.forward_one(|_| true);
        assert_eq!(nic.total_depth(), 3);
        assert_eq!(nic.peak_depth(), 5);
    }

    #[test]
    fn local_index_mapping() {
        let nic = nic3();
        assert_eq!(nic.local_index(11), Some(1));
        assert_eq!(nic.local_index(99), None);
        assert_eq!(nic.connections(), &[10, 11, 12]);
    }

    #[test]
    fn empty_nic_forwards_nothing() {
        let mut nic = Nic::new(vec![]);
        assert!(nic.forward_one(|_| true).is_none());
    }
}
