//! The switch-scheduler abstraction and the arbiter registry.

use crate::candidate::CandidateSet;
use crate::matching::Matching;
use mmr_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A crossbar arbitration algorithm.
///
/// Schedulers may keep state across cycles (WFA's rotating diagonal,
/// iSLIP's pointers); `schedule` is called once per flit cycle with the
/// candidate vectors produced by link scheduling and must return a
/// conflict-free matching.
pub trait SwitchScheduler: Send {
    /// Compute a matching for this cycle into `out`, which is cleared
    /// first and may be reused across cycles — the hot path allocates
    /// nothing.  `rng` is the router's arbiter RNG stream, used for
    /// tie-breaks.
    fn schedule_into(&mut self, candidates: &CandidateSet, rng: &mut SimRng, out: &mut Matching);

    /// Convenience wrapper allocating a fresh [`Matching`] per call.
    fn schedule(&mut self, candidates: &CandidateSet, rng: &mut SimRng) -> Matching {
        let mut out = Matching::new(candidates.ports());
        self.schedule_into(candidates, rng, &mut out);
        out
    }

    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Reset any cross-cycle state (pointers, diagonals).
    fn reset(&mut self) {}
}

/// Serializable arbiter selector used by experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArbiterKind {
    /// The paper's Candidate-Order Arbiter.
    Coa,
    /// Wrapped Wave Front Arbiter.
    Wfa,
    /// Unwrapped WFA (fixed priority diagonal) — study variant.
    WfaFixed,
    /// Wrapped WFA with requests from level-1 candidates only — study
    /// variant adding coarse priority awareness.
    WfaFirstLevel,
    /// iSLIP with the given number of iterations.
    Islip {
        /// Request-grant-accept iterations per cycle.
        iterations: usize,
    },
    /// Parallel Iterative Matching with the given number of iterations.
    Pim {
        /// Random grant/accept iterations per cycle.
        iterations: usize,
    },
    /// Greedy by global priority order.
    GreedyPriority,
    /// Random maximal matching.
    Random,
}

impl ArbiterKind {
    /// Instantiate the scheduler for a router with `ports` ports.
    pub fn instantiate(self, ports: usize) -> Box<dyn SwitchScheduler> {
        match self {
            ArbiterKind::Coa => Box::new(crate::coa::CandidateOrderArbiter::new(ports)),
            ArbiterKind::Wfa => Box::new(crate::wfa::WaveFrontArbiter::new(ports)),
            ArbiterKind::WfaFixed => Box::new(crate::wfa::WaveFrontArbiter::fixed(ports)),
            ArbiterKind::WfaFirstLevel => {
                Box::new(crate::wfa::WaveFrontArbiter::first_level_only(ports))
            }
            ArbiterKind::Islip { iterations } => {
                Box::new(crate::islip::IslipArbiter::new(ports, iterations))
            }
            ArbiterKind::Pim { iterations } => {
                Box::new(crate::pim::PimArbiter::new(ports, iterations))
            }
            ArbiterKind::GreedyPriority => {
                Box::new(crate::greedy::GreedyPriorityArbiter::new(ports))
            }
            ArbiterKind::Random => Box::new(crate::random::RandomArbiter::new(ports)),
        }
    }

    /// Instantiate the golden reference implementation of the same
    /// algorithm (see [`crate::reference`]) — unoptimized but known-good,
    /// used by differential tests and the benchmark harness.
    pub fn instantiate_reference(self, ports: usize) -> Box<dyn SwitchScheduler> {
        use crate::reference as r;
        match self {
            ArbiterKind::Coa => Box::new(r::ReferenceCoa::new(ports)),
            ArbiterKind::Wfa => Box::new(r::ReferenceWfa::new(ports)),
            ArbiterKind::WfaFixed => Box::new(r::ReferenceWfa::fixed(ports)),
            ArbiterKind::WfaFirstLevel => Box::new(r::ReferenceWfa::first_level_only(ports)),
            ArbiterKind::Islip { iterations } => {
                Box::new(r::ReferenceIslip::new(ports, iterations))
            }
            ArbiterKind::Pim { iterations } => Box::new(r::ReferencePim::new(ports, iterations)),
            ArbiterKind::GreedyPriority => Box::new(r::ReferenceGreedy::new(ports)),
            ArbiterKind::Random => Box::new(r::ReferenceRandom::new(ports)),
        }
    }

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ArbiterKind::Coa => "COA",
            ArbiterKind::Wfa => "WFA",
            ArbiterKind::WfaFixed => "WFA-fix",
            ArbiterKind::WfaFirstLevel => "WFA-L1",
            ArbiterKind::Islip { .. } => "iSLIP",
            ArbiterKind::Pim { .. } => "PIM",
            ArbiterKind::GreedyPriority => "Greedy",
            ArbiterKind::Random => "Random",
        }
    }

    /// Every selectable arbiter with default parameters, for comparison
    /// sweeps.
    pub fn all() -> Vec<ArbiterKind> {
        vec![
            ArbiterKind::Coa,
            ArbiterKind::Wfa,
            ArbiterKind::WfaFixed,
            ArbiterKind::WfaFirstLevel,
            ArbiterKind::Islip { iterations: 2 },
            ArbiterKind::Pim { iterations: 2 },
            ArbiterKind::GreedyPriority,
            ArbiterKind::Random,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_all_kinds() {
        for kind in ArbiterKind::all() {
            let sched = kind.instantiate(4);
            assert!(!sched.name().is_empty());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = ArbiterKind::all().into_iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ArbiterKind::all().len());
    }
}
