//! The switch-scheduler abstraction and the arbiter registry.

use crate::candidate::CandidateSet;
use crate::matching::Matching;
use mmr_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Logical work counters an arbitration kernel accumulates while its
/// probe is armed (see [`KernelProbe`]).  These measure algorithmic
/// effort independent of wall time, so they are exactly reproducible:
/// how many candidates the kernel visited, how many conflict-vector
/// entries it retired, how many matching iterations it ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// `schedule_into` calls counted.
    pub matchings: u64,
    /// Grants issued across those calls.
    pub grants: u64,
    /// Candidate requests examined (inner-loop visits).
    pub candidates_examined: u64,
    /// Conflict-vector entries retired (COA) — zero for kernels without a
    /// conflict vector.
    pub conflicts_retired: u64,
    /// Matching iterations: COA grant loop passes, WFA diagonals swept,
    /// iSLIP/PIM grant-accept passes, one per call for single-pass
    /// kernels.
    pub iterations: u64,
}

impl KernelStats {
    /// Mean iterations per matching (0 when nothing was recorded).
    pub fn iterations_per_matching(&self) -> f64 {
        if self.matchings == 0 {
            0.0
        } else {
            self.iterations as f64 / self.matchings as f64
        }
    }

    /// Mean candidates examined per matching (0 when nothing recorded).
    pub fn examined_per_matching(&self) -> f64 {
        if self.matchings == 0 {
            0.0
        } else {
            self.candidates_examined as f64 / self.matchings as f64
        }
    }
}

/// Branch-free work-count probe embedded in every optimized kernel.
///
/// Counts are accumulated with masked adds (`stats.x += n & mask`), so an
/// unarmed probe costs the same handful of ALU instructions as an armed
/// one — no branch in the kernel inner loops, and no RNG interaction, so
/// arming a probe can never perturb the matchings (the differential tests
/// pin this).  Kernels batch inner-loop counts into locals and feed the
/// probe once per loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelProbe {
    mask: u64,
    stats: KernelStats,
}

impl KernelProbe {
    /// Arm or disarm the probe (disarmed by default).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.mask = if enabled { u64::MAX } else { 0 };
    }

    /// Whether counts currently accumulate.
    pub fn is_enabled(&self) -> bool {
        self.mask != 0
    }

    /// Count `n` candidate requests examined.
    #[inline]
    pub fn examined(&mut self, n: u64) {
        self.stats.candidates_examined += n & self.mask;
    }

    /// Count `n` conflict-vector entries retired.
    #[inline]
    pub fn retired(&mut self, n: u64) {
        self.stats.conflicts_retired += n & self.mask;
    }

    /// Count `n` matching iterations.
    #[inline]
    pub fn iterations(&mut self, n: u64) {
        self.stats.iterations += n & self.mask;
    }

    /// Close one `schedule_into` call that produced `grants` grants.
    #[inline]
    pub fn matched(&mut self, grants: u64) {
        self.stats.matchings += 1 & self.mask;
        self.stats.grants += grants & self.mask;
    }

    /// Accumulated counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Zero the counters (armed state is preserved).
    pub fn reset(&mut self) {
        self.stats = KernelStats::default();
    }
}

/// A crossbar arbitration algorithm.
///
/// Schedulers may keep state across cycles (WFA's rotating diagonal,
/// iSLIP's pointers); `schedule` is called once per flit cycle with the
/// candidate vectors produced by link scheduling and must return a
/// conflict-free matching.
pub trait SwitchScheduler: Send {
    /// Compute a matching for this cycle into `out`, which is cleared
    /// first and may be reused across cycles — the hot path allocates
    /// nothing.  `rng` is the router's arbiter RNG stream, used for
    /// tie-breaks.
    fn schedule_into(&mut self, candidates: &CandidateSet, rng: &mut SimRng, out: &mut Matching);

    /// Convenience wrapper allocating a fresh [`Matching`] per call.
    fn schedule(&mut self, candidates: &CandidateSet, rng: &mut SimRng) -> Matching {
        let mut out = Matching::new(candidates.ports());
        self.schedule_into(candidates, rng, &mut out);
        out
    }

    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Reset any cross-cycle state (pointers, diagonals).
    fn reset(&mut self) {}

    /// Arm or disarm the kernel's work-count probe.  The default is a
    /// no-op: reference transcriptions and custom schedulers without a
    /// probe simply report empty [`KernelStats`].
    fn set_probe_enabled(&mut self, _enabled: bool) {}

    /// Work counters accumulated while the probe was armed (all zero if
    /// the scheduler has no probe or it was never armed).
    fn kernel_stats(&self) -> KernelStats {
        KernelStats::default()
    }
}

/// Serializable arbiter selector used by experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArbiterKind {
    /// The paper's Candidate-Order Arbiter.
    Coa,
    /// Wrapped Wave Front Arbiter.
    Wfa,
    /// Unwrapped WFA (fixed priority diagonal) — study variant.
    WfaFixed,
    /// Wrapped WFA with requests from level-1 candidates only — study
    /// variant adding coarse priority awareness.
    WfaFirstLevel,
    /// iSLIP with the given number of iterations.
    Islip {
        /// Request-grant-accept iterations per cycle.
        iterations: usize,
    },
    /// Parallel Iterative Matching with the given number of iterations.
    Pim {
        /// Random grant/accept iterations per cycle.
        iterations: usize,
    },
    /// Greedy by global priority order.
    GreedyPriority,
    /// Random maximal matching.
    Random,
    /// Maximum-weight matching oracle: exact (Hungarian) up to
    /// [`crate::mwm::EXACT_PORT_LIMIT`] ports, greedy ½-approximation
    /// beyond — the optimality frontier the practical arbiters are
    /// measured against.
    MwmExact,
    /// Greedy ½-approximate maximum-weight matching at every width.
    MwmApprox,
    /// Frame-based fair scheduler (NoC fairness): per-crosspoint grant
    /// quotas over a frame of busy cycles.
    FrameFair {
        /// Frame length in arbitration cycles.
        frame: u32,
    },
    /// Crosspoint-queued switch model: virtual per-crosspoint queues,
    /// per-output longest-queue-first selection.
    CrosspointQueued {
        /// Crosspoint buffer depth (pressure saturation cap).
        cap: u32,
    },
}

impl ArbiterKind {
    /// Instantiate the scheduler for a router with `ports` ports.
    pub fn instantiate(self, ports: usize) -> Box<dyn SwitchScheduler> {
        match self {
            ArbiterKind::Coa => Box::new(crate::coa::CandidateOrderArbiter::new(ports)),
            ArbiterKind::Wfa => Box::new(crate::wfa::WaveFrontArbiter::new(ports)),
            ArbiterKind::WfaFixed => Box::new(crate::wfa::WaveFrontArbiter::fixed(ports)),
            ArbiterKind::WfaFirstLevel => {
                Box::new(crate::wfa::WaveFrontArbiter::first_level_only(ports))
            }
            ArbiterKind::Islip { iterations } => {
                Box::new(crate::islip::IslipArbiter::new(ports, iterations))
            }
            ArbiterKind::Pim { iterations } => {
                Box::new(crate::pim::PimArbiter::new(ports, iterations))
            }
            ArbiterKind::GreedyPriority => {
                Box::new(crate::greedy::GreedyPriorityArbiter::new(ports))
            }
            ArbiterKind::Random => Box::new(crate::random::RandomArbiter::new(ports)),
            ArbiterKind::MwmExact => Box::new(crate::mwm::MwmArbiter::new(ports)),
            ArbiterKind::MwmApprox => Box::new(crate::mwm::MwmArbiter::approx(ports)),
            ArbiterKind::FrameFair { frame } => {
                Box::new(crate::frame::FrameFairArbiter::new(ports, frame))
            }
            ArbiterKind::CrosspointQueued { cap } => {
                Box::new(crate::cq::CrosspointQueuedArbiter::new(ports, cap))
            }
        }
    }

    /// Instantiate the golden reference implementation of the same
    /// algorithm (see [`crate::reference`]) — unoptimized but known-good,
    /// used by differential tests and the benchmark harness.
    pub fn instantiate_reference(self, ports: usize) -> Box<dyn SwitchScheduler> {
        use crate::reference as r;
        match self {
            ArbiterKind::Coa => Box::new(r::ReferenceCoa::new(ports)),
            ArbiterKind::Wfa => Box::new(r::ReferenceWfa::new(ports)),
            ArbiterKind::WfaFixed => Box::new(r::ReferenceWfa::fixed(ports)),
            ArbiterKind::WfaFirstLevel => Box::new(r::ReferenceWfa::first_level_only(ports)),
            ArbiterKind::Islip { iterations } => {
                Box::new(r::ReferenceIslip::new(ports, iterations))
            }
            ArbiterKind::Pim { iterations } => Box::new(r::ReferencePim::new(ports, iterations)),
            ArbiterKind::GreedyPriority => Box::new(r::ReferenceGreedy::new(ports)),
            ArbiterKind::Random => Box::new(r::ReferenceRandom::new(ports)),
            ArbiterKind::MwmExact => Box::new(r::ReferenceMwm::new(ports)),
            ArbiterKind::MwmApprox => Box::new(r::ReferenceMwm::approx(ports)),
            ArbiterKind::FrameFair { frame } => Box::new(r::ReferenceFrameFair::new(ports, frame)),
            ArbiterKind::CrosspointQueued { cap } => Box::new(r::ReferenceCq::new(ports, cap)),
        }
    }

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ArbiterKind::Coa => "COA",
            ArbiterKind::Wfa => "WFA",
            ArbiterKind::WfaFixed => "WFA-fix",
            ArbiterKind::WfaFirstLevel => "WFA-L1",
            ArbiterKind::Islip { .. } => "iSLIP",
            ArbiterKind::Pim { .. } => "PIM",
            ArbiterKind::GreedyPriority => "Greedy",
            ArbiterKind::Random => "Random",
            ArbiterKind::MwmExact => "MWM",
            ArbiterKind::MwmApprox => "MWM-apx",
            ArbiterKind::FrameFair { .. } => "FrameFair",
            ArbiterKind::CrosspointQueued { .. } => "CQ",
        }
    }

    /// Every selectable arbiter with default parameters, for comparison
    /// sweeps.
    pub fn all() -> Vec<ArbiterKind> {
        vec![
            ArbiterKind::Coa,
            ArbiterKind::Wfa,
            ArbiterKind::WfaFixed,
            ArbiterKind::WfaFirstLevel,
            ArbiterKind::Islip { iterations: 2 },
            ArbiterKind::Pim { iterations: 2 },
            ArbiterKind::GreedyPriority,
            ArbiterKind::Random,
            ArbiterKind::MwmExact,
            ArbiterKind::MwmApprox,
            ArbiterKind::FrameFair {
                frame: crate::frame::DEFAULT_FRAME,
            },
            ArbiterKind::CrosspointQueued {
                cap: crate::cq::DEFAULT_CAP,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_all_kinds() {
        for kind in ArbiterKind::all() {
            let sched = kind.instantiate(4);
            assert!(!sched.name().is_empty());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = ArbiterKind::all().into_iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ArbiterKind::all().len());
    }
}
