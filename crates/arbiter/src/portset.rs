//! Multi-word port sets: the bit-parallel representation behind every
//! scheduling kernel.
//!
//! The kernels track "which ports are free / requesting / granted" as
//! bitsets with one bit per port.  A single `u64` covers the paper's 4×4
//! MMR with room to spare, but the Tiny Tera line of work makes 128- and
//! 256-port configurations the interesting scale, so the sets are generic
//! over a word count `W`: [`PortSet<W>`] is `[u64; W]` with branch-free
//! set algebra.  `W` is a const generic, so for the common one-word case
//! every operation compiles to exactly the single-`u64` instructions the
//! kernels used before — the width dispatch happens once per
//! `schedule_into` call, never per bit.
//!
//! Three widths are instantiated ([`PortSet64`], [`PortSet128`],
//! [`PortSet256`]); [`words_for_ports`] picks the narrowest one that
//! covers a port count.

/// Number of `u64` words in the widest supported port set.
pub const MAX_WORDS: usize = 4;

/// The narrowest supported word count covering `ports` ports: 1, 2 or 4.
///
/// Only power-of-two widths are instantiated so the per-call width
/// dispatch in the kernels stays a three-way match.
#[inline]
pub const fn words_for_ports(ports: usize) -> usize {
    if ports <= 64 {
        1
    } else if ports <= 128 {
        2
    } else {
        4
    }
}

/// A set of ports as `W` 64-bit words, least-significant word first.
///
/// Port `p` lives at bit `p % 64` of word `p / 64`.  All operations are
/// loops over `W` that the compiler fully unrolls (`W` is a const), so a
/// `PortSet<1>` costs the same as a bare `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSet<const W: usize> {
    words: [u64; W],
}

/// One-word set: up to 64 ports.
pub type PortSet64 = PortSet<1>;
/// Two-word set: up to 128 ports.
pub type PortSet128 = PortSet<2>;
/// Four-word set: up to 256 ports.
pub type PortSet256 = PortSet<4>;

impl<const W: usize> PortSet<W> {
    /// The empty set.
    pub const EMPTY: Self = PortSet { words: [0; W] };

    /// The set `{0, 1, .., ports-1}`.
    #[inline]
    pub fn full(ports: usize) -> Self {
        debug_assert!(ports <= W * 64);
        let mut words = [0u64; W];
        let mut i = 0;
        while i < W {
            let low = i * 64;
            words[i] = if ports >= low + 64 {
                u64::MAX
            } else if ports > low {
                (1u64 << (ports - low)) - 1
            } else {
                0
            };
            i += 1;
        }
        PortSet { words }
    }

    /// Build from a word slice of length `W` (e.g. a [`CandidateSet`]
    /// requester row).
    ///
    /// [`CandidateSet`]: crate::candidate::CandidateSet
    #[inline]
    pub fn from_words(src: &[u64]) -> Self {
        debug_assert_eq!(src.len(), W);
        let mut words = [0u64; W];
        words.copy_from_slice(src);
        PortSet { words }
    }

    /// Word `i` of the set.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Add `port` to the set.
    #[inline]
    pub fn insert(&mut self, port: usize) {
        self.words[port >> 6] |= 1u64 << (port & 63);
    }

    /// Remove `port` from the set.
    #[inline]
    pub fn remove(&mut self, port: usize) {
        self.words[port >> 6] &= !(1u64 << (port & 63));
    }

    /// Add `port` iff `cond`, without a branch — the tie-mask builder in
    /// the COA row scan.
    #[inline]
    pub fn insert_if(&mut self, port: usize, cond: bool) {
        self.words[port >> 6] |= u64::from(cond) << (port & 63);
    }

    /// True if `port` is in the set.
    #[inline]
    pub fn contains(&self, port: usize) -> bool {
        self.words[port >> 6] & (1u64 << (port & 63)) != 0
    }

    /// True if no port is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        let mut any = 0u64;
        let mut i = 0;
        while i < W {
            any |= self.words[i];
            i += 1;
        }
        any == 0
    }

    /// Number of ports in the set.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        let mut n = 0u32;
        let mut i = 0;
        while i < W {
            n += self.words[i].count_ones();
            i += 1;
        }
        n
    }

    /// Intersection.
    #[inline]
    pub fn and(mut self, other: &Self) -> Self {
        let mut i = 0;
        while i < W {
            self.words[i] &= other.words[i];
            i += 1;
        }
        self
    }

    /// The lowest port in the set, or `None` if empty.
    #[inline]
    pub fn lowest(&self) -> Option<usize> {
        let mut i = 0;
        while i < W {
            if self.words[i] != 0 {
                return Some(i * 64 + self.words[i].trailing_zeros() as usize);
            }
            i += 1;
        }
        None
    }

    /// Remove and return the lowest port — the multi-word generalization
    /// of the `mask &= mask - 1` bit walk every kernel iterates with.
    #[inline]
    pub fn take_lowest(&mut self) -> Option<usize> {
        let mut i = 0;
        while i < W {
            let w = self.words[i];
            if w != 0 {
                self.words[i] = w & (w - 1);
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
            i += 1;
        }
        None
    }

    /// The `k`-th set port (0-based, from the bottom).  `k` must be less
    /// than [`PortSet::count_ones`].
    #[inline]
    pub fn kth_set_bit(&self, k: usize) -> usize {
        debug_assert!((k as u32) < self.count_ones());
        let mut k = k as u32;
        let mut i = 0;
        while i < W {
            let c = self.words[i].count_ones();
            if k < c {
                let mut m = self.words[i];
                let mut j = 0;
                while j < k {
                    m &= m - 1;
                    j += 1;
                }
                return i * 64 + m.trailing_zeros() as usize;
            }
            k -= c;
            i += 1;
        }
        debug_assert!(false, "k out of range");
        0
    }

    /// First set port at-or-after `start`, wrapping around — the
    /// round-robin pointer scan (iSLIP).  The set must be non-empty.
    #[inline]
    pub fn first_at_or_after(&self, start: usize) -> usize {
        debug_assert!(!self.is_empty() && start < W * 64);
        let sw = start >> 6;
        let masked = self.words[sw] & (u64::MAX << (start & 63));
        if masked != 0 {
            return sw * 64 + masked.trailing_zeros() as usize;
        }
        let mut i = sw + 1;
        while i < W {
            if self.words[i] != 0 {
                return i * 64 + self.words[i].trailing_zeros() as usize;
            }
            i += 1;
        }
        // Wrap: bits at-or-after `start` are known clear, so scanning the
        // pointer's word in full is safe.
        let mut i = 0;
        loop {
            if self.words[i] != 0 {
                return i * 64 + self.words[i].trailing_zeros() as usize;
            }
            i += 1;
        }
    }

    /// Iterate set ports in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        let mut s = *self;
        core::iter::from_fn(move || s.take_lowest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_ports_picks_narrowest_power_of_two() {
        assert_eq!(words_for_ports(1), 1);
        assert_eq!(words_for_ports(64), 1);
        assert_eq!(words_for_ports(65), 2);
        assert_eq!(words_for_ports(128), 2);
        assert_eq!(words_for_ports(129), 4);
        assert_eq!(words_for_ports(256), 4);
    }

    #[test]
    fn full_sets_exactly_the_port_count() {
        assert_eq!(PortSet64::full(4).count_ones(), 4);
        assert_eq!(PortSet64::full(64).word(0), u64::MAX);
        let s = PortSet128::full(65);
        assert_eq!(s.word(0), u64::MAX);
        assert_eq!(s.word(1), 1);
        let s = PortSet256::full(200);
        assert_eq!(s.count_ones(), 200);
        assert!(s.contains(199));
        assert!(!s.contains(200));
    }

    #[test]
    fn insert_remove_contains_across_words() {
        let mut s = PortSet256::EMPTY;
        for p in [0, 63, 64, 127, 128, 255] {
            assert!(!s.contains(p));
            s.insert(p);
            assert!(s.contains(p));
        }
        assert_eq!(s.count_ones(), 6);
        s.remove(127);
        assert!(!s.contains(127));
        assert_eq!(s.count_ones(), 5);
        s.insert_if(10, false);
        assert!(!s.contains(10));
        s.insert_if(10, true);
        assert!(s.contains(10));
    }

    #[test]
    fn take_lowest_walks_ascending() {
        let mut s = PortSet128::EMPTY;
        for p in [100, 3, 64, 65, 0] {
            s.insert(p);
        }
        let mut got = Vec::new();
        while let Some(p) = s.take_lowest() {
            got.push(p);
        }
        assert_eq!(got, vec![0, 3, 64, 65, 100]);
        assert!(s.is_empty());
    }

    #[test]
    fn kth_set_bit_selects_across_words() {
        let mut s = PortSet128::EMPTY;
        for p in [1, 3, 64, 130 - 64] {
            s.insert(p);
        }
        assert_eq!(s.kth_set_bit(0), 1);
        assert_eq!(s.kth_set_bit(1), 3);
        assert_eq!(s.kth_set_bit(2), 64);
        assert_eq!(s.kth_set_bit(3), 66);
        let f = PortSet256::full(256);
        assert_eq!(f.kth_set_bit(255), 255);
    }

    #[test]
    fn first_at_or_after_wraps_like_rr_first() {
        // One-word cases mirror the old iSLIP `rr_first` tests.
        let s = PortSet64::from_words(&[0b0101]);
        assert_eq!(s.first_at_or_after(0), 0);
        assert_eq!(s.first_at_or_after(1), 2);
        assert_eq!(s.first_at_or_after(3), 0, "wraps past the top bit");
        assert_eq!(
            PortSet64::from_words(&[1u64 << 63]).first_at_or_after(63),
            63
        );
        assert_eq!(PortSet64::from_words(&[1]).first_at_or_after(63), 0);
        // Multi-word: search crosses a word boundary, then wraps fully.
        let mut s = PortSet256::EMPTY;
        s.insert(5);
        s.insert(200);
        assert_eq!(s.first_at_or_after(6), 200);
        assert_eq!(s.first_at_or_after(201), 5);
        assert_eq!(s.first_at_or_after(200), 200);
    }

    #[test]
    fn and_intersects() {
        let a = PortSet128::full(100);
        let mut b = PortSet128::EMPTY;
        b.insert(99);
        b.insert(100);
        let c = a.and(&b);
        assert!(c.contains(99));
        assert!(!c.contains(100));
        assert_eq!(c.count_ones(), 1);
    }

    #[test]
    fn iter_yields_ascending() {
        let mut s = PortSet256::EMPTY;
        for p in [255, 0, 128] {
            s.insert(p);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 128, 255]);
    }
}
