//! Candidates: the interface between link scheduling and switch scheduling.
//!
//! Each flit cycle, every input link's scheduler forwards its *k*
//! highest-priority head flits to the switch scheduler as a **candidate
//! vector**: level 1 is the highest-priority candidate, level 2 the next,
//! and so on (paper §4).  The switch scheduler sees only these vectors.

use serde::{Deserialize, Serialize};

/// A scheduling priority.
///
/// Stored as `f64` so one type serves every priority function (SIABP
/// produces integers, IABP produces ratios).  Values must be finite; the
/// ordering is total (`f64::total_cmp`), which keeps arbitration
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Priority(pub f64);

impl Priority {
    /// The lowest priority.
    pub const ZERO: Priority = Priority(0.0);

    /// Build from a value, checking finiteness.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(v.is_finite(), "priority must be finite, got {v}");
        Priority(v)
    }
}

impl Eq for Priority {}

impl PartialOrd for Priority {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One candidate: a head flit offered to the switch scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Input physical port offering the flit.
    pub input: usize,
    /// Virtual channel (connection slot) the flit heads.
    pub vc: usize,
    /// Output port the flit requests.
    pub output: usize,
    /// Link-scheduler priority of the head flit.
    pub priority: Priority,
}

/// The candidate vectors of all input ports for one scheduling cycle.
///
/// Dense layout: `levels` slots per input, level-major within an input,
/// sorted by descending priority (level 1 first).  Empty slots are `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    ports: usize,
    levels: usize,
    slots: Vec<Option<Candidate>>,
}

impl CandidateSet {
    /// An empty set for `ports` inputs with `levels` candidate levels.
    pub fn new(ports: usize, levels: usize) -> Self {
        assert!(ports > 0 && levels > 0);
        CandidateSet { ports, levels, slots: vec![None; ports * levels] }
    }

    /// Number of input/output ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of candidate levels (k).
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Remove all candidates (reuse between cycles without reallocating).
    pub fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// Install the candidate vector for one input.  `candidates` must be
    /// sorted by descending priority and contain at most `levels` entries,
    /// each with `input` equal to `input`.
    pub fn set_input(&mut self, input: usize, candidates: &[Candidate]) {
        assert!(candidates.len() <= self.levels, "too many candidates");
        let base = input * self.levels;
        for l in 0..self.levels {
            self.slots[base + l] = candidates.get(l).copied();
        }
        debug_assert!(
            candidates.windows(2).all(|w| w[0].priority >= w[1].priority),
            "candidates must be sorted by descending priority"
        );
        debug_assert!(candidates.iter().all(|c| c.input == input && c.output < self.ports));
    }

    /// Push one candidate into the next free level of its input; returns
    /// false if the input's vector is full.
    pub fn push(&mut self, c: Candidate) -> bool {
        let base = c.input * self.levels;
        for l in 0..self.levels {
            if self.slots[base + l].is_none() {
                debug_assert!(
                    l == 0
                        || self.slots[base + l - 1]
                            .is_some_and(|prev| prev.priority >= c.priority),
                    "push order must be descending priority"
                );
                self.slots[base + l] = Some(c);
                return true;
            }
        }
        false
    }

    /// The candidate of `input` at `level` (0-based; level 0 = paper's
    /// "level one").
    #[inline]
    pub fn get(&self, input: usize, level: usize) -> Option<Candidate> {
        self.slots[input * self.levels + level]
    }

    /// Iterate over all present candidates.
    pub fn iter(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.slots.iter().flatten().copied()
    }

    /// Candidates of one input, best first.
    pub fn input_candidates(&self, input: usize) -> impl Iterator<Item = Candidate> + '_ {
        let base = input * self.levels;
        self.slots[base..base + self.levels].iter().flatten().copied()
    }

    /// The best (lowest-level) candidate of `input` requesting `output`.
    pub fn best_for(&self, input: usize, output: usize) -> Option<Candidate> {
        self.input_candidates(input).find(|c| c.output == output)
    }

    /// True if `input` has any candidate for `output`.
    #[inline]
    pub fn requests(&self, input: usize, output: usize) -> bool {
        self.best_for(input, output).is_some()
    }

    /// Total number of candidates present.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// True if no candidates at all.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate { input, vc, output, priority: Priority::new(prio) }
    }

    #[test]
    fn priority_total_order() {
        let mut ps = vec![Priority::new(3.0), Priority::new(1.0), Priority::new(2.0)];
        ps.sort();
        assert_eq!(ps, vec![Priority::new(1.0), Priority::new(2.0), Priority::new(3.0)]);
        assert!(Priority::new(5.0) > Priority::ZERO);
    }

    #[test]
    fn set_input_and_get() {
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(1, &[cand(1, 0, 3, 10.0), cand(1, 5, 0, 4.0)]);
        assert_eq!(cs.get(1, 0).unwrap().output, 3);
        assert_eq!(cs.get(1, 1).unwrap().output, 0);
        assert_eq!(cs.get(0, 0), None);
        assert_eq!(cs.len(), 2);
        assert!(!cs.is_empty());
    }

    #[test]
    fn push_fills_levels_in_order() {
        let mut cs = CandidateSet::new(2, 2);
        assert!(cs.push(cand(0, 0, 1, 9.0)));
        assert!(cs.push(cand(0, 1, 0, 5.0)));
        assert!(!cs.push(cand(0, 2, 1, 1.0)), "third push must fail with 2 levels");
        assert_eq!(cs.get(0, 0).unwrap().vc, 0);
        assert_eq!(cs.get(0, 1).unwrap().vc, 1);
    }

    #[test]
    fn best_for_prefers_lower_level() {
        let mut cs = CandidateSet::new(2, 3);
        cs.set_input(0, &[cand(0, 0, 1, 9.0), cand(0, 1, 1, 5.0), cand(0, 2, 0, 1.0)]);
        let best = cs.best_for(0, 1).unwrap();
        assert_eq!(best.vc, 0);
        assert!(cs.requests(0, 0));
        assert!(!cs.requests(0, 2)); // within ports but unrequested
        assert!(cs.best_for(1, 0).is_none());
    }

    #[test]
    fn clear_resets() {
        let mut cs = CandidateSet::new(2, 2);
        cs.push(cand(0, 0, 1, 1.0));
        cs.clear();
        assert!(cs.is_empty());
        assert_eq!(cs.len(), 0);
    }

    #[test]
    fn iter_yields_all() {
        let mut cs = CandidateSet::new(3, 2);
        cs.set_input(0, &[cand(0, 0, 1, 3.0)]);
        cs.set_input(2, &[cand(2, 1, 0, 7.0), cand(2, 2, 1, 2.0)]);
        let all: Vec<_> = cs.iter().collect();
        assert_eq!(all.len(), 3);
        let inputs: Vec<_> = all.iter().map(|c| c.input).collect();
        assert_eq!(inputs, vec![0, 2, 2]);
    }
}
