//! Candidates: the interface between link scheduling and switch scheduling.
//!
//! Each flit cycle, every input link's scheduler forwards its *k*
//! highest-priority head flits to the switch scheduler as a **candidate
//! vector**: level 1 is the highest-priority candidate, level 2 the next,
//! and so on (paper §4).  The switch scheduler sees only these vectors.

use crate::portset::{words_for_ports, MAX_WORDS};
use serde::{Deserialize, Serialize};

/// Hard upper bound on router ports.
///
/// The arbitration kernels keep per-output requester sets and free-port
/// maps as multi-word bitmasks ([`crate::portset::PortSet`]), selecting a
/// width of 1, 2 or 4 `u64` words from the port count.  Four words — 256
/// ports — covers the Tiny Tera-class configurations of interest while
/// keeping every kernel branch-free on port sets; larger routers are
/// rejected with a clear error.
pub const MAX_PORTS: usize = 256;

/// A scheduling priority.
///
/// Stored as `f64` so one type serves every priority function (SIABP
/// produces integers, IABP produces ratios).  Values must be finite; the
/// ordering is total (`f64::total_cmp`), which keeps arbitration
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Priority(pub f64);

impl Priority {
    /// The lowest priority.
    pub const ZERO: Priority = Priority(0.0);

    /// Build from a value, checking finiteness.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(v.is_finite(), "priority must be finite, got {v}");
        Priority(v)
    }

    /// The priority as an order-preserving `u64` key: `a.sort_key() <
    /// b.sort_key()` iff `a < b` (and equal keys iff `total_cmp` equality).
    /// Flipping the sign bit of a non-negative float, or all bits of a
    /// negative one, is the standard IEEE-754 totalOrder transform; it
    /// lets kernels compare and sort priorities as plain integers.
    #[inline]
    pub fn sort_key(self) -> u64 {
        let b = self.0.to_bits();
        if b >> 63 == 1 {
            !b
        } else {
            b | (1u64 << 63)
        }
    }
}

impl Eq for Priority {}

impl PartialOrd for Priority {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One candidate: a head flit offered to the switch scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Input physical port offering the flit.
    pub input: usize,
    /// Virtual channel (connection slot) the flit heads.
    pub vc: usize,
    /// Output port the flit requests.
    pub output: usize,
    /// Link-scheduler priority of the head flit.
    pub priority: Priority,
}

/// The candidate vectors of all input ports for one scheduling cycle.
///
/// Dense layout: `levels` slots per input, level-major within an input,
/// sorted by descending priority (level 1 first).  Empty slots are `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    ports: usize,
    levels: usize,
    /// Port-set width in `u64` words (1, 2 or 4), fixed by `ports`.
    /// Every mask below is stored as `words` consecutive `u64`s.
    words: usize,
    slots: Vec<Option<Candidate>>,
    /// Request index: row `level * ports + output` (of `words` words each)
    /// → bitmask of inputs whose candidate at `level` requests `output`.
    /// Maintained incrementally by `set_input`/`push`/`clear` so arbiters
    /// scan requesters in O(words) per (level, output) instead of sweeping
    /// every input.
    req_level_out: Vec<u64>,
    /// Row `output` → bitmask of inputs with a candidate for `output` at
    /// any level (the union of `req_level_out` over levels).
    req_out: Vec<u64>,
    /// Row `input` → bitmask of outputs requested by any of the input's
    /// candidates.
    out_by_in: Vec<u64>,
}

impl CandidateSet {
    /// An empty set for `ports` inputs with `levels` candidate levels.
    pub fn new(ports: usize, levels: usize) -> Self {
        assert!(ports > 0 && levels > 0);
        assert!(
            ports <= MAX_PORTS,
            "router has {ports} ports but the scheduling kernels track port \
             sets as at most {MAX_WORDS} 64-bit words, limiting a router to \
             {MAX_PORTS} ports"
        );
        let words = words_for_ports(ports);
        CandidateSet {
            ports,
            levels,
            words,
            slots: vec![None; ports * levels],
            req_level_out: vec![0; ports * levels * words],
            req_out: vec![0; ports * words],
            out_by_in: vec![0; ports * words],
        }
    }

    /// Number of input/output ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of candidate levels (k).
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Port-set width in `u64` words (1, 2 or 4).  Every mask slice this
    /// set returns has exactly this length.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Remove all candidates (reuse between cycles without reallocating).
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.req_level_out.fill(0);
        self.req_out.fill(0);
        self.out_by_in.fill(0);
    }

    /// Install the candidate vector for one input.  `candidates` must be
    /// sorted by descending priority and contain at most `levels` entries,
    /// each with `input` equal to `input`.
    pub fn set_input(&mut self, input: usize, candidates: &[Candidate]) {
        assert!(candidates.len() <= self.levels, "too many candidates");
        let base = input * self.levels;
        let words = self.words;
        let iw = input >> 6;
        let ibit = 1u64 << (input & 63);
        // Unindex the input's previous vector before overwriting.
        let mut touched = [0u64; MAX_WORDS];
        touched[..words].copy_from_slice(&self.out_by_in[input * words..(input + 1) * words]);
        for l in 0..self.levels {
            if let Some(old) = self.slots[base + l] {
                self.req_level_out[(l * self.ports + old.output) * words + iw] &= !ibit;
            }
        }
        self.out_by_in[input * words..(input + 1) * words].fill(0);
        for l in 0..self.levels {
            self.slots[base + l] = candidates.get(l).copied();
            if let Some(c) = candidates.get(l) {
                self.req_level_out[(l * self.ports + c.output) * words + iw] |= ibit;
                self.req_out[c.output * words + iw] |= ibit;
                self.out_by_in[input * words + (c.output >> 6)] |= 1u64 << (c.output & 63);
                touched[c.output >> 6] |= 1u64 << (c.output & 63);
            }
        }
        // Rebuild the any-level union for every output the input touched.
        for (w, mut t) in touched.into_iter().enumerate().take(words) {
            while t != 0 {
                let output = w * 64 + t.trailing_zeros() as usize;
                t &= t - 1;
                let any = (0..self.levels).any(|l| {
                    self.req_level_out[(l * self.ports + output) * words + iw] & ibit != 0
                });
                if any {
                    self.req_out[output * words + iw] |= ibit;
                } else {
                    self.req_out[output * words + iw] &= !ibit;
                }
            }
        }
        debug_assert!(
            candidates
                .windows(2)
                .all(|w| w[0].priority >= w[1].priority),
            "candidates must be sorted by descending priority"
        );
        debug_assert!(candidates
            .iter()
            .all(|c| c.input == input && c.output < self.ports));
    }

    /// Push one candidate into the next free level of its input; returns
    /// false if the input's vector is full.
    pub fn push(&mut self, c: Candidate) -> bool {
        let base = c.input * self.levels;
        for l in 0..self.levels {
            if self.slots[base + l].is_none() {
                debug_assert!(
                    l == 0
                        || self.slots[base + l - 1].is_some_and(|prev| prev.priority >= c.priority),
                    "push order must be descending priority"
                );
                self.slots[base + l] = Some(c);
                let words = self.words;
                let ibit = 1u64 << (c.input & 63);
                self.req_level_out[(l * self.ports + c.output) * words + (c.input >> 6)] |= ibit;
                self.req_out[c.output * words + (c.input >> 6)] |= ibit;
                self.out_by_in[c.input * words + (c.output >> 6)] |= 1u64 << (c.output & 63);
                return true;
            }
        }
        false
    }

    /// The candidate of `input` at `level` (0-based; level 0 = paper's
    /// "level one").
    #[inline]
    pub fn get(&self, input: usize, level: usize) -> Option<Candidate> {
        self.slots[input * self.levels + level]
    }

    /// Borrowing variant of [`CandidateSet::get`] for kernel inner loops:
    /// no 40-byte `Option<Candidate>` copy per probe.
    #[inline]
    pub fn candidate_at(&self, input: usize, level: usize) -> Option<&Candidate> {
        self.slots[input * self.levels + level].as_ref()
    }

    /// Iterate over all present candidates.
    pub fn iter(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.slots.iter().flatten().copied()
    }

    /// Candidates of one input, best first.
    pub fn input_candidates(&self, input: usize) -> impl Iterator<Item = Candidate> + '_ {
        let base = input * self.levels;
        self.slots[base..base + self.levels]
            .iter()
            .flatten()
            .copied()
    }

    /// The best (lowest-level) candidate of `input` requesting `output`.
    pub fn best_for(&self, input: usize, output: usize) -> Option<Candidate> {
        self.best_level_for(input, output).map(|(_, c)| c)
    }

    /// The lowest level at which `input` requests `output`, with its
    /// candidate.  O(levels) via the request index.
    #[inline]
    pub fn best_level_for(&self, input: usize, output: usize) -> Option<(usize, Candidate)> {
        let iw = input >> 6;
        let ibit = 1u64 << (input & 63);
        (0..self.levels)
            .find(|&l| self.req_level_out[(l * self.ports + output) * self.words + iw] & ibit != 0)
            .map(|l| {
                (
                    l,
                    self.slots[input * self.levels + l].expect("indexed candidate"),
                )
            })
    }

    /// True if `input` has any candidate for `output`.  O(1) via the
    /// request index.
    #[inline]
    pub fn requests(&self, input: usize, output: usize) -> bool {
        self.req_out[output * self.words + (input >> 6)] & (1u64 << (input & 63)) != 0
    }

    /// The whole request bit-matrix as one flat slice: row
    /// `level * ports + output` (each `words()` words long) is the
    /// requester mask of that (level, output) pair.  Lets kernels stream
    /// the matrix linearly instead of recomputing row offsets per cell.
    #[inline]
    pub fn request_rows(&self) -> &[u64] {
        &self.req_level_out
    }

    /// Bitmask of inputs whose candidate at `level` requests `output`, as
    /// a `words()`-long word slice.
    #[inline]
    pub fn requesters_at(&self, level: usize, output: usize) -> &[u64] {
        let base = (level * self.ports + output) * self.words;
        &self.req_level_out[base..base + self.words]
    }

    /// Bitmask of inputs requesting `output` at any level, as a
    /// `words()`-long word slice.
    #[inline]
    pub fn requesters(&self, output: usize) -> &[u64] {
        &self.req_out[output * self.words..(output + 1) * self.words]
    }

    /// Bitmask of outputs requested by any of `input`'s candidates, as a
    /// `words()`-long word slice.
    #[inline]
    pub fn output_mask(&self, input: usize) -> &[u64] {
        &self.out_by_in[input * self.words..(input + 1) * self.words]
    }

    /// Total number of candidates present.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// True if no candidates at all.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(prio),
        }
    }

    #[test]
    fn sort_key_preserves_total_order() {
        let vals = [-1e9, -1.5, -0.0, 0.0, 1e-300, 2.0, 1e18];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    Priority::new(a)
                        .sort_key()
                        .cmp(&Priority::new(b).sort_key()),
                    a.total_cmp(&b),
                    "sort_key order mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn priority_total_order() {
        let mut ps = vec![Priority::new(3.0), Priority::new(1.0), Priority::new(2.0)];
        ps.sort();
        assert_eq!(
            ps,
            vec![Priority::new(1.0), Priority::new(2.0), Priority::new(3.0)]
        );
        assert!(Priority::new(5.0) > Priority::ZERO);
    }

    #[test]
    fn set_input_and_get() {
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(1, &[cand(1, 0, 3, 10.0), cand(1, 5, 0, 4.0)]);
        assert_eq!(cs.get(1, 0).unwrap().output, 3);
        assert_eq!(cs.get(1, 1).unwrap().output, 0);
        assert_eq!(cs.get(0, 0), None);
        assert_eq!(cs.len(), 2);
        assert!(!cs.is_empty());
    }

    #[test]
    fn push_fills_levels_in_order() {
        let mut cs = CandidateSet::new(2, 2);
        assert!(cs.push(cand(0, 0, 1, 9.0)));
        assert!(cs.push(cand(0, 1, 0, 5.0)));
        assert!(
            !cs.push(cand(0, 2, 1, 1.0)),
            "third push must fail with 2 levels"
        );
        assert_eq!(cs.get(0, 0).unwrap().vc, 0);
        assert_eq!(cs.get(0, 1).unwrap().vc, 1);
    }

    #[test]
    fn best_for_prefers_lower_level() {
        let mut cs = CandidateSet::new(3, 3);
        cs.set_input(
            0,
            &[cand(0, 0, 1, 9.0), cand(0, 1, 1, 5.0), cand(0, 2, 0, 1.0)],
        );
        let best = cs.best_for(0, 1).unwrap();
        assert_eq!(best.vc, 0);
        assert!(cs.requests(0, 0));
        assert!(!cs.requests(0, 2)); // within ports but unrequested
        assert!(cs.best_for(1, 0).is_none());
    }

    #[test]
    fn clear_resets() {
        let mut cs = CandidateSet::new(2, 2);
        cs.push(cand(0, 0, 1, 1.0));
        cs.clear();
        assert!(cs.is_empty());
        assert_eq!(cs.len(), 0);
    }

    #[test]
    fn request_index_tracks_mutations() {
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 2, 9.0), cand(0, 1, 1, 5.0)]);
        cs.push(cand(3, 0, 2, 7.0));
        assert_eq!(cs.words(), 1);
        assert_eq!(cs.requesters_at(0, 2), &[0b1001]);
        assert_eq!(cs.requesters_at(1, 1), &[0b0001]);
        assert_eq!(cs.requesters(2), &[0b1001]);
        assert_eq!(cs.output_mask(0), &[0b0110]);
        assert_eq!(cs.best_level_for(0, 1), Some((1, cand(0, 1, 1, 5.0))));
        // Overwriting an input unindexes its previous candidates.
        cs.set_input(0, &[cand(0, 2, 3, 1.0)]);
        assert_eq!(cs.requesters_at(0, 2), &[0b1000]);
        assert_eq!(cs.requesters(2), &[0b1000]);
        assert_eq!(cs.requesters(1), &[0]);
        assert_eq!(cs.output_mask(0), &[0b1000]);
        assert!(!cs.requests(0, 1));
        assert!(cs.requests(0, 3));
        cs.clear();
        for o in 0..4 {
            assert_eq!(cs.requesters(o), &[0]);
        }
    }

    #[test]
    fn union_survives_partial_overwrite() {
        // Input 0 requests output 2 at both levels; overwriting with a
        // vector that still has one level-1 request for output 2 must keep
        // the union bit set.
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 2, 9.0), cand(0, 1, 2, 5.0)]);
        cs.set_input(0, &[cand(0, 0, 0, 9.0), cand(0, 1, 2, 5.0)]);
        assert!(cs.requests(0, 2));
        assert_eq!(cs.requesters(2), &[0b01]);
        assert_eq!(cs.requesters_at(0, 2), &[0]);
        assert_eq!(cs.requesters_at(1, 2), &[0b01]);
    }

    #[test]
    fn multi_word_index_crosses_word_boundaries() {
        // 130 ports → four words.  Inputs in different words request the
        // same top-word output; all three indexes must place the bits in
        // the right words.
        let mut cs = CandidateSet::new(130, 2);
        assert_eq!(cs.words(), 4);
        cs.set_input(1, &[cand(1, 0, 129, 5.0)]);
        cs.set_input(70, &[cand(70, 0, 129, 9.0), cand(70, 1, 2, 1.0)]);
        cs.push(cand(129, 0, 64, 3.0));
        let r = cs.requesters_at(0, 129);
        assert_eq!(r, &[1u64 << 1, 1u64 << 6, 0, 0]);
        assert_eq!(cs.requesters(129), &[1u64 << 1, 1u64 << 6, 0, 0]);
        assert_eq!(cs.requesters_at(0, 64), &[0, 0, 1u64 << 1, 0]);
        // Output 129 sits in word 2 of the per-input output mask.
        assert_eq!(cs.output_mask(70), &[1u64 << 2, 0, 1u64 << 1, 0]);
        assert!(cs.requests(70, 129));
        assert!(cs.requests(129, 64));
        assert!(!cs.requests(70, 64));
        assert_eq!(cs.best_level_for(70, 2), Some((1, cand(70, 1, 2, 1.0))));
        // Overwriting input 70 must clear its word-1 requester bits.
        cs.set_input(70, &[cand(70, 0, 0, 1.0)]);
        assert_eq!(cs.requesters(129), &[1u64 << 1, 0, 0, 0]);
        assert!(!cs.requests(70, 129));
    }

    #[test]
    fn word_boundary_port_counts_get_exact_widths() {
        assert_eq!(CandidateSet::new(63, 1).words(), 1);
        assert_eq!(CandidateSet::new(64, 1).words(), 1);
        assert_eq!(CandidateSet::new(65, 1).words(), 2);
        assert_eq!(CandidateSet::new(128, 1).words(), 2);
        assert_eq!(CandidateSet::new(129, 1).words(), 4);
    }

    #[test]
    fn max_ports_accepted() {
        let cs = CandidateSet::new(MAX_PORTS, 2);
        assert_eq!(cs.ports(), MAX_PORTS);
        assert_eq!(cs.words(), 4);
    }

    #[test]
    #[should_panic(expected = "limiting a router to 256 ports")]
    fn too_many_ports_rejected_with_clear_error() {
        let _ = CandidateSet::new(MAX_PORTS + 1, 2);
    }

    #[test]
    fn iter_yields_all() {
        let mut cs = CandidateSet::new(3, 2);
        cs.set_input(0, &[cand(0, 0, 1, 3.0)]);
        cs.set_input(2, &[cand(2, 1, 0, 7.0), cand(2, 2, 1, 2.0)]);
        let all: Vec<_> = cs.iter().collect();
        assert_eq!(all.len(), 3);
        let inputs: Vec<_> = all.iter().map(|c| c.input).collect();
        assert_eq!(inputs, vec![0, 2, 2]);
    }
}
