//! The Candidate-Order Arbiter (COA) — the paper's contribution (§4).
//!
//! Each scheduling cycle the candidate vectors are arranged conceptually
//! into a *selection matrix* with one row group per candidate level and a
//! *conflict vector* counting, for every (level, output) pair, how many
//! inputs request that output at that level.  The algorithm then iterates:
//!
//! 1. **Port ordering** — pick the next output to match: lowest level
//!    first, then *ascending* conflict count within the level (ports with
//!    many conflicts are matched last, because they have the most
//!    remaining opportunities), ties broken at random.
//! 2. **Arbitration** — among the requests for that output at that level,
//!    grant the one with the highest priority (ties at random).
//! 3. Drop every request involving the matched input or output and
//!    recompute the conflict vector.
//!
//! The loop ends when no request from a free input to a free output
//! remains; the result is a conflict-free matching with at most one
//! virtual channel selected per physical input link.

use crate::candidate::CandidateSet;
use crate::matching::{Grant, Matching};
use crate::scheduler::SwitchScheduler;
use mmr_sim::rng::SimRng;

/// The Candidate-Order Arbiter.
///
/// ```
/// use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
/// use mmr_arbiter::coa::CandidateOrderArbiter;
/// use mmr_arbiter::scheduler::SwitchScheduler;
/// use mmr_sim::rng::SimRng;
///
/// let mut cs = CandidateSet::new(4, 4);
/// // Inputs 0 and 1 contend for output 2; input 1 has higher priority.
/// cs.push(Candidate { input: 0, vc: 0, output: 2, priority: Priority::new(10.0) });
/// cs.push(Candidate { input: 1, vc: 1, output: 2, priority: Priority::new(99.0) });
///
/// let mut coa = CandidateOrderArbiter::new(4);
/// let matching = coa.schedule(&cs, &mut SimRng::seed_from_u64(0));
/// assert_eq!(matching.grant_for(1).unwrap().output, 2);
/// assert!(matching.grant_for(0).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CandidateOrderArbiter {
    ports: usize,
    // Scratch buffers reused across cycles to stay allocation-free.
    conflicts: Vec<u32>, // levels x ports, level-major
    tie_buf: Vec<usize>,
}

impl CandidateOrderArbiter {
    /// COA for a router with `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        CandidateOrderArbiter { ports, conflicts: Vec::new(), tie_buf: Vec::with_capacity(ports) }
    }

    /// Recompute the conflict vector over free inputs/outputs; returns the
    /// lowest level that still has requests, if any.
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn recompute_conflicts(
        &mut self,
        cs: &CandidateSet,
        input_free: &[bool],
        output_free: &[bool],
    ) -> Option<usize> {
        let levels = cs.levels();
        self.conflicts.clear();
        self.conflicts.resize(levels * self.ports, 0);
        let mut lowest: Option<usize> = None;
        for input in 0..self.ports {
            if !input_free[input] {
                continue;
            }
            for (level, c) in cs.input_candidates(input).enumerate() {
                debug_assert_eq!(c.input, input);
                if output_free[c.output] {
                    self.conflicts[level * self.ports + c.output] += 1;
                    if lowest.is_none_or(|l| level < l) {
                        lowest = Some(level);
                    }
                }
            }
        }
        lowest
    }
}

impl SwitchScheduler for CandidateOrderArbiter {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule(&mut self, cs: &CandidateSet, rng: &mut SimRng) -> Matching {
        assert_eq!(cs.ports(), self.ports);
        let mut matching = Matching::new(self.ports);
        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];

        // Each iteration matches exactly one (input, output) pair, so the
        // loop runs at most `ports` times.
        while let Some(level) = self.recompute_conflicts(cs, &input_free, &output_free) {
            // Port ordering: ascending conflict count within the lowest
            // level that still has requests; ties at random.
            let row = &self.conflicts[level * self.ports..(level + 1) * self.ports];
            let min_conflict =
                row.iter().copied().filter(|&c| c > 0).min().expect("level has requests");
            self.tie_buf.clear();
            self.tie_buf.extend(
                row.iter().enumerate().filter(|&(_, &c)| c == min_conflict).map(|(o, _)| o),
            );
            let output = if self.tie_buf.len() == 1 {
                self.tie_buf[0]
            } else {
                self.tie_buf[rng.index(self.tie_buf.len())]
            };

            // Arbitration: highest-priority request for `output` at
            // `level`, among free inputs; ties at random.
            let mut best: Option<(usize, crate::candidate::Candidate)> = None;
            let mut ties = 0u32;
            for input in 0..self.ports {
                if !input_free[input] {
                    continue;
                }
                let Some(c) = cs.get(input, level) else { continue };
                if c.output != output {
                    continue;
                }
                match &best {
                    None => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority > b.priority => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority == b.priority => {
                        // Reservoir-sample among equal-priority requests so
                        // the tie-break is uniform.
                        ties += 1;
                        if rng.below(ties as u64) == 0 {
                            best = Some((input, c));
                        }
                    }
                    _ => {}
                }
            }
            let (input, cand) =
                best.expect("conflict vector said this (level, output) has a request");
            matching.add(Grant { input, output, vc: cand.vc, level });
            input_free[input] = false;
            output_free[output] = false;
        }
        debug_assert!(matching.is_consistent_with(cs));
        matching
    }

    fn name(&self) -> &'static str {
        "Candidate-Order Arbiter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate { input, vc, output, priority: Priority::new(prio) }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn empty_candidates_empty_matching() {
        let cs = CandidateSet::new(4, 4);
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn disjoint_requests_all_granted() {
        let mut cs = CandidateSet::new(4, 2);
        for i in 0..4 {
            cs.push(cand(i, i, (i + 1) % 4, 1.0 + i as f64));
        }
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 4);
        for i in 0..4 {
            assert_eq!(m.grant_for(i).unwrap().output, (i + 1) % 4);
        }
    }

    #[test]
    fn highest_priority_wins_contention() {
        // Three inputs all want output 0 at level 1; input 2 has the
        // highest priority.
        let mut cs = CandidateSet::new(4, 2);
        cs.push(cand(0, 0, 0, 5.0));
        cs.push(cand(1, 0, 0, 9.0));
        cs.push(cand(2, 0, 0, 100.0));
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1);
        let g = m.grant_for(2).expect("input 2 must win");
        assert_eq!(g.output, 0);
        assert!(m.grant_for(0).is_none());
        assert!(m.grant_for(1).is_none());
    }

    #[test]
    fn losers_fall_back_to_lower_levels() {
        // Inputs 0 and 1 both want output 0 first; their level-2
        // candidates point at free outputs, so the loser still transmits.
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0, 10.0), cand(0, 1, 1, 2.0)]);
        cs.set_input(1, &[cand(1, 0, 0, 8.0), cand(1, 1, 2, 1.0)]);
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 0);
        let loser = m.grant_for(1).unwrap();
        assert_eq!(loser.output, 2);
        assert_eq!(loser.level, 1);
    }

    #[test]
    fn least_conflicted_output_matched_first() {
        // Output 0 is requested by inputs 0,1,2 (3 conflicts); output 1 by
        // input 3 only (1 conflict).  COA must match output 1 first —
        // observable because input 3 also requests output 0 at level 1 but
        // must be granted its level-1 choice... here we check that the
        // high-conflict port still ends up matched (matched *last*, not
        // dropped).
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 1.0));
        cs.push(cand(1, 0, 0, 2.0));
        cs.push(cand(2, 0, 0, 3.0));
        cs.push(cand(3, 0, 1, 0.5));
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(3).unwrap().output, 1);
        assert_eq!(m.grant_for(2).unwrap().output, 0, "priority 3.0 wins output 0");
    }

    #[test]
    fn level_one_served_before_level_two() {
        // Input 0's level-1 request for output 0 must beat input 1's
        // level-2 request for output 0, even though input 1's priority for
        // it is higher.
        let mut cs = CandidateSet::new(2, 2);
        cs.set_input(0, &[cand(0, 0, 0, 1.0)]);
        cs.set_input(1, &[cand(1, 0, 1, 50.0), cand(1, 1, 0, 40.0)]);
        let m = CandidateOrderArbiter::new(2).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 0);
        assert_eq!(m.grant_for(1).unwrap().output, 1);
    }

    #[test]
    fn one_grant_per_input_even_with_many_candidates() {
        let mut cs = CandidateSet::new(4, 4);
        // Input 0 requests every output.
        cs.set_input(
            0,
            &[cand(0, 0, 0, 9.0), cand(0, 1, 1, 8.0), cand(0, 2, 2, 7.0), cand(0, 3, 3, 6.0)],
        );
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1, "only one VC per physical link may transmit");
        assert_eq!(m.grant_for(0).unwrap().output, 0);
    }

    #[test]
    fn matching_is_always_maximal_on_candidates() {
        // After COA finishes there must be no remaining candidate linking
        // a free input to a free output (the loop only stops when none
        // remain).
        let mut r = rng();
        for seed in 0..50u64 {
            let mut cs = CandidateSet::new(4, 4);
            let mut gen = SimRng::seed_from_u64(seed);
            for input in 0..4 {
                let mut cands: Vec<Candidate> = (0..4)
                    .map(|vc| cand(input, vc, gen.index(4), gen.uniform() * 100.0))
                    .collect();
                cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
                cs.set_input(input, &cands);
            }
            let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut r);
            for c in cs.iter() {
                assert!(
                    m.input_matched(c.input) || m.output_matched(c.output),
                    "candidate {c:?} links free input to free output"
                );
            }
            assert!(m.is_consistent_with(&cs));
        }
    }
}
