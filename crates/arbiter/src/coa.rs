//! The Candidate-Order Arbiter (COA) — the paper's contribution (§4).
//!
//! Each scheduling cycle the candidate vectors are arranged conceptually
//! into a *selection matrix* with one row group per candidate level and a
//! *conflict vector* counting, for every (level, output) pair, how many
//! inputs request that output at that level.  The algorithm then iterates:
//!
//! 1. **Port ordering** — pick the next output to match: lowest level
//!    first, then *ascending* conflict count within the level (ports with
//!    many conflicts are matched last, because they have the most
//!    remaining opportunities), ties broken at random.
//! 2. **Arbitration** — among the requests for that output at that level,
//!    grant the one with the highest priority (ties at random).
//! 3. Drop every request involving the matched input or output and
//!    recompute the conflict vector.
//!
//! The loop ends when no request from a free input to a free output
//! remains; the result is a conflict-free matching with at most one
//! virtual channel selected per physical input link.
//!
//! ## Kernel
//!
//! The selection matrix is exactly the candidate set's per-(level, output)
//! requester bit-rows (a `levels·ports × ports` bit-matrix Q), and the
//! conflict vector is the vector of row popcounts — so the kernel works in
//! dense bit-matrix form end to end:
//!
//! The key structural fact the kernel exploits: **levels drain strictly
//! in order, and within a level the conflict structure is frozen.**
//! "Lowest level first" means level `l` is only reached once levels
//! `< l` hold no live request, and counts never increase, so processing
//! is a single monotone sweep over levels.  While level `l` drains, a
//! grant removes one input and one output — but the granted input's
//! level-`l` candidate *is* the granted output, so no other output's
//! level-`l` requester set changes.  Every live output at the current
//! level therefore keeps its conflict count until the moment it is
//! itself matched.  Cross-level bookkeeping (the reference's per-grant
//! conflict-vector recomputation over the whole matrix) is unnecessary:
//!
//! * **Per-level build**: when the sweep reaches a level, one masked
//!   popcount pass over that level's requester bit-rows
//!   ([`CandidateSet::request_rows`] ∧ `free_in`, free outputs only)
//!   scatters each live output into a *conflict bucket*: `buckets[k]` is
//!   the port set of outputs with exactly `k + 1` live conflicts.  An
//!   occupancy bitmask (bit `k` set iff bucket `k` is non-empty) rides
//!   along in registers.  The scatter is branch-free: a dead output
//!   masks its OR operands to zero.
//! * **Port ordering**: "ascending conflict count" is a trailing-zeros
//!   pick on the occupancy mask, and the tie set *is* the lowest
//!   occupied bucket — a random tie becomes a k-th-set-bit select on it.
//!   No row scan happens per grant: the ordering step is O(words).
//! * **Grant retire**: drop the granted output from its bucket (one
//!   masked word store) and clear the occupancy bit if the bucket
//!   drained.  That is the whole retire step.
//!
//! Port sets are [`crate::portset::PortSet`] words, so the same kernel
//! body serves 64-, 128- and 256-port routers; the width is dispatched
//! once per call and monomorphized.  The whole cycle costs
//! O(ports · levels / 64) word operations for the builds plus O(words)
//! per grant, instead of the naive O(ports² · levels); the golden
//! reference ([`crate::reference::ReferenceCoa`]) keeps the naive
//! recomputation and the differential property tests pin the two
//! together grant for grant *and* RNG draw for RNG draw.

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// The Candidate-Order Arbiter.
///
/// ```
/// use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
/// use mmr_arbiter::coa::CandidateOrderArbiter;
/// use mmr_arbiter::scheduler::SwitchScheduler;
/// use mmr_sim::rng::SimRng;
///
/// let mut cs = CandidateSet::new(4, 4);
/// // Inputs 0 and 1 contend for output 2; input 1 has higher priority.
/// cs.push(Candidate { input: 0, vc: 0, output: 2, priority: Priority::new(10.0) });
/// cs.push(Candidate { input: 1, vc: 1, output: 2, priority: Priority::new(99.0) });
///
/// let mut coa = CandidateOrderArbiter::new(4);
/// let matching = coa.schedule(&cs, &mut SimRng::seed_from_u64(0));
/// assert_eq!(matching.grant_for(1).unwrap().output, 2);
/// assert!(matching.grant_for(0).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CandidateOrderArbiter {
    ports: usize,
    words: usize,
    /// Conflict buckets for the level currently being drained: row `k`
    /// (of `words` words) is the port set of free outputs with exactly
    /// `k + 1` live conflicts.  Scratch reused across cycles to stay
    /// allocation-free; every level drains its buckets back to all-zero
    /// (each bucketed output is eventually granted and removed), so no
    /// per-call clearing is needed, only a (normally no-op) resize.
    buckets: Vec<u64>,
    probe: KernelProbe,
}

impl CandidateOrderArbiter {
    /// COA for a router with `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0 && ports <= MAX_PORTS);
        CandidateOrderArbiter {
            ports,
            words: words_for_ports(ports),
            buckets: Vec::new(),
            probe: KernelProbe::default(),
        }
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let ports = self.ports;
        let levels = cs.levels();
        out.clear();

        self.buckets.resize(ports * W, 0);
        debug_assert!(self.buckets.iter().all(|&b| b == 0));
        let buckets = &mut self.buckets[..ports * W];
        let rows = cs.request_rows();

        let mut free_in = PortSet::<W>::full(ports);
        let mut free_out = PortSet::<W>::full(ports);
        // Work counts batched into locals; one masked probe update at the
        // end keeps the loop body unchanged whether the probe is armed.
        let mut iters = 0u64;
        let mut examined = 0u64;
        let mut retired = 0u64;

        // One monotone sweep over levels (see the module doc: a level
        // only becomes current once every lower level is drained, and
        // drained levels never revive).
        for level in 0..levels {
            if free_in.is_empty() || free_out.is_empty() {
                break;
            }
            // Per-level build: popcount each free output's requester row
            // against the current free inputs and scatter it into its
            // conflict bucket.  `occ` (bit `k` set iff bucket `k` is
            // non-empty) lives in registers.  The scatter is branch-free:
            // an output with no live requesters masks its OR operands to
            // zero (aimed at bucket `ports - 1` so the index stays in
            // range).
            let rrow = &rows[level * ports * W..][..ports * W];
            let mut occ = [0u64; W];
            let mut scan = free_out;
            while let Some(output) = scan.take_lowest() {
                let mut c = 0u32;
                for w in 0..W {
                    c += (rrow[output * W + w] & free_in.word(w)).count_ones();
                }
                let live = u64::from(c != 0);
                let k = (c as usize).wrapping_sub(1).min(ports - 1);
                buckets[k * W + (output >> 6)] |= live << (output & 63);
                occ[k >> 6] |= live << (k & 63);
            }

            // Drain the level.  Within it the conflict structure is
            // frozen: a grant's input only requested the granted output
            // at this level, so no other output's count changes and each
            // remaining bucket entry stays valid until granted.
            let mut occ_any = 0u64;
            for &w in &occ {
                occ_any |= w;
            }
            while occ_any != 0 {
                iters += 1;
                // Port ordering: ascending conflict count; ties at
                // random.  The minimum count is the lowest occupied
                // bucket, and that bucket is exactly the tie set.
                let mut k = 0usize;
                for (w, &bits) in occ.iter().enumerate() {
                    if bits != 0 {
                        k = w * 64 + bits.trailing_zeros() as usize;
                        break;
                    }
                }
                let bbase = k * W;
                let tie_mask = PortSet::<W>::from_words(&buckets[bbase..bbase + W]);
                let ntie = tie_mask.count_ones() as usize;
                debug_assert!(ntie > 0, "occupancy said this bucket is non-empty");
                let output = if ntie == 1 {
                    tie_mask.lowest().expect("tie mask is non-empty")
                } else {
                    tie_mask.kth_set_bit(rng.index(ntie))
                };

                // Arbitration: highest-priority request for `output` at
                // `level`, among free inputs; ties at random.  The
                // requester bitmask enumerates exactly the free inputs
                // whose level-`level` candidate targets `output`, in
                // ascending input order — the same visit order (and thus
                // the same RNG draw sequence) as the reference's full
                // port sweep.  Priorities compare as order-preserving
                // integer keys; key equality is `total_cmp` equality, so
                // the reservoir draws line up too.
                let mut requesters =
                    PortSet::<W>::from_words(cs.requesters_at(level, output)).and(&free_in);
                debug_assert!(
                    !requesters.is_empty(),
                    "the conflict bucket said this output has a request"
                );
                examined += u64::from(requesters.count_ones());
                let mut best_input = usize::MAX;
                let mut best_key = 0u64;
                let mut best_vc = 0usize;
                let mut ties = 0u32;
                while let Some(input) = requesters.take_lowest() {
                    let c = cs.candidate_at(input, level).expect("indexed candidate");
                    debug_assert_eq!(c.output, output);
                    let key = c.priority.sort_key();
                    if best_input == usize::MAX || key > best_key {
                        best_input = input;
                        best_key = key;
                        best_vc = c.vc;
                        ties = 1;
                    } else if key == best_key {
                        // Reservoir-sample among equal-priority requests
                        // so the tie-break is uniform.
                        ties += 1;
                        if rng.below(ties as u64) == 0 {
                            best_input = input;
                            best_vc = c.vc;
                        }
                    }
                }
                debug_assert_ne!(best_input, usize::MAX, "requester mask was non-empty");
                out.add(Grant {
                    input: best_input,
                    output,
                    vc: best_vc,
                    level,
                });
                free_in.remove(best_input);
                free_out.remove(output);
                // Retire: drop the granted output (k + 1 live conflict
                // entries) from its bucket; the occupancy bit falls with
                // the bucket.
                retired += (k + 1) as u64;
                buckets[bbase + (output >> 6)] &= !(1u64 << (output & 63));
                let mut any = 0u64;
                for w in 0..W {
                    any |= buckets[bbase + w];
                }
                occ[k >> 6] &= !(u64::from(any == 0) << (k & 63));
                occ_any = 0;
                for &w in &occ {
                    occ_any |= w;
                }
            }
        }
        self.probe.iterations(iters);
        self.probe.examined(examined);
        self.probe.retired(retired);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for CandidateOrderArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, rng, out),
            2 => self.run::<2>(cs, rng, out),
            _ => self.run::<4>(cs, rng, out),
        }
    }

    fn name(&self) -> &'static str {
        "Candidate-Order Arbiter"
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(prio),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn empty_candidates_empty_matching() {
        let cs = CandidateSet::new(4, 4);
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn disjoint_requests_all_granted() {
        let mut cs = CandidateSet::new(4, 2);
        for i in 0..4 {
            cs.push(cand(i, i, (i + 1) % 4, 1.0 + i as f64));
        }
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 4);
        for i in 0..4 {
            assert_eq!(m.grant_for(i).unwrap().output, (i + 1) % 4);
        }
    }

    #[test]
    fn highest_priority_wins_contention() {
        // Three inputs all want output 0 at level 1; input 2 has the
        // highest priority.
        let mut cs = CandidateSet::new(4, 2);
        cs.push(cand(0, 0, 0, 5.0));
        cs.push(cand(1, 0, 0, 9.0));
        cs.push(cand(2, 0, 0, 100.0));
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1);
        let g = m.grant_for(2).expect("input 2 must win");
        assert_eq!(g.output, 0);
        assert!(m.grant_for(0).is_none());
        assert!(m.grant_for(1).is_none());
    }

    #[test]
    fn losers_fall_back_to_lower_levels() {
        // Inputs 0 and 1 both want output 0 first; their level-2
        // candidates point at free outputs, so the loser still transmits.
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0, 10.0), cand(0, 1, 1, 2.0)]);
        cs.set_input(1, &[cand(1, 0, 0, 8.0), cand(1, 1, 2, 1.0)]);
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 0);
        let loser = m.grant_for(1).unwrap();
        assert_eq!(loser.output, 2);
        assert_eq!(loser.level, 1);
    }

    #[test]
    fn least_conflicted_output_matched_first() {
        // Output 0 is requested by inputs 0,1,2 (3 conflicts); output 1 by
        // input 3 only (1 conflict).  COA must match output 1 first —
        // observable because input 3 also requests output 0 at level 1 but
        // must be granted its level-1 choice... here we check that the
        // high-conflict port still ends up matched (matched *last*, not
        // dropped).
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 1.0));
        cs.push(cand(1, 0, 0, 2.0));
        cs.push(cand(2, 0, 0, 3.0));
        cs.push(cand(3, 0, 1, 0.5));
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(3).unwrap().output, 1);
        assert_eq!(
            m.grant_for(2).unwrap().output,
            0,
            "priority 3.0 wins output 0"
        );
    }

    #[test]
    fn level_one_served_before_level_two() {
        // Input 0's level-1 request for output 0 must beat input 1's
        // level-2 request for output 0, even though input 1's priority for
        // it is higher.
        let mut cs = CandidateSet::new(2, 2);
        cs.set_input(0, &[cand(0, 0, 0, 1.0)]);
        cs.set_input(1, &[cand(1, 0, 1, 50.0), cand(1, 1, 0, 40.0)]);
        let m = CandidateOrderArbiter::new(2).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 0);
        assert_eq!(m.grant_for(1).unwrap().output, 1);
    }

    #[test]
    fn one_grant_per_input_even_with_many_candidates() {
        let mut cs = CandidateSet::new(4, 4);
        // Input 0 requests every output.
        cs.set_input(
            0,
            &[
                cand(0, 0, 0, 9.0),
                cand(0, 1, 1, 8.0),
                cand(0, 2, 2, 7.0),
                cand(0, 3, 3, 6.0),
            ],
        );
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1, "only one VC per physical link may transmit");
        assert_eq!(m.grant_for(0).unwrap().output, 0);
    }

    #[test]
    fn matching_is_always_maximal_on_candidates() {
        // After COA finishes there must be no remaining candidate linking
        // a free input to a free output (the loop only stops when none
        // remain).
        let mut r = rng();
        for seed in 0..50u64 {
            let mut cs = CandidateSet::new(4, 4);
            let mut gen = SimRng::seed_from_u64(seed);
            for input in 0..4 {
                let mut cands: Vec<Candidate> = (0..4)
                    .map(|vc| cand(input, vc, gen.index(4), gen.uniform() * 100.0))
                    .collect();
                cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
                cs.set_input(input, &cands);
            }
            let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut r);
            for c in cs.iter() {
                assert!(
                    m.input_matched(c.input) || m.output_matched(c.output),
                    "candidate {c:?} links free input to free output"
                );
            }
            assert!(m.is_consistent_with(&cs));
        }
    }

    #[test]
    fn incremental_conflicts_match_reference_at_64_ports() {
        // Full-width mask edge case: 64 ports uses every bit of the free
        // masks, so `1 << ports` must never be evaluated.
        let mut cs = CandidateSet::new(64, 2);
        let mut gen = SimRng::seed_from_u64(7);
        for input in 0..64 {
            let mut cands: Vec<Candidate> = (0..2)
                .map(|vc| cand(input, vc, gen.index(64), gen.uniform() * 100.0))
                .collect();
            cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
            cs.set_input(input, &cands);
        }
        let mut fast_rng = SimRng::seed_from_u64(3);
        let mut ref_rng = SimRng::seed_from_u64(3);
        let fast = CandidateOrderArbiter::new(64).schedule(&cs, &mut fast_rng);
        let golden = crate::reference::ReferenceCoa::new(64).schedule(&cs, &mut ref_rng);
        assert_eq!(fast, golden);
    }

    #[test]
    fn bit_matrix_conflicts_match_reference_at_256_ports() {
        // Multi-word edge case: requester rows and free masks span four
        // words, and conflict counts can exceed u8 range in principle.
        let mut cs = CandidateSet::new(256, 2);
        let mut gen = SimRng::seed_from_u64(11);
        for input in 0..256 {
            let mut cands: Vec<Candidate> = (0..2)
                .map(|vc| cand(input, vc, gen.index(256), gen.uniform() * 100.0))
                .collect();
            cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
            cs.set_input(input, &cands);
        }
        let mut fast_rng = SimRng::seed_from_u64(3);
        let mut ref_rng = SimRng::seed_from_u64(3);
        let fast = CandidateOrderArbiter::new(256).schedule(&cs, &mut fast_rng);
        let golden = crate::reference::ReferenceCoa::new(256).schedule(&cs, &mut ref_rng);
        assert_eq!(fast, golden);
        assert_eq!(fast_rng.next_u64_raw(), ref_rng.next_u64_raw());
    }
}
