//! The Candidate-Order Arbiter (COA) — the paper's contribution (§4).
//!
//! Each scheduling cycle the candidate vectors are arranged conceptually
//! into a *selection matrix* with one row group per candidate level and a
//! *conflict vector* counting, for every (level, output) pair, how many
//! inputs request that output at that level.  The algorithm then iterates:
//!
//! 1. **Port ordering** — pick the next output to match: lowest level
//!    first, then *ascending* conflict count within the level (ports with
//!    many conflicts are matched last, because they have the most
//!    remaining opportunities), ties broken at random.
//! 2. **Arbitration** — among the requests for that output at that level,
//!    grant the one with the highest priority (ties at random).
//! 3. Drop every request involving the matched input or output and
//!    recompute the conflict vector.
//!
//! The loop ends when no request from a free input to a free output
//! remains; the result is a conflict-free matching with at most one
//! virtual channel selected per physical input link.
//!
//! ## Kernel
//!
//! This implementation maintains the conflict vector *incrementally*
//! instead of rescanning the selection matrix after every grant.  The
//! vector is built once per cycle in O(ports · levels) from the candidate
//! set's per-(level, output) requester bitmasks; each grant then updates
//! it in O(levels): subtract the matched input's still-live candidates,
//! then zero the matched output's column using the stored counts.  A
//! per-level live-request counter keeps "lowest level with requests" an
//! O(levels) scan.  The whole cycle costs O(ports · levels + ports²)
//! instead of the naive O(ports² · levels); the golden reference
//! ([`crate::reference::ReferenceCoa`]) keeps the naive recomputation and
//! the differential property tests pin the two together grant for grant.

use crate::candidate::{Candidate, CandidateSet};
use crate::matching::{Grant, Matching};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// The Candidate-Order Arbiter.
///
/// ```
/// use mmr_arbiter::candidate::{Candidate, CandidateSet, Priority};
/// use mmr_arbiter::coa::CandidateOrderArbiter;
/// use mmr_arbiter::scheduler::SwitchScheduler;
/// use mmr_sim::rng::SimRng;
///
/// let mut cs = CandidateSet::new(4, 4);
/// // Inputs 0 and 1 contend for output 2; input 1 has higher priority.
/// cs.push(Candidate { input: 0, vc: 0, output: 2, priority: Priority::new(10.0) });
/// cs.push(Candidate { input: 1, vc: 1, output: 2, priority: Priority::new(99.0) });
///
/// let mut coa = CandidateOrderArbiter::new(4);
/// let matching = coa.schedule(&cs, &mut SimRng::seed_from_u64(0));
/// assert_eq!(matching.grant_for(1).unwrap().output, 2);
/// assert!(matching.grant_for(0).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CandidateOrderArbiter {
    ports: usize,
    // Scratch reused across cycles to stay allocation-free.
    conflicts: Vec<u32>, // levels x ports, level-major; live requests only
    live: Vec<u32>,      // per-level sum of `conflicts` row
    tie_buf: Vec<usize>,
    probe: KernelProbe,
}

impl CandidateOrderArbiter {
    /// COA for a router with `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        CandidateOrderArbiter {
            ports,
            conflicts: Vec::new(),
            live: Vec::new(),
            tie_buf: Vec::with_capacity(ports),
            probe: KernelProbe::default(),
        }
    }

    /// Build the conflict vector from scratch (all ports free): one
    /// popcount per (level, output) pair.
    #[inline]
    fn build_conflicts(&mut self, cs: &CandidateSet) {
        let levels = cs.levels();
        self.conflicts.clear();
        self.conflicts.resize(levels * self.ports, 0);
        self.live.clear();
        self.live.resize(levels, 0);
        for level in 0..levels {
            let mut row_total = 0u32;
            for output in 0..self.ports {
                let c = cs.requesters_at(level, output).count_ones();
                self.conflicts[level * self.ports + output] = c;
                row_total += c;
            }
            self.live[level] = row_total;
        }
    }

    /// Remove a freshly matched (input, output) pair from the conflict
    /// vector in O(levels): first drop the input's live candidates, then
    /// zero the output's column using the stored counts.  Returns the
    /// number of conflict-vector entries retired (for the work probe).
    #[inline]
    fn retire_pair(
        &mut self,
        cs: &CandidateSet,
        input: usize,
        output: usize,
        free_out: u64,
    ) -> u64 {
        let mut retired = 0u64;
        for (level, c) in cs.input_candidates(input).enumerate() {
            if free_out & (1u64 << c.output) != 0 {
                self.conflicts[level * self.ports + c.output] -= 1;
                self.live[level] -= 1;
                retired += 1;
            }
        }
        for level in 0..self.live.len() {
            let e = &mut self.conflicts[level * self.ports + output];
            self.live[level] -= *e;
            retired += u64::from(*e);
            *e = 0;
        }
        retired
    }
}

impl SwitchScheduler for CandidateOrderArbiter {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        self.build_conflicts(cs);
        let mut free_in: u64 = if self.ports == 64 {
            u64::MAX
        } else {
            (1u64 << self.ports) - 1
        };
        let mut free_out: u64 = free_in;
        // Work counts batched into locals; one masked probe update at the
        // end keeps the loop body unchanged whether the probe is armed.
        let mut iters = 0u64;
        let mut examined = 0u64;
        let mut retired = 0u64;

        // Each iteration matches exactly one (input, output) pair, so the
        // loop runs at most `ports` times.
        while let Some(level) = (0..self.live.len()).find(|&l| self.live[l] > 0) {
            iters += 1;
            // Port ordering: ascending conflict count within the lowest
            // level that still has requests; ties at random.
            let row = &self.conflicts[level * self.ports..(level + 1) * self.ports];
            let min_conflict = row
                .iter()
                .copied()
                .filter(|&c| c > 0)
                .min()
                .expect("level has live requests");
            self.tie_buf.clear();
            self.tie_buf.extend(
                row.iter()
                    .enumerate()
                    .filter(|&(_, &c)| c == min_conflict)
                    .map(|(o, _)| o),
            );
            let output = if self.tie_buf.len() == 1 {
                self.tie_buf[0]
            } else {
                self.tie_buf[rng.index(self.tie_buf.len())]
            };

            // Arbitration: highest-priority request for `output` at
            // `level`, among free inputs; ties at random.  The requester
            // bitmask enumerates exactly the free inputs whose level-
            // `level` candidate targets `output`, in ascending input
            // order — the same visit order (and thus the same RNG draw
            // sequence) as the reference's full port sweep.
            let mut requesters = cs.requesters_at(level, output) & free_in;
            debug_assert!(
                requesters != 0,
                "conflict vector said this pair has a request"
            );
            examined += u64::from(requesters.count_ones());
            let mut best: Option<(usize, Candidate)> = None;
            let mut ties = 0u32;
            while requesters != 0 {
                let input = requesters.trailing_zeros() as usize;
                requesters &= requesters - 1;
                let c = cs.get(input, level).expect("indexed candidate");
                debug_assert_eq!(c.output, output);
                match &best {
                    None => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority > b.priority => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority == b.priority => {
                        // Reservoir-sample among equal-priority requests so
                        // the tie-break is uniform.
                        ties += 1;
                        if rng.below(ties as u64) == 0 {
                            best = Some((input, c));
                        }
                    }
                    _ => {}
                }
            }
            let (input, cand) = best.expect("requester mask was non-empty");
            out.add(Grant {
                input,
                output,
                vc: cand.vc,
                level,
            });
            free_in &= !(1u64 << input);
            retired += self.retire_pair(cs, input, output, free_out);
            free_out &= !(1u64 << output);
        }
        self.probe.iterations(iters);
        self.probe.examined(examined);
        self.probe.retired(retired);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Candidate-Order Arbiter"
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Priority;

    fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(prio),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn empty_candidates_empty_matching() {
        let cs = CandidateSet::new(4, 4);
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn disjoint_requests_all_granted() {
        let mut cs = CandidateSet::new(4, 2);
        for i in 0..4 {
            cs.push(cand(i, i, (i + 1) % 4, 1.0 + i as f64));
        }
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 4);
        for i in 0..4 {
            assert_eq!(m.grant_for(i).unwrap().output, (i + 1) % 4);
        }
    }

    #[test]
    fn highest_priority_wins_contention() {
        // Three inputs all want output 0 at level 1; input 2 has the
        // highest priority.
        let mut cs = CandidateSet::new(4, 2);
        cs.push(cand(0, 0, 0, 5.0));
        cs.push(cand(1, 0, 0, 9.0));
        cs.push(cand(2, 0, 0, 100.0));
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1);
        let g = m.grant_for(2).expect("input 2 must win");
        assert_eq!(g.output, 0);
        assert!(m.grant_for(0).is_none());
        assert!(m.grant_for(1).is_none());
    }

    #[test]
    fn losers_fall_back_to_lower_levels() {
        // Inputs 0 and 1 both want output 0 first; their level-2
        // candidates point at free outputs, so the loser still transmits.
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0, 10.0), cand(0, 1, 1, 2.0)]);
        cs.set_input(1, &[cand(1, 0, 0, 8.0), cand(1, 1, 2, 1.0)]);
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 0);
        let loser = m.grant_for(1).unwrap();
        assert_eq!(loser.output, 2);
        assert_eq!(loser.level, 1);
    }

    #[test]
    fn least_conflicted_output_matched_first() {
        // Output 0 is requested by inputs 0,1,2 (3 conflicts); output 1 by
        // input 3 only (1 conflict).  COA must match output 1 first —
        // observable because input 3 also requests output 0 at level 1 but
        // must be granted its level-1 choice... here we check that the
        // high-conflict port still ends up matched (matched *last*, not
        // dropped).
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 1.0));
        cs.push(cand(1, 0, 0, 2.0));
        cs.push(cand(2, 0, 0, 3.0));
        cs.push(cand(3, 0, 1, 0.5));
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(3).unwrap().output, 1);
        assert_eq!(
            m.grant_for(2).unwrap().output,
            0,
            "priority 3.0 wins output 0"
        );
    }

    #[test]
    fn level_one_served_before_level_two() {
        // Input 0's level-1 request for output 0 must beat input 1's
        // level-2 request for output 0, even though input 1's priority for
        // it is higher.
        let mut cs = CandidateSet::new(2, 2);
        cs.set_input(0, &[cand(0, 0, 0, 1.0)]);
        cs.set_input(1, &[cand(1, 0, 1, 50.0), cand(1, 1, 0, 40.0)]);
        let m = CandidateOrderArbiter::new(2).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 0);
        assert_eq!(m.grant_for(1).unwrap().output, 1);
    }

    #[test]
    fn one_grant_per_input_even_with_many_candidates() {
        let mut cs = CandidateSet::new(4, 4);
        // Input 0 requests every output.
        cs.set_input(
            0,
            &[
                cand(0, 0, 0, 9.0),
                cand(0, 1, 1, 8.0),
                cand(0, 2, 2, 7.0),
                cand(0, 3, 3, 6.0),
            ],
        );
        let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1, "only one VC per physical link may transmit");
        assert_eq!(m.grant_for(0).unwrap().output, 0);
    }

    #[test]
    fn matching_is_always_maximal_on_candidates() {
        // After COA finishes there must be no remaining candidate linking
        // a free input to a free output (the loop only stops when none
        // remain).
        let mut r = rng();
        for seed in 0..50u64 {
            let mut cs = CandidateSet::new(4, 4);
            let mut gen = SimRng::seed_from_u64(seed);
            for input in 0..4 {
                let mut cands: Vec<Candidate> = (0..4)
                    .map(|vc| cand(input, vc, gen.index(4), gen.uniform() * 100.0))
                    .collect();
                cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
                cs.set_input(input, &cands);
            }
            let m = CandidateOrderArbiter::new(4).schedule(&cs, &mut r);
            for c in cs.iter() {
                assert!(
                    m.input_matched(c.input) || m.output_matched(c.output),
                    "candidate {c:?} links free input to free output"
                );
            }
            assert!(m.is_consistent_with(&cs));
        }
    }

    #[test]
    fn incremental_conflicts_match_reference_at_64_ports() {
        // Full-width mask edge case: 64 ports uses every bit of the free
        // masks, so `1 << ports` must never be evaluated.
        let mut cs = CandidateSet::new(64, 2);
        let mut gen = SimRng::seed_from_u64(7);
        for input in 0..64 {
            let mut cands: Vec<Candidate> = (0..2)
                .map(|vc| cand(input, vc, gen.index(64), gen.uniform() * 100.0))
                .collect();
            cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
            cs.set_input(input, &cands);
        }
        let mut fast_rng = SimRng::seed_from_u64(3);
        let mut ref_rng = SimRng::seed_from_u64(3);
        let fast = CandidateOrderArbiter::new(64).schedule(&cs, &mut fast_rng);
        let golden = crate::reference::ReferenceCoa::new(64).schedule(&cs, &mut ref_rng);
        assert_eq!(fast, golden);
    }
}
