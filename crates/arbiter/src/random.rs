//! Random maximal matching — the "no policy at all" floor baseline.
//!
//! Shuffles the distinct (input, output) request pairs and takes them
//! greedily.  The result is a uniformly random maximal matching on the
//! request graph, blind to both priority and conflict structure.
//!
//! The pair list is built by iterating each input's requested-output
//! bitmask (ascending output order, identical to the reference's nested
//! loop); free ports are multi-word [`crate::portset::PortSet`]s and all
//! scratch lives on the struct, so steady-state scheduling allocates
//! nothing.

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Random maximal matching arbiter.
#[derive(Debug, Clone)]
pub struct RandomArbiter {
    ports: usize,
    words: usize,
    pairs: Vec<(usize, usize)>,
    probe: KernelProbe,
}

impl RandomArbiter {
    /// Random arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0 && ports <= MAX_PORTS);
        RandomArbiter {
            ports,
            words: words_for_ports(ports),
            pairs: Vec::new(),
            probe: KernelProbe::default(),
        }
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        out.clear();
        self.pairs.clear();
        for input in 0..self.ports {
            let mut outputs = PortSet::<W>::from_words(cs.output_mask(input));
            while let Some(output) = outputs.take_lowest() {
                self.pairs.push((input, output));
            }
        }
        rng.shuffle(&mut self.pairs);
        let mut free_in = PortSet::<W>::full(self.ports);
        let mut free_out = PortSet::<W>::full(self.ports);
        for &(input, output) in &self.pairs {
            if free_in.contains(input) && free_out.contains(output) {
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("pair built from candidates");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                free_in.remove(input);
                free_out.remove(output);
            }
        }
        // One shuffled pass over every distinct request pair.
        self.probe.iterations(1);
        self.probe.examined(self.pairs.len() as u64);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for RandomArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, rng, out),
            2 => self.run::<2>(cs, rng, out),
            _ => self.run::<4>(cs, rng, out),
        }
    }

    fn name(&self) -> &'static str {
        "Random maximal matching"
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(1.0),
        }
    }

    #[test]
    fn matching_is_maximal() {
        for seed in 0..30u64 {
            let mut gen = SimRng::seed_from_u64(seed);
            let mut cs = CandidateSet::new(4, 2);
            for input in 0..4 {
                cs.set_input(
                    input,
                    &[cand(input, 0, gen.index(4)), cand(input, 1, gen.index(4))],
                );
            }
            let mut rng = SimRng::seed_from_u64(seed * 31 + 1);
            let m = RandomArbiter::new(4).schedule(&cs, &mut rng);
            for c in cs.iter() {
                assert!(m.input_matched(c.input) || m.output_matched(c.output));
            }
        }
    }

    #[test]
    fn contention_resolved_uniformly() {
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0));
        cs.push(cand(1, 0, 0));
        let mut arb = RandomArbiter::new(2);
        let mut rng = SimRng::seed_from_u64(5);
        let wins0 = (0..2000)
            .filter(|_| arb.schedule(&cs, &mut rng).grant_for(0).is_some())
            .count();
        assert!((800..1200).contains(&wins0), "wins0 = {wins0}");
    }

    #[test]
    fn empty_is_empty() {
        let cs = CandidateSet::new(3, 1);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(RandomArbiter::new(3).schedule(&cs, &mut rng).size(), 0);
    }
}
