//! Random maximal matching — the "no policy at all" floor baseline.
//!
//! Shuffles the distinct (input, output) request pairs and takes them
//! greedily.  The result is a uniformly random maximal matching on the
//! request graph, blind to both priority and conflict structure.

use crate::candidate::CandidateSet;
use crate::matching::{Grant, Matching};
use crate::scheduler::SwitchScheduler;
use mmr_sim::rng::SimRng;

/// Random maximal matching arbiter.
#[derive(Debug, Clone)]
pub struct RandomArbiter {
    ports: usize,
    pairs: Vec<(usize, usize)>,
}

impl RandomArbiter {
    /// Random arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        RandomArbiter { ports, pairs: Vec::new() }
    }
}

impl SwitchScheduler for RandomArbiter {
    fn schedule(&mut self, cs: &CandidateSet, rng: &mut SimRng) -> Matching {
        assert_eq!(cs.ports(), self.ports);
        self.pairs.clear();
        for input in 0..self.ports {
            for output in 0..self.ports {
                if cs.requests(input, output) {
                    self.pairs.push((input, output));
                }
            }
        }
        rng.shuffle(&mut self.pairs);
        let mut matching = Matching::new(self.ports);
        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];
        for &(input, output) in &self.pairs {
            if input_free[input] && output_free[output] {
                let c = cs.best_for(input, output).expect("pair built from candidates");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                matching.add(Grant { input, output, vc: c.vc, level });
                input_free[input] = false;
                output_free[output] = false;
            }
        }
        debug_assert!(matching.is_consistent_with(cs));
        matching
    }

    fn name(&self) -> &'static str {
        "Random maximal matching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize) -> Candidate {
        Candidate { input, vc, output, priority: Priority::new(1.0) }
    }

    #[test]
    fn matching_is_maximal() {
        for seed in 0..30u64 {
            let mut gen = SimRng::seed_from_u64(seed);
            let mut cs = CandidateSet::new(4, 2);
            for input in 0..4 {
                cs.set_input(input, &[cand(input, 0, gen.index(4)), cand(input, 1, gen.index(4))]);
            }
            let mut rng = SimRng::seed_from_u64(seed * 31 + 1);
            let m = RandomArbiter::new(4).schedule(&cs, &mut rng);
            for c in cs.iter() {
                assert!(m.input_matched(c.input) || m.output_matched(c.output));
            }
        }
    }

    #[test]
    fn contention_resolved_uniformly() {
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0));
        cs.push(cand(1, 0, 0));
        let mut arb = RandomArbiter::new(2);
        let mut rng = SimRng::seed_from_u64(5);
        let wins0 = (0..2000).filter(|_| arb.schedule(&cs, &mut rng).grant_for(0).is_some()).count();
        assert!((800..1200).contains(&wins0), "wins0 = {wins0}");
    }

    #[test]
    fn empty_is_empty() {
        let cs = CandidateSet::new(3, 1);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(RandomArbiter::new(3).schedule(&cs, &mut rng).size(), 0);
    }
}
