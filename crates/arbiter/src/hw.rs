//! Analytic hardware-cost model (the paper's §6 future work).
//!
//! §3.1 reports that replacing IABP's divider with SIABP's shifter cut
//! silicon area by roughly an order of magnitude (the exact figure is
//! unreadable in the source scan; the companion ICN'01 paper reports ≈30×)
//! and delay by 38×, determined with VHDL tools.  We reproduce the
//! *relative* comparison with a gate-level estimate: each structure is
//! decomposed into standard primitives (comparators, barrel shifters,
//! adders, an FP divider) with per-primitive area (gate equivalents) and
//! delay (ns, 0.18 µm-era) constants.  Absolute numbers are indicative
//! only; the ratios are what the model is calibrated for.

use serde::{Deserialize, Serialize};

/// Estimated implementation cost of a hardware block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwCost {
    /// Area in NAND2-equivalent gates.
    pub area_gates: f64,
    /// Critical-path delay in nanoseconds.
    pub delay_ns: f64,
}

impl HwCost {
    /// Area ratio `self / other`.
    pub fn area_ratio(&self, other: &HwCost) -> f64 {
        self.area_gates / other.area_gates
    }

    /// Delay ratio `self / other`.
    pub fn delay_ratio(&self, other: &HwCost) -> f64 {
        self.delay_ns / other.delay_ns
    }
}

impl core::ops::Add for HwCost {
    type Output = HwCost;
    fn add(self, rhs: HwCost) -> HwCost {
        // Area adds; blocks composed here are sequential on the critical
        // path, so delay adds too.
        HwCost {
            area_gates: self.area_gates + rhs.area_gates,
            delay_ns: self.delay_ns + rhs.delay_ns,
        }
    }
}

// --- primitive costs -----------------------------------------------------

/// `w`-bit magnitude comparator: ~3 gates/bit, log-depth.
fn comparator(w: u32) -> HwCost {
    HwCost {
        area_gates: 3.0 * w as f64,
        delay_ns: 0.35 * (w as f64).log2().max(1.0),
    }
}

/// `w`-bit ripple-improved adder (carry-lookahead-ish).
fn adder(w: u32) -> HwCost {
    HwCost {
        area_gates: 6.0 * w as f64,
        delay_ns: 0.4 * (w as f64).log2().max(1.0),
    }
}

/// `w`-bit barrel shifter: w·log2(w) muxes.
fn barrel_shifter(w: u32) -> HwCost {
    let stages = (w as f64).log2().ceil();
    HwCost {
        area_gates: 3.0 * w as f64 * stages,
        delay_ns: 0.55 * stages,
    }
}

/// `w`-bit register.
fn register(w: u32) -> HwCost {
    HwCost {
        area_gates: 5.0 * w as f64,
        delay_ns: 0.25,
    }
}

/// Priority-encoder over `n` inputs.
fn priority_encoder(n: u32) -> HwCost {
    HwCost {
        area_gates: 4.0 * n as f64,
        delay_ns: 0.4 * (n as f64).log2().max(1.0),
    }
}

/// Single-precision floating-point divider (iterative SRT unit).
/// Dominates every cost it appears in; constants calibrated to land the
/// SIABP-vs-IABP ratios near the paper's report.
fn fp_divider() -> HwCost {
    HwCost {
        area_gates: 17_800.0,
        delay_ns: 95.0,
    }
}

// --- priority-function costs ---------------------------------------------

/// Per-virtual-channel cost of the SIABP priority update: delay counter,
/// new-bit detector, barrel shifter on the priority register.
pub fn siabp_cost(counter_bits: u32, priority_bits: u32) -> HwCost {
    let counter = adder(counter_bits) + register(counter_bits);
    // New-MSB detector: XOR the counter with its registered mask, a few
    // gates per bit.
    let detector = HwCost {
        area_gates: 2.5 * counter_bits as f64,
        delay_ns: 0.3,
    };
    let shift = barrel_shifter(priority_bits) + register(priority_bits);
    // The counter increment and the priority shift proceed in parallel;
    // the critical path is whichever is longer.
    HwCost {
        area_gates: counter.area_gates + detector.area_gates + shift.area_gates,
        delay_ns: counter.delay_ns.max(detector.delay_ns + shift.delay_ns),
    }
}

/// Per-virtual-channel cost of the IABP priority computation: delay
/// counter plus a floating-point divider (delay / IAT).
pub fn iabp_cost(counter_bits: u32) -> HwCost {
    adder(counter_bits) + register(counter_bits) + fp_divider()
}

// --- arbiter costs ---------------------------------------------------------

/// Wave Front Arbiter: an `n × n` array of arbitration cells (a couple of
/// gates each) with a combinational wave across 2n−1 diagonals.
pub fn wfa_cost(ports: u32) -> HwCost {
    let cells = (ports * ports) as f64;
    HwCost {
        area_gates: 14.0 * cells,
        // The wave traverses up to 2n-1 cells.
        delay_ns: 0.45 * (2 * ports - 1) as f64,
    }
}

/// Candidate-Order Arbiter for `ports` ports, `levels` candidate levels
/// and `priority_bits`-wide priorities: selection-matrix registers,
/// per-(level,output) conflict counters (population counts), the port
/// ordering network, and a priority comparator tree per arbitration step,
/// iterated up to `ports` times.
pub fn coa_cost(ports: u32, levels: u32, priority_bits: u32) -> HwCost {
    let entries = (ports * levels) as f64;
    let matrix = HwCost {
        area_gates: entries * register(priority_bits + 8).area_gates,
        delay_ns: 0.25,
    };
    // Conflict counters: an adder tree per (level, output).
    let counters = HwCost {
        area_gates: (levels * ports) as f64 * adder(8).area_gates,
        delay_ns: adder(8).delay_ns,
    };
    // Ordering: min-conflict selection across ports (comparator tree).
    let ordering = HwCost {
        area_gates: ports as f64 * comparator(8).area_gates,
        delay_ns: comparator(8).delay_ns * (ports as f64).log2().max(1.0),
    };
    // Arbitration: priority comparator tree + encoder.
    let arb = HwCost {
        area_gates: ports as f64 * comparator(priority_bits).area_gates
            + priority_encoder(ports).area_gates,
        delay_ns: comparator(priority_bits).delay_ns * (ports as f64).log2().max(1.0)
            + priority_encoder(ports).delay_ns,
    };
    // The match-recompute loop runs at most `ports` times; area is shared,
    // delay multiplies.
    let per_iter = counters.delay_ns + ordering.delay_ns + arb.delay_ns;
    HwCost {
        area_gates: matrix.area_gates + counters.area_gates + ordering.area_gates + arb.area_gates,
        delay_ns: matrix.delay_ns + per_iter * ports as f64,
    }
}

/// The complete §3.1 comparison: SIABP vs IABP for the MMR's default
/// geometry (24-bit delay counters, 16-bit priorities).
pub fn priority_comparison() -> (HwCost, HwCost) {
    (siabp_cost(24, 16), iabp_cost(24))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siabp_vs_iabp_matches_paper_ratios() {
        let (siabp, iabp) = priority_comparison();
        let area_ratio = iabp.area_ratio(&siabp);
        let delay_ratio = iabp.delay_ratio(&siabp);
        // Paper: ≈30x area (companion report), 38x delay.
        assert!(
            (20.0..45.0).contains(&area_ratio),
            "area ratio {area_ratio} should be ~30x"
        );
        assert!(
            (28.0..50.0).contains(&delay_ratio),
            "delay ratio {delay_ratio} should be ~38x"
        );
    }

    #[test]
    fn siabp_is_small_and_fast() {
        let c = siabp_cost(24, 16);
        assert!(c.area_gates < 2000.0, "area {}", c.area_gates);
        assert!(c.delay_ns < 5.0, "delay {}", c.delay_ns);
    }

    #[test]
    fn wfa_scales_quadratically_in_area() {
        let a4 = wfa_cost(4).area_gates;
        let a8 = wfa_cost(8).area_gates;
        assert!((a8 / a4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn coa_costs_more_than_wfa() {
        // The point of §6: COA's QoS awareness is not free.
        let coa = coa_cost(4, 4, 16);
        let wfa = wfa_cost(4);
        assert!(coa.area_gates > wfa.area_gates);
        assert!(coa.delay_ns > wfa.delay_ns);
        // …but stays within an implementable envelope (same order of
        // magnitude as a flit time, 826 ns).
        assert!(coa.delay_ns < 100.0, "delay {}", coa.delay_ns);
    }

    #[test]
    fn coa_area_grows_with_levels() {
        let k1 = coa_cost(4, 1, 16).area_gates;
        let k4 = coa_cost(4, 4, 16).area_gates;
        assert!(k4 > k1);
    }

    #[test]
    fn cost_addition_composes() {
        let a = HwCost {
            area_gates: 10.0,
            delay_ns: 1.0,
        };
        let b = HwCost {
            area_gates: 5.0,
            delay_ns: 2.0,
        };
        let c = a + b;
        assert_eq!(c.area_gates, 15.0);
        assert_eq!(c.delay_ns, 3.0);
    }
}
