//! The Wave Front Arbiter (WFA) — the paper's comparison baseline.
//!
//! Tamir & Chi's symmetric crossbar arbiter propagates an arbitration wave
//! diagonally across an N×N array of cells, one per crosspoint.  A cell
//! grants its (input, output) pair iff a request is present and no grant
//! exists earlier in the same row or column.  Cells on one anti-diagonal
//! are independent and evaluate in parallel in hardware.
//!
//! This is the *wrapped* WFA: the starting diagonal rotates every cycle so
//! that no crosspoint is permanently favoured.  Crucially — and this is
//! the paper's point — WFA considers only *where* requests go, never their
//! priority: it maximizes matching size per wave order, blind to QoS.
//!
//! ## Kernel
//!
//! The request matrix is a [`crate::portset::PortSet`]-width row of words
//! per input (one bit per output), filled straight from the candidate
//! set's per-input output masks; the free rows and columns are port sets
//! of the same width.  The wave visits only still-free rows (bit
//! iteration), and each cell test is one AND.  The golden reference
//! ([`crate::reference::ReferenceWfa`]) keeps the dense boolean matrix;
//! both produce identical matchings (the wave order is deterministic).

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Wrapped Wave Front Arbiter (plus two study variants).
#[derive(Debug, Clone)]
pub struct WaveFrontArbiter {
    ports: usize,
    words: usize,
    /// Anti-diagonal that gets top priority this cycle.
    start_diag: usize,
    /// Rotate the priority diagonal every cycle (the wrapped variant).
    wrapped: bool,
    /// Build the request matrix from level-1 candidates only, making the
    /// wave see exactly what the link scheduler ranked best.
    top_level_only: bool,
    /// Request matrix scratch: per input, `words` words of requested
    /// outputs.
    rows: Vec<u64>,
    probe: KernelProbe,
}

impl WaveFrontArbiter {
    /// The paper's WFA: wrapped, requests from all candidate levels.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0 && ports <= MAX_PORTS);
        let words = words_for_ports(ports);
        WaveFrontArbiter {
            ports,
            words,
            start_diag: 0,
            wrapped: true,
            top_level_only: false,
            rows: vec![0; ports * words],
            probe: KernelProbe::default(),
        }
    }

    /// Study variant: the original *unwrapped* arbiter of Tamir & Chi's
    /// first design — the priority diagonal never rotates, so crosspoint
    /// (0,0) is permanently favoured.  Demonstrates why wrapping matters.
    pub fn fixed(ports: usize) -> Self {
        WaveFrontArbiter {
            wrapped: false,
            ..WaveFrontArbiter::new(ports)
        }
    }

    /// Study variant: requests restricted to each input's level-1
    /// candidate — a cheap way to make the wave respect the link
    /// scheduler's priority ranking, at the cost of matching cardinality.
    pub fn first_level_only(ports: usize) -> Self {
        WaveFrontArbiter {
            top_level_only: true,
            ..WaveFrontArbiter::new(ports)
        }
    }

    /// The diagonal that will be served first on the next call.
    pub fn current_diagonal(&self) -> usize {
        self.start_diag
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, out: &mut Matching) {
        let n = self.ports;
        out.clear();
        // Build the request matrix: input i requests output o if *any* of
        // its candidates targets o (the arbiter is priority-blind).  The
        // first-level variant only admits level-1 candidates.
        if self.top_level_only {
            for input in 0..n {
                let row = &mut self.rows[input * W..(input + 1) * W];
                row.fill(0);
                if let Some(c) = cs.get(input, 0) {
                    row[c.output >> 6] |= 1u64 << (c.output & 63);
                }
            }
        } else {
            for input in 0..n {
                self.rows[input * W..(input + 1) * W].copy_from_slice(cs.output_mask(input));
            }
        }

        let mut row_free = PortSet::<W>::full(n);
        let mut col_free = PortSet::<W>::full(n);
        let mut cells = 0u64;
        // Sweep the N anti-diagonals starting from the rotating one.  The
        // N cells of an anti-diagonal touch N distinct rows and columns,
        // so their grants never conflict with each other — snapshotting
        // the free-row mask per diagonal is safe.
        for d in 0..n {
            let diag = (self.start_diag + d) % n;
            let mut rf = row_free;
            cells += u64::from(rf.count_ones());
            while let Some(input) = rf.take_lowest() {
                let output = (diag + n - input) % n;
                let cell = self.rows[input * W + (output >> 6)]
                    & col_free.word(output >> 6)
                    & (1u64 << (output & 63));
                if cell != 0 {
                    let (level, c) = cs
                        .best_level_for(input, output)
                        .expect("request matrix was built from candidates");
                    out.add(Grant {
                        input,
                        output,
                        vc: c.vc,
                        level,
                    });
                    row_free.remove(input);
                    col_free.remove(output);
                }
            }
        }
        if self.wrapped {
            self.start_diag = (self.start_diag + 1) % n;
        }
        self.probe.iterations(n as u64);
        self.probe.examined(cells);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for WaveFrontArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, out),
            2 => self.run::<2>(cs, out),
            _ => self.run::<4>(cs, out),
        }
    }

    fn name(&self) -> &'static str {
        match (self.wrapped, self.top_level_only) {
            (true, false) => "Wave Front Arbiter",
            (false, _) => "Wave Front Arbiter (fixed diagonal)",
            (true, true) => "Wave Front Arbiter (level-1 requests)",
        }
    }

    fn reset(&mut self) {
        self.start_diag = 0;
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(prio),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn empty_in_empty_out() {
        let cs = CandidateSet::new(4, 4);
        let m = WaveFrontArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn full_permutation_fully_granted() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, (i + 2) % 4, 1.0));
        }
        let m = WaveFrontArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn full_permutation_fully_granted_at_multi_word_widths() {
        for ports in [96usize, 200] {
            let mut cs = CandidateSet::new(ports, 1);
            for i in 0..ports {
                cs.push(cand(i, 0, (i + 7) % ports, 1.0));
            }
            let m = WaveFrontArbiter::new(ports).schedule(&cs, &mut rng());
            assert_eq!(m.size(), ports, "ports = {ports}");
        }
    }

    #[test]
    fn ignores_priority() {
        // Inputs 0 and 1 contend for output 0.  Input 1 has a vastly
        // higher priority, but WFA's winner is decided purely by wave
        // geometry: with start_diag = 0, cell (0,0) is on the first
        // diagonal and wins.
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 0.001));
        cs.push(cand(1, 0, 0, 1e9));
        let m = WaveFrontArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1);
        assert!(m.grant_for(0).is_some(), "geometry, not priority, decides");
    }

    #[test]
    fn diagonal_rotates_across_cycles() {
        let mut wfa = WaveFrontArbiter::new(4);
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 1.0));
        cs.push(cand(1, 0, 0, 1.0));
        // Same contention every cycle; the winner must change as the
        // starting diagonal rotates.
        let mut winners = Vec::new();
        for _ in 0..4 {
            let m = wfa.schedule(&cs, &mut rng());
            winners.push(if m.grant_for(0).is_some() { 0 } else { 1 });
        }
        assert!(
            winners.contains(&0) && winners.contains(&1),
            "winners {winners:?}"
        );
    }

    #[test]
    fn reset_restores_initial_diagonal() {
        let mut wfa = WaveFrontArbiter::new(4);
        let cs = CandidateSet::new(4, 1);
        wfa.schedule(&cs, &mut rng());
        assert_eq!(wfa.current_diagonal(), 1);
        wfa.reset();
        assert_eq!(wfa.current_diagonal(), 0);
    }

    #[test]
    fn grants_use_lowest_level_candidate_for_output() {
        let mut cs = CandidateSet::new(2, 2);
        // Input 0: level-1 to output 1, level-2 to output 0.
        cs.set_input(0, &[cand(0, 3, 1, 9.0), cand(0, 7, 0, 1.0)]);
        let mut wfa = WaveFrontArbiter::new(2);
        let m = wfa.schedule(&cs, &mut rng());
        // Both grants impossible (one input); whichever output the wave
        // reaches first, the vc must match the candidate for that output.
        let g = m.grant_for(0).unwrap();
        let expected_vc = if g.output == 1 { 3 } else { 7 };
        assert_eq!(g.vc, expected_vc);
        assert!(m.is_consistent_with(&cs));
    }

    #[test]
    fn fixed_variant_never_rotates_and_starves() {
        let mut wfa = WaveFrontArbiter::fixed(4);
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 1.0));
        cs.push(cand(1, 0, 0, 1.0));
        // Input 0 sits on the favoured crosspoint and wins every cycle.
        for _ in 0..8 {
            let m = wfa.schedule(&cs, &mut rng());
            assert!(m.grant_for(0).is_some());
            assert!(m.grant_for(1).is_none(), "fixed diagonal starves input 1");
        }
        assert_eq!(wfa.current_diagonal(), 0);
    }

    #[test]
    fn first_level_variant_ignores_lower_levels() {
        let mut wfa = WaveFrontArbiter::first_level_only(2);
        let mut cs = CandidateSet::new(2, 2);
        // Both inputs' level-1 candidates want output 0; input 1 has a
        // level-2 candidate for output 1, which this variant must ignore.
        cs.set_input(0, &[cand(0, 0, 0, 9.0)]);
        cs.set_input(1, &[cand(1, 0, 0, 8.0), cand(1, 1, 1, 1.0)]);
        let m = wfa.schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1, "level-2 fallback must not be used");
        // The plain WFA with identical input uses it.
        let mut plain = WaveFrontArbiter::new(2);
        let m2 = plain.schedule(&cs, &mut rng());
        assert_eq!(m2.size(), 2);
    }

    #[test]
    fn variant_names_differ() {
        let names = [
            WaveFrontArbiter::new(2).name(),
            WaveFrontArbiter::fixed(2).name(),
            WaveFrontArbiter::first_level_only(2).name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn wave_front_is_maximal() {
        // WFA yields a maximal matching: no request can link a free row
        // to a free column afterwards.
        for seed in 0..50u64 {
            let mut gen = SimRng::seed_from_u64(seed);
            let mut cs = CandidateSet::new(4, 2);
            for input in 0..4 {
                let mut cands: Vec<Candidate> = (0..2)
                    .map(|vc| cand(input, vc, gen.index(4), gen.uniform()))
                    .collect();
                cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
                cs.set_input(input, &cands);
            }
            let mut wfa = WaveFrontArbiter::new(4);
            let m = wfa.schedule(&cs, &mut rng());
            for c in cs.iter() {
                assert!(m.input_matched(c.input) || m.output_matched(c.output));
            }
        }
    }
}
