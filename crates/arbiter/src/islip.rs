//! iSLIP (McKeown) — iterative round-robin matching.
//!
//! One of the related-work schedulers the paper cites (§4, via \[14\]).
//! Each iteration runs three phases over the *unmatched* ports:
//!
//! * **Request** — every unmatched input requests every output it has a
//!   candidate for.
//! * **Grant** — every unmatched output grants the requesting input that
//!   appears next at-or-after its grant pointer.
//! * **Accept** — every input that received grants accepts the output
//!   next at-or-after its accept pointer.
//!
//! Pointers advance one position past the granted/accepted port, and only
//! when the grant was accepted in the *first* iteration — the rule that
//! gives iSLIP its starvation freedom.  Like WFA it is priority-blind.

use crate::candidate::CandidateSet;
use crate::matching::{Grant, Matching};
use crate::scheduler::SwitchScheduler;
use mmr_sim::rng::SimRng;

/// iSLIP with a configurable iteration count.
#[derive(Debug, Clone)]
pub struct IslipArbiter {
    ports: usize,
    iterations: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl IslipArbiter {
    /// iSLIP for `ports` ports running `iterations` passes per cycle.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && iterations > 0);
        IslipArbiter { ports, iterations, grant_ptr: vec![0; ports], accept_ptr: vec![0; ports] }
    }

    /// Current grant pointers (for tests).
    pub fn grant_pointers(&self) -> &[usize] {
        &self.grant_ptr
    }
}

impl SwitchScheduler for IslipArbiter {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule(&mut self, cs: &CandidateSet, _rng: &mut SimRng) -> Matching {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        let mut matching = Matching::new(n);
        let mut input_free = vec![true; n];
        let mut output_free = vec![true; n];

        for iter in 0..self.iterations {
            // Grant phase: each free output picks one requesting free
            // input by round-robin from its pointer.
            let mut granted_to: Vec<Option<usize>> = vec![None; n]; // per input: granting output? No: per output -> input
            for output in 0..n {
                if !output_free[output] {
                    continue;
                }
                let start = self.grant_ptr[output];
                for off in 0..n {
                    let input = (start + off) % n;
                    if input_free[input] && cs.requests(input, output) {
                        granted_to[output] = Some(input);
                        break;
                    }
                }
            }
            // Accept phase: each input with grants accepts one output by
            // round-robin from its pointer.
            let mut any_accept = false;
            for input in 0..n {
                if !input_free[input] {
                    continue;
                }
                let start = self.accept_ptr[input];
                let mut accepted: Option<usize> = None;
                for off in 0..n {
                    let output = (start + off) % n;
                    if granted_to[output] == Some(input) {
                        accepted = Some(output);
                        break;
                    }
                }
                let Some(output) = accepted else { continue };
                let c = cs.best_for(input, output).expect("granted request exists");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                matching.add(Grant { input, output, vc: c.vc, level });
                input_free[input] = false;
                output_free[output] = false;
                any_accept = true;
                if iter == 0 {
                    self.grant_ptr[output] = (input + 1) % n;
                    self.accept_ptr[input] = (output + 1) % n;
                }
            }
            if !any_accept {
                break; // converged early
            }
        }
        debug_assert!(matching.is_consistent_with(cs));
        matching
    }

    fn name(&self) -> &'static str {
        "iSLIP"
    }

    fn reset(&mut self) {
        self.grant_ptr.fill(0);
        self.accept_ptr.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize) -> Candidate {
        Candidate { input, vc, output, priority: Priority::new(1.0) }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn permutation_fully_matched() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, (i + 3) % 4));
        }
        let m = IslipArbiter::new(4, 1).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn pointers_rotate_service_under_contention() {
        // Two inputs permanently contending for output 0: iSLIP must
        // alternate service between them (starvation freedom).
        let mut islip = IslipArbiter::new(4, 1);
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0));
        cs.push(cand(1, 0, 0));
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let m = islip.schedule(&cs, &mut rng());
            assert_eq!(m.size(), 1);
            if m.grant_for(0).is_some() {
                wins[0] += 1;
            } else {
                wins[1] += 1;
            }
        }
        assert_eq!(wins[0], 5);
        assert_eq!(wins[1], 5);
    }

    #[test]
    fn second_iteration_fills_holes() {
        // Inputs 0 and 1 both request outputs {0, 1}.  With all pointers
        // at zero, iteration 1 has both outputs granting input 0, which
        // accepts only output 0 — output 1's grant is wasted.  Iteration 2
        // must add (1 -> 1).
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0), cand(0, 1, 1)]);
        cs.set_input(1, &[cand(1, 0, 0), cand(1, 1, 1)]);
        let one_iter = IslipArbiter::new(4, 1).schedule(&cs, &mut rng()).size();
        let two_iter = IslipArbiter::new(4, 2).schedule(&cs, &mut rng()).size();
        assert_eq!(one_iter, 1);
        assert_eq!(two_iter, 2);
    }

    #[test]
    fn pointer_updates_only_on_first_iteration_accepts() {
        let mut islip = IslipArbiter::new(4, 2);
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0), cand(0, 1, 1)]);
        cs.set_input(1, &[cand(1, 0, 0), cand(1, 1, 1)]);
        islip.schedule(&cs, &mut rng());
        // Output 0 accepted input 0 in iteration 1 -> pointer at 1.
        assert_eq!(islip.grant_pointers()[0], 1);
        // Output 1 matched (input 1) only in iteration 2 -> pointer
        // unchanged.
        assert_eq!(islip.grant_pointers()[1], 0);
    }

    #[test]
    fn reset_clears_pointers() {
        let mut islip = IslipArbiter::new(2, 1);
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0));
        islip.schedule(&cs, &mut rng());
        assert_ne!(islip.grant_pointers()[0], 0);
        islip.reset();
        assert_eq!(islip.grant_pointers(), &[0, 0]);
    }
}
