//! iSLIP (McKeown) — iterative round-robin matching.
//!
//! One of the related-work schedulers the paper cites (§4, via \[14\]).
//! Each iteration runs three phases over the *unmatched* ports:
//!
//! * **Request** — every unmatched input requests every output it has a
//!   candidate for.
//! * **Grant** — every unmatched output grants the requesting input that
//!   appears next at-or-after its grant pointer.
//! * **Accept** — every input that received grants accepts the output
//!   next at-or-after its accept pointer.
//!
//! Pointers advance one position past the granted/accepted port, and only
//! when the grant was accepted in the *first* iteration — the rule that
//! gives iSLIP its starvation freedom.  Like WFA it is priority-blind.
//!
//! ## Kernel
//!
//! Requesters, free ports and received grants are
//! [`crate::portset::PortSet`] bitmasks; the round-robin scans are
//! first-set-bit searches ([`PortSet::first_at_or_after`]) instead of
//! O(ports) wrap-around loops.  The golden reference
//! ([`crate::reference::ReferenceIslip`]) keeps the linear scans; both are
//! deterministic and produce identical matchings.

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// iSLIP with a configurable iteration count.
#[derive(Debug, Clone)]
pub struct IslipArbiter {
    ports: usize,
    words: usize,
    iterations: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
    /// Scratch: per input, `words` words of outputs that granted it this
    /// iteration.
    grants_in: Vec<u64>,
    probe: KernelProbe,
}

impl IslipArbiter {
    /// iSLIP for `ports` ports running `iterations` passes per cycle.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && ports <= MAX_PORTS && iterations > 0);
        let words = words_for_ports(ports);
        IslipArbiter {
            ports,
            words,
            iterations,
            grant_ptr: vec![0; ports],
            accept_ptr: vec![0; ports],
            grants_in: vec![0; ports * words],
            probe: KernelProbe::default(),
        }
    }

    /// Current grant pointers (for tests).
    pub fn grant_pointers(&self) -> &[usize] {
        &self.grant_ptr
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, out: &mut Matching) {
        let n = self.ports;
        out.clear();
        let mut free_in = PortSet::<W>::full(n);
        let mut free_out = PortSet::<W>::full(n);
        let mut iters = 0u64;
        let mut examined = 0u64;

        for iter in 0..self.iterations {
            iters += 1;
            // Grant phase: each free output picks one requesting free
            // input by round-robin from its pointer.
            self.grants_in.fill(0);
            let mut of = free_out;
            while let Some(output) = of.take_lowest() {
                let requesters = PortSet::<W>::from_words(cs.requesters(output)).and(&free_in);
                examined += u64::from(requesters.count_ones());
                if !requesters.is_empty() {
                    let input = requesters.first_at_or_after(self.grant_ptr[output]);
                    self.grants_in[input * W + (output >> 6)] |= 1u64 << (output & 63);
                }
            }
            // Accept phase: each input with grants accepts one output by
            // round-robin from its pointer.
            let mut any_accept = false;
            let mut inf = free_in;
            while let Some(input) = inf.take_lowest() {
                let granted = PortSet::<W>::from_words(&self.grants_in[input * W..(input + 1) * W]);
                if granted.is_empty() {
                    continue;
                }
                let output = granted.first_at_or_after(self.accept_ptr[input]);
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("granted request exists");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                free_in.remove(input);
                free_out.remove(output);
                any_accept = true;
                if iter == 0 {
                    self.grant_ptr[output] = (input + 1) % n;
                    self.accept_ptr[input] = (output + 1) % n;
                }
            }
            if !any_accept {
                break; // converged early
            }
        }
        self.probe.iterations(iters);
        self.probe.examined(examined);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for IslipArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, out),
            2 => self.run::<2>(cs, out),
            _ => self.run::<4>(cs, out),
        }
    }

    fn name(&self) -> &'static str {
        "iSLIP"
    }

    fn reset(&mut self) {
        self.grant_ptr.fill(0);
        self.accept_ptr.fill(0);
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(1.0),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn permutation_fully_matched() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, (i + 3) % 4));
        }
        let m = IslipArbiter::new(4, 1).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn permutation_fully_matched_at_multi_word_widths() {
        for ports in [100usize, 256] {
            let mut cs = CandidateSet::new(ports, 1);
            for i in 0..ports {
                cs.push(cand(i, 0, (i + 3) % ports));
            }
            let m = IslipArbiter::new(ports, 1).schedule(&cs, &mut rng());
            assert_eq!(m.size(), ports, "ports = {ports}");
        }
    }

    #[test]
    fn pointers_rotate_service_under_contention() {
        // Two inputs permanently contending for output 0: iSLIP must
        // alternate service between them (starvation freedom).
        let mut islip = IslipArbiter::new(4, 1);
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0));
        cs.push(cand(1, 0, 0));
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let m = islip.schedule(&cs, &mut rng());
            assert_eq!(m.size(), 1);
            if m.grant_for(0).is_some() {
                wins[0] += 1;
            } else {
                wins[1] += 1;
            }
        }
        assert_eq!(wins[0], 5);
        assert_eq!(wins[1], 5);
    }

    #[test]
    fn second_iteration_fills_holes() {
        // Inputs 0 and 1 both request outputs {0, 1}.  With all pointers
        // at zero, iteration 1 has both outputs granting input 0, which
        // accepts only output 0 — output 1's grant is wasted.  Iteration 2
        // must add (1 -> 1).
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0), cand(0, 1, 1)]);
        cs.set_input(1, &[cand(1, 0, 0), cand(1, 1, 1)]);
        let one_iter = IslipArbiter::new(4, 1).schedule(&cs, &mut rng()).size();
        let two_iter = IslipArbiter::new(4, 2).schedule(&cs, &mut rng()).size();
        assert_eq!(one_iter, 1);
        assert_eq!(two_iter, 2);
    }

    #[test]
    fn pointer_updates_only_on_first_iteration_accepts() {
        let mut islip = IslipArbiter::new(4, 2);
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0), cand(0, 1, 1)]);
        cs.set_input(1, &[cand(1, 0, 0), cand(1, 1, 1)]);
        islip.schedule(&cs, &mut rng());
        // Output 0 accepted input 0 in iteration 1 -> pointer at 1.
        assert_eq!(islip.grant_pointers()[0], 1);
        // Output 1 matched (input 1) only in iteration 2 -> pointer
        // unchanged.
        assert_eq!(islip.grant_pointers()[1], 0);
    }

    #[test]
    fn reset_clears_pointers() {
        let mut islip = IslipArbiter::new(2, 1);
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0));
        islip.schedule(&cs, &mut rng());
        assert_ne!(islip.grant_pointers()[0], 0);
        islip.reset();
        assert_eq!(islip.grant_pointers(), &[0, 0]);
    }
}
